#!/usr/bin/env python3
"""Mobility service DApp — the universality experiment (§6.4 / Fig. 5).

Reproduces: **Figure 5** (which VMs can execute the Mobility contract at
all); asserted shape targets live in
``benchmarks/test_fig5_universality.py`` and ``EXPERIMENTS.md`` §Figure 5.

Sends the Uber workload (810-900 TPS of ``checkDistance`` calls, each
scanning 10,000 drivers with Newton integer square roots) to all six
blockchains on the consortium configuration.

Expected outcome, as in the paper: Algorand, Diem and Solana report
"budget exceeded" — their VMs hard-cap per-transaction computation — while
the geth-EVM chains (Avalanche, Ethereum, Quorum) execute the contract,
with Quorum far in front.
"""

from __future__ import annotations

from repro import run_trace
from repro.workloads import uber_trace

CHAINS = ("algorand", "avalanche", "diem", "ethereum", "quorum", "solana")


def main() -> None:
    trace = uber_trace()
    print(f"Uber workload: {trace.average_tps:.0f} TPS average,"
          f" {trace.duration:.0f} s, function {trace.function}()"
          f" over 10,000 drivers\n")
    print(f"{'chain':12s} {'outcome':28s} {'tput (TPS)':>12s}"
          f" {'latency (s)':>12s}")
    for chain in CHAINS:
        result = run_trace(chain, "consortium", trace,
                           accounts=2_000, scale=0.05)
        if result.execution_failed():
            reason = result.abort_reasons()
            outcome = f"X budget exceeded ({reason['budget_exceeded']} tx)"
            print(f"{chain:12s} {outcome:28s} {'-':>12s} {'-':>12s}")
        else:
            print(f"{chain:12s} {'executes the DApp':28s}"
                  f" {result.average_throughput:12.0f}"
                  f" {result.average_latency:12.1f}")


if __name__ == "__main__":
    main()
