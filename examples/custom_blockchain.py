#!/usr/bin/env python3
"""Adding a new blockchain to DIABLO (§4's extensibility claim).

Reproduces: no single figure — it demonstrates §4's 4-function connector
contract, then reruns **Figure 4**'s robustness experiment (§6.3) with
the new chain added to the comparison.

The paper: "To add a new blockchain, one has to implement at least one of
these interaction types as well as 4 functions" — here we add a fictional
chain, *Redwood*, a leaderless deterministic BFT design in the spirit of
the Red Belly Blockchain the paper cites [40] as immune to the overload
collapse of leader-based BFT.

Redwood reuses the geth EVM and a leader-BFT latency model without the
per-leader bottlenecks (no pool-management overhead, no round-change
collapse: superblock consensus commits every proposal). We then rerun the
§6.3 robustness experiment: unlike Quorum, Redwood keeps its throughput
under 10x overload — matching what [40] reports for Smart Red Belly.
"""

from __future__ import annotations

from repro.blockchains.base import ChainParams
from repro.chain.mempool import MempoolPolicy
from repro.consensus.models import LeaderBFTPerf, WanProfile
from repro.core.primary import Primary
from repro.crypto.signing import ED25519
from repro.workloads import constant_transfer_trace


def redwood_perf(profile: WanProfile) -> LeaderBFTPerf:
    """Leaderless rounds: one gossip + two vote phases, no leader state."""
    return LeaderBFTPerf(
        profile,
        phases=2,
        base_overhead=0.05,
        pool_overhead_per_tx=0.0,     # no per-leader tx-pool bottleneck
        admission_cpu_per_tx=0.0,
        round_timeout=30.0,           # superblock rounds never stall
        overload_gamma=0.05,          # graceful degradation
        min_block_interval=0.5,
        pipeline_depth=2.0)


def redwood_params() -> ChainParams:
    return ChainParams(
        name="redwood",
        consensus_name="LeaderlessBFT",
        properties="deterministic",
        vm_name="geth-evm",
        dapp_language="Solidity",
        signature_scheme=ED25519,
        block_tx_limit=4_000,
        mempool_policy=MempoolPolicy(capacity=200_000, evict_oldest=True),
        confirmation_depth=0,
        commit_api="stream",
        exec_parallelism=8.0,
        perf_model=redwood_perf)


def run_redwood(rate: float, configuration: str = "datacenter",
                scale: float = 0.05):
    primary = Primary("redwood", configuration, scale=scale, seed=1,
                      params=redwood_params())
    trace = constant_transfer_trace(rate)
    return primary.run(trace.spec(accounts=2_000), trace.name, drain=240)


def main() -> None:
    print("Redwood — a custom chain plugged into the DIABLO abstraction\n")
    for rate in (1_000, 10_000):
        result = run_redwood(rate)
        print(f"constant {rate:>6.0f} TPS:"
              f" throughput {result.average_throughput:7.0f} TPS,"
              f" latency {result.average_latency:5.1f}s,"
              f" commit ratio {result.commit_ratio:5.1%}")
    print("\nUnlike Quorum (Fig. 4), the leaderless design does not"
          " collapse at 10,000 TPS.")


if __name__ == "__main__":
    main()
