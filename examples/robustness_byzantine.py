#!/usr/bin/env python3
"""Byzantine robustness: adversarial replicas vs. the consensus stack.

Reproduces: no single figure — it extends §6.3's robustness theme from
crash faults to *Byzantine* faults. Every message-level protocol in the
consensus stack runs with k = 0 .. f+1 adversarial replicas (k replicas
double-sign every value they relay), and a :class:`SafetyAuditor`
watches agreement, total order and certificate validity online while a
liveness grade tracks whether honest replicas keep committing.

The cliff the sweep makes visible:

* the quorum-BFT protocols (HotStuff/DiemBFT, IBFT, Tower BFT,
  Algorand BA*) absorb k <= f equivocators — the honest 2f+1 quorum
  outvotes every fork — and IBFT forks deterministically at k = f+1,
  the textbook bound;
* Raft is crash-fault tolerant only: a single equivocating leader
  halts replication (a liveness, not safety, failure);
* Clique trusts its authority list, so one double-signing sealer forks
  the audience into chains that disagree on which heights exist;
* Snowball's tolerance is probabilistic: one equivocator biases the
  metastable sampling but small committees usually still collapse to
  one value.

Run with ``python examples/robustness_byzantine.py``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.consensus.testbed import PROTOCOLS, run_audited
from repro.sim.byzantine import ByzantineSchedule, Equivocate


def sweep_protocol(protocol: str, max_adversaries: int) -> List[Dict]:
    """Run *protocol* with k = 0..max_adversaries equivocating replicas."""
    rows = []
    recipe = PROTOCOLS[protocol]
    for k in range(max_adversaries + 1):
        schedule = ByzantineSchedule(tuple(
            Equivocate(node=node, start=0.0, stop=recipe.until)
            for node in range(k)))
        harness, auditor = run_audited(protocol, schedule)
        byzantine = set(schedule.nodes())
        honest = [d for d in harness.decisions if d.node not in byzantine]
        rows.append({
            "protocol": protocol,
            "adversaries": k,
            "safety": auditor.verdict,
            "liveness": auditor.liveness_grade(),
            "honest_decisions": len(honest),
            "violations": len(auditor.report()["violations"]),
        })
    return rows


def print_table(rows: List[Dict]) -> None:
    header = (f"{'protocol':10s} {'k':>2s} {'safety':9s} {'liveness':9s}"
              f" {'honest':>7s} {'violations':>10s}")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['protocol']:10s} {row['adversaries']:2d}"
              f" {row['safety']:9s} {row['liveness']:9s}"
              f" {row['honest_decisions']:7d} {row['violations']:10d}")


def main() -> None:
    all_rows: List[Dict] = []
    for protocol, recipe in PROTOCOLS.items():
        f = recipe.byzantine_f(recipe.default_n)
        # sweep past the tolerance bound: 0..f+1 adversaries (for the
        # zero-tolerance protocols that is simply k in {0, 1})
        all_rows.extend(sweep_protocol(protocol, f + 1))
    print_table(all_rows)
    print()
    safe = [r for r in all_rows
            if r["adversaries"] <= PROTOCOLS[r["protocol"]].byzantine_f(
                PROTOCOLS[r["protocol"]].default_n)
            and r["safety"] != "ok"]
    if safe:
        print("UNEXPECTED: safety violations within tolerance:", safe)
    else:
        print("all protocols preserved safety within their tolerance"
              " bound; beyond it the auditor reports the forks.")


if __name__ == "__main__":
    main()
