#!/usr/bin/env python3
"""Quickstart: benchmark one blockchain with one workload.

Reproduces: one cell of **Figure 3** (§6.2, the deployment challenge);
``benchmarks/test_fig3_scalability.py`` regenerates the full figure and
``EXPERIMENTS.md`` §Figure 3 records paper-vs-measured. Run the whole
matrix in parallel with ``python -m repro sweep`` (docs/SWEEPS.md).

Runs the paper's deployment challenge (§6.2) — native transfers at a
constant 1,000 TPS for 120 seconds — against Quorum deployed in the
testnet configuration (10 c5.xlarge machines in one datacenter), then
prints the summary statistics and a short time series.

Usage:
    python examples/quickstart.py [chain] [configuration]

e.g. ``python examples/quickstart.py solana devnet``.
"""

from __future__ import annotations

import sys

from repro import run_trace
from repro.analysis import throughput_timeseries, transactions_to_csv
from repro.workloads import deployment_challenge_trace


def main() -> None:
    chain = sys.argv[1] if len(sys.argv) > 1 else "quorum"
    configuration = sys.argv[2] if len(sys.argv) > 2 else "testnet"

    print(f"Benchmarking {chain} on the {configuration} configuration "
          f"(1,000 TPS native transfers, 120 s)...")
    result = run_trace(chain, configuration, deployment_challenge_trace(),
                       accounts=2_000, scale=0.05)

    summary = result.summary()
    print("\n--- summary ---")
    for key in ("average_load_tps", "average_throughput_tps",
                "average_latency_s", "median_latency_s", "commit_ratio"):
        print(f"{key:26s} {summary[key]}")
    if summary["aborts"]:
        print(f"{'aborts':26s} {summary['aborts']}")

    print("\n--- throughput time series (every 20 s) ---")
    for row in throughput_timeseries(result, bin_size=1.0)[::20]:
        print(f"t={row['time']:6.0f}s  load={row['load_tps']:8.1f} TPS"
              f"  throughput={row['throughput_tps']:8.1f} TPS")

    print("\n--- first transactions (csv-results format) ---")
    for line in transactions_to_csv(result).splitlines()[:6]:
        print(line)


if __name__ == "__main__":
    main()
