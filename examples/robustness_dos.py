#!/usr/bin/env python3
"""Robustness under overload and under faults (§6.3, §6.5).

Reproduces: **Figure 4** (throughput at 1 kTPS vs 10 kTPS per chain);
the asserted version is ``benchmarks/test_fig4_robustness.py``, with
measured ratios in ``EXPERIMENTS.md`` §Figure 4.

Part 1 stresses each chain, deployed in its best configuration, first
with 1,000 TPS and then with 10,000 TPS of native transfers ("Generating
10,000 TPS with DIABLO costs less than 8 USD/hour on AWS", the paper
notes wryly). The contrast reproduces Figure 4:

* the deterministic leader-based BFT chains suffer most — Diem's
  throughput divides by ~10, Quorum's collapses toward zero in a cascade
  of IBFT round changes;
* Algorand and Solana shed load but keep committing;
* Avalanche, throttled far below its hardware's ability, actually commits
  *more* under pressure as its blocks fill up.

Part 2 is the crash-and-recover scenario: a fault schedule takes down
f+1 of the testnet's 10 validators a third of the way into the run and
brings them back later. The commit ratio collapses while the commit
quorum is gone and recovers within seconds of the heal — the
availability dip the fault-injection subsystem makes measurable.

Part 3 is the *economic* DoS scenario: instead of crashing validators,
a budget-constrained adversary bids for blockspace against honest
traffic through each chain's fee market. The table reports what one
second of added median honest latency cost the attacker in fee units —
the economic-resilience number the fee dialects differ on. EIP-1559
chains make sustained attacks exponentially expensive (the base fee
climbs under full blocks); flat-fee chains cannot price the attacker
out at all, only shed load. Deterministic: every number reproduces
byte-for-byte at a fixed scale and seed.
"""

from __future__ import annotations

from repro import run_benchmark, run_trace
from repro.analysis.summary import degradation_report, economic_impact
from repro.core.primary import Primary
from repro.core.spec import (
    AccountSample,
    LoadSchedule,
    TransferSpec,
    simple_spec,
)
from repro.econ.fees import FeeSpec
from repro.sim.dos import AdversarySpec
from repro.sim.faults import events_from_dicts
from repro.workloads import constant_transfer_trace

BEST_CONFIGURATION = {
    "algorand": "testnet",
    "avalanche": "datacenter",
    "diem": "datacenter",
    "ethereum": "datacenter",
    "quorum": "datacenter",
    "solana": "community",
}


def crash_and_recover(chain: str = "quorum") -> None:
    """Crash f+1 validators mid-run, recover them, report the dip."""
    spec = simple_spec(
        TransferSpec(AccountSample(100)),
        LoadSchedule.constant(200, 90),
        faults=events_from_dicts([
            {"at": 30, "kind": "crash", "nodes": [0, 1, 2, 3]},
            {"at": 60, "kind": "recover", "nodes": [0, 1, 2, 3]},
        ]))
    result = run_benchmark(chain, "testnet", spec,
                           workload_name="crash-and-recover", scale=0.05)
    print(f"\n-- crash-and-recover: {chain} on testnet,"
          f" 4/10 validators down for 30 s --")
    print(degradation_report(result))


#: attack rate high enough to contend for every chain's blockspace at
#: scale 0.05, with a budget that runs out on the cheap chains
DOS_CHAINS = ("ethereum", "quorum", "algorand", "solana")
DOS_BUDGET = 200_000_000
DOS_RATES = {"ethereum": 2_000.0, "quorum": 8_000.0,
             "algorand": 20_000.0, "solana": 2_000.0}


def economic_dos() -> None:
    """Cost-to-delay table: fee units per second of added honest latency."""
    print(f"\n-- economic DoS: budget {DOS_BUDGET:,} fee units,"
          f" bidding x3 over the honest suggestion --")
    print(f"{'chain':10s} {'dialect':8s} {'p50 benign':>10s}"
          f" {'p50 attack':>10s} {'commit':>7s} {'spend':>12s}"
          f" {'cost/delay-s':>12s}  notes")
    for chain in DOS_CHAINS:
        adversary = AdversarySpec(budget=DOS_BUDGET,
                                  rate=DOS_RATES[chain],
                                  bid_multiplier=3.0)

        def run(attack: bool):
            spec = simple_spec(
                TransferSpec(AccountSample(200)),
                LoadSchedule.constant(200, 60),
                fees=FeeSpec(),
                adversary=adversary if attack else None)
            primary = Primary(chain, "testnet", scale=0.05, seed=3)
            return primary.run(spec, workload_name="economic-dos")

        baseline = run(attack=False)
        attacked = run(attack=True)
        info = economic_impact(baseline, attacked)
        cost = info["cost_per_delay_s"]
        notes = ""
        if info["exhausted_at_s"] is not None:
            notes = (f"budget gone at t={info['exhausted_at_s']:.0f}s"
                     " — priced out")
        elif info["dialect"] == "flat":
            notes = "no price lever: pure flood"
        elif cost is None:
            dropped = (info["baseline_commit_ratio"]
                       - info["attacked_commit_ratio"])
            notes = f"no delay; displaces {dropped:.0%} of honest txs"
        print(f"{chain:10s} {info['dialect']:8s}"
              f" {info['baseline_p50_s']:9.1f}s"
              f" {info['attacked_p50_s']:9.1f}s"
              f" {info['attacked_commit_ratio']:6.1%}"
              f" {info['attacker_spend']:>12,}"
              + (f" {cost:>12,.0f}" if cost is not None else
                 f" {'n/a':>12s}")
              + f"  {notes}")


def main() -> None:
    print(f"{'chain':12s} {'config':12s} {'1k TPS':>10s} {'10k TPS':>10s}"
          f" {'ratio':>8s}  {'lat 1k':>8s} {'lat 10k':>8s}  notes")
    for chain, configuration in BEST_CONFIGURATION.items():
        low = run_trace(chain, configuration, constant_transfer_trace(1_000),
                        accounts=2_000, scale=0.05)
        high = run_trace(chain, configuration,
                         constant_transfer_trace(10_000),
                         accounts=2_000, scale=0.05)
        ratio = (high.average_throughput / low.average_throughput
                 if low.average_throughput else float("nan"))
        notes = ""
        view_changes = high.chain_stats.get("view_changes", 0)
        if view_changes:
            notes = f"{view_changes:.0f} view changes (round-change cascade)"
        elif ratio > 1.05:
            notes = "throughput rises under overload"
        print(f"{chain:12s} {configuration:12s}"
              f" {low.average_throughput:10.0f}"
              f" {high.average_throughput:10.0f}"
              f" {ratio:8.2f}"
              f"  {low.average_latency:8.1f} {high.average_latency:8.1f}"
              f"  {notes}")
    crash_and_recover()
    economic_dos()


if __name__ == "__main__":
    main()
