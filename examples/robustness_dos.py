#!/usr/bin/env python3
"""Robustness under overload and under faults (§6.3, §6.5).

Reproduces: **Figure 4** (throughput at 1 kTPS vs 10 kTPS per chain);
the asserted version is ``benchmarks/test_fig4_robustness.py``, with
measured ratios in ``EXPERIMENTS.md`` §Figure 4.

Part 1 stresses each chain, deployed in its best configuration, first
with 1,000 TPS and then with 10,000 TPS of native transfers ("Generating
10,000 TPS with DIABLO costs less than 8 USD/hour on AWS", the paper
notes wryly). The contrast reproduces Figure 4:

* the deterministic leader-based BFT chains suffer most — Diem's
  throughput divides by ~10, Quorum's collapses toward zero in a cascade
  of IBFT round changes;
* Algorand and Solana shed load but keep committing;
* Avalanche, throttled far below its hardware's ability, actually commits
  *more* under pressure as its blocks fill up.

Part 2 is the crash-and-recover scenario: a fault schedule takes down
f+1 of the testnet's 10 validators a third of the way into the run and
brings them back later. The commit ratio collapses while the commit
quorum is gone and recovers within seconds of the heal — the
availability dip the fault-injection subsystem makes measurable.
"""

from __future__ import annotations

from repro import run_benchmark, run_trace
from repro.analysis.summary import degradation_report
from repro.core.spec import (
    AccountSample,
    LoadSchedule,
    TransferSpec,
    simple_spec,
)
from repro.sim.faults import events_from_dicts
from repro.workloads import constant_transfer_trace

BEST_CONFIGURATION = {
    "algorand": "testnet",
    "avalanche": "datacenter",
    "diem": "datacenter",
    "ethereum": "datacenter",
    "quorum": "datacenter",
    "solana": "community",
}


def crash_and_recover(chain: str = "quorum") -> None:
    """Crash f+1 validators mid-run, recover them, report the dip."""
    spec = simple_spec(
        TransferSpec(AccountSample(100)),
        LoadSchedule.constant(200, 90),
        faults=events_from_dicts([
            {"at": 30, "kind": "crash", "nodes": [0, 1, 2, 3]},
            {"at": 60, "kind": "recover", "nodes": [0, 1, 2, 3]},
        ]))
    result = run_benchmark(chain, "testnet", spec,
                           workload_name="crash-and-recover", scale=0.05)
    print(f"\n-- crash-and-recover: {chain} on testnet,"
          f" 4/10 validators down for 30 s --")
    print(degradation_report(result))


def main() -> None:
    print(f"{'chain':12s} {'config':12s} {'1k TPS':>10s} {'10k TPS':>10s}"
          f" {'ratio':>8s}  {'lat 1k':>8s} {'lat 10k':>8s}  notes")
    for chain, configuration in BEST_CONFIGURATION.items():
        low = run_trace(chain, configuration, constant_transfer_trace(1_000),
                        accounts=2_000, scale=0.05)
        high = run_trace(chain, configuration,
                         constant_transfer_trace(10_000),
                         accounts=2_000, scale=0.05)
        ratio = (high.average_throughput / low.average_throughput
                 if low.average_throughput else float("nan"))
        notes = ""
        view_changes = high.chain_stats.get("view_changes", 0)
        if view_changes:
            notes = f"{view_changes:.0f} view changes (round-change cascade)"
        elif ratio > 1.05:
            notes = "throughput rises under overload"
        print(f"{chain:12s} {configuration:12s}"
              f" {low.average_throughput:10.0f}"
              f" {high.average_throughput:10.0f}"
              f" {ratio:8.2f}"
              f"  {low.average_latency:8.1f} {high.average_latency:8.1f}"
              f"  {notes}")
    crash_and_recover()


if __name__ == "__main__":
    main()
