#!/usr/bin/env python3
"""Robustness under overload — the denial-of-service experiment (§6.3).

Stresses each chain, deployed in its best configuration, first with
1,000 TPS and then with 10,000 TPS of native transfers ("Generating
10,000 TPS with DIABLO costs less than 8 USD/hour on AWS", the paper
notes wryly). The contrast reproduces Figure 4:

* the deterministic leader-based BFT chains suffer most — Diem's
  throughput divides by ~10, Quorum's collapses toward zero in a cascade
  of IBFT round changes;
* Algorand and Solana shed load but keep committing;
* Avalanche, throttled far below its hardware's ability, actually commits
  *more* under pressure as its blocks fill up.
"""

from __future__ import annotations

from repro import run_trace
from repro.workloads import constant_transfer_trace

BEST_CONFIGURATION = {
    "algorand": "testnet",
    "avalanche": "datacenter",
    "diem": "datacenter",
    "ethereum": "datacenter",
    "quorum": "datacenter",
    "solana": "community",
}


def main() -> None:
    print(f"{'chain':12s} {'config':12s} {'1k TPS':>10s} {'10k TPS':>10s}"
          f" {'ratio':>8s}  {'lat 1k':>8s} {'lat 10k':>8s}  notes")
    for chain, configuration in BEST_CONFIGURATION.items():
        low = run_trace(chain, configuration, constant_transfer_trace(1_000),
                        accounts=2_000, scale=0.05)
        high = run_trace(chain, configuration,
                         constant_transfer_trace(10_000),
                         accounts=2_000, scale=0.05)
        ratio = (high.average_throughput / low.average_throughput
                 if low.average_throughput else float("nan"))
        notes = ""
        view_changes = high.chain_stats.get("view_changes", 0)
        if view_changes:
            notes = f"{view_changes:.0f} view changes (round-change cascade)"
        elif ratio > 1.05:
            notes = "throughput rises under overload"
        print(f"{chain:12s} {configuration:12s}"
              f" {low.average_throughput:10.0f}"
              f" {high.average_throughput:10.0f}"
              f" {ratio:8.2f}"
              f"  {low.average_latency:8.1f} {high.average_latency:8.1f}"
              f"  {notes}")


if __name__ == "__main__":
    main()
