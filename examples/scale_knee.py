#!/usr/bin/env python3
"""Find each chain's population knee: where millions of users outrun it.

Reproduces: no single figure — it exercises the aggregate-population
layer (docs/SCALE.md) the classic per-client harness cannot reach: the
paper's testbed tops out at hundreds of client threads (§5.1), while a
real deployment question is "how many *users* can this chain carry?".

Two chains with opposite capacity profiles run the same population
ladder — 100 thousand, 1 million and 5 million users, each user
averaging one transfer every ~8 minutes (0.002 TPS) — and the knee
table reports, per population size, the offered load, the delivered
throughput, the commit ratio, and which subsystem binds first
(admission, mempool, consensus or memory):

* **quorum** (IBFT, unbounded pool) keeps a clean commit ratio until
  consensus throughput saturates, then the backlog grows;
* **ethereum** (PoW-style model, small blocks) hits its knee an order
  of magnitude earlier.

Deterministic: every number reproduces byte-for-byte at a fixed seed
and scale, at any sweep worker count. The committed six-chain version
of this table lives in EXPERIMENTS.md §Population scale; docs/SCALE.md
documents the regeneration command.
"""

from __future__ import annotations

from repro import run_population
from repro.analysis.summary import format_table, knee_table

CHAINS = ("quorum", "ethereum")
POPULATIONS = (100_000, 1_000_000, 5_000_000)

#: one transfer per user every ~8 minutes — a busy consumer app
RATE_PER_USER = 0.002
DURATION = 30.0
SCALE = 0.1
SEED = 1


def knee_for(chain: str) -> list:
    """The chain's knee-table rows over the population ladder."""
    results = {}
    for users in POPULATIONS:
        results[users] = run_population(
            chain, "testnet", users=users, rate_per_user=RATE_PER_USER,
            duration=DURATION, cohort=1_000, scale=SCALE, seed=SEED)
    return knee_table(results)


def main() -> None:
    for chain in CHAINS:
        rows = knee_for(chain)
        print(f"\n-- {chain}: population ladder at"
              f" {RATE_PER_USER:g} TPS/user (scale {SCALE:g}) --")
        print(format_table(rows))
        knees = [row for row in rows if row["knee"]]
        if knees:
            knee = knees[0]
            print(f"knee: {knee['users']:,} users"
                  f" ({knee['offered_load_tps']:,.0f} TPS offered)"
                  f" — {knee['binding']} binds")
        else:
            print(f"no knee up to {rows[-1]['users']:,} users"
                  " — raise the ladder")


if __name__ == "__main__":
    main()
