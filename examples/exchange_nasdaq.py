#!/usr/bin/env python3
"""Exchange DApp under the NASDAQ opening bursts (§3 / §6.5).

Reproduces: **Figure 6** (availability CDFs), two-chain cut; the full
six-chain figure is ``benchmarks/test_fig6_availability_cdf.py`` and the
measured plateaus are tabulated in ``EXPERIMENTS.md`` §Figure 6.

Replays the per-stock opening workloads — Google's 800-transaction burst
up to Apple's 10,000-transaction burst — against two chains with opposite
mempool philosophies:

* Quorum's IBFT "was historically designed to never drop a client
  request": it absorbs the whole burst and commits everything;
* Diem caps its mempool (100 transactions per signer, bounded total):
  it sheds part of the peak but stays responsive.

This is the availability experiment behind Figure 6, shown as latency CDFs.
"""

from __future__ import annotations

from repro import run_trace
from repro.analysis import cdf_points
from repro.workloads import stock_trace

CHAINS = ("quorum", "diem")
STOCKS = ("google", "microsoft", "apple")


def main() -> None:
    for stock in STOCKS:
        trace = stock_trace(stock)
        print(f"\n=== {stock.capitalize()} opening burst "
              f"(peak {trace.peak_tps:.0f} TPS) on the consortium ===")
        for chain in CHAINS:
            result = run_trace(chain, "consortium", trace,
                               accounts=2_000, scale=0.5, drain=300)
            committed = sum(1 for r in result.records if r.committed)
            print(f"\n{chain}: committed {committed}/{result.submitted}"
                  f" ({100 * committed / result.submitted:.1f}%),"
                  f" avg latency {result.average_latency:.1f}s,"
                  f" drops {result.abort_reasons() or 'none'}")
            print("latency CDF:")
            for point in cdf_points(result, max_points=6):
                bar = "#" * int(40 * point["fraction"])
                print(f"  <= {point['latency_s']:6.1f}s"
                      f" {100 * point['fraction']:5.1f}% {bar}")


if __name__ == "__main__":
    main()
