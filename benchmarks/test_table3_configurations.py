"""Table 3 — deployment configurations and the inter-region network.

Left side: the five configurations (nodes, hardware, regions). Right side:
an iperf3-style measurement through the simulated network, which must
return the RTT/bandwidth values the paper measured.
"""

from __future__ import annotations

import pytest

from repro.common.rng import RngFactory
from repro.sim.deployment import CONFIGURATIONS
from repro.sim.engine import Engine
from repro.sim.network import (
    REGIONS,
    Endpoint,
    Network,
    bandwidth_between,
    rtt_between,
)


def test_table3_configurations(benchmark):
    rows = benchmark.pedantic(
        lambda: [{
            "configuration": config.name,
            "nodes": config.node_count,
            "vcpus": config.instance_type.vcpus,
            "memory_gib": config.instance_type.memory // 1024**3,
            "regions": len(set(config.regions)),
        } for config in CONFIGURATIONS.values()],
        rounds=1, iterations=1)
    print("\n=== Table 3 (left): configurations ===")
    for row in rows:
        print(row)
    by_name = {row["configuration"]: row for row in rows}
    assert by_name["datacenter"] == {"configuration": "datacenter",
                                     "nodes": 10, "vcpus": 36,
                                     "memory_gib": 72, "regions": 1}
    assert by_name["testnet"]["vcpus"] == 4
    assert by_name["community"]["nodes"] == 200
    assert by_name["consortium"] == {"configuration": "consortium",
                                     "nodes": 200, "vcpus": 8,
                                     "memory_gib": 16, "regions": 10}


def _iperf(src_region: str, dst_region: str) -> dict:
    """Measure one region pair through the event-driven network."""
    engine = Engine()
    net = Network(engine, RngFactory(1), jitter_cv=0.0)
    src = Endpoint("iperf-src", src_region)
    dst = Endpoint("iperf-dst", dst_region)
    # RTT probe: tiny payload there and back
    done = {}
    net.send(src, dst, 1,
             lambda: net.send(dst, src, 1,
                              lambda: done.setdefault("rtt", engine.now)))
    engine.run()
    # bandwidth probe: 10 MB bulk transfer
    engine2 = Engine()
    net2 = Network(engine2, RngFactory(1), jitter_cv=0.0)
    size = 10_000_000
    net2.send(src, dst, size, lambda: done.setdefault("bulk", engine2.now))
    engine2.run()
    transfer_time = done["bulk"] - rtt_between(src_region, dst_region) / 2
    return {
        "pair": f"{src_region}->{dst_region}",
        "rtt_ms": done["rtt"] * 1000,
        "bandwidth_mbps": size * 8 / transfer_time / 1e6,
    }


def test_table3_network_measurements(benchmark):
    pairs = [("ohio", "tokyo"), ("sydney", "cape-town"),
             ("stockholm", "milan"), ("mumbai", "bahrain")]
    rows = benchmark.pedantic(
        lambda: [_iperf(a, b) for a, b in pairs], rounds=1, iterations=1)
    print("\n=== Table 3 (right): measured network ===")
    for row in rows:
        print({k: round(v, 2) if isinstance(v, float) else v
               for k, v in row.items()})
    for (a, b), row in zip(pairs, rows):
        assert row["rtt_ms"] == pytest.approx(
            rtt_between(a, b) * 1000, rel=0.02)
        assert row["bandwidth_mbps"] == pytest.approx(
            bandwidth_between(a, b) * 8 / 1e6, rel=0.05)


def test_table3_rtt_extremes(benchmark):
    """Sydney<->Cape Town is the slowest path (410 ms) and
    Milan<->Stockholm the fastest inter-region one (30 ms) — as in the
    measured matrix."""
    def extremes():
        values = {(a, b): rtt_between(a, b)
                  for a in REGIONS for b in REGIONS if a < b}
        slowest = max(values, key=values.get)
        fastest = min(values, key=values.get)
        return slowest, fastest

    slowest, fastest = benchmark.pedantic(extremes, rounds=1, iterations=1)
    assert set(slowest) == {"sydney", "cape-town"}
    assert rtt_between(*slowest) == pytest.approx(0.4104)
    assert set(fastest) == {"milan", "stockholm"}
    assert rtt_between(*fastest) == pytest.approx(0.0302)
