"""Figure 2 — the five realistic DApps on the consortium configuration.

"we deploy each DApp of §3 in the consortium deployment configuration (200
machines with 8 vCPUs and 16 GiB of memory spread over 10 countries) and
generate the workload associated with each of these DApps" (§6.1). The
figure reports, per DApp column and per chain: average throughput, average
latency and the proportion of committed transactions.

Shape targets:
* none of the chains copes with any of the realistic workloads — the
  headline result ("blockchains ... are not capable of handling the demand
  of the selected centralized applications");
* YouTube: commit proportion below ~1 % for every chain;
* Uber (852 TPS avg) and FIFA (3,483 TPS avg): only Quorum maintains a
  substantial throughput while the others stay low (<170 TPS in the paper);
* Dota 2: nobody exceeds a small fraction of the 13 kTPS demand;
* NASDAQ (168 TPS average): Avalanche and Quorum commit the most;
* no chain commits with an average latency under ~arrival-to-finality
  floor of several seconds ("no blockchains commit with a latency lower
  than 27 seconds" across DApps — we assert a conservative 5 s floor on
  the best case since scaled granularity softens queueing).

The heavy traces (Dota 2 ~13 kTPS, YouTube ~39 kTPS) run at a small scale
factor; see DESIGN.md for why the shape survives the transform.
"""

from __future__ import annotations

import pytest

from repro.common.errors import StateLimitError
from repro.workloads import dapp_suite

from conftest import ALL_CHAINS, bench_scale, print_figure, run_chain_trace

SCALE = 0.02
DAPPS = ("exchange", "gaming", "web", "mobility", "video")


@pytest.fixture(scope="module")
def fig2_results():
    scale = bench_scale(SCALE)
    suite = dapp_suite()
    results = {}
    for dapp in DAPPS:
        trace = suite[dapp]
        for chain in ALL_CHAINS:
            try:
                results[(chain, dapp)] = run_chain_trace(
                    chain, "consortium", trace, scale=scale, drain=300.0)
            except StateLimitError:
                # Algorand cannot even deploy the video DApp (§5.2):
                # "the absence of a bar" in the figure
                results[(chain, dapp)] = None
    return results


def _commit_fraction(result):
    if result is None or result.submitted == 0:
        return 0.0
    return sum(1 for r in result.records if r.committed) / result.submitted


def test_fig2_grid(benchmark, fig2_results):
    results = benchmark.pedantic(lambda: fig2_results, rounds=1, iterations=1)
    for dapp in DAPPS:
        print_figure(f"Figure 2 — {dapp} DApp on consortium",
                     {chain: results[(chain, dapp)] for chain in ALL_CHAINS
                      if results[(chain, dapp)] is not None})
        missing = [chain for chain in ALL_CHAINS
                   if results[(chain, dapp)] is None]
        for chain in missing:
            print(f"  {chain}: (no bar — DApp unimplementable)")


def test_fig2_nobody_meets_the_demand(benchmark, fig2_results):
    """The headline: every chain falls short of every demanding workload."""
    checked = benchmark.pedantic(
        lambda: [(chain, dapp, fig2_results[(chain, dapp)])
                 for chain in ALL_CHAINS
                 for dapp in ("gaming", "web", "video")
                 if fig2_results[(chain, dapp)] is not None],
        rounds=1, iterations=1)
    for chain, dapp, result in checked:
        demand = result.average_load
        assert result.average_throughput < 0.8 * demand, (chain, dapp)


def test_fig2_youtube_below_one_percent(benchmark, fig2_results):
    fractions = benchmark.pedantic(
        lambda: {chain: _commit_fraction(fig2_results[(chain, "video")])
                 for chain in ALL_CHAINS},
        rounds=1, iterations=1)
    for chain, fraction in fractions.items():
        assert fraction < 0.03, (chain, fraction)


def test_fig2_quorum_leads_on_uber_and_fifa(benchmark, fig2_results):
    rows = benchmark.pedantic(
        lambda: {dapp: {chain: fig2_results[(chain, dapp)].average_throughput
                        for chain in ALL_CHAINS}
                 for dapp in ("mobility", "web")},
        rounds=1, iterations=1)
    for dapp, tputs in rows.items():
        assert tputs["quorum"] == max(tputs.values()), dapp
        # the paper: the other blockchains stay below 170 TPS; the scaled
        # reproduction keeps them well below Quorum and in the same band
        for chain, tput in tputs.items():
            if chain != "quorum":
                assert tput < 260, (dapp, chain, tput)


def test_fig2_mobility_unrunnable_on_restricted_vms(benchmark, fig2_results):
    failures = benchmark.pedantic(
        lambda: {chain: fig2_results[(chain, "mobility")]
                 for chain in ("algorand", "diem", "solana")},
        rounds=1, iterations=1)
    for chain, result in failures.items():
        assert result.execution_failed(), chain


def test_fig2_video_unimplementable_on_algorand(benchmark, fig2_results):
    """The AVM cannot even deploy DecentralizedYoutube (§5.2): the column
    is empty ('the absence of a bar')."""
    def observe():
        from repro.common.errors import StateLimitError
        from repro.core.runner import run_trace
        from repro.workloads import youtube_trace
        try:
            run_trace("algorand", "consortium", youtube_trace(),
                      accounts=10, scale=0.02, drain=1.0)
        except StateLimitError as exc:
            return str(exc)
        return None

    error = benchmark.pedantic(observe, rounds=1, iterations=1)
    assert error is not None and "128-byte" in error


def test_fig2_exchange_best_committers(benchmark, fig2_results):
    fractions = benchmark.pedantic(
        lambda: {chain: _commit_fraction(fig2_results[(chain, "exchange")])
                 for chain in ALL_CHAINS},
        rounds=1, iterations=1)
    # paper: Avalanche and Quorum commit > 86 % of the NASDAQ workload
    top_two = sorted(fractions, key=fractions.get, reverse=True)[:2]
    assert set(top_two) <= {"avalanche", "quorum", "solana"}
    assert fractions["quorum"] > 0.8


def test_fig2_latency_floor(benchmark, fig2_results):
    """Across DApps, commits arrive with multi-second latencies."""
    latencies = benchmark.pedantic(
        lambda: [(chain, dapp, fig2_results[(chain, dapp)].average_latency)
                 for chain in ALL_CHAINS for dapp in DAPPS
                 if fig2_results[(chain, dapp)] is not None
                 and fig2_results[(chain, dapp)].latencies(None).size > 0],
        rounds=1, iterations=1)
    demanding = [lat for chain, dapp, lat in latencies
                 if dapp in ("gaming", "video")]
    assert demanding and min(demanding) > 5.0
