"""Figure 5 — universality: the Mobility DApp on the consortium.

"we use the Mobility service DApp, which is CPU intensive and generates a
810-900 TPS workload during 120 seconds ... a cross indicates that the
blockchain cannot run the Mobility Service DApp" (§6.4).

Shape targets:
* Algorand, Diem and Solana cannot execute it — the client reports
  "budget exceeded" (hard-coded VM limits, not liftable by paying more);
* the three geth-EVM chains (Avalanche, Ethereum, Quorum) execute it;
* Quorum posts the highest throughput; Avalanche and Ethereum stay low.
"""

from __future__ import annotations

import pytest

from repro.workloads import uber_trace

from conftest import ALL_CHAINS, bench_scale, print_figure, run_chain_trace

SCALE = 0.05
GETH_CHAINS = ("avalanche", "ethereum", "quorum")
RESTRICTED_CHAINS = ("algorand", "diem", "solana")


@pytest.fixture(scope="module")
def fig5_results():
    scale = bench_scale(SCALE)
    trace = uber_trace()
    return {chain: run_chain_trace(chain, "consortium", trace, scale=scale)
            for chain in ALL_CHAINS}


def test_fig5_rows(benchmark, fig5_results):
    results = benchmark.pedantic(lambda: fig5_results, rounds=1, iterations=1)
    print_figure("Figure 5 — Mobility/Uber DApp on consortium", results)
    for chain in RESTRICTED_CHAINS:
        if results[chain].execution_failed():
            print(f"  {chain}: X (cannot run the Mobility Service DApp)")


def test_fig5_restricted_vms_report_budget_exceeded(benchmark, fig5_results):
    failures = benchmark.pedantic(
        lambda: {chain: fig5_results[chain] for chain in RESTRICTED_CHAINS},
        rounds=1, iterations=1)
    for chain, result in failures.items():
        assert result.execution_failed(), chain
        assert result.abort_reasons().get("budget_exceeded", 0) > 0, chain
        assert result.average_throughput == 0, chain


def test_fig5_geth_chains_execute(benchmark, fig5_results):
    runs = benchmark.pedantic(
        lambda: {chain: fig5_results[chain] for chain in GETH_CHAINS},
        rounds=1, iterations=1)
    for chain, result in runs.items():
        assert not result.execution_failed(), chain
        assert result.average_throughput > 0, chain


def test_fig5_quorum_wins(benchmark, fig5_results):
    quorum = benchmark.pedantic(lambda: fig5_results["quorum"],
                                rounds=1, iterations=1)
    # paper: Quorum 622 TPS, "close to the average workload"; the others
    # "lower than 169 TPS"
    assert quorum.average_throughput > 200
    for chain in ("avalanche", "ethereum"):
        other = fig5_results[chain]
        assert other.average_throughput < 169
        assert quorum.average_throughput > 3 * other.average_throughput
