"""Ablation benchmarks for the design choices §6 attributes results to.

Each ablation flips exactly one mechanism and checks that the evaluated
effect appears/disappears, grounding the paper's causal claims:

* leader-based deterministic BFT vs graceful-degradation consensus under
  constant overload (§6.3);
* bounded vs unbounded mempool (the §6.5 robustness/availability
  trade-off between Diem and Quorum);
* hard VM budget vs unbounded gas (§6.4 universality);
* block-period throttling (the §6.2 Avalanche conjecture);
* confirmation depth (Solana's 30 confirmations, §5.2);
* polling vs blocking commit detection (the Algorand-DIABLO workaround,
  §5.2).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.blockchains.base import BlockchainNetwork, ExperimentScale
from repro.blockchains.registry import chain_params
from repro.chain.mempool import MempoolPolicy
from repro.consensus.models import DAGPerf, PoHPerf, WanProfile
from repro.core.interface import SimConnector
from repro.core.primary import Primary
from repro.core.runner import run_trace
from repro.sim.deployment import get_configuration
from repro.sim.engine import Engine
from repro.vm.base import VirtualMachine
from repro.vm.program import VMCapabilities
from repro.workloads import constant_transfer_trace, stock_trace

from conftest import bench_scale

SCALE = 0.05


def run_with_params(params, configuration, trace, scale, seed=1,
                    accounts=500, drain=240.0):
    """run_trace, but with hand-modified ChainParams."""
    primary = Primary(params.name, configuration, scale=scale, seed=seed,
                      params=params)
    return primary.run(trace.spec(accounts=accounts), trace.name, drain=drain)


def test_ablation_mempool_policy(benchmark):
    """Diem's bounded pool is what keeps it alive under overload — and what
    drops burst transactions. Lifting the bound turns Diem Quorum-shaped:
    more of the burst survives, but the pool balloons."""
    scale = bench_scale(SCALE)

    def experiment():
        config = "datacenter"
        trace = stock_trace("apple")  # the 10k-tx burst
        bounded = run_trace("diem", config, trace, accounts=500,
                            scale=scale, drain=300.0)
        unbounded_params = replace(
            chain_params("diem", get_configuration(config)),
            mempool_policy=MempoolPolicy(capacity=None,
                                         per_sender_quota=None))
        unbounded = run_with_params(unbounded_params, config, trace, scale,
                                    drain=300.0)
        return bounded, unbounded

    bounded, unbounded = benchmark.pedantic(experiment, rounds=1, iterations=1)
    dropped_bounded = bounded.abort_reasons().get("MempoolFullError", 0) \
        + bounded.abort_reasons().get("SenderQuotaError", 0)
    dropped_unbounded = unbounded.abort_reasons().get("MempoolFullError", 0)
    print(f"\nbounded pool dropped {dropped_bounded},"
          f" unbounded dropped {dropped_unbounded}")
    assert dropped_bounded > 0
    assert dropped_unbounded == 0
    assert unbounded.commit_ratio > bounded.commit_ratio


def test_ablation_consensus_overload_class(benchmark):
    """Under 10x overload the leader-based deterministic BFT chain loses a
    far larger fraction of its 1x throughput than the probabilistic one —
    the §6.3/§6.6 class distinction."""
    scale = bench_scale(SCALE)

    def experiment():
        ratios = {}
        for chain, config in (("quorum", "datacenter"),
                              ("algorand", "testnet")):
            low = run_trace(chain, config, constant_transfer_trace(1_000),
                            accounts=500, scale=scale)
            high = run_trace(chain, config, constant_transfer_trace(10_000),
                             accounts=500, scale=scale)
            ratios[chain] = (high.average_throughput
                             / max(1e-9, low.average_throughput))
        return ratios

    ratios = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print(f"\nthroughput retention under 10x: {ratios}")
    assert ratios["quorum"] < 0.25          # collapses
    assert ratios["algorand"] > 0.5         # degrades gracefully
    assert ratios["algorand"] > 3 * ratios["quorum"]


def test_ablation_hard_budget(benchmark):
    """Lifting the MoveVM's hard budget makes the Mobility DApp runnable on
    Diem — the budget, not the workload, is what Fig. 5's X measures."""
    from repro.chain.state import WorldState
    from repro.chain.transaction import invoke
    from repro.contracts import make_uber_contract
    from repro.vm.machines import MOVE_VM_CAPS

    def experiment():
        outcomes = {}
        for label, caps in (
                ("stock-movevm", MOVE_VM_CAPS),
                ("unbounded-movevm", replace(MOVE_VM_CAPS, hard_budget=None))):
            vm = VirtualMachine(caps)
            state = WorldState()
            vm.deploy(state, make_uber_contract())
            receipt = vm.execute(state, invoke(
                "a", "ContractUber", "checkDistance", (1, 1),
                gas_limit=50_000_000))
            outcomes[label] = receipt.status.value
        return outcomes

    outcomes = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print(f"\n{outcomes}")
    assert outcomes["stock-movevm"] == "budget_exceeded"
    assert outcomes["unbounded-movevm"] == "success"


def test_ablation_block_period(benchmark):
    """Halving Avalanche's 1.9 s block period roughly doubles its committed
    throughput — its ceiling is the period x gas limit, not the hardware
    (the §6.2 throttling conjecture)."""
    scale = bench_scale(SCALE)

    def experiment():
        config = "datacenter"
        trace = constant_transfer_trace(1_000)
        stock = run_trace("avalanche", config, trace, accounts=500,
                          scale=scale)
        params = chain_params("avalanche", get_configuration(config))
        fast_params = replace(
            params,
            perf_model=lambda profile: DAGPerf(
                profile, beta=12, block_period=0.95,
                overload_gamma=-0.06, packing_cap=1.8))
        fast = run_with_params(fast_params, config, trace, scale)
        return stock, fast

    stock, fast = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print(f"\nperiod 1.9s -> {stock.average_throughput:.0f} TPS,"
          f" period 0.95s -> {fast.average_throughput:.0f} TPS")
    assert fast.average_throughput > 1.6 * stock.average_throughput


def test_ablation_confirmation_depth(benchmark):
    """Solana's 12 s latency is almost entirely the 30-confirmation rule:
    at depth 1 the same chain answers in about a second."""
    scale = bench_scale(SCALE)

    def experiment():
        config = "testnet"
        trace = constant_transfer_trace(500, 30)
        stock = run_trace("solana", config, trace, accounts=500, scale=scale)
        shallow_params = replace(
            chain_params("solana", get_configuration(config)),
            confirmation_depth=1)
        shallow = run_with_params(shallow_params, config, trace, scale)
        return stock, shallow

    stock, shallow = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print(f"\n30 confirmations -> {stock.average_latency:.1f}s,"
          f" 1 confirmation -> {shallow.average_latency:.1f}s")
    assert stock.average_latency > 12.0
    assert shallow.average_latency < 3.0


def test_ablation_commit_detection_api(benchmark):
    """Blocking per-transaction commit detection adds client-visible
    latency versus block polling — why the authors switched Algorand to
    polling ('improved significantly Algorand's performance', §5.2)."""
    scale = bench_scale(SCALE)

    def experiment():
        config = "testnet"
        trace = constant_transfer_trace(500, 30)
        polling = run_trace("algorand", config, trace, accounts=500,
                            scale=scale)
        blocking_params = replace(
            chain_params("algorand", get_configuration(config)),
            commit_api="blocking", poll_interval=4.0)
        blocking = run_with_params(blocking_params, config, trace, scale)
        return polling, blocking

    polling, blocking = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print(f"\npolling latency {polling.average_latency:.1f}s,"
          f" blocking latency {blocking.average_latency:.1f}s")
    assert blocking.average_latency > polling.average_latency + 2.0
