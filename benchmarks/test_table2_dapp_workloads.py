"""Table 2 — the DApp workload suite and its trace envelopes.

Regenerates the summary row of each of the five DApps (duration, average
and peak request rates) and checks the published figures: GAFAM peaking
near 19.8 kTPS over 3 minutes, Dota 2 at ~13 kTPS for 276 s, FIFA between
1416 and 5305 TPS for 176 s, Uber at 810-900 TPS, YouTube at ~38.8 kTPS.
"""

from __future__ import annotations

import pytest

from repro.analysis.summary import format_table
from repro.workloads import dapp_suite, expected_peak_tps


@pytest.fixture(scope="module")
def suite():
    return dapp_suite()


def test_table2_workload_summaries(benchmark, suite):
    summaries = benchmark.pedantic(
        lambda: {name: trace.summary() for name, trace in suite.items()},
        rounds=1, iterations=1)
    print("\n=== Table 2: DApp workloads ===")
    print(format_table(list(summaries.values())))

    assert set(summaries) == {"exchange", "gaming", "web", "mobility",
                              "video"}

    exchange = summaries["exchange"]
    assert exchange["duration_s"] == pytest.approx(180, abs=2)
    assert exchange["peak_tps"] == pytest.approx(expected_peak_tps(), rel=0.02)

    gaming = summaries["gaming"]
    assert gaming["duration_s"] == pytest.approx(276, abs=1)
    assert gaming["average_tps"] == pytest.approx(13_300, rel=0.02)

    web = summaries["web"]
    assert web["duration_s"] == pytest.approx(176, abs=1)
    assert 1_400 <= web["peak_tps"] <= 5_400

    mobility = summaries["mobility"]
    assert mobility["duration_s"] == pytest.approx(120, abs=1)
    assert 810 <= mobility["average_tps"] <= 900

    video = summaries["video"]
    assert video["average_tps"] == pytest.approx(38_761, rel=0.06)


def test_table2_demand_ordering(benchmark, suite):
    """YouTube is the most demanding workload, NASDAQ's average the lowest
    (the paper's Fig. 2 header: 168 TPS average for the Exchange)."""
    averages = benchmark.pedantic(
        lambda: {name: trace.average_tps for name, trace in suite.items()},
        rounds=1, iterations=1)
    assert averages["video"] == max(averages.values())
    # the exchange's *average* is low because the opening burst subsides
    assert averages["exchange"] < averages["web"]
    assert averages["mobility"] < averages["web"]
