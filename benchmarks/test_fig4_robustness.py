"""Figure 4 — robustness: 1,000 vs 10,000 TPS in each chain's best config.

"we configured DIABLO to send native transactions ... at a constant rate
of 10,000 TPS, which is 10x higher than the sending rate in the deployment
challenge" (§6.3).

Shape targets (paper text):
* Diem's throughput divides by ~10; Quorum's drops to ~0 (the two
  deterministic leader-based BFT chains are the most affected);
* Algorand divides by ~1.45 with latency ~x2.43; Solana divides by ~1.94;
* Avalanche's throughput is *not* hurt — it rises (x1.38 in the paper);
* Ethereum commits a negligible fraction (0.09 %).
"""

from __future__ import annotations

import pytest

from repro.workloads import constant_transfer_trace

from conftest import (
    ALL_CHAINS,
    BEST_CONFIGURATION,
    bench_scale,
    print_figure,
    run_chain_trace,
)

SCALE = 0.05


@pytest.fixture(scope="module")
def fig4_results():
    scale = bench_scale(SCALE)
    results = {}
    for rate in (1_000, 10_000):
        trace = constant_transfer_trace(rate)
        for chain in ALL_CHAINS:
            results[(chain, rate)] = run_chain_trace(
                chain, BEST_CONFIGURATION[chain], trace, scale=scale)
    return results


def _ratio(results, chain):
    low = results[(chain, 1_000)].average_throughput
    high = results[(chain, 10_000)].average_throughput
    return low, high, (low / high if high > 0 else float("inf"))


def test_fig4_rows(benchmark, fig4_results):
    results = benchmark.pedantic(lambda: fig4_results, rounds=1, iterations=1)
    for rate in (1_000, 10_000):
        print_figure(f"Figure 4 — constant {rate} TPS (best config/chain)",
                     {chain: results[(chain, rate)] for chain in ALL_CHAINS})


def test_fig4_leader_bft_chains_collapse(benchmark, fig4_results):
    diem_low, diem_high, diem_ratio = benchmark.pedantic(
        lambda: _ratio(fig4_results, "diem"), rounds=1, iterations=1)
    # Diem: divided by ~10
    assert 5 <= diem_ratio <= 20, f"Diem ratio {diem_ratio:.1f}"
    # Quorum: drops to (near) zero
    quorum_low, quorum_high, _ = _ratio(fig4_results, "quorum")
    assert quorum_high < 0.2 * quorum_low
    assert quorum_high < 250
    # the collapse came with round changes (the IBFT cascade)
    assert fig4_results[("quorum", 10_000)].chain_stats["view_changes"] > 0


def test_fig4_probabilistic_chains_degrade_gracefully(benchmark,
                                                      fig4_results):
    algorand_low, algorand_high, algorand_ratio = benchmark.pedantic(
        lambda: _ratio(fig4_results, "algorand"), rounds=1, iterations=1)
    assert 1.1 <= algorand_ratio <= 2.2, f"Algorand /{algorand_ratio:.2f}"
    solana_low, solana_high, solana_ratio = _ratio(fig4_results, "solana")
    assert 1.4 <= solana_ratio <= 3.0, f"Solana /{solana_ratio:.2f}"
    # they do NOT collapse: both keep committing hundreds of TPS
    assert algorand_high > 300
    assert solana_high > 300


def test_fig4_latency_penalties(benchmark, fig4_results):
    penalties = benchmark.pedantic(
        lambda: {chain: (fig4_results[(chain, 10_000)].average_latency
                         / fig4_results[(chain, 1_000)].average_latency)
                 for chain in ("algorand", "solana")},
        rounds=1, iterations=1)
    # Algorand x2.43, Solana x4 in the paper — assert the penalty exists
    # and stays within the same ballpark
    assert 1.5 <= penalties["algorand"] <= 4.0
    assert 1.3 <= penalties["solana"] <= 6.0


def test_fig4_avalanche_throughput_rises(benchmark, fig4_results):
    low, high, _ = benchmark.pedantic(
        lambda: _ratio(fig4_results, "avalanche"), rounds=1, iterations=1)
    # "its throughput is multiplied by 1.38" — overload packs blocks fuller
    assert high > low * 1.05
    assert high < low * 1.8


def test_fig4_ethereum_negligible(benchmark, fig4_results):
    result = benchmark.pedantic(
        lambda: fig4_results[("ethereum", 10_000)], rounds=1, iterations=1)
    committed = sum(1 for r in result.records if r.committed)
    # 0.09 % in the paper; a fraction of a percent here
    assert committed / result.submitted < 0.01
