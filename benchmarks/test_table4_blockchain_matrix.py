"""Table 4 — characteristics of the six evaluated blockchains."""

from __future__ import annotations

import pytest

from repro.analysis.summary import format_table
from repro.blockchains.registry import characteristics_table


def test_table4_blockchain_characteristics(benchmark):
    rows = benchmark.pedantic(characteristics_table, rounds=1, iterations=1)
    print("\n=== Table 4: evaluated blockchains ===")
    print(format_table(rows))
    by_name = {row["blockchain"]: row for row in rows}

    # the exact matrix of the paper's Table 4
    expected = {
        "algorand": ("probabilistic", "BA*", "avm", "PyTeal"),
        "avalanche": ("probabilistic", "Avalanche", "geth-evm", "Solidity"),
        "diem": ("deterministic", "HotStuff", "move-vm", "Move"),
        "quorum": ("deterministic", "IBFT", "geth-evm", "Solidity"),
        "ethereum": ("eventual", "Clique", "geth-evm", "Solidity"),
        "solana": ("eventual", "TowerBFT", "ebpf", "Solidity"),
    }
    assert len(rows) == 6
    for chain, (props, consensus, vm, language) in expected.items():
        row = by_name[chain]
        assert row["properties"] == props, chain
        assert row["consensus"] == consensus, chain
        assert row["vm"] == vm, chain
        assert row["dapp_language"] == language, chain


def test_table4_property_classes(benchmark):
    """Two deterministic chains (the leader-based BFT pair), two
    probabilistic, two eventually-consistent — the classes §6 groups
    results by."""
    rows = benchmark.pedantic(characteristics_table, rounds=1, iterations=1)
    classes = {}
    for row in rows:
        classes.setdefault(row["properties"], []).append(row["blockchain"])
    assert sorted(classes["deterministic"]) == ["diem", "quorum"]
    assert sorted(classes["probabilistic"]) == ["algorand", "avalanche"]
    assert sorted(classes["eventual"]) == ["ethereum", "solana"]
