"""Figure 3 — scalability: 1,000 TPS native transfers across configurations.

"we use DIABLO to emulate clients sending native transactions to the
blockchain during 120 seconds at a constant rate of 1000 TPS" on
datacenter, testnet, devnet and community (§6.2).

Shape targets (EXPERIMENTS.md):
* only Solana stays above 800 TPS with latency below 21 s in *all four*
  configurations;
* Diem posts the best throughput (> 982 TPS) and the lowest latency
  (<= 2 s) but only in the single-datacenter configurations;
* Quorum delivers a standout partial result in community (~499 TPS, 13 s);
* Algorand exceeds 820 TPS on the geo-distributed devnet (885 best);
* Avalanche and Ethereum run at low throughput regardless of hardware;
* datacenter and testnet show "no significant difference".
"""

from __future__ import annotations

import pytest

from repro.workloads import deployment_challenge_trace

from conftest import ALL_CHAINS, bench_scale, print_figure, run_chain_trace

CONFIGURATIONS = ("datacenter", "testnet", "devnet", "community")
SCALE = 0.05


@pytest.fixture(scope="module")
def fig3_results():
    scale = bench_scale(SCALE)
    trace = deployment_challenge_trace()
    results = {}
    for configuration in CONFIGURATIONS:
        for chain in ALL_CHAINS:
            results[(chain, configuration)] = run_chain_trace(
                chain, configuration, trace, scale=scale)
    return results


def test_fig3_matrix(benchmark, fig3_results):
    results = benchmark.pedantic(lambda: fig3_results, rounds=1, iterations=1)
    for configuration in CONFIGURATIONS:
        print_figure(
            f"Figure 3 — 1,000 TPS on {configuration}",
            {chain: results[(chain, configuration)] for chain in ALL_CHAINS})


def test_fig3_solana_handles_every_configuration(benchmark, fig3_results):
    checked = benchmark.pedantic(
        lambda: {c: fig3_results[("solana", c)] for c in CONFIGURATIONS},
        rounds=1, iterations=1)
    for configuration, result in checked.items():
        assert result.average_throughput > 800, configuration
        assert result.average_latency < 21, configuration


def test_fig3_diem_wins_only_locally(benchmark, fig3_results):
    diem = benchmark.pedantic(
        lambda: {c: fig3_results[("diem", c)] for c in CONFIGURATIONS},
        rounds=1, iterations=1)
    for local in ("datacenter", "testnet"):
        assert diem[local].average_throughput > 982
        assert diem[local].average_latency <= 2.0
        # best-in-class locally
        others = [fig3_results[(chain, local)].average_throughput
                  for chain in ALL_CHAINS if chain != "diem"]
        assert diem[local].average_throughput >= max(others) * 0.99
    for geo in ("devnet", "community"):
        assert diem[geo].average_throughput < 820  # "fails at high RTT"


def test_fig3_quorum_community_standout(benchmark, fig3_results):
    result = benchmark.pedantic(
        lambda: fig3_results[("quorum", "community")], rounds=1, iterations=1)
    # ~499 TPS at 13 s in the paper; accept the band around it
    assert 250 <= result.average_throughput <= 700
    assert 5 <= result.average_latency <= 40
    # still the best chain in community apart from Solana
    for chain in ("algorand", "avalanche", "diem", "ethereum"):
        other = fig3_results[(chain, "community")]
        if chain == "algorand":
            continue  # Algorand's committee scales too (commits ~its cap)
        assert result.average_throughput > other.average_throughput, chain


def test_fig3_algorand_devnet(benchmark, fig3_results):
    result = benchmark.pedantic(
        lambda: fig3_results[("algorand", "devnet")], rounds=1, iterations=1)
    assert result.average_throughput > 820


def test_fig3_throttled_chains(benchmark, fig3_results):
    checked = benchmark.pedantic(
        lambda: [(chain, configuration,
                  fig3_results[(chain, configuration)].average_throughput)
                 for chain in ("avalanche", "ethereum")
                 for configuration in CONFIGURATIONS],
        rounds=1, iterations=1)
    for chain, configuration, tput in checked:
        assert tput < 500, (chain, configuration)


def test_fig3_datacenter_vs_testnet_no_significant_difference(
        benchmark, fig3_results):
    deltas = benchmark.pedantic(
        lambda: {chain: (fig3_results[(chain, "datacenter")].average_throughput,
                         fig3_results[(chain, "testnet")].average_throughput)
                 for chain in ALL_CHAINS},
        rounds=1, iterations=1)
    for chain, (dc, tn) in deltas.items():
        if chain == "solana":
            continue  # Solana's intake is explicitly CPU-scaled (§5.2)
        assert dc == pytest.approx(tn, rel=0.25), chain
