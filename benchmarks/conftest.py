"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures:
it runs the corresponding experiment on the simulated chains, prints the
rows/series the paper reports, and asserts the paper's *shape* claims
(who wins, by roughly what factor, where the crossovers fall) as
documented in EXPERIMENTS.md.

Scale: experiments run under the linear scale transform of
``repro.blockchains.base.ExperimentScale`` (see DESIGN.md). Heavier
workloads use smaller factors so the whole suite stays laptop-sized;
``REPRO_BENCH_SCALE`` overrides the default of each experiment.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Optional

import pytest

from repro.analysis.summary import comparison_table, format_table
from repro.core.results import BenchmarkResult
from repro.core.runner import run_trace
from repro.sweep import CellOptions, ResultCache, SweepCell, cell_key, cell_key_fields
from repro.workloads.traces import Trace

ALL_CHAINS = ("algorand", "avalanche", "diem", "ethereum", "quorum", "solana")

#: configuration in which each chain performed best under 1,000 TPS (§6.3
#: deploys each chain "in the configuration it performed best"); see
#: EXPERIMENTS.md for how ties were resolved.
BEST_CONFIGURATION = {
    "algorand": "testnet",
    "avalanche": "datacenter",
    "diem": "datacenter",
    "ethereum": "datacenter",
    "quorum": "datacenter",
    "solana": "community",
}


def bench_scale(default: float) -> float:
    """Experiment scale for a benchmark, overridable via the environment."""
    return float(os.environ.get("REPRO_BENCH_SCALE", default))


#: sweep result cache shared by every benchmark module. Runs land in
#: ``.repro-cache/benchmarks`` keyed by (chain, deployment, parsed spec,
#: seed, scale, code version) — re-running the suite with unchanged
#: sources replays instantly; editing anything under ``src/repro``
#: invalidates every entry. ``REPRO_BENCH_CACHE=0`` disables, any other
#: value relocates the directory.
def _build_cache() -> Optional[ResultCache]:
    setting = os.environ.get("REPRO_BENCH_CACHE", "")
    if setting == "0":
        return None
    if setting:
        return ResultCache(setting)
    return ResultCache(Path(__file__).parent.parent
                       / ".repro-cache" / "benchmarks")


_RESULT_CACHE = _build_cache()


@pytest.fixture(scope="session")
def sweep_cache() -> Optional[ResultCache]:
    """The on-disk result cache the whole benchmark session shares."""
    return _RESULT_CACHE


def run_chain_trace(chain: str, configuration: str, trace: Trace,
                    scale: float, seed: int = 1, accounts: int = 2_000,
                    drain: float = 240.0) -> BenchmarkResult:
    """One benchmark run with the suite's defaults, through the cache."""
    if _RESULT_CACHE is None:
        return run_trace(chain, configuration, trace, accounts=accounts,
                         scale=scale, seed=seed, drain=drain)
    from repro.sim.deployment import get_configuration
    cell = SweepCell(index=0, chain=chain,
                     configuration=get_configuration(configuration),
                     workload=trace.name, trace=trace, seed=seed,
                     scale=scale,
                     options=CellOptions(accounts=accounts, drain=drain))
    key = cell_key(cell)
    cached = _RESULT_CACHE.get(key)
    if cached is not None:
        return BenchmarkResult.from_json(cached)
    result = run_trace(chain, configuration, trace, accounts=accounts,
                       scale=scale, seed=seed, drain=drain)
    _RESULT_CACHE.put(key, cell_key_fields(cell), result.to_json())
    return result


def print_figure(title: str, results: Dict[str, BenchmarkResult]) -> None:
    """Print a figure's rows the way the paper reports them."""
    print(f"\n=== {title} ===")
    rows = comparison_table(results)
    print(format_table(rows))


@pytest.fixture(scope="session")
def results_cache() -> Dict[str, BenchmarkResult]:
    """Session-wide cache so related benchmarks can share expensive runs."""
    return {}
