"""Figure 6 — availability: latency CDFs under NASDAQ load peaks.

"we configured DIABLO to evaluate the blockchains when sending separately
the stock trade workloads of Google, Microsoft and Apple" on the consortium
configuration (§6.5). The CDF of transaction latencies is normalised by
submissions, so drops appear as a plateau below 1.0.

Shape targets:
* only Quorum commits (essentially) all transactions of all three bursts,
  with single-digit-seconds latencies (91 % within 8 s on Apple);
* Diem plateaus around ~75 % on Apple (bounded mempool drops the peak),
  Algorand ~77 %, Solana ~52 %;
* Avalanche is slow but keeps committing (~90 % on Apple, tail beyond
  100 s); Ethereum is the slowest and commits ~64 % of Microsoft;
* the gentle Google burst (800 tx in the first second) commits ~fully on
  every chain.

These runs use the burst traces at full scale (the bursts are small), so
the first-second peaks are exactly the paper's 800 / 4,000 / 10,000
transactions.
"""

from __future__ import annotations

import pytest

from repro.workloads import stock_trace

from conftest import ALL_CHAINS, bench_scale, print_figure, run_chain_trace

SCALE = 1.0
STOCKS = ("google", "microsoft", "apple")


@pytest.fixture(scope="module")
def fig6_results():
    scale = bench_scale(SCALE)
    results = {}
    for stock in STOCKS:
        trace = stock_trace(stock)
        for chain in ALL_CHAINS:
            results[(chain, stock)] = run_chain_trace(
                chain, "consortium", trace, scale=scale, drain=300.0)
    return results


def _commit_fraction(result):
    return sum(1 for r in result.records if r.committed) / result.submitted


def test_fig6_cdfs(benchmark, fig6_results):
    results = benchmark.pedantic(lambda: fig6_results, rounds=1, iterations=1)
    for stock in STOCKS:
        print_figure(f"Figure 6 — {stock.capitalize()} burst (consortium)",
                     {chain: results[(chain, stock)]
                      for chain in ALL_CHAINS})
        for chain in ALL_CHAINS:
            result = results[(chain, stock)]
            latencies, fractions = result.latency_cdf()
            plateau = float(fractions[-1]) if fractions.size else 0.0
            tail = float(latencies[-1]) if latencies.size else float("nan")
            print(f"  {chain:10s} CDF plateau={plateau:5.2f}"
                  f" max latency={tail:7.1f}s")


def test_fig6_first_second_peaks_match_the_paper(benchmark, fig6_results):
    peaks = benchmark.pedantic(
        lambda: {stock: stock_trace(stock).peak_tps for stock in STOCKS},
        rounds=1, iterations=1)
    assert peaks["google"] == pytest.approx(800, rel=0.01)
    assert peaks["microsoft"] == pytest.approx(4_000, rel=0.01)
    assert peaks["apple"] == pytest.approx(10_000, rel=0.01)


def test_fig6_quorum_commits_every_burst(benchmark, fig6_results):
    fractions = benchmark.pedantic(
        lambda: {stock: _commit_fraction(fig6_results[("quorum", stock)])
                 for stock in STOCKS},
        rounds=1, iterations=1)
    for stock, fraction in fractions.items():
        assert fraction > 0.99, stock


def test_fig6_drops_plateau_on_apple(benchmark, fig6_results):
    fractions = benchmark.pedantic(
        lambda: {chain: _commit_fraction(fig6_results[(chain, "apple")])
                 for chain in ALL_CHAINS},
        rounds=1, iterations=1)
    # bounded pools drop part of the 10k burst (paper: Diem 75 %,
    # Algorand 77 %, Solana 52 %)
    assert 0.4 <= fractions["diem"] <= 0.95
    assert 0.5 <= fractions["algorand"] <= 0.98
    assert 0.3 <= fractions["solana"] <= 0.85
    # Avalanche keeps committing (paper: ~90 %)
    assert fractions["avalanche"] > 0.7
    # Quorum tops everyone
    assert fractions["quorum"] >= max(
        f for chain, f in fractions.items() if chain != "quorum")


def test_fig6_google_burst_is_gentle(benchmark, fig6_results):
    fractions = benchmark.pedantic(
        lambda: {chain: _commit_fraction(fig6_results[(chain, "google")])
                 for chain in ALL_CHAINS},
        rounds=1, iterations=1)
    # "all the blockchains commit more than 97% of the Google workload
    # transactions" — Ethereum being slow, allow it some slack
    for chain, fraction in fractions.items():
        floor = 0.55 if chain == "ethereum" else 0.9
        assert fraction > floor, chain


def test_fig6_ethereum_is_the_slow_one(benchmark, fig6_results):
    microsoft = benchmark.pedantic(
        lambda: {chain: _commit_fraction(fig6_results[(chain, "microsoft")])
                 for chain in ALL_CHAINS},
        rounds=1, iterations=1)
    # paper: Ethereum commits only 64 % of the Microsoft burst — the worst
    # result; here Solana's drop can tie it, so assert bottom-two + band
    bottom_two = sorted(microsoft, key=microsoft.get)[:2]
    assert "ethereum" in bottom_two
    assert microsoft["ethereum"] < 0.9
