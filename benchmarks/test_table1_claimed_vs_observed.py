"""Table 1 — claimed versus observed performance.

The paper's opening table contrasts marketing claims with what DIABLO
measures: Algorand claims 1K-46K TPS / 2.5-4.5 s and shows 885 TPS / 8.5 s
(testnet); Avalanche claims 4.5K TPS / 2 s and shows 323 TPS / 49 s
(datacenter); Solana claims 200K TPS / <1 s and shows 8,845 TPS / 12 s
(datacenter).

The bench probes each chain in the Table 1 configuration with a demand
above its claimed capacity region and reports the observed averages; the
assertion is the paper's point — the observations sit **an order of
magnitude (or more) below the claims** — plus loose bands around the
published observations.
"""

from __future__ import annotations

import pytest

from repro.workloads import constant_transfer_trace

from conftest import bench_scale, run_chain_trace

SCALE = 0.05

CLAIMS = {
    # chain: (claimed TPS, claimed latency s, probe rate, configuration)
    "algorand": (46_000, 2.5, 2_000, "testnet"),
    "avalanche": (4_500, 2.0, 2_000, "datacenter"),
    "solana": (200_000, 1.0, 15_000, "datacenter"),
}


@pytest.fixture(scope="module")
def observations():
    scale = bench_scale(SCALE)
    rows = {}
    for chain, (claim_tps, claim_lat, probe, configuration) in CLAIMS.items():
        result = run_chain_trace(chain, configuration,
                                 constant_transfer_trace(probe),
                                 scale=scale)
        rows[chain] = {
            "blockchain": chain,
            "claimed_tps": claim_tps,
            "claimed_latency_s": claim_lat,
            "observed_tps": result.average_throughput,
            "observed_latency_s": result.average_latency,
            "setup": configuration,
        }
    return rows


def test_table1_report(benchmark, observations):
    rows = benchmark.pedantic(lambda: observations, rounds=1, iterations=1)
    print("\n=== Table 1: claimed vs observed ===")
    for row in rows.values():
        print({k: round(v, 1) if isinstance(v, float) else v
               for k, v in row.items()})


def test_table1_observed_far_below_claimed(benchmark, observations):
    rows = benchmark.pedantic(lambda: observations, rounds=1, iterations=1)
    for chain, row in rows.items():
        assert row["observed_tps"] < row["claimed_tps"] / 4, chain
        assert row["observed_latency_s"] > row["claimed_latency_s"], chain


def test_table1_observed_bands(benchmark, observations):
    rows = benchmark.pedantic(lambda: observations, rounds=1, iterations=1)
    # paper: 885 TPS @ 8.5 s
    assert 500 <= rows["algorand"]["observed_tps"] <= 1_300
    assert 4 <= rows["algorand"]["observed_latency_s"] <= 20
    # paper: 323 TPS @ 49 s
    assert 150 <= rows["avalanche"]["observed_tps"] <= 500
    assert 20 <= rows["avalanche"]["observed_latency_s"] <= 120
    # paper: 8,845 TPS @ 12 s
    assert 4_000 <= rows["solana"]["observed_tps"] <= 13_000
    assert 12 <= rows["solana"]["observed_latency_s"] <= 30
