"""Tests for transactions."""

from __future__ import annotations

import pytest

from repro.chain.transaction import (
    INVOKE_BASE_SIZE,
    TRANSFER_SIZE,
    Transaction,
    TxKind,
    invoke,
    transfer,
)


class TestConstruction:
    def test_transfer_builder(self):
        tx = transfer("alice", "bob", amount=5, sequence=3)
        assert tx.kind is TxKind.TRANSFER
        assert tx.sender == "alice"
        assert tx.recipient == "bob"
        assert tx.amount == 5
        assert tx.sequence == 3

    def test_invoke_builder(self):
        tx = invoke("alice", "Counter", "add", (1, 2))
        assert tx.kind is TxKind.INVOKE
        assert tx.contract == "Counter"
        assert tx.function == "add"
        assert tx.args == (1, 2)
        assert tx.is_invoke

    def test_uids_are_unique(self):
        a, b = transfer("x", "y"), transfer("x", "y")
        assert a.uid != b.uid

    def test_equality_is_by_uid(self):
        a = transfer("x", "y")
        assert a == a
        assert a != transfer("x", "y")
        assert hash(a) == a.uid


class TestSizing:
    def test_transfer_size(self):
        assert transfer("a", "b").size == TRANSFER_SIZE

    def test_invoke_size_grows_with_args(self):
        no_args = invoke("a", "C", "f")
        two_args = invoke("a", "C", "f", (1, 2))
        assert two_args.size == no_args.size + 64
        assert no_args.size == INVOKE_BASE_SIZE

    def test_extra_size_applies(self):
        tx = transfer("a", "b", extra_size=100)
        assert tx.size == TRANSFER_SIZE + 100


class TestHashing:
    def test_tx_hash_deterministic_per_tx(self):
        tx = transfer("a", "b")
        assert tx.tx_hash == tx.tx_hash

    def test_tx_hash_unique_across_txs(self):
        assert transfer("a", "b").tx_hash != transfer("a", "b").tx_hash

    def test_signing_payload_covers_fee(self):
        a = invoke("a", "C", "f", sequence=1)
        b = invoke("a", "C", "f", sequence=1)
        b.fee_per_gas = 99
        assert a.signing_payload() != b.signing_payload()

    def test_signing_payload_excludes_benchmark_fields(self):
        tx = transfer("a", "b")
        before = tx.signing_payload()
        tx.submitted_at = 1.0
        tx.committed_at = 2.0
        assert tx.signing_payload() == before


class TestBookkeeping:
    def test_fresh_tx_is_unsubmitted(self):
        tx = transfer("a", "b")
        assert tx.submitted_at is None
        assert tx.committed_at is None
        assert not tx.aborted

    def test_describe_contains_key_fields(self):
        tx = invoke("a", "C", "f")
        info = tx.describe()
        assert info["kind"] == "invoke"
        assert info["contract"] == "C"
        assert info["uid"] == tx.uid
