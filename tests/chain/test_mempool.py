"""Tests for the memory pool policies (§5.2 / §6.5 behaviours)."""

from __future__ import annotations

import pytest

from repro.chain.mempool import (
    DROP_BYTES,
    DROP_CAPACITY,
    DROP_EVICTED,
    DROP_EXPIRED,
    DROP_QUOTA,
    Mempool,
    MempoolPolicy,
)
from repro.chain.transaction import transfer
from repro.common.errors import (
    MempoolBytesError,
    MempoolFullError,
    SenderQuotaError,
)


def make_txs(n, sender="alice", gas_limit=21_000):
    return [transfer(sender, "bob", gas_limit=gas_limit) for _ in range(n)]


class TestAdmission:
    def test_unbounded_pool_accepts_everything(self):
        pool = Mempool()
        for tx in make_txs(1000):
            pool.add(tx)
        assert len(pool) == 1000

    def test_capacity_rejects_when_full(self):
        pool = Mempool(MempoolPolicy(capacity=2))
        a, b, c = make_txs(3)
        pool.add(a)
        pool.add(b)
        with pytest.raises(MempoolFullError):
            pool.add(c)
        assert pool.rejected_full == 1

    def test_evict_oldest_instead_of_rejecting(self):
        pool = Mempool(MempoolPolicy(capacity=2, evict_oldest=True))
        a, b, c = make_txs(3)
        pool.add(a)
        pool.add(b)
        pool.add(c)
        assert len(pool) == 2
        assert a not in pool and c in pool
        assert pool.evicted == 1

    def test_per_sender_quota(self):
        # Diem: "a maximum of 100 transactions from the same signer"
        pool = Mempool(MempoolPolicy(per_sender_quota=100))
        for tx in make_txs(100):
            pool.add(tx)
        with pytest.raises(SenderQuotaError):
            pool.add(transfer("alice", "bob"))
        pool.add(transfer("carol", "bob"))  # other senders unaffected
        assert pool.rejected_quota == 1

    def test_quota_frees_after_pop(self):
        pool = Mempool(MempoolPolicy(per_sender_quota=2))
        for tx in make_txs(2):
            pool.add(tx)
        pool.pop_batch(max_count=1)
        pool.add(transfer("alice", "bob"))

    def test_try_add_returns_bool(self):
        pool = Mempool(MempoolPolicy(capacity=1))
        assert pool.try_add(transfer("a", "b"))
        assert not pool.try_add(transfer("a", "b"))

    def test_contains(self):
        pool = Mempool()
        tx = transfer("a", "b")
        pool.add(tx)
        assert tx in pool


class TestDropReasons:
    def test_add_and_try_add_share_counters(self):
        # satellite: the raising and bool paths record the same reasons
        pool = Mempool(MempoolPolicy(capacity=1))
        pool.add(transfer("a", "b"))
        with pytest.raises(MempoolFullError):
            pool.add(transfer("a", "b"))
        assert not pool.try_add(transfer("a", "b"))
        assert pool.drops == {DROP_CAPACITY: 2}
        assert pool.last_drop_reason == DROP_CAPACITY

    def test_every_reason_is_tagged(self):
        pool = Mempool(MempoolPolicy(capacity=2, per_sender_quota=1))
        pool.add(transfer("a", "b"))
        with pytest.raises(SenderQuotaError):
            pool.add(transfer("a", "b"))
        pool.add(transfer("c", "b"))
        with pytest.raises(MempoolFullError):
            pool.add(transfer("d", "b"))
        assert pool.drops == {DROP_QUOTA: 1, DROP_CAPACITY: 1}

    def test_stats_exposes_per_reason_counts(self):
        pool = Mempool(MempoolPolicy(capacity=1))
        tx = transfer("a", "b")
        pool.add(tx)
        pool.try_add(transfer("a", "b"))
        stats = pool.stats()
        assert stats["admitted"] == 1
        assert stats["resident"] == 1
        assert stats["resident_bytes"] == tx.size
        assert stats[f"drop_{DROP_CAPACITY}"] == 1

    def test_would_accept_is_a_pure_probe(self):
        pool = Mempool(MempoolPolicy(capacity=1))
        pool.add(transfer("a", "b"))
        probe = transfer("a", "b")
        assert pool.would_accept(probe) == DROP_CAPACITY
        assert pool.drops == {}   # no phantom drop recorded
        pool.pop_batch()
        assert pool.would_accept(probe) is None

    def test_legacy_views_read_the_unified_counters(self):
        pool = Mempool(MempoolPolicy(capacity=1, per_sender_quota=2))
        pool.add(transfer("a", "b"))
        pool.try_add(transfer("c", "b"))
        assert pool.rejected_full == 1
        pool.drop_expired(now=1e9, max_age=1.0)


class TestByteAccounting:
    def test_resident_bytes_tracks_add_and_pop(self):
        pool = Mempool()
        txs = make_txs(4)
        for tx in txs:
            pool.add(tx)
        size = txs[0].size
        assert pool.resident_bytes == 4 * size
        pool.pop_batch(max_count=3)
        assert pool.resident_bytes == size

    def test_remove_releases_bytes(self):
        pool = Mempool()
        tx = transfer("a", "b", extra_size=500)
        pool.add(tx)
        pool.remove(tx)
        assert pool.resident_bytes == 0

    def test_max_bytes_rejects_when_exhausted(self):
        small = transfer("a", "b")
        pool = Mempool(MempoolPolicy(max_bytes=small.size))
        pool.add(small)
        with pytest.raises(MempoolBytesError):
            pool.add(transfer("a", "b"))
        assert pool.drops == {DROP_BYTES: 1}

    def test_max_bytes_error_is_a_mempool_full_error(self):
        # clients treat byte exhaustion like any pool-full rejection
        assert issubclass(MempoolBytesError, MempoolFullError)

    def test_evict_oldest_frees_bytes_for_large_tx(self):
        unit = transfer("a", "b").size
        pool = Mempool(MempoolPolicy(max_bytes=4 * unit, evict_oldest=True))
        for tx in make_txs(3):
            pool.add(tx)
        big = transfer("a", "b", extra_size=unit)   # needs 2 slots
        pool.add(big)
        assert big in pool
        assert pool.resident_bytes <= 4 * unit
        assert pool.drops[DROP_EVICTED] == 1

    def test_oversized_tx_rejected_even_after_evicting_all(self):
        unit = transfer("a", "b").size
        pool = Mempool(MempoolPolicy(max_bytes=2 * unit, evict_oldest=True))
        pool.add(transfer("a", "b"))
        with pytest.raises(MempoolBytesError):
            pool.add(transfer("a", "b", extra_size=10 * unit))

    def test_drop_expired_releases_bytes(self):
        # satellite: expiry and byte accounting interact correctly
        pool = Mempool(MempoolPolicy(max_bytes=1 << 20))
        old = transfer("a", "b", extra_size=100)
        old.submitted_at = 0.0
        fresh = transfer("a", "b")
        fresh.submitted_at = 100.0
        pool.add(old)
        pool.add(fresh)
        pool.drop_expired(now=130.0, max_age=120.0)
        assert pool.resident_bytes == fresh.size
        assert pool.drops == {DROP_EXPIRED: 1}
        # evicted property folds evictions and expiries together (legacy)
        assert pool.evicted == 1

    def test_eviction_after_expiry_keeps_bytes_consistent(self):
        unit = transfer("a", "b").size
        pool = Mempool(MempoolPolicy(capacity=2, evict_oldest=True))
        old = transfer("a", "b")
        old.submitted_at = 0.0
        pool.add(old)
        pool.drop_expired(now=200.0, max_age=120.0)
        for tx in make_txs(3):
            tx.submitted_at = 200.0
            pool.add(tx)
        assert len(pool) == 2
        assert pool.resident_bytes == 2 * unit
        assert pool.drops == {DROP_EXPIRED: 1, DROP_EVICTED: 1}


class TestPopBatch:
    def test_fifo_order(self):
        pool = Mempool()
        txs = make_txs(5)
        for tx in txs:
            pool.add(tx)
        batch = pool.pop_batch(max_count=3)
        assert batch == txs[:3]
        assert len(pool) == 2

    def test_fee_ordered_pops_highest_fee_first(self):
        pool = Mempool(MempoolPolicy(fee_ordered=True))
        low = transfer("a", "b", fee_per_gas=1)
        high = transfer("a", "b", fee_per_gas=10)
        pool.add(low)
        pool.add(high)
        assert pool.pop_batch(max_count=1) == [high]

    def test_gas_cap_limits_batch(self):
        pool = Mempool()
        for tx in make_txs(10, gas_limit=21_000):
            pool.add(tx)
        batch = pool.pop_batch(max_gas=63_000)
        assert len(batch) == 3

    def test_single_oversized_tx_still_fits_alone(self):
        # block production must not deadlock on a tx above the gas cap
        pool = Mempool()
        pool.add(transfer("a", "b", gas_limit=10_000_000))
        batch = pool.pop_batch(max_gas=1_000_000)
        assert len(batch) == 1

    def test_bytes_cap_limits_batch(self):
        pool = Mempool()
        for tx in make_txs(10):
            pool.add(tx)
        size = make_txs(1)[0].size
        batch = pool.pop_batch(max_bytes=3 * size)
        assert len(batch) == 3

    def test_oversized_by_bytes_still_fits_alone(self):
        pool = Mempool()
        pool.add(transfer("a", "b", extra_size=10_000))
        assert len(pool.pop_batch(max_bytes=100)) == 1

    def test_unlimited_pop_drains_pool(self):
        pool = Mempool()
        for tx in make_txs(7):
            pool.add(tx)
        assert len(pool.pop_batch()) == 7
        assert len(pool) == 0


class TestRemoveAndExpiry:
    def test_remove_specific_tx(self):
        pool = Mempool()
        tx = transfer("a", "b")
        pool.add(tx)
        assert pool.remove(tx)
        assert not pool.remove(tx)
        assert len(pool) == 0

    def test_drop_expired(self):
        # Solana's 120-second recent-block-hash rule (§5.2)
        pool = Mempool()
        old = transfer("a", "b")
        old.submitted_at = 0.0
        fresh = transfer("a", "b")
        fresh.submitted_at = 100.0
        pool.add(old)
        pool.add(fresh)
        expired = pool.drop_expired(now=130.0, max_age=120.0)
        assert expired == [old]
        assert fresh in pool

    def test_drop_expired_ignores_unsubmitted(self):
        pool = Mempool()
        tx = transfer("a", "b")  # submitted_at None
        pool.add(tx)
        assert pool.drop_expired(now=1e9, max_age=1.0) == []

    def test_pending_for_tracks_senders(self):
        pool = Mempool()
        pool.add(transfer("a", "b"))
        pool.add(transfer("a", "b"))
        pool.add(transfer("c", "b"))
        assert pool.pending_for("a") == 2
        assert pool.pending_for("c") == 1
        assert pool.pending_for("nobody") == 0
