"""Tests for the memory pool policies (§5.2 / §6.5 behaviours)."""

from __future__ import annotations

import pytest

from repro.chain.mempool import Mempool, MempoolPolicy
from repro.chain.transaction import transfer
from repro.common.errors import MempoolFullError, SenderQuotaError


def make_txs(n, sender="alice", gas_limit=21_000):
    return [transfer(sender, "bob", gas_limit=gas_limit) for _ in range(n)]


class TestAdmission:
    def test_unbounded_pool_accepts_everything(self):
        pool = Mempool()
        for tx in make_txs(1000):
            pool.add(tx)
        assert len(pool) == 1000

    def test_capacity_rejects_when_full(self):
        pool = Mempool(MempoolPolicy(capacity=2))
        a, b, c = make_txs(3)
        pool.add(a)
        pool.add(b)
        with pytest.raises(MempoolFullError):
            pool.add(c)
        assert pool.rejected_full == 1

    def test_evict_oldest_instead_of_rejecting(self):
        pool = Mempool(MempoolPolicy(capacity=2, evict_oldest=True))
        a, b, c = make_txs(3)
        pool.add(a)
        pool.add(b)
        pool.add(c)
        assert len(pool) == 2
        assert a not in pool and c in pool
        assert pool.evicted == 1

    def test_per_sender_quota(self):
        # Diem: "a maximum of 100 transactions from the same signer"
        pool = Mempool(MempoolPolicy(per_sender_quota=100))
        for tx in make_txs(100):
            pool.add(tx)
        with pytest.raises(SenderQuotaError):
            pool.add(transfer("alice", "bob"))
        pool.add(transfer("carol", "bob"))  # other senders unaffected
        assert pool.rejected_quota == 1

    def test_quota_frees_after_pop(self):
        pool = Mempool(MempoolPolicy(per_sender_quota=2))
        for tx in make_txs(2):
            pool.add(tx)
        pool.pop_batch(max_count=1)
        pool.add(transfer("alice", "bob"))

    def test_try_add_returns_bool(self):
        pool = Mempool(MempoolPolicy(capacity=1))
        assert pool.try_add(transfer("a", "b"))
        assert not pool.try_add(transfer("a", "b"))

    def test_contains(self):
        pool = Mempool()
        tx = transfer("a", "b")
        pool.add(tx)
        assert tx in pool


class TestPopBatch:
    def test_fifo_order(self):
        pool = Mempool()
        txs = make_txs(5)
        for tx in txs:
            pool.add(tx)
        batch = pool.pop_batch(max_count=3)
        assert batch == txs[:3]
        assert len(pool) == 2

    def test_fee_ordered_pops_highest_fee_first(self):
        pool = Mempool(MempoolPolicy(fee_ordered=True))
        low = transfer("a", "b", fee_per_gas=1)
        high = transfer("a", "b", fee_per_gas=10)
        pool.add(low)
        pool.add(high)
        assert pool.pop_batch(max_count=1) == [high]

    def test_gas_cap_limits_batch(self):
        pool = Mempool()
        for tx in make_txs(10, gas_limit=21_000):
            pool.add(tx)
        batch = pool.pop_batch(max_gas=63_000)
        assert len(batch) == 3

    def test_single_oversized_tx_still_fits_alone(self):
        # block production must not deadlock on a tx above the gas cap
        pool = Mempool()
        pool.add(transfer("a", "b", gas_limit=10_000_000))
        batch = pool.pop_batch(max_gas=1_000_000)
        assert len(batch) == 1

    def test_bytes_cap_limits_batch(self):
        pool = Mempool()
        for tx in make_txs(10):
            pool.add(tx)
        size = make_txs(1)[0].size
        batch = pool.pop_batch(max_bytes=3 * size)
        assert len(batch) == 3

    def test_oversized_by_bytes_still_fits_alone(self):
        pool = Mempool()
        pool.add(transfer("a", "b", extra_size=10_000))
        assert len(pool.pop_batch(max_bytes=100)) == 1

    def test_unlimited_pop_drains_pool(self):
        pool = Mempool()
        for tx in make_txs(7):
            pool.add(tx)
        assert len(pool.pop_batch()) == 7
        assert len(pool) == 0


class TestRemoveAndExpiry:
    def test_remove_specific_tx(self):
        pool = Mempool()
        tx = transfer("a", "b")
        pool.add(tx)
        assert pool.remove(tx)
        assert not pool.remove(tx)
        assert len(pool) == 0

    def test_drop_expired(self):
        # Solana's 120-second recent-block-hash rule (§5.2)
        pool = Mempool()
        old = transfer("a", "b")
        old.submitted_at = 0.0
        fresh = transfer("a", "b")
        fresh.submitted_at = 100.0
        pool.add(old)
        pool.add(fresh)
        expired = pool.drop_expired(now=130.0, max_age=120.0)
        assert expired == [old]
        assert fresh in pool

    def test_drop_expired_ignores_unsubmitted(self):
        pool = Mempool()
        tx = transfer("a", "b")  # submitted_at None
        pool.add(tx)
        assert pool.drop_expired(now=1e9, max_age=1.0) == []

    def test_pending_for_tracks_senders(self):
        pool = Mempool()
        pool.add(transfer("a", "b"))
        pool.add(transfer("a", "b"))
        pool.add(transfer("c", "b"))
        assert pool.pending_for("a") == 2
        assert pool.pending_for("c") == 1
        assert pool.pending_for("nobody") == 0
