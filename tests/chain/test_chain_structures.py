"""Tests for accounts, blocks, state, ledger and receipts."""

from __future__ import annotations

import pytest

from repro.chain.account import (
    AccountFactoryLimits,
    AccountRegistry,
    DEFAULT_INITIAL_BALANCE,
)
from repro.chain.block import Block, GENESIS_PARENT, genesis_block
from repro.chain.ledger import Ledger
from repro.chain.receipt import Event, ExecStatus, Receipt
from repro.chain.state import WorldState
from repro.chain.transaction import transfer
from repro.common.errors import (
    ChainError,
    DeploymentError,
    UnknownAccountError,
)


class TestAccounts:
    def test_create_funds_accounts(self):
        registry = AccountRegistry()
        accounts = registry.create(3)
        assert len(registry) == 3
        assert all(a.balance == DEFAULT_INITIAL_BALANCE for a in accounts)

    def test_addresses_are_unique(self):
        registry = AccountRegistry()
        registry.create(50)
        assert len(set(registry.addresses())) == 50

    def test_sequence_numbers_increment(self):
        registry = AccountRegistry()
        (account,) = registry.create(1)
        assert account.next_sequence() == 0
        assert account.next_sequence() == 1

    def test_diem_provisioning_limit(self):
        # §5.2: "the provided setup tools would fail systematically after
        # creating 130 accounts"
        registry = AccountRegistry(limits=AccountFactoryLimits(max_accounts=130))
        registry.create(130)
        with pytest.raises(DeploymentError):
            registry.create(1)

    def test_create_up_to_caps_at_limit(self):
        registry = AccountRegistry(limits=AccountFactoryLimits(max_accounts=130))
        created = registry.create_up_to(2000)
        assert len(created) == 130
        assert registry.create_up_to(10) == []

    def test_lookup(self):
        registry = AccountRegistry()
        (account,) = registry.create(1)
        assert registry.get(account.address) is account
        with pytest.raises(UnknownAccountError):
            registry.get("ghost")


class TestBlocks:
    def test_genesis(self):
        g = genesis_block()
        assert g.height == 0
        assert g.parent_hash == GENESIS_PARENT
        assert len(g) == 0

    def test_block_hash_changes_with_content(self):
        a = Block(1, "p", "n", [transfer("a", "b")], timestamp=1.0)
        b = Block(1, "p", "n", [transfer("a", "b")], timestamp=1.0)
        assert a.block_hash != b.block_hash  # different tx uids

    def test_block_size_includes_transactions(self):
        txs = [transfer("a", "b") for _ in range(3)]
        block = Block(1, "p", "n", txs)
        assert block.size == 512 + sum(t.size for t in txs)


class TestWorldState:
    def test_credit_debit(self):
        state = WorldState()
        state.credit("a", 100)
        assert state.balance("a") == 100
        assert state.debit("a", 60)
        assert state.balance("a") == 40

    def test_debit_insufficient_fails(self):
        state = WorldState()
        state.credit("a", 10)
        assert not state.debit("a", 11)
        assert state.balance("a") == 10

    def test_nonces(self):
        state = WorldState()
        assert state.nonce("a") == 0
        state.bump_nonce("a")
        assert state.nonce("a") == 1

    def test_contract_storage_lifecycle(self):
        state = WorldState()
        storage = state.deploy_storage("c1")
        storage.put("k", 42)
        assert state.storage("c1").get("k") == 42
        assert state.has_contract("c1")

    def test_double_deploy_rejected(self):
        state = WorldState()
        state.deploy_storage("c1")
        with pytest.raises(UnknownAccountError):
            state.deploy_storage("c1")

    def test_missing_contract_rejected(self):
        with pytest.raises(UnknownAccountError):
            WorldState().storage("ghost")


class TestLedger:
    def _block(self, ledger, txs=()):
        return Block(
            height=ledger.height + 1,
            parent_hash=ledger.head.block_hash,
            proposer="n",
            transactions=list(txs))

    def test_append_extends_head(self):
        ledger = Ledger()
        block = self._block(ledger)
        ledger.append(block, decided_at=1.0)
        assert ledger.head is block
        assert ledger.height == 1

    def test_append_wrong_height_rejected(self):
        ledger = Ledger()
        bad = Block(5, ledger.head.block_hash, "n")
        with pytest.raises(ChainError):
            ledger.append(bad, decided_at=1.0)

    def test_append_wrong_parent_rejected(self):
        ledger = Ledger()
        bad = Block(1, "not-the-head", "n")
        with pytest.raises(ChainError):
            ledger.append(bad, decided_at=1.0)

    def test_immediate_finality_without_confirmations(self):
        ledger = Ledger(confirmation_depth=0)
        block = self._block(ledger)
        ledger.append(block, decided_at=2.0)
        assert ledger.final_at(1) == 2.0

    def test_confirmation_depth_delays_finality(self):
        # Solana: wait 30 confirmations; here depth=2 for brevity
        ledger = Ledger(confirmation_depth=2)
        for t in (1.0, 2.0, 3.0):
            ledger.append(self._block(ledger), decided_at=t)
        assert ledger.final_at(1) == 3.0   # final when height 3 lands
        assert ledger.final_at(2) is None
        assert ledger.final_at(3) is None

    def test_blocks_since_is_the_polling_query(self):
        ledger = Ledger()
        blocks = []
        for t in (1.0, 2.0, 3.0):
            block = self._block(ledger)
            ledger.append(block, decided_at=t)
            blocks.append(block)
        assert list(ledger.blocks_since(1)) == blocks[1:]

    def test_block_lookup_by_hash_and_height(self):
        ledger = Ledger()
        block = self._block(ledger, [transfer("a", "b")])
        ledger.append(block, decided_at=1.0)
        assert ledger.block_at(1) is block
        assert ledger.block_by_hash(block.block_hash) is block
        with pytest.raises(ChainError):
            ledger.block_at(9)
        with pytest.raises(ChainError):
            ledger.block_by_hash("nope")

    def test_recent_hash_age(self):
        ledger = Ledger()
        block = self._block(ledger)
        ledger.append(block, decided_at=10.0)
        assert ledger.recent_hash_age(block.block_hash, now=130.0) == 120.0

    def test_transaction_counting(self):
        ledger = Ledger()
        ledger.append(self._block(ledger, [transfer("a", "b")] * 3),
                      decided_at=1.0)
        assert ledger.total_transactions() == 3
        assert len(list(ledger.all_transactions())) == 3

    def test_negative_confirmation_depth_rejected(self):
        with pytest.raises(ChainError):
            Ledger(confirmation_depth=-1)


class TestReceipts:
    def test_ok_property(self):
        assert Receipt(1, ExecStatus.SUCCESS).ok
        assert not Receipt(1, ExecStatus.BUDGET_EXCEEDED).ok

    def test_describe(self):
        receipt = Receipt(7, ExecStatus.REVERTED, gas_used=100,
                          error="nope", events=[Event("C", "E")])
        info = receipt.describe()
        assert info["status"] == "reverted"
        assert info["events"] == 1
