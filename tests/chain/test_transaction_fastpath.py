"""The single-hash transaction digests must match the generic digest form.

``Transaction.signing_payload`` and ``Transaction.tx_hash`` were rewritten
as one f-string plus one ``hashlib.sha256`` call; these tests pin them to
the reference construction they replaced — ``digest(part, ...)``, which
hashes ``str(part).encode() + b"\\0"`` per part.
"""

from __future__ import annotations

from repro.chain.transaction import Transaction, TxKind, invoke, transfer
from repro.crypto.hashing import digest


def reference_signing_payload(tx: Transaction) -> str:
    return digest("payload", tx.sender, tx.kind.value, tx.sequence,
                  tx.recipient, tx.contract, tx.function, tx.args,
                  tx.amount, tx.fee_per_gas, tx.gas_limit,
                  tx.recent_block_hash)


def reference_tx_hash(tx: Transaction) -> str:
    return digest("tx", tx.uid, tx.sender, tx.kind.value, tx.sequence,
                  tx.recipient, tx.contract, tx.function, tx.args,
                  tx.amount)


SAMPLES = [
    transfer("alice", "bob", amount=7, sequence=3),
    transfer("a", "b"),  # all defaults: recipient set, None contract/function
    Transaction(sender="carol", kind=TxKind.TRANSFER),  # recipient None
    invoke("dave", "exchange", "buy", args=(1, "GOOG", 2.5), sequence=9),
    invoke("erin", "nft", "mint", args=()),  # empty args tuple
    invoke("frank", "dots", "move", args=("nested", (1, 2), None)),
    transfer("unicode-séndér", "れしぴ", amount=1),  # utf-8 multibyte parts
]


class TestSigningPayloadMatchesReference:
    def test_samples(self):
        for tx in SAMPLES:
            assert tx.signing_payload() == reference_signing_payload(tx), tx

    def test_fee_and_expiry_fields_are_covered(self):
        tx = transfer("alice", "bob", amount=2, sequence=1)
        base = tx.signing_payload()
        assert base == reference_signing_payload(tx)
        tx.fee_per_gas = 55
        tx.tip = 5  # tip is NOT part of the payload — must not change it
        assert tx.signing_payload() == reference_signing_payload(tx)
        assert tx.signing_payload() != base
        tx.recent_block_hash = "deadbeef"
        assert tx.signing_payload() == reference_signing_payload(tx)

    def test_bookkeeping_fields_are_not_covered(self):
        tx = transfer("alice", "bob", amount=2, sequence=1)
        before = tx.signing_payload()
        tx.submitted_at = 1.5
        tx.committed_at = 2.5
        tx.retries = 3
        assert tx.signing_payload() == before


class TestTxHashMatchesReference:
    def test_samples(self):
        for tx in SAMPLES:
            assert tx.tx_hash == reference_tx_hash(tx), tx

    def test_distinct_transactions_hash_differently(self):
        a = transfer("alice", "bob", amount=1)
        b = transfer("alice", "bob", amount=1)
        assert a.tx_hash != b.tx_hash  # uids differ
