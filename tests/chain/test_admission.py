"""Tests for the node-side admission controller (backpressure front door)."""

from __future__ import annotations

import pytest

from repro.chain.admission import AdmissionController, AdmissionPolicy
from repro.chain.mempool import DROP_CAPACITY, Mempool, MempoolPolicy
from repro.chain.transaction import transfer
from repro.common.errors import (
    BackpressureError,
    ConfigurationError,
    MempoolFullError,
    NodeOverloadedError,
    SenderQuotaError,
)


def make_controller(capacity=None, queue_capacity=0, per_sender_quota=None):
    pool = Mempool(MempoolPolicy(capacity=capacity,
                                 per_sender_quota=per_sender_quota))
    return pool, AdmissionController(pool, AdmissionPolicy(queue_capacity))


class TestPolicy:
    def test_negative_queue_rejected(self):
        with pytest.raises(ConfigurationError):
            AdmissionPolicy(queue_capacity=-1)


class TestSubmit:
    def test_admits_straight_into_pool(self):
        pool, ctl = make_controller()
        assert ctl.submit(transfer("a", "b")) == "admitted"
        assert len(pool) == 1

    def test_pool_full_queues_when_room(self):
        pool, ctl = make_controller(capacity=1, queue_capacity=2)
        ctl.submit(transfer("a", "b"))
        assert ctl.submit(transfer("a", "b")) == "queued"
        assert ctl.queue_depth == 1
        assert ctl.stats()["queued"] == 1

    def test_pool_full_without_queue_raises(self):
        pool, ctl = make_controller(capacity=1)
        ctl.submit(transfer("a", "b"))
        with pytest.raises(MempoolFullError):
            ctl.submit(transfer("a", "b"))

    def test_queue_full_propagates_pool_error(self):
        pool, ctl = make_controller(capacity=1, queue_capacity=1)
        ctl.submit(transfer("a", "b"))
        ctl.submit(transfer("a", "b"))
        with pytest.raises(MempoolFullError):
            ctl.submit(transfer("a", "b"))

    def test_quota_rejections_never_queue(self):
        # the sender's backlog will not clear soon; queueing only delays
        # the same rejection
        pool, ctl = make_controller(per_sender_quota=1, queue_capacity=5)
        ctl.submit(transfer("a", "b"))
        with pytest.raises(SenderQuotaError):
            ctl.submit(transfer("a", "b"))
        assert ctl.queue_depth == 0


class TestShedding:
    def test_shedding_rejects_with_typed_retryable_error(self):
        pool, ctl = make_controller()
        ctl.set_shedding(True, pool_target=0)
        with pytest.raises(NodeOverloadedError):
            ctl.submit(transfer("a", "b"))
        assert issubclass(NodeOverloadedError, BackpressureError)
        assert ctl.stats()["shed_rejections"] == 1

    def test_shedding_keeps_pool_primed_to_target(self):
        pool, ctl = make_controller()
        ctl.set_shedding(True, pool_target=2)
        assert ctl.submit(transfer("a", "b")) == "admitted"
        assert ctl.submit(transfer("a", "b")) == "admitted"
        with pytest.raises(NodeOverloadedError):
            ctl.submit(transfer("a", "b"))
        # a block pops the pool below target: admission resumes
        pool.pop_batch(max_count=1)
        assert ctl.submit(transfer("a", "b")) == "admitted"

    def test_leaving_shedding_clears_target(self):
        pool, ctl = make_controller()
        ctl.set_shedding(True, pool_target=0)
        ctl.set_shedding(False)
        assert ctl.submit(transfer("a", "b")) == "admitted"
        assert ctl.shed_pool_target is None


class TestDrain:
    def test_drain_moves_queued_into_freed_pool(self):
        pool, ctl = make_controller(capacity=2, queue_capacity=4)
        for _ in range(4):
            ctl.submit(transfer("a", "b"))
        assert ctl.queue_depth == 2
        pool.pop_batch(max_count=2)
        assert ctl.drain() == 2
        assert len(pool) == 2
        assert ctl.queue_depth == 0
        assert ctl.stats()["drained"] == 2

    def test_drain_stops_at_pool_capacity_without_phantom_drops(self):
        pool, ctl = make_controller(capacity=1, queue_capacity=4)
        ctl.submit(transfer("a", "b"))
        ctl.submit(transfer("a", "b"))
        assert ctl.drain() == 0
        # probing for room must not count as a capacity drop
        assert pool.drops.get(DROP_CAPACITY, 0) == 1

    def test_drain_preserves_fifo_order(self):
        pool, ctl = make_controller(capacity=1, queue_capacity=4)
        first = transfer("a", "b")
        second = transfer("a", "b")
        third = transfer("a", "b")
        ctl.submit(first)
        ctl.submit(second)
        ctl.submit(third)
        pool.pop_batch()
        ctl.drain()
        assert pool.pop_batch() == [second]
        ctl.drain()
        assert pool.pop_batch() == [third]


class TestForget:
    def test_forget_removes_from_queue(self):
        pool, ctl = make_controller(capacity=1, queue_capacity=2)
        kept = transfer("a", "b")
        ctl.submit(kept)
        queued = transfer("a", "b")
        ctl.submit(queued)
        assert ctl.forget(queued)
        assert not ctl.forget(queued)
        assert ctl.queue_depth == 0
