"""The suite is pinned: names, kinds and knobs are part of the contract."""

from __future__ import annotations

import pytest

from repro.bench.suite import (
    MICRO_BODIES,
    SUITE_CHAINS,
    SUITES,
    Scenario,
    get_suite,
    scenario_by_name,
)
from repro.common.errors import ConfigurationError


def test_full_suite_covers_every_chain_at_two_sizes():
    names = {s.name for s in SUITES["full"]}
    for chain in SUITE_CHAINS:
        assert f"chain-{chain}-small" in names
        assert f"chain-{chain}-medium" in names


def test_full_suite_includes_all_micros():
    micro_names = {s.params["micro"] for s in SUITES["full"]
                   if s.kind == "micro"}
    assert micro_names == set(MICRO_BODIES)


def test_mini_suite_is_a_subset_of_full():
    full = {s.name: s for s in SUITES["full"]}
    for scenario in SUITES["mini"]:
        assert scenario.name in full
        assert full[scenario.name].params == scenario.params


def test_chain_cell_params_are_pinned():
    cell = scenario_by_name("chain-quorum-small")
    assert cell.kind == "chain"
    assert cell.params["configuration"] == "testnet"
    assert cell.params["seed"] == 1
    assert cell.params["rate_tps"] == 500.0
    assert cell.params["duration_s"] == 60.0


def test_scenario_rejects_bad_kind():
    with pytest.raises(ConfigurationError):
        Scenario(name="x", kind="macro")


def test_unknown_suite_and_scenario_raise():
    with pytest.raises(ConfigurationError):
        get_suite("huge")
    with pytest.raises(ConfigurationError):
        scenario_by_name("chain-bitcoin-small")


def test_describe_sorts_params():
    cell = scenario_by_name("chain-solana-medium")
    assert list(cell.describe()) == sorted(cell.params)


def test_micro_bodies_return_counted_ints():
    scenario = scenario_by_name("micro-engine-calendar")
    small = dict(scenario.params, chains=5, depth=20)
    engine, counted = MICRO_BODIES["engine-calendar"](small, None)
    assert engine.events_executed == counted["events_executed"]
    assert all(isinstance(v, int) for v in counted.values())
    assert counted["events_executed"] > 0
