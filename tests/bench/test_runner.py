"""Runner behaviour: determinism checking, aggregation, inline suites."""

from __future__ import annotations

import pytest

from repro.bench.runner import (
    BenchDeterminismError,
    aggregate_scenario,
    run_scenario_once,
    run_suite,
)
from repro.bench.schema import validate_payload
from repro.bench.suite import SUITES, Scenario

# a calendar micro small enough for unit tests (same body, tiny knobs)
TINY_CALENDAR = Scenario(
    name="micro-engine-calendar",
    kind="micro",
    params={"micro": "engine-calendar", "chains": 4, "depth": 25})

TINY_BROADCAST = Scenario(
    name="micro-engine-broadcast",
    kind="micro",
    params={"micro": "engine-broadcast", "endpoints": 6, "rounds": 10})


def test_run_scenario_once_records_all_metrics():
    outcome = run_scenario_once(TINY_CALENDAR)
    assert outcome["wall_seconds"] > 0
    assert outcome["events_executed"] == outcome["counted"]["events_executed"]
    assert outcome["events_per_second"] > 0
    assert outcome["peak_rss_bytes"] > 0
    assert outcome["subsystems"] is None


def test_repeats_are_deterministic():
    first = run_scenario_once(TINY_CALENDAR)
    second = run_scenario_once(TINY_CALENDAR)
    profiled = run_scenario_once(TINY_CALENDAR, profile=True)
    assert first["counted"] == second["counted"] == profiled["counted"]


def test_profiled_pass_attributes_subsystems():
    outcome = run_scenario_once(TINY_BROADCAST, profile=True)
    shares = outcome["subsystems"]
    assert shares and abs(sum(shares.values()) - 1.0) < 1e-9
    assert "network" in shares  # deliveries use the default network label


def test_aggregate_takes_medians_and_spread():
    repeats = [run_scenario_once(TINY_CALENDAR) for _ in range(3)]
    entry = aggregate_scenario(TINY_CALENDAR, repeats)
    walls = sorted(r["wall_seconds"] for r in repeats)
    # entries are rounded to 6 decimal places on the way into the file
    assert entry["timed"]["wall_seconds"] == pytest.approx(walls[1], abs=1e-6)
    lo, hi = entry["spread"]["wall_seconds"]
    assert lo <= entry["timed"]["wall_seconds"] <= hi
    assert isinstance(entry["timed"]["peak_rss_bytes"], int)
    assert entry["counted"] == repeats[0]["counted"]


def test_counted_divergence_raises():
    repeats = [run_scenario_once(TINY_CALENDAR) for _ in range(2)]
    repeats[1]["counted"]["events_executed"] += 1
    with pytest.raises(BenchDeterminismError, match="diverged"):
        aggregate_scenario(TINY_CALENDAR, repeats)


def test_attribution_pass_included_in_determinism_check():
    repeats = [run_scenario_once(TINY_CALENDAR)]
    attribution = run_scenario_once(TINY_CALENDAR, profile=True)
    attribution["counted"]["events_executed"] += 1
    with pytest.raises(BenchDeterminismError):
        aggregate_scenario(TINY_CALENDAR, repeats, attribution)


def test_run_suite_inline_payload_is_valid(monkeypatch):
    monkeypatch.setitem(SUITES, "tiny", (TINY_CALENDAR, TINY_BROADCAST))
    payload = run_suite("tiny", repeats=2, workers=1, isolate=False,
                        label="unit test")
    validate_payload(payload)
    assert payload["suite"] == "tiny"
    assert payload["label"] == "unit test"
    assert set(payload["scenarios"]) == {TINY_CALENDAR.name,
                                         TINY_BROADCAST.name}
    for entry in payload["scenarios"].values():
        assert entry["subsystems"]  # attribution pass ran


@pytest.mark.slow
def test_run_suite_isolated_counted_identical_across_workers(monkeypatch):
    # the spawned children resolve scenarios by name from the pristine
    # pinned SUITES, so the tiny suite must reference a real scenario
    from repro.bench.suite import scenario_by_name

    broadcast = scenario_by_name("micro-engine-broadcast")
    monkeypatch.setitem(SUITES, "tiny-real", (broadcast,))
    pooled = run_suite("tiny-real", repeats=2, workers=2, isolate=True)
    inline = run_suite("tiny-real", repeats=2, workers=1, isolate=False)
    assert (pooled["scenarios"][broadcast.name]["counted"]
            == inline["scenarios"][broadcast.name]["counted"])


def test_run_suite_rejects_zero_repeats():
    from repro.common.errors import SimulationError

    with pytest.raises(SimulationError, match="repeats"):
        run_suite("mini", repeats=0, isolate=False)
