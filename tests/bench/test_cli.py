"""``python -m repro bench`` CLI flows, exercised via ``--replay``.

Replay mode loads a recorded payload instead of running the suite, so
these tests cover the full record/compare/update-baseline surface in
milliseconds.
"""

from __future__ import annotations

from repro.bench.schema import build_payload, load_bench, write_bench
from repro.cli import main


def _scenario(wall=1.0, eps=1000.0, events=500):
    return {
        "kind": "micro",
        "params": {},
        "counted": {"events_executed": events},
        "timed": {"wall_seconds": wall, "events_per_second": eps,
                  "wall_per_sim_second": None, "peak_rss_bytes": 1 << 20},
        "spread": {},
        "subsystems": {},
    }


def _write(tmp_path, name, date, **scenarios):
    path = tmp_path / name
    write_bench(build_payload(scenarios, suite="mini", repeats=1, date=date),
                path)
    return path


def test_replay_without_compare_is_ok(tmp_path, capsys):
    current = _write(tmp_path, "current.json", "2026-01-02", s=_scenario())
    assert main(["bench", "--replay", str(current)]) == 0


def test_compare_identical_exits_zero(tmp_path, capsys):
    base = _write(tmp_path, "base.json", "2026-01-01", s=_scenario())
    current = _write(tmp_path, "cur.json", "2026-01-02", s=_scenario())
    assert main(["bench", "--replay", str(current),
                 "--compare", str(base)]) == 0
    assert "verdict: ok" in capsys.readouterr().out


def test_injected_regression_exits_nonzero(tmp_path, capsys):
    base = _write(tmp_path, "base.json", "2026-01-01",
                  s=_scenario(wall=1.0))
    current = _write(tmp_path, "cur.json", "2026-01-02",
                     s=_scenario(wall=2.0))
    assert main(["bench", "--replay", str(current),
                 "--compare", str(base)]) == 1
    assert "REGRESSED" in capsys.readouterr().out


def test_threshold_scale_absorbs_borderline_delta(tmp_path, capsys):
    base = _write(tmp_path, "base.json", "2026-01-01", s=_scenario(wall=1.0))
    current = _write(tmp_path, "cur.json", "2026-01-02",
                     s=_scenario(wall=1.3))
    assert main(["bench", "--replay", str(current),
                 "--compare", str(base)]) == 1
    capsys.readouterr()
    assert main(["bench", "--replay", str(current), "--compare", str(base),
                 "--threshold-scale", "2"]) == 0


def test_strict_counted_flags_behaviour_change(tmp_path, capsys):
    base = _write(tmp_path, "base.json", "2026-01-01",
                  s=_scenario(events=500))
    current = _write(tmp_path, "cur.json", "2026-01-02",
                     s=_scenario(events=501))
    assert main(["bench", "--replay", str(current),
                 "--compare", str(base)]) == 0
    capsys.readouterr()
    assert main(["bench", "--replay", str(current), "--compare", str(base),
                 "--strict-counted"]) == 1
    assert "counted changed" in capsys.readouterr().out


def test_missing_baseline_exits_two(tmp_path, capsys):
    current = _write(tmp_path, "cur.json", "2026-01-02", s=_scenario())
    assert main(["bench", "--replay", str(current),
                 "--compare", str(tmp_path / "nope.json")]) == 2


def test_corrupt_replay_exits_two(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{broken")
    assert main(["bench", "--replay", str(bad)]) == 2


def test_update_baseline_requires_compare(capsys):
    assert main(["bench", "--update-baseline"]) == 2


def test_update_baseline_overwrites_on_success(tmp_path, capsys):
    base = _write(tmp_path, "base.json", "2026-01-01", s=_scenario())
    current = _write(tmp_path, "cur.json", "2026-01-02", s=_scenario())
    assert main(["bench", "--replay", str(current), "--compare", str(base),
                 "--update-baseline"]) == 0
    assert load_bench(base)["date"] == "2026-01-02"


def test_update_baseline_refuses_on_regression(tmp_path, capsys):
    base = _write(tmp_path, "base.json", "2026-01-01", s=_scenario(wall=1.0))
    current = _write(tmp_path, "cur.json", "2026-01-02",
                     s=_scenario(wall=2.0))
    assert main(["bench", "--replay", str(current), "--compare", str(base),
                 "--update-baseline"]) == 1
    assert load_bench(base)["date"] == "2026-01-01"  # untouched
