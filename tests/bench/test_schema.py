"""Bench file format: round-trip, validation, byte stability."""

from __future__ import annotations

import json

import pytest

from repro.bench.schema import (
    DATE_ENV,
    SCHEMA_TAG,
    SCHEMA_VERSION,
    BenchFormatError,
    bench_date,
    bench_filename,
    build_payload,
    dump_bench,
    latest_bench_file,
    load_bench,
    validate_payload,
    write_bench,
)


def _scenario(events: int = 10) -> dict:
    return {
        "kind": "micro",
        "params": {"micro": "x"},
        "counted": {"events_executed": events},
        "timed": {"wall_seconds": 0.5, "events_per_second": 20.0,
                  "wall_per_sim_second": None, "peak_rss_bytes": 1024},
        "spread": {},
        "subsystems": {},
    }


def _payload() -> dict:
    return build_payload({"micro-x": _scenario()}, suite="mini", repeats=2,
                         date="2026-01-01")


def test_date_env_override(monkeypatch):
    monkeypatch.setenv(DATE_ENV, "2031-12-31")
    assert bench_date() == "2031-12-31"
    assert bench_filename() == "BENCH_2031-12-31.json"


def test_payload_roundtrip(tmp_path):
    payload = _payload()
    path = write_bench(payload, tmp_path / "BENCH_2026-01-01.json")
    assert load_bench(path) == payload


def test_dump_is_byte_stable():
    assert dump_bench(_payload()) == dump_bench(_payload())
    assert dump_bench(_payload()).endswith("\n")


def test_schema_tag_recorded():
    payload = _payload()
    assert payload["schema"] == SCHEMA_TAG
    assert payload["platform"]["rss_units"] == "bytes"


def test_missing_top_level_key_rejected():
    payload = _payload()
    del payload["scenarios"]
    with pytest.raises(BenchFormatError, match="scenarios"):
        validate_payload(payload)


def test_newer_schema_rejected():
    payload = _payload()
    payload["schema"] = f"repro-bench/{SCHEMA_VERSION + 1}"
    with pytest.raises(BenchFormatError, match="newer"):
        validate_payload(payload)


def test_foreign_schema_rejected():
    payload = _payload()
    payload["schema"] = "someone-elses/1"
    with pytest.raises(BenchFormatError, match="not a repro-bench"):
        validate_payload(payload)


def test_non_integer_counted_rejected():
    payload = _payload()
    payload["scenarios"]["micro-x"]["counted"]["events_executed"] = 10.5
    with pytest.raises(BenchFormatError, match="integer"):
        validate_payload(payload)


def test_load_rejects_invalid_json(tmp_path):
    bad = tmp_path / "BENCH_bad.json"
    bad.write_text("{not json")
    with pytest.raises(BenchFormatError, match="not valid JSON"):
        load_bench(bad)


def test_load_rejects_non_object(tmp_path):
    bad = tmp_path / "BENCH_list.json"
    bad.write_text(json.dumps([1, 2, 3]))
    with pytest.raises(BenchFormatError, match="top level"):
        load_bench(bad)


def test_latest_bench_file_orders_by_date(tmp_path):
    assert latest_bench_file(tmp_path) is None
    for date in ("2026-03-01", "2026-01-15", "2026-02-01"):
        write_bench(build_payload({}, suite="mini", repeats=1, date=date),
                    tmp_path / bench_filename(date))
    latest = latest_bench_file(tmp_path)
    assert latest is not None and latest.name == "BENCH_2026-03-01.json"
