"""Comparison semantics: thresholds, directions, edge cases, verdicts."""

from __future__ import annotations

import pytest

from repro.bench.compare import (
    DEFAULT_THRESHOLDS,
    VERDICT_CHANGED,
    VERDICT_IMPROVED,
    VERDICT_OK,
    VERDICT_REGRESSED,
    compare_benches,
    compare_scenario,
    thresholds_scaled,
)
from repro.bench.report import comparison_report, comparison_table
from repro.bench.schema import build_payload


def _scenario(wall=1.0, eps=1000.0, wps=0.01, rss=10_000_000, events=500):
    return {
        "kind": "micro",
        "params": {},
        "counted": {"events_executed": events},
        "timed": {"wall_seconds": wall, "events_per_second": eps,
                  "wall_per_sim_second": wps, "peak_rss_bytes": rss},
        "spread": {},
        "subsystems": {},
    }


def _payload(date, **scenarios):
    return build_payload(scenarios, suite="mini", repeats=1, date=date)


def test_within_threshold_is_ok():
    delta = compare_scenario("s", _scenario(wall=1.0), _scenario(wall=1.1))
    verdicts = {m.metric: m.verdict for m in delta.metrics}
    assert verdicts["wall_seconds"] == VERDICT_OK
    assert not delta.regressed and not delta.improved


def test_wall_clock_up_is_regression():
    delta = compare_scenario("s", _scenario(wall=1.0), _scenario(wall=1.5))
    verdicts = {m.metric: m.verdict for m in delta.metrics}
    assert verdicts["wall_seconds"] == VERDICT_REGRESSED
    assert delta.regressed


def test_throughput_up_is_improvement():
    delta = compare_scenario("s", _scenario(eps=1000.0),
                             _scenario(eps=1500.0))
    verdicts = {m.metric: m.verdict for m in delta.metrics}
    assert verdicts["events_per_second"] == VERDICT_IMPROVED
    assert delta.improved


def test_missing_metric_is_incomparable_not_regressed():
    current = _scenario()
    current["timed"]["wall_per_sim_second"] = None
    delta = compare_scenario("s", _scenario(), current)
    verdicts = {m.metric: m.verdict for m in delta.metrics}
    assert verdicts["wall_per_sim_second"] == VERDICT_OK


def test_counted_change_is_flagged():
    delta = compare_scenario("s", _scenario(events=500),
                             _scenario(events=501))
    assert delta.counted_verdict == VERDICT_CHANGED
    assert delta.counted_changes == ("events_executed",)


def test_zero_delta_everywhere_is_ok():
    comparison = compare_benches(_payload("2026-01-01", s=_scenario()),
                                 _payload("2026-01-02", s=_scenario()))
    assert comparison.verdict() == VERDICT_OK
    assert comparison.exit_code() == 0


def test_new_and_removed_scenarios_reported_not_failed():
    baseline = _payload("2026-01-01", old=_scenario(), both=_scenario())
    current = _payload("2026-01-02", new=_scenario(), both=_scenario())
    comparison = compare_benches(baseline, current)
    assert comparison.new_scenarios == ["new"]
    assert comparison.removed_scenarios == ["old"]
    assert comparison.exit_code() == 0
    report = comparison_report(comparison)
    assert "new scenarios" in report and "removed scenarios" in report


def test_regression_beats_improvement_in_overall_verdict():
    baseline = _payload("2026-01-01", a=_scenario(wall=1.0),
                        b=_scenario(eps=1000.0))
    current = _payload("2026-01-02", a=_scenario(wall=2.0),
                       b=_scenario(eps=2000.0))
    comparison = compare_benches(baseline, current)
    assert comparison.verdict() == VERDICT_REGRESSED
    assert comparison.exit_code() == 1


def test_strict_counted_fails_the_gate():
    baseline = _payload("2026-01-01", s=_scenario(events=500))
    current = _payload("2026-01-02", s=_scenario(events=999))
    comparison = compare_benches(baseline, current)
    assert comparison.exit_code(strict_counted=False) == 0
    assert comparison.verdict(strict_counted=True) == VERDICT_CHANGED
    assert comparison.exit_code(strict_counted=True) == 1


def test_thresholds_scaled():
    doubled = thresholds_scaled(2.0)
    for metric, (threshold, direction) in DEFAULT_THRESHOLDS.items():
        assert doubled[metric] == (threshold * 2.0, direction)
    with pytest.raises(ValueError):
        thresholds_scaled(0.0)


def test_scaled_thresholds_absorb_borderline_regression():
    baseline = _payload("2026-01-01", s=_scenario(wall=1.0))
    current = _payload("2026-01-02", s=_scenario(wall=1.3))
    tight = compare_benches(baseline, current)
    loose = compare_benches(baseline, current,
                            thresholds=thresholds_scaled(2.0))
    assert tight.verdict() == VERDICT_REGRESSED
    assert loose.verdict() == VERDICT_OK


def test_comparison_table_marks_verdicts():
    baseline = _payload("2026-01-01", s=_scenario(wall=1.0))
    current = _payload("2026-01-02", s=_scenario(wall=2.0))
    table = comparison_table(compare_benches(baseline, current))
    assert "REGRESSED" in table
    assert "| scenario | metric |" in table


def test_only_interesting_hides_noise_rows():
    baseline = _payload("2026-01-01", s=_scenario())
    current = _payload("2026-01-02", s=_scenario())
    table = comparison_table(compare_benches(baseline, current),
                             only_interesting=True)
    assert "wall_seconds" not in table
