"""BlockSampler must reproduce scalar Generator draws bit-for-bit."""

from __future__ import annotations

import pytest

from repro.common.rng import BLOCK_DRAW, BlockSampler, RngFactory


class TestBlockSamplerEquality:
    def test_uniform_matches_scalar_draws_across_block_boundaries(self):
        factory = RngFactory(123)
        fast = BlockSampler(factory.stream("s"), "random", block=16)
        slow = factory.stream("s")
        # 5 blocks plus a partial one: refills must not perturb the sequence
        for _ in range(16 * 5 + 7):
            assert fast.next() == float(slow.random())

    def test_lognormal_matches_scalar_draws(self):
        sigma = 0.05
        factory = RngFactory(9)
        fast = BlockSampler(factory.stream("jitter"), "lognormal",
                            -sigma * sigma / 2, sigma, block=8)
        slow = factory.stream("jitter")
        for _ in range(50):
            assert fast.next() == float(
                slow.lognormal(mean=-sigma * sigma / 2, sigma=sigma))

    def test_returns_python_floats(self):
        fast = BlockSampler(RngFactory(1).stream("s"), "random", block=4)
        assert type(fast.next()) is float

    def test_default_block_size(self):
        assert BLOCK_DRAW == 4096
        fast = BlockSampler(RngFactory(2).stream("s"), "random")
        slow = RngFactory(2).stream("s")
        assert fast.next() == float(slow.random())

    def test_block_of_one_degenerates_to_scalar(self):
        factory = RngFactory(3)
        fast = BlockSampler(factory.stream("s"), "random", block=1)
        slow = factory.stream("s")
        for _ in range(10):
            assert fast.next() == float(slow.random())

    def test_rejects_nonpositive_block(self):
        with pytest.raises(ValueError):
            BlockSampler(RngFactory(0).stream("s"), "random", block=0)
