"""Tests for shared utilities: units, rng, ids, errors."""

from __future__ import annotations

import pytest

from repro.common import errors
from repro.common.ids import IdAllocator, short_hash
from repro.common.rng import RngFactory, derive_seed
from repro.common.units import (
    GIB,
    KIB,
    MIB,
    gbps,
    gib,
    kib,
    mbps,
    mib,
    minutes,
    ms,
    seconds,
    tps,
)


class TestUnits:
    def test_time_helpers(self):
        assert ms(250) == 0.25
        assert seconds(3) == 3.0
        assert minutes(2) == 120.0

    def test_size_helpers(self):
        assert kib(1) == 1024
        assert mib(2) == 2 * MIB
        assert gib(1) == GIB
        assert KIB * 1024 == MIB

    def test_rate_helpers(self):
        assert mbps(8) == 1e6          # 8 Mbps = 1 MB/s
        assert gbps(8) == 1e9
        assert tps(100) == 100.0


class TestRng:
    def test_same_stream_name_same_sequence(self):
        factory = RngFactory(42)
        a = factory.stream("x").random(5)
        b = factory.stream("x").random(5)
        assert list(a) == list(b)

    def test_different_names_differ(self):
        factory = RngFactory(42)
        a = factory.stream("x").random(5)
        b = factory.stream("y").random(5)
        assert list(a) != list(b)

    def test_different_seeds_differ(self):
        a = RngFactory(1).stream("x").random(5)
        b = RngFactory(2).stream("x").random(5)
        assert list(a) != list(b)

    def test_child_namespaces(self):
        factory = RngFactory(42)
        child = factory.child("chain", "quorum")
        a = child.stream("jitter").random(3)
        b = RngFactory(42).child("chain", "quorum").stream("jitter").random(3)
        assert list(a) == list(b)

    def test_derive_seed_is_stable(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")
        assert derive_seed(1, "a", "b") != derive_seed(1, "ab")


class TestIds:
    def test_short_hash_deterministic(self):
        assert short_hash("a", 1) == short_hash("a", 1)
        assert short_hash("a", 1) != short_hash("a", 2)

    def test_short_hash_length(self):
        assert len(short_hash("x", length=8)) == 8

    def test_id_allocator(self):
        alloc = IdAllocator("tx")
        assert alloc.next() == "tx-0"
        assert alloc.next() == "tx-1"

    def test_id_allocator_without_prefix(self):
        alloc = IdAllocator()
        assert alloc.next() == "0"

    def test_next_int(self):
        alloc = IdAllocator()
        assert alloc.next_int() == 0
        assert alloc.next_int() == 1


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if (isinstance(obj, type) and issubclass(obj, Exception)
                    and obj is not errors.ReproError):
                assert issubclass(obj, errors.ReproError), name

    def test_budget_exceeded_is_vm_error(self):
        assert issubclass(errors.BudgetExceededError, errors.VMError)

    def test_sender_quota_is_mempool_full(self):
        assert issubclass(errors.SenderQuotaError, errors.MempoolFullError)

    def test_spec_error_is_configuration_error(self):
        assert issubclass(errors.SpecError, errors.ConfigurationError)
