"""Tests for result analysis and CSV export."""

from __future__ import annotations

import csv
import io

import pytest

from repro.analysis.summary import (
    cdf_points,
    comparison_table,
    format_table,
    results_to_csv,
    throughput_timeseries,
    transactions_to_csv,
)
from repro.core.results import BenchmarkResult, TransactionRecord


def record(uid, submit, commit=None, aborted=False, reason=None):
    return TransactionRecord(
        uid=uid, kind="transfer", contract=None, function=None,
        client="c", submitted_at=submit, committed_at=commit,
        aborted=aborted, abort_reason=reason)


def make_result(chain="quorum", n=10):
    result = BenchmarkResult(chain, "testnet", "w", 10.0, 1.0)
    result.records = [record(i, i * 0.5, commit=i * 0.5 + 1.0)
                      for i in range(n)]
    return result


class TestCsv:
    def test_results_csv_one_row_per_run(self):
        text = results_to_csv([make_result("quorum"), make_result("diem")])
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 2
        assert rows[0]["chain"] == "quorum"
        assert int(rows[0]["committed"]) == 10

    def test_transactions_csv_matches_artifact_format(self):
        text = transactions_to_csv(make_result(n=3))
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["submitted_at", "latency_s", "committed",
                           "abort_reason"]
        assert rows[1] == ["0.00", "1.00", "1", ""]

    def test_aborted_tx_row_has_reason(self):
        result = make_result(n=1)
        result.records.append(record(99, 5.0, aborted=True, reason="expired"))
        text = transactions_to_csv(result)
        assert "expired" in text


class TestTables:
    def test_comparison_table_sorted_by_chain(self):
        table = comparison_table({"solana": make_result("solana"),
                                  "diem": make_result("diem")})
        assert [row["chain"] for row in table] == ["diem", "solana"]

    def test_format_table_renders_all_rows(self):
        table = comparison_table({"a": make_result("a")})
        text = format_table(table)
        assert "chain" in text and "a" in text
        assert text.count("\n") >= 2

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"


class TestSeries:
    def test_timeseries_rows(self):
        rows = throughput_timeseries(make_result())
        assert rows[0].keys() == {"time", "load_tps", "throughput_tps"}
        assert sum(r["throughput_tps"] for r in rows) > 0

    def test_cdf_points_downsample(self):
        result = make_result(n=1000)
        points = cdf_points(result, max_points=50)
        assert len(points) == 50
        assert points[-1]["fraction"] == pytest.approx(1.0)

    def test_cdf_points_empty_result(self):
        empty = BenchmarkResult("q", "t", "w", 10.0, 1.0)
        assert cdf_points(empty) == []
