"""Every ``python -m repro ...`` command quoted in the docs must parse.

Documentation drifts when CLI flags change under it (it happened to
EXPERIMENTS.md once already). This test walks README.md, EXPERIMENTS.md
and everything under docs/, extracts each quoted ``python -m repro``
invocation, and asserts its subcommand still exists and its ``--help``
exits 0 — so a renamed or removed subcommand fails CI with the name of
the file that still quotes it.
"""

from __future__ import annotations

import contextlib
import io
import re
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]

#: markdown files whose quoted commands are contractual
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", REPO_ROOT / "EXPERIMENTS.md"]
    + list((REPO_ROOT / "docs").glob("*.md")))

_COMMAND_RE = re.compile(r"python -m repro\s+([a-z][a-z0-9-]*)")


def quoted_subcommands() -> list:
    """Each (doc file, subcommand) pair found in the documentation."""
    found = []
    for path in DOC_FILES:
        for match in _COMMAND_RE.finditer(path.read_text()):
            found.append((path.name, match.group(1)))
    return sorted(set(found))


def test_docs_actually_quote_commands():
    """Guard the guard: the extraction must keep finding commands."""
    names = {command for _, command in quoted_subcommands()}
    assert {"run", "suite", "sweep", "trace"} <= names


@pytest.mark.parametrize("doc,command", quoted_subcommands(),
                         ids=lambda value: str(value))
def test_quoted_command_parses(doc, command):
    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        with pytest.raises(SystemExit) as excinfo:
            main([command, "--help"])
    assert excinfo.value.code == 0, (
        f"{doc} quotes 'python -m repro {command}' but"
        f" '--help' exited {excinfo.value.code}")
    assert command in stdout.getvalue()
