"""Tests for the five DApp contracts (§3)."""

from __future__ import annotations

import pytest

from repro.chain.receipt import ExecStatus
from repro.chain.state import WorldState
from repro.chain.transaction import invoke
from repro.common.errors import StateLimitError
from repro.contracts.exchange import STOCKS, make_exchange_contract
from repro.contracts.gaming import MAP_SIZE, PLAYER_COUNT, make_dota_contract
from repro.contracts.mobility import (
    DISTANCE_ITERATION_GAS,
    DRIVER_COUNT,
    estimated_call_gas,
    make_uber_contract,
)
from repro.contracts.videoshare import make_youtube_contract
from repro.contracts.webservice import make_counter_contract
from repro.vm.machines import avm, ebpf_vm, geth_evm, move_vm

BIG_GAS = 50_000_000


def deploy(vm_factory, contract_factory):
    vm = vm_factory()
    state = WorldState()
    vm.deploy(state, contract_factory())
    return vm, state


class TestExchange:
    def test_buy_decrements_supply_and_emits(self):
        vm, state = deploy(geth_evm, lambda: make_exchange_contract(supply=10))
        receipt = vm.execute(state, invoke(
            "a", "ExchangeContractGafam", "buyApple", gas_limit=BIG_GAS))
        assert receipt.ok
        assert receipt.return_value == 9
        assert receipt.events[0].name == "BoughtApple"

    def test_all_five_stocks_have_buy_functions(self):
        contract = make_exchange_contract()
        for stock in STOCKS:
            assert f"buy{stock.capitalize()}" in contract.functions()

    def test_check_stock(self):
        vm, state = deploy(geth_evm, lambda: make_exchange_contract(supply=5))
        receipt = vm.execute(state, invoke(
            "a", "ExchangeContractGafam", "checkStock", ("google",),
            gas_limit=BIG_GAS))
        assert receipt.return_value == 5

    def test_sold_out_stock_reverts(self):
        vm, state = deploy(geth_evm, lambda: make_exchange_contract(supply=1))
        first = vm.execute(state, invoke(
            "a", "ExchangeContractGafam", "buyGoogle", gas_limit=BIG_GAS))
        assert first.ok
        second = vm.execute(state, invoke(
            "a", "ExchangeContractGafam", "buyGoogle", gas_limit=BIG_GAS))
        assert second.status is ExecStatus.REVERTED
        assert "no google stock" in second.error

    def test_stocks_are_independent(self):
        vm, state = deploy(geth_evm, lambda: make_exchange_contract(supply=1))
        vm.execute(state, invoke("a", "ExchangeContractGafam", "buyGoogle",
                                 gas_limit=BIG_GAS))
        other = vm.execute(state, invoke(
            "a", "ExchangeContractGafam", "buyApple", gas_limit=BIG_GAS))
        assert other.ok


class TestGaming:
    def test_update_moves_players(self):
        vm, state = deploy(geth_evm, make_dota_contract)
        before = vm.execute(state, invoke(
            "a", "DecentralizedDota", "positions", gas_limit=BIG_GAS))
        vm.execute(state, invoke("a", "DecentralizedDota", "update", (3, 2),
                                 gas_limit=BIG_GAS))
        after = vm.execute(state, invoke(
            "a", "DecentralizedDota", "positions", gas_limit=BIG_GAS))
        assert before.return_value != after.return_value

    def test_players_stay_on_the_map(self):
        # "they turn back whenever they reach the limit of the map" (§3)
        vm, state = deploy(geth_evm, make_dota_contract)
        for _ in range(300):
            vm.execute(state, invoke("a", "DecentralizedDota", "update",
                                     (7, 11), gas_limit=BIG_GAS))
        receipt = vm.execute(state, invoke(
            "a", "DecentralizedDota", "positions", gas_limit=BIG_GAS))
        xs, ys = receipt.return_value
        assert len(xs) == PLAYER_COUNT
        assert all(0 <= x <= MAP_SIZE for x in xs)
        assert all(0 <= y <= MAP_SIZE for y in ys)

    def test_runs_on_every_vm(self):
        # Fig. 2 shows all chains executing the gaming DApp
        for factory in (geth_evm, avm, move_vm, ebpf_vm):
            vm, state = deploy(factory, make_dota_contract)
            receipt = vm.execute(state, invoke(
                "a", "DecentralizedDota", "update", (1, 1), gas_limit=BIG_GAS))
            assert receipt.ok, factory.__name__


class TestWebService:
    def test_add_increments(self):
        vm, state = deploy(geth_evm, make_counter_contract)
        for expected in (1, 2, 3):
            receipt = vm.execute(state, invoke("a", "Counter", "add",
                                               gas_limit=BIG_GAS))
            assert receipt.return_value == expected

    def test_get_reads_count(self):
        vm, state = deploy(geth_evm, make_counter_contract)
        vm.execute(state, invoke("a", "Counter", "add", gas_limit=BIG_GAS))
        receipt = vm.execute(state, invoke("a", "Counter", "get",
                                           gas_limit=BIG_GAS))
        assert receipt.return_value == 1

    def test_runs_on_every_vm(self):
        for factory in (geth_evm, avm, move_vm, ebpf_vm):
            vm, state = deploy(factory, make_counter_contract)
            assert vm.execute(state, invoke("a", "Counter", "add",
                                            gas_limit=BIG_GAS)).ok


class TestMobility:
    def test_check_distance_on_geth(self):
        vm, state = deploy(geth_evm, make_uber_contract)
        receipt = vm.execute(state, invoke(
            "a", "ContractUber", "checkDistance", (5000, 5000),
            gas_limit=BIG_GAS))
        assert receipt.ok
        assert receipt.return_value >= 0
        assert receipt.events[0].name == "Matched"

    def test_call_gas_exceeds_every_hard_budget(self):
        # the Fig. 5 criterion
        from repro.vm.machines import AVM_CAPS, EBPF_CAPS, MOVE_VM_CAPS
        loop_gas = DRIVER_COUNT * DISTANCE_ITERATION_GAS
        for caps in (AVM_CAPS, MOVE_VM_CAPS, EBPF_CAPS):
            assert loop_gas > caps.hard_budget

    def test_budget_exceeded_on_restricted_vms(self):
        # "the client reports an error of type 'budget exceeded'" (§6.4)
        for factory in (avm, move_vm, ebpf_vm):
            vm, state = deploy(factory, make_uber_contract)
            receipt = vm.execute(state, invoke(
                "a", "ContractUber", "checkDistance", (1, 2),
                gas_limit=BIG_GAS))
            assert receipt.status is ExecStatus.BUDGET_EXCEEDED, factory.__name__

    def test_closest_driver_is_found(self):
        vm, state = deploy(geth_evm, lambda: make_uber_contract(driver_count=100))
        receipt = vm.execute(state, invoke(
            "a", "ContractUber", "checkDistance", (0, 0), gas_limit=BIG_GAS))
        assert receipt.ok
        # distance to the closest of 100 drivers on a 10k grid is small
        assert receipt.return_value < 10_000

    def test_avm_single_driver_mode(self):
        # "the PyTeal implementation of ContractUber only stores the
        # position of one driver" (§3); budget still trips on the loop
        vm, state = deploy(avm, make_uber_contract)
        storage = state.storage("contract:ContractUber")
        assert storage.get("mode") == "single"
        assert "xs" not in storage.data

    def test_estimated_call_gas_helper(self):
        assert estimated_call_gas() > DRIVER_COUNT * DISTANCE_ITERATION_GAS

    def test_match_counter_increments(self):
        vm, state = deploy(geth_evm, make_uber_contract)
        vm.execute(state, invoke("a", "ContractUber", "checkDistance",
                                 (1, 1), gas_limit=BIG_GAS))
        receipt = vm.execute(state, invoke("a", "ContractUber", "matches",
                                           gas_limit=BIG_GAS))
        assert receipt.return_value == 1


class TestVideoShare:
    def test_upload_assigns_uploader_and_emits(self):
        vm, state = deploy(geth_evm, make_youtube_contract)
        receipt = vm.execute(state, invoke(
            "alice", "DecentralizedYoutube", "upload", ("cat-video",),
            gas_limit=BIG_GAS))
        assert receipt.ok
        assert receipt.return_value == 1
        storage = state.storage("contract:DecentralizedYoutube")
        assert storage.get("video:1").startswith("alice:cat-video")
        assert receipt.events[0].name == "Uploaded"

    def test_uploads_count(self):
        vm, state = deploy(geth_evm, make_youtube_contract)
        for _ in range(3):
            vm.execute(state, invoke("a", "DecentralizedYoutube", "upload",
                                     ("v",), gas_limit=BIG_GAS))
        receipt = vm.execute(state, invoke(
            "a", "DecentralizedYoutube", "count", gas_limit=BIG_GAS))
        assert receipt.return_value == 3

    def test_cannot_deploy_on_avm(self):
        # §5.2: "we could not implement the video sharing DApp in Teal as we
        # needed data structures that were too large"
        vm = avm()
        with pytest.raises(StateLimitError):
            vm.deploy(WorldState(), make_youtube_contract())

    def test_deploys_on_move_and_ebpf(self):
        for factory in (move_vm, ebpf_vm):
            vm, state = deploy(factory, make_youtube_contract)
            assert vm.execute(state, invoke(
                "a", "DecentralizedYoutube", "upload", ("v",),
                gas_limit=BIG_GAS)).ok
