"""Tests for the deployment configurations (Table 3, left)."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.sim.deployment import (
    COMMUNITY,
    CONFIGURATIONS,
    CONSORTIUM,
    DATACENTER,
    DEVNET,
    TESTNET,
    DeploymentConfig,
    get_configuration,
)
from repro.sim.machine import C5_2XLARGE, C5_9XLARGE, C5_XLARGE
from repro.sim.network import REGIONS


class TestPaperConfigurations:
    """The exact Table 3 settings."""

    def test_datacenter(self):
        assert DATACENTER.node_count == 10
        assert DATACENTER.instance_type is C5_9XLARGE
        assert DATACENTER.regions == ("ohio",)

    def test_testnet(self):
        assert TESTNET.node_count == 10
        assert TESTNET.instance_type is C5_XLARGE
        assert TESTNET.regions == ("ohio",)

    def test_devnet(self):
        assert DEVNET.node_count == 10
        assert DEVNET.instance_type is C5_XLARGE
        assert set(DEVNET.regions) == set(REGIONS)

    def test_community(self):
        assert COMMUNITY.node_count == 200
        assert COMMUNITY.instance_type is C5_XLARGE
        assert set(COMMUNITY.regions) == set(REGIONS)

    def test_consortium(self):
        assert CONSORTIUM.node_count == 200
        assert CONSORTIUM.instance_type is C5_2XLARGE
        assert set(CONSORTIUM.regions) == set(REGIONS)

    def test_five_configurations(self):
        assert sorted(CONFIGURATIONS) == [
            "community", "consortium", "datacenter", "devnet", "testnet"]


class TestEndpoints:
    def test_endpoints_spread_equally(self):
        endpoints = CONSORTIUM.endpoints()
        per_region = {}
        for ep in endpoints:
            per_region[ep.region] = per_region.get(ep.region, 0) + 1
        assert all(count == 20 for count in per_region.values())

    def test_single_region_configs_stay_local(self):
        assert all(ep.region == "ohio" for ep in DATACENTER.endpoints())

    def test_node_regions_helper(self):
        assert DEVNET.node_regions() == [ep.region for ep in DEVNET.endpoints()]


class TestValidation:
    def test_get_configuration(self):
        assert get_configuration("testnet") is TESTNET

    def test_unknown_configuration(self):
        with pytest.raises(ConfigurationError):
            get_configuration("mainnet")

    def test_zero_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            DeploymentConfig("bad", 0, C5_XLARGE, ("ohio",))

    def test_empty_regions_rejected(self):
        with pytest.raises(ConfigurationError):
            DeploymentConfig("bad", 1, C5_XLARGE, ())

    def test_unknown_region_rejected(self):
        with pytest.raises(ConfigurationError):
            DeploymentConfig("bad", 1, C5_XLARGE, ("atlantis",))
