"""Tests for the simulated WAN (Table 3 topology)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import NetworkError
from repro.common.rng import RngFactory
from repro.sim.engine import Engine
from repro.sim.network import (
    REGIONS,
    Endpoint,
    Network,
    bandwidth_between,
    bandwidth_matrix,
    rtt_between,
    rtt_matrix,
    spread_endpoints,
)


class TestTopologyMatrices:
    def test_ten_regions(self):
        assert len(REGIONS) == 10
        assert "ohio" in REGIONS and "cape-town" in REGIONS

    def test_rtt_matrix_is_symmetric(self):
        matrix = rtt_matrix()
        assert np.allclose(matrix, matrix.T)

    def test_bandwidth_matrix_is_symmetric(self):
        matrix = bandwidth_matrix()
        assert np.allclose(matrix, matrix.T)

    def test_paper_rtt_values(self):
        # spot checks against Table 3 (bottom-left, ms)
        assert rtt_between("tokyo", "cape-town") == pytest.approx(0.354)
        assert rtt_between("oregon", "ohio") == pytest.approx(0.0552)
        assert rtt_between("sydney", "cape-town") == pytest.approx(0.4104)

    def test_paper_bandwidth_values(self):
        # spot checks against Table 3 (top-right, Mbps -> bytes/s)
        assert bandwidth_between("cape-town", "tokyo") == pytest.approx(
            26.1e6 / 8)
        assert bandwidth_between("ohio", "oregon") == pytest.approx(105e6 / 8)

    def test_intra_region_is_datacenter_grade(self):
        assert rtt_between("ohio", "ohio") == pytest.approx(0.001)
        assert bandwidth_between("ohio", "ohio") == pytest.approx(10e9 / 8)

    def test_unknown_region_rejected(self):
        with pytest.raises(NetworkError):
            rtt_between("ohio", "mars")

    def test_all_pairs_complete(self):
        matrix = rtt_matrix()
        assert (matrix > 0).all()


class TestMatrixCaching:
    """The topology is static; the matrices are built once at import."""

    def test_accessors_return_fresh_copies(self):
        a, b = rtt_matrix(), rtt_matrix()
        assert a is not b
        assert (a == b).all()

    def test_mutating_a_copy_does_not_leak(self):
        mutated = rtt_matrix()
        before = rtt_between("tokyo", "cape-town")
        mutated[:] = 0.0
        assert rtt_between("tokyo", "cape-town") == before
        bw = bandwidth_matrix()
        bw_before = bandwidth_between("ohio", "oregon")
        bw[:] = 1.0
        assert bandwidth_between("ohio", "oregon") == bw_before

    def test_between_matches_matrix_exactly(self):
        rtt, bw = rtt_matrix(), bandwidth_matrix()
        for i, a in enumerate(REGIONS):
            for j, b in enumerate(REGIONS):
                assert rtt_between(a, b) == float(rtt[i, j])
                assert bandwidth_between(a, b) == float(bw[i, j])


class TestEndpoint:
    def test_valid_region(self):
        Endpoint("n", "tokyo")

    def test_invalid_region_rejected(self):
        with pytest.raises(NetworkError):
            Endpoint("n", "nowhere")


class TestSpreadEndpoints:
    def test_spread_equally(self):
        endpoints = spread_endpoints(20, ["ohio", "tokyo"])
        regions = [e.region for e in endpoints]
        assert regions.count("ohio") == 10
        assert regions.count("tokyo") == 10

    def test_uneven_spread_is_round_robin(self):
        endpoints = spread_endpoints(5, ["ohio", "tokyo"])
        assert [e.region for e in endpoints] == [
            "ohio", "tokyo", "ohio", "tokyo", "ohio"]

    def test_names_are_unique(self):
        endpoints = spread_endpoints(200, REGIONS)
        assert len({e.name for e in endpoints}) == 200

    def test_empty_regions_rejected(self):
        with pytest.raises(NetworkError):
            spread_endpoints(3, [])


class TestDelivery:
    def test_delivery_after_half_rtt(self, engine):
        net = Network(engine, jitter_cv=0.0, model_bandwidth=False)
        src, dst = Endpoint("a", "ohio"), Endpoint("b", "tokyo")
        seen = []
        net.send(src, dst, 0, lambda: seen.append(engine.now))
        engine.run()
        assert seen[0] == pytest.approx(0.1318 / 2, rel=1e-6)

    def test_larger_messages_arrive_later(self, engine):
        net = Network(engine, jitter_cv=0.0)
        src, dst = Endpoint("a", "ohio"), Endpoint("b", "sao-paulo")
        times = {}
        net.send(src, dst, 100, lambda: times.setdefault("small", engine.now))
        net2 = Network(Engine(), jitter_cv=0.0)
        # fresh network so the pipe is not shared between the two sends
        eng2 = net2.engine
        net2.send(src, dst, 10_000_000,
                  lambda: times.setdefault("big", eng2.now))
        engine.run()
        eng2.run()
        assert times["big"] > times["small"]

    def test_bandwidth_pipe_queues_messages(self, engine):
        net = Network(engine, jitter_cv=0.0)
        src, dst = Endpoint("a", "ohio"), Endpoint("b", "cape-town")
        arrivals = []
        size = 1_000_000  # ~0.18 s of transfer at 43.6 Mbps
        for _ in range(3):
            net.send(src, dst, size, lambda: arrivals.append(engine.now))
        engine.run()
        gaps = np.diff(sorted(arrivals))
        expected_transfer = size / (43.6e6 / 8)
        assert all(g == pytest.approx(expected_transfer, rel=0.05)
                   for g in gaps)

    def test_jitter_is_deterministic_per_seed(self):
        def one_run(seed):
            engine = Engine()
            net = Network(engine, RngFactory(seed))
            src, dst = Endpoint("a", "ohio"), Endpoint("b", "milan")
            seen = []
            for _ in range(5):
                net.send(src, dst, 100, lambda: seen.append(engine.now))
            engine.run()
            return seen

        assert one_run(7) == one_run(7)
        assert one_run(7) != one_run(8)

    def test_broadcast_reaches_everyone(self, engine):
        net = Network(engine, jitter_cv=0.0)
        src = Endpoint("src", "ohio")
        dsts = spread_endpoints(6, ["tokyo", "milan"])
        seen = []
        net.broadcast(src, dsts, 100, lambda d: seen.append(d.name))
        engine.run()
        assert sorted(seen) == sorted(d.name for d in dsts)

    def test_negative_size_rejected(self, engine):
        net = Network(engine)
        with pytest.raises(NetworkError):
            net.send(Endpoint("a", "ohio"), Endpoint("b", "ohio"), -1,
                     lambda: None)

    def test_counters(self, engine):
        net = Network(engine)
        src, dst = Endpoint("a", "ohio"), Endpoint("b", "ohio")
        net.send(src, dst, 500, lambda: None)
        net.send(src, dst, 700, lambda: None)
        assert net.messages_sent == 2
        assert net.bytes_sent == 1200


class TestBroadcastBatchEquivalence:
    """broadcast() batches calendar insertions; results must be identical
    to a loop of send() calls with the same seed."""

    def _endpoints(self):
        return spread_endpoints(7)

    def test_delivery_times_match_sequential_sends(self):
        eng_a, eng_b = Engine(), Engine()
        net_a = Network(eng_a, rng_factory=RngFactory(42))
        net_b = Network(eng_b, rng_factory=RngFactory(42))
        eps = self._endpoints()
        src, dsts = eps[0], eps[1:]
        times_broadcast = net_a.broadcast(src, dsts, size=600,
                                          on_delivery=lambda d: None)
        times_sends = [net_b.send(src, d, 600, lambda: None) for d in dsts]
        assert times_broadcast == times_sends

    def test_delivery_order_matches_sequential_sends(self):
        eng_a, eng_b = Engine(), Engine()
        net_a = Network(eng_a, rng_factory=RngFactory(42))
        net_b = Network(eng_b, rng_factory=RngFactory(42))
        eps = self._endpoints()
        src, dsts = eps[0], eps[1:]
        got_a, got_b = [], []
        net_a.broadcast(src, dsts, size=600,
                        on_delivery=lambda d: got_a.append(d.name))
        for d in dsts:
            net_b.send(src, d, 600, (lambda d=d: got_b.append(d.name)))
        eng_a.run()
        eng_b.run()
        assert got_a == got_b

    def test_broadcast_counters_match_sequential_sends(self):
        # broadcast batches the sent counters into one increment; totals
        # must still equal the per-send path
        eng_a, eng_b = Engine(), Engine()
        net_a = Network(eng_a, rng_factory=RngFactory(4))
        net_b = Network(eng_b, rng_factory=RngFactory(4))
        eps = self._endpoints()
        net_a.broadcast(eps[0], eps[1:], size=250,
                        on_delivery=lambda d: None)
        for d in eps[1:]:
            net_b.send(eps[0], d, 250, lambda: None)
        assert net_a.messages_sent == net_b.messages_sent == len(eps) - 1
        assert net_a.bytes_sent == net_b.bytes_sent == 250 * (len(eps) - 1)

    def test_broadcast_consumes_rng_in_destination_order(self):
        # two identically seeded networks broadcasting to the same
        # destinations must leave their jitter streams in the same state
        eng_a, eng_b = Engine(), Engine()
        net_a = Network(eng_a, rng_factory=RngFactory(9))
        net_b = Network(eng_b, rng_factory=RngFactory(9))
        eps = self._endpoints()
        net_a.broadcast(eps[0], eps[1:], size=100,
                        on_delivery=lambda d: None)
        for d in eps[1:]:
            net_b.send(eps[0], d, 100, lambda: None)
        after_a = net_a.send(eps[0], eps[1], 100, lambda: None)
        after_b = net_b.send(eps[0], eps[1], 100, lambda: None)
        assert after_a == after_b
