"""The scale transform must preserve the dimensionless results.

DESIGN.md's laptop-scale substitution claims that running at scale ``s``
(rates x s, capacities x s, per-transaction CPU and bytes x 1/s) preserves
utilisation, stress ratios and therefore throughput ratios and latencies.
These tests measure the same experiment at two scales and require the
*unscaled-equivalent* outputs to agree.
"""

from __future__ import annotations

import pytest

from repro.core.runner import run_trace
from repro.workloads import constant_transfer_trace


def run_at(scale: float, chain: str, rate: float = 600.0,
           duration: float = 30.0):
    return run_trace(chain, "testnet",
                     constant_transfer_trace(rate, duration),
                     accounts=100, scale=scale, seed=5, drain=120)


class TestScaleInvariance:
    @pytest.mark.parametrize("chain", ["quorum", "solana", "avalanche"])
    def test_throughput_is_scale_invariant(self, chain):
        coarse = run_at(0.05, chain)
        fine = run_at(0.2, chain)
        assert coarse.average_throughput == pytest.approx(
            fine.average_throughput, rel=0.2)

    @pytest.mark.parametrize("chain", ["quorum", "solana"])
    def test_latency_is_scale_invariant(self, chain):
        coarse = run_at(0.05, chain)
        fine = run_at(0.2, chain)
        assert coarse.average_latency == pytest.approx(
            fine.average_latency, rel=0.3, abs=0.5)

    def test_commit_ratio_is_scale_invariant_under_overload(self):
        # overload Diem: the drop fraction should not depend on the scale
        coarse = run_trace("diem", "testnet",
                           constant_transfer_trace(5_000, 30),
                           accounts=100, scale=0.05, seed=5, drain=120)
        fine = run_trace("diem", "testnet",
                         constant_transfer_trace(5_000, 30),
                         accounts=100, scale=0.2, seed=5, drain=120)
        assert coarse.commit_ratio == pytest.approx(fine.commit_ratio,
                                                    abs=0.15)

    def test_reported_rates_are_unscaled(self):
        result = run_at(0.1, "quorum", rate=500.0)
        assert result.average_load == pytest.approx(500.0, rel=0.05)
