"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.common.errors import SimulationError
from repro.sim.engine import Engine, PeriodicTask, run_simulation


class TestScheduling:
    def test_starts_at_time_zero(self, engine):
        assert engine.now == 0.0

    def test_schedule_at_runs_at_requested_time(self, engine):
        seen = []
        engine.schedule_at(5.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [5.0]

    def test_schedule_after_is_relative(self, engine):
        seen = []
        engine.schedule_at(3.0, lambda: engine.schedule_after(
            2.0, lambda: seen.append(engine.now)))
        engine.run()
        assert seen == [5.0]

    def test_events_run_in_time_order(self, engine):
        seen = []
        engine.schedule_at(2.0, lambda: seen.append("b"))
        engine.schedule_at(1.0, lambda: seen.append("a"))
        engine.schedule_at(3.0, lambda: seen.append("c"))
        engine.run()
        assert seen == ["a", "b", "c"]

    def test_same_time_events_run_in_insertion_order(self, engine):
        seen = []
        for tag in ("first", "second", "third"):
            engine.schedule_at(1.0, lambda t=tag: seen.append(t))
        engine.run()
        assert seen == ["first", "second", "third"]

    def test_scheduling_in_the_past_raises(self, engine):
        engine.schedule_at(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(1.0, lambda: None)

    def test_negative_delay_raises(self, engine):
        with pytest.raises(SimulationError):
            engine.schedule_after(-0.1, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_run(self, engine):
        seen = []
        handle = engine.schedule_at(1.0, lambda: seen.append("x"))
        handle.cancel()
        engine.run()
        assert seen == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self, engine):
        handle = engine.schedule_at(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        engine.run()

    def test_other_events_survive_a_cancellation(self, engine):
        seen = []
        handle = engine.schedule_at(1.0, lambda: seen.append("a"))
        engine.schedule_at(2.0, lambda: seen.append("b"))
        handle.cancel()
        engine.run()
        assert seen == ["b"]


class TestRun:
    def test_run_until_advances_clock_to_horizon(self, engine):
        engine.schedule_at(1.0, lambda: None)
        engine.run(until=10.0)
        assert engine.now == 10.0

    def test_run_until_does_not_execute_later_events(self, engine):
        seen = []
        engine.schedule_at(1.0, lambda: seen.append("early"))
        engine.schedule_at(20.0, lambda: seen.append("late"))
        engine.run(until=10.0)
        assert seen == ["early"]
        engine.run()
        assert seen == ["early", "late"]

    def test_max_events_bounds_execution(self, engine):
        seen = []

        def reschedule():
            seen.append(engine.now)
            engine.schedule_after(1.0, reschedule)

        engine.schedule_at(0.0, reschedule)
        engine.run(max_events=5)
        assert len(seen) == 5

    def test_step_executes_one_event(self, engine):
        seen = []
        engine.schedule_at(1.0, lambda: seen.append(1))
        engine.schedule_at(2.0, lambda: seen.append(2))
        assert engine.step()
        assert seen == [1]
        assert engine.step()
        assert not engine.step()

    def test_events_executed_counter(self, engine):
        for i in range(7):
            engine.schedule_at(float(i), lambda: None)
        engine.run()
        assert engine.events_executed == 7

    def test_engine_is_not_reentrant(self, engine):
        def recurse():
            with pytest.raises(SimulationError):
                engine.run()

        engine.schedule_at(1.0, recurse)
        engine.run()

    def test_run_simulation_helper(self):
        seen = []
        engine = run_simulation(
            lambda e: e.schedule_at(2.0, lambda: seen.append("done")))
        assert seen == ["done"]
        assert engine.now == 2.0


class TestPeriodicTask:
    def test_fires_at_fixed_period(self, engine):
        seen = []
        PeriodicTask(engine, 1.0, lambda: seen.append(engine.now))
        engine.run(until=3.5)
        assert seen == [0.0, 1.0, 2.0, 3.0]

    def test_stop_halts_future_firings(self, engine):
        seen = []
        task = PeriodicTask(engine, 1.0, lambda: seen.append(engine.now))
        engine.schedule_at(1.5, task.stop)
        engine.run(until=5.0)
        assert seen == [0.0, 1.0]
        assert task.stopped

    def test_stopiteration_stops_the_task(self, engine):
        seen = []

        def tick():
            seen.append(engine.now)
            if len(seen) == 3:
                raise StopIteration

        task = PeriodicTask(engine, 1.0, tick)
        engine.run(until=10.0)
        assert len(seen) == 3
        assert task.stopped

    def test_start_at_offsets_first_firing(self, engine):
        seen = []
        PeriodicTask(engine, 1.0, lambda: seen.append(engine.now),
                     start_at=2.5)
        engine.run(until=4.0)
        assert seen == [2.5, 3.5]

    def test_zero_period_rejected(self, engine):
        with pytest.raises(SimulationError):
            PeriodicTask(engine, 0.0, lambda: None)


class TestScheduleBatch:
    def test_batch_equals_sequential_scheduling(self, engine):
        from repro.sim.engine import Engine

        order_batch, order_seq = [], []
        items = [(0.5, "a"), (0.2, "b"), (0.5, "c"), (0.1, "d")]
        engine.schedule_batch([
            (t, (lambda n=n: order_batch.append(n)), "batch")
            for t, n in items])
        engine.run()
        reference = Engine()
        for t, n in items:
            reference.schedule_at(t, (lambda n=n: order_seq.append(n)))
        reference.run()
        assert order_batch == order_seq == ["d", "b", "a", "c"]

    def test_batch_ties_break_in_item_order(self, engine):
        ran = []
        engine.schedule_batch([
            (1.0, (lambda i=i: ran.append(i)), "tie") for i in range(5)])
        engine.run()
        assert ran == [0, 1, 2, 3, 4]

    def test_batch_interleaves_with_singles_by_sequence(self, engine):
        ran = []
        engine.schedule_at(1.0, lambda: ran.append("single-first"))
        engine.schedule_batch([
            (1.0, lambda: ran.append("batched"), "")])
        engine.schedule_at(1.0, lambda: ran.append("single-last"))
        engine.run()
        assert ran == ["single-first", "batched", "single-last"]

    def test_large_batch_into_populated_calendar(self, engine):
        # large k vs small n takes the extend+heapify path
        ran = []
        engine.schedule_at(0.05, lambda: ran.append(-1))
        engine.schedule_batch([
            (0.1 + i * 0.01, (lambda i=i: ran.append(i)), "bulk")
            for i in range(200)])
        engine.run()
        assert ran == [-1] + list(range(200))

    def test_batch_handles_support_cancellation(self, engine):
        ran = []
        handles = engine.schedule_batch([
            (float(i + 1), (lambda i=i: ran.append(i)), "c")
            for i in range(3)])
        handles[1].cancel()
        engine.run()
        assert ran == [0, 2]

    def test_batch_rejects_past_times(self, engine):
        from repro.common.errors import SimulationError

        engine.schedule_at(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_batch([(1.0, lambda: None, "late")])

    def test_empty_batch_is_a_noop(self, engine):
        assert engine.schedule_batch([]) == []
        assert engine.pending == 0
