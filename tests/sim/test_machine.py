"""Tests for the machine (instance type) model."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.sim.engine import Engine
from repro.sim.machine import (
    C5_2XLARGE,
    C5_9XLARGE,
    C5_XLARGE,
    INSTANCE_TYPES,
    InstanceType,
    Machine,
)
from repro.sim.network import Endpoint


class TestInstanceTypes:
    def test_paper_instance_specs(self):
        # §5.1: c5.xlarge ... to c5.9xlarge (36 vCPUs, 72 GiB)
        assert C5_9XLARGE.vcpus == 36
        assert C5_9XLARGE.memory == 72 * 1024**3
        assert C5_2XLARGE.vcpus == 8
        assert C5_2XLARGE.memory == 16 * 1024**3
        assert C5_XLARGE.vcpus == 4

    def test_registry(self):
        assert INSTANCE_TYPES["c5.xlarge"] is C5_XLARGE

    def test_invalid_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            InstanceType("bad", vcpus=0, memory=1)
        with pytest.raises(ConfigurationError):
            InstanceType("bad", vcpus=1, memory=0)


@pytest.fixture
def machine(engine):
    return Machine(engine, Endpoint("m", "ohio"), C5_XLARGE)


class TestCpu:
    def test_single_job_completes_after_cost(self, engine, machine):
        finish = machine.execute(2.0)
        assert finish == pytest.approx(2.0)

    def test_jobs_fill_cores_before_queueing(self, engine, machine):
        # 4 vCPUs: four 1-second jobs run in parallel, the fifth queues
        finishes = [machine.execute(1.0) for _ in range(5)]
        assert finishes[:4] == [pytest.approx(1.0)] * 4
        assert finishes[4] == pytest.approx(2.0)

    def test_more_cores_more_parallelism(self, engine):
        big = Machine(engine, Endpoint("big", "ohio"), C5_9XLARGE)
        finishes = [big.execute(1.0) for _ in range(36)]
        assert all(f == pytest.approx(1.0) for f in finishes)

    def test_completion_callback_fires(self, engine, machine):
        seen = []
        machine.execute(1.5, on_done=lambda: seen.append(engine.now))
        engine.run()
        assert seen == [1.5]

    def test_negative_cost_rejected(self, machine):
        with pytest.raises(SimulationError):
            machine.execute(-1.0)

    def test_counters(self, engine, machine):
        machine.execute(1.0)
        machine.execute(0.5)
        assert machine.jobs_executed == 2
        assert machine.cpu_seconds_total == pytest.approx(1.5)

    def test_backlog_reports_queued_work(self, engine, machine):
        for _ in range(8):
            machine.execute(1.0)
        assert machine.backlog() == pytest.approx(2.0)

    def test_speed_factor_scales_execution(self, engine):
        fast_type = InstanceType("fast", vcpus=1, memory=1024,
                                 speed_factor=2.0)
        fast = Machine(engine, Endpoint("f", "ohio"), fast_type)
        assert fast.execute(1.0) == pytest.approx(0.5)


class TestMemory:
    def test_allocate_within_capacity(self, machine):
        assert machine.allocate(1024)
        assert machine.memory_used == 1024

    def test_allocate_beyond_capacity_fails(self, machine):
        assert not machine.allocate(machine.instance_type.memory + 1)
        assert machine.memory_used == 0

    def test_release_frees_memory(self, machine):
        machine.allocate(2048)
        machine.release(1024)
        assert machine.memory_used == 1024

    def test_release_never_goes_negative(self, machine):
        machine.release(1 << 40)
        assert machine.memory_used == 0

    def test_negative_allocation_rejected(self, machine):
        with pytest.raises(SimulationError):
            machine.allocate(-1)


class TestUtilization:
    def test_idle_machine_has_zero_utilization(self, machine):
        assert machine.utilization(1.0) == 0.0

    def test_saturated_machine_reports_full(self, engine, machine):
        for _ in range(16):
            machine.execute(1.0)
        assert machine.utilization(1.0) == 1.0

    def test_window_must_be_positive(self, machine):
        with pytest.raises(SimulationError):
            machine.utilization(0.0)
