"""Tests for the machine (instance type) model."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.sim.engine import Engine
from repro.sim.machine import (
    C5_2XLARGE,
    C5_9XLARGE,
    C5_XLARGE,
    INSTANCE_TYPES,
    InstanceType,
    Machine,
    MemoryLedger,
)
from repro.sim.network import Endpoint


class TestInstanceTypes:
    def test_paper_instance_specs(self):
        # §5.1: c5.xlarge ... to c5.9xlarge (36 vCPUs, 72 GiB)
        assert C5_9XLARGE.vcpus == 36
        assert C5_9XLARGE.memory == 72 * 1024**3
        assert C5_2XLARGE.vcpus == 8
        assert C5_2XLARGE.memory == 16 * 1024**3
        assert C5_XLARGE.vcpus == 4

    def test_registry(self):
        assert INSTANCE_TYPES["c5.xlarge"] is C5_XLARGE

    def test_invalid_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            InstanceType("bad", vcpus=0, memory=1)
        with pytest.raises(ConfigurationError):
            InstanceType("bad", vcpus=1, memory=0)


@pytest.fixture
def machine(engine):
    return Machine(engine, Endpoint("m", "ohio"), C5_XLARGE)


class TestCpu:
    def test_single_job_completes_after_cost(self, engine, machine):
        finish = machine.execute(2.0)
        assert finish == pytest.approx(2.0)

    def test_jobs_fill_cores_before_queueing(self, engine, machine):
        # 4 vCPUs: four 1-second jobs run in parallel, the fifth queues
        finishes = [machine.execute(1.0) for _ in range(5)]
        assert finishes[:4] == [pytest.approx(1.0)] * 4
        assert finishes[4] == pytest.approx(2.0)

    def test_more_cores_more_parallelism(self, engine):
        big = Machine(engine, Endpoint("big", "ohio"), C5_9XLARGE)
        finishes = [big.execute(1.0) for _ in range(36)]
        assert all(f == pytest.approx(1.0) for f in finishes)

    def test_completion_callback_fires(self, engine, machine):
        seen = []
        machine.execute(1.5, on_done=lambda: seen.append(engine.now))
        engine.run()
        assert seen == [1.5]

    def test_negative_cost_rejected(self, machine):
        with pytest.raises(SimulationError):
            machine.execute(-1.0)

    def test_counters(self, engine, machine):
        machine.execute(1.0)
        machine.execute(0.5)
        assert machine.jobs_executed == 2
        assert machine.cpu_seconds_total == pytest.approx(1.5)

    def test_backlog_reports_queued_work(self, engine, machine):
        for _ in range(8):
            machine.execute(1.0)
        assert machine.backlog() == pytest.approx(2.0)

    def test_speed_factor_scales_execution(self, engine):
        fast_type = InstanceType("fast", vcpus=1, memory=1024,
                                 speed_factor=2.0)
        fast = Machine(engine, Endpoint("f", "ohio"), fast_type)
        assert fast.execute(1.0) == pytest.approx(0.5)


class TestMemory:
    def test_allocate_within_capacity(self, machine):
        assert machine.allocate(1024)
        assert machine.memory_used == 1024

    def test_allocate_beyond_capacity_fails(self, machine):
        assert not machine.allocate(machine.instance_type.memory + 1)
        assert machine.memory_used == 0

    def test_release_frees_memory(self, machine):
        machine.allocate(2048)
        machine.release(1024)
        assert machine.memory_used == 1024

    def test_release_never_goes_negative(self, machine):
        machine.release(1 << 40)
        assert machine.memory_used == 0

    def test_negative_allocation_rejected(self, machine):
        with pytest.raises(SimulationError):
            machine.allocate(-1)


class TestMemoryLedger:
    def test_charge_release_and_levels(self):
        ledger = MemoryLedger(1000)
        ledger.charge("mempool", 300)
        ledger.charge("mempool", 200)
        ledger.charge("state", 100)
        assert ledger.level("mempool") == 500
        assert ledger.total == 600
        ledger.release("mempool", 450)
        assert ledger.level("mempool") == 50
        assert ledger.breakdown() == {"mempool": 50, "state": 100}

    def test_release_clamps_at_zero(self):
        ledger = MemoryLedger(1000)
        ledger.charge("x", 10)
        ledger.release("x", 100)
        assert ledger.level("x") == 0

    def test_set_level_is_absolute(self):
        ledger = MemoryLedger(1000)
        ledger.set_level("consensus", 700)
        ledger.set_level("consensus", 200)
        assert ledger.level("consensus") == 200

    def test_pressure_can_exceed_one(self):
        ledger = MemoryLedger(100)
        ledger.set_level("x", 250)
        assert ledger.pressure == pytest.approx(2.5)

    def test_hysteresis_between_water_marks(self):
        ledger = MemoryLedger(100, high_water=0.9, low_water=0.75)
        ledger.set_level("x", 89)
        assert ledger.state == "ok"
        ledger.set_level("x", 90)
        assert ledger.state == "high"
        # between low and high water: stays high (no flapping)
        ledger.set_level("x", 80)
        assert ledger.state == "high"
        ledger.set_level("x", 74)
        assert ledger.state == "ok"
        assert ledger.high_water_crossings == 1

    def test_peak_pressure_is_sticky(self):
        ledger = MemoryLedger(100)
        ledger.set_level("x", 95)
        ledger.set_level("x", 10)
        assert ledger.peak_pressure == pytest.approx(0.95)

    def test_negative_amounts_rejected(self):
        ledger = MemoryLedger(100)
        with pytest.raises(SimulationError):
            ledger.charge("x", -1)
        with pytest.raises(SimulationError):
            ledger.release("x", -1)
        with pytest.raises(SimulationError):
            ledger.set_level("x", -1)

    def test_bad_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryLedger(0)
        with pytest.raises(ConfigurationError):
            MemoryLedger(100, high_water=0.5, low_water=0.9)

    def test_machine_memory_margin_scales_capacity(self, engine):
        small = Machine(engine, Endpoint("m", "ohio"), C5_XLARGE,
                        memory_margin=0.5)
        assert small.memory.capacity == C5_XLARGE.memory // 2
        with pytest.raises(ConfigurationError):
            Machine(engine, Endpoint("m", "ohio"), C5_XLARGE,
                    memory_margin=0.0)

    def test_legacy_allocate_backed_by_ledger(self, engine, machine):
        machine.allocate(4096)
        assert machine.memory.level("general") == 4096
        assert machine.memory_available == machine.memory.capacity - 4096


class TestUtilization:
    def test_idle_machine_has_zero_utilization(self, machine):
        assert machine.utilization(1.0) == 0.0

    def test_saturated_machine_reports_full(self, engine, machine):
        for _ in range(16):
            machine.execute(1.0)
        assert machine.utilization(1.0) == 1.0

    def test_window_must_be_positive(self, machine):
        with pytest.raises(SimulationError):
            machine.utilization(0.0)
