"""The fault_window repair/disruption classification edge cases.

A schedule (or result event log) containing only *repairs* — recoveries,
heals, link restores — never degraded anything: its window must be
``None``, not a zero-length disruption at the first repair's timestamp.
That edge case used to make the degradation metrics of recover-only
schedules report a spurious dip at the recovery time.
"""

from __future__ import annotations

import pytest

from repro.common.errors import SpecError
from repro.core.results import BenchmarkResult
from repro.sim.faults import FaultSchedule, events_from_dicts


def result_with(fault_events):
    return BenchmarkResult(chain="quorum", configuration="testnet",
                           workload_name="w", duration=90.0, scale=1.0,
                           fault_events=fault_events)


class TestScheduleWindow:
    def test_recover_only_schedule_has_no_window(self):
        schedule = FaultSchedule.from_dicts([
            {"at": 60, "kind": "recover", "nodes": [0, 1]}])
        assert schedule.fault_window() is None

    def test_heal_only_schedule_has_no_window(self):
        schedule = FaultSchedule.from_dicts([{"at": 45, "kind": "heal"}])
        assert schedule.fault_window() is None

    def test_link_restore_only_is_a_repair(self):
        schedule = FaultSchedule.from_dicts([
            {"at": 30, "kind": "link_degrade", "src": 0, "dst": 1,
             "extra_latency": 0, "drop_rate": 0}])
        assert schedule.fault_window() is None

    def test_crash_then_recover_spans_both(self):
        schedule = FaultSchedule.from_dicts([
            {"at": 30, "kind": "crash", "node": 0},
            {"at": 60, "kind": "recover", "node": 0}])
        assert schedule.fault_window() == (30.0, 60.0)

    def test_early_recover_does_not_open_the_window(self):
        # a recovery *before* the first disruption is a leftover repair;
        # the window must open at the crash, not the recovery
        schedule = FaultSchedule.from_dicts([
            {"at": 10, "kind": "recover", "node": 1},
            {"at": 30, "kind": "crash", "node": 0},
            {"at": 60, "kind": "recover", "node": 0}])
        assert schedule.fault_window() == (30.0, 60.0)

    def test_region_outage_closes_at_duration_end(self):
        schedule = FaultSchedule.from_dicts([
            {"at": 10, "kind": "region_outage", "region": "tokyo",
             "duration": 20}])
        assert schedule.fault_window() == (10.0, 30.0)

    def test_degrading_link_opens_the_window(self):
        schedule = FaultSchedule.from_dicts([
            {"at": 5, "kind": "link_degrade", "src": 0, "dst": 1,
             "extra_latency": 0.2, "drop_rate": 0.0}])
        assert schedule.fault_window() == (5.0, 5.0)


class TestScheduleValidation:
    def test_unknown_crash_node_rejected(self):
        schedule = FaultSchedule.from_dicts([
            {"at": 30, "kind": "crash", "node": 42}])
        with pytest.raises(SpecError, match="unknown node 42"):
            schedule.validate({0, 1, 2, 3})

    def test_known_nodes_and_regions_accepted(self):
        schedule = FaultSchedule.from_dicts([
            {"at": 30, "kind": "crash", "node": 0},
            {"at": 40, "kind": "region_outage", "region": "tokyo",
             "duration": 5},
            {"at": 50, "kind": "link_degrade", "src": 0, "dst": "tokyo",
             "extra_latency": 0.1, "drop_rate": 0.0}])
        schedule.validate({0, 1, "tokyo"}, regions=("tokyo",))

    def test_unknown_outage_region_rejected(self):
        schedule = FaultSchedule.from_dicts([
            {"at": 40, "kind": "region_outage", "region": "atlantis",
             "duration": 5}])
        with pytest.raises(SpecError, match="atlantis"):
            schedule.validate({0, 1}, regions=("tokyo",))


class TestResultWindow:
    def test_recover_only_events_have_no_window(self):
        result = result_with([{"at": 60.0, "kind": "recover", "node": 0}])
        assert result.fault_window() is None
        assert result.degradation() is None

    def test_crash_recover_window(self):
        result = result_with([
            {"at": 30.0, "kind": "crash", "node": 0},
            {"at": 60.0, "kind": "recover", "node": 0}])
        assert result.fault_window() == (30.0, 60.0)

    def test_byzantine_summary_counts_as_disruption(self):
        result = result_with([
            {"at": 10.0, "kind": "equivocate", "node": 0,
             "duration": 15.0}])
        assert result.fault_window() == (10.0, 25.0)

    def test_link_restore_summary_is_a_repair(self):
        result = result_with([
            {"at": 20.0, "kind": "link_degrade", "src": 0, "dst": 1,
             "extra_latency": 0.0, "drop_rate": 0.0}])
        assert result.fault_window() is None
