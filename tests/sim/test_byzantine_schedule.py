"""The Byzantine schedule dialect: parsing, validation, forking."""

from __future__ import annotations

import pytest

from repro.common.errors import SpecError
from repro.consensus.base import Message
from repro.sim.byzantine import (
    EQUIVOCATION_MARK,
    ByzantineSchedule,
    CensorLeader,
    DelayReorder,
    Equivocate,
    Silence,
    byzantine_event_kind,
    byzantine_events_from_dicts,
    equivocal_variant,
)


class TestParsing:
    def test_all_kinds_parse(self):
        events = byzantine_events_from_dicts([
            {"start": 10, "stop": 30, "kind": "equivocate", "node": 0},
            {"start": 10, "stop": 30, "kind": "silence", "nodes": [1, 2]},
            {"start": 5, "stop": 20, "kind": "delay_reorder", "node": 3,
             "min_delay": 0.1, "max_delay": 0.4},
            {"start": 0, "stop": 15, "kind": "censor_leader", "node": 1},
        ])
        kinds = sorted(byzantine_event_kind(e) for e in events)
        assert kinds == ["censor_leader", "delay_reorder", "equivocate",
                         "silence", "silence"]

    def test_nodes_list_expands_to_one_event_per_node(self):
        events = byzantine_events_from_dicts([
            {"start": 0, "stop": 5, "kind": "silence", "nodes": [0, 1, 2]}])
        assert [e.node for e in events] == [0, 1, 2]
        assert all(isinstance(e, Silence) for e in events)

    def test_delay_bounds_carried(self):
        (event,) = byzantine_events_from_dicts([
            {"start": 0, "stop": 5, "kind": "delay_reorder", "node": 0,
             "min_delay": 0.2, "max_delay": 0.3}])
        assert (event.min_delay, event.max_delay) == (0.2, 0.3)

    def test_schedule_sorts_events(self):
        schedule = ByzantineSchedule((
            Silence(start=5.0, stop=9.0, node=1),
            Equivocate(start=1.0, stop=4.0, node=0)))
        assert [e.start for e in schedule] == [1.0, 5.0]


class TestFailFast:
    """Satellite: malformed specs die at parse time with a SpecError."""

    def test_entry_must_be_mapping(self):
        with pytest.raises(SpecError, match="mapping"):
            byzantine_events_from_dicts(["equivocate"])

    def test_missing_keys(self):
        with pytest.raises(SpecError, match="'start', 'stop' and 'kind'"):
            byzantine_events_from_dicts([{"kind": "silence", "node": 0}])

    def test_unknown_kind(self):
        with pytest.raises(SpecError, match="unknown byzantine kind"):
            byzantine_events_from_dicts([
                {"start": 0, "stop": 5, "kind": "bribe", "node": 0}])

    def test_node_must_be_index(self):
        with pytest.raises(SpecError, match="replica index"):
            byzantine_events_from_dicts([
                {"start": 0, "stop": 5, "kind": "silence",
                 "node": "validator-0"}])

    def test_missing_node(self):
        with pytest.raises(SpecError, match="'node' or 'nodes'"):
            byzantine_events_from_dicts([
                {"start": 0, "stop": 5, "kind": "silence"}])

    def test_window_must_open_before_close(self):
        with pytest.raises(SpecError, match="close after it opens"):
            Equivocate(start=5.0, stop=5.0, node=0)

    def test_window_cannot_open_before_zero(self):
        with pytest.raises(SpecError, match="before t=0"):
            Silence(start=-1.0, stop=5.0, node=0)

    def test_delay_bounds_checked(self):
        with pytest.raises(SpecError, match="min_delay"):
            DelayReorder(start=0.0, stop=5.0, node=0, min_delay=-0.1)
        with pytest.raises(SpecError, match="max_delay"):
            DelayReorder(start=0.0, stop=5.0, node=0,
                         min_delay=0.5, max_delay=0.1)

    def test_validate_rejects_unknown_node(self):
        schedule = ByzantineSchedule((
            Equivocate(start=0.0, stop=5.0, node=7),))
        with pytest.raises(SpecError) as excinfo:
            schedule.validate(4)
        # the offending event's summary is in the message
        assert "equivocate" in str(excinfo.value)
        assert "7" in str(excinfo.value)

    def test_validate_accepts_in_range(self):
        schedule = ByzantineSchedule((
            Equivocate(start=0.0, stop=5.0, node=3),))
        schedule.validate(4)


class TestScheduleQueries:
    def schedule(self):
        return ByzantineSchedule((
            Equivocate(start=2.0, stop=8.0, node=0),
            Silence(start=4.0, stop=10.0, node=2)))

    def test_window_spans_all_events(self):
        assert self.schedule().window() == (2.0, 10.0)
        assert ByzantineSchedule().window() is None

    def test_nodes(self):
        assert self.schedule().nodes() == (0, 2)

    def test_active_nodes_respects_half_open_windows(self):
        schedule = self.schedule()
        assert schedule.active_nodes(1.0) == set()
        assert schedule.active_nodes(2.0) == {0}
        assert schedule.active_nodes(5.0) == {0, 2}
        assert schedule.active_nodes(8.0) == {2}
        assert schedule.active_nodes(10.0) == set()

    def test_active_fraction(self):
        schedule = self.schedule()
        assert schedule.active_fraction(5.0, 4) == pytest.approx(0.5)
        assert schedule.active_fraction(1.0, 4) == 0.0
        assert schedule.active_fraction(5.0, 0) == 0.0

    def test_summaries_share_the_fault_event_envelope(self):
        summaries = self.schedule().summaries()
        assert summaries[0] == {"at": 2.0, "kind": "equivocate",
                                "node": 0, "duration": 6.0}
        assert all({"at", "kind", "node", "duration"} <= set(s)
                   for s in summaries)


class TestEquivocalVariant:
    def test_marked_variant_forks_value_fields(self):
        message = Message(kind="proposal", sender=0,
                         payload={"height": 3, "value": "tx-9"})
        forked, changed = equivocal_variant(message, marked=True)
        assert changed
        assert forked.payload["value"] == "tx-9" + EQUIVOCATION_MARK
        assert forked.payload["height"] == 3
        # the original is never mutated
        assert message.payload["value"] == "tx-9"

    def test_unmarked_variant_strips_the_mark(self):
        message = Message(kind="proposal", sender=0,
                         payload={"value": "tx-9" + EQUIVOCATION_MARK})
        plain, changed = equivocal_variant(message, marked=False)
        assert changed
        assert plain.payload["value"] == "tx-9"

    def test_certificate_subtrees_pass_through(self):
        justify = {"view": 2, "value": "tx-1"}
        message = Message(kind="vote", sender=1,
                         payload={"value": "tx-2", "justify": justify})
        forked, changed = equivocal_variant(message, marked=True)
        assert changed
        # the justify subtree is the same object, not a forked copy
        assert forked.payload["justify"] is justify

    def test_no_value_fields_means_no_new_message(self):
        message = Message(kind="ack", sender=2, payload={"term": 4})
        same, changed = equivocal_variant(message, marked=True)
        assert not changed
        assert same is message
