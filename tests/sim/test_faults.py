"""Tests for the declarative fault-injection subsystem."""

from __future__ import annotations

import pytest

from repro.common.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.faults import (
    FaultInjector,
    FaultSchedule,
    Heal,
    LinkDegrade,
    NodeCrash,
    NodeRecover,
    Partition,
    RegionOutage,
    event_summary,
    events_from_dicts,
)
from repro.sim.network import Endpoint, Network


class TestScheduleParsing:
    def test_crash_and_recover_expand_per_node(self):
        events = events_from_dicts([
            {"at": 30, "kind": "crash", "nodes": [0, 1, 2]},
            {"at": 60, "kind": "recover", "nodes": [0, 1, 2]},
        ])
        assert len(events) == 6
        assert all(isinstance(e, NodeCrash) for e in events[:3])
        assert all(isinstance(e, NodeRecover) for e in events[3:])

    def test_single_node_form(self):
        (event,) = events_from_dicts([{"at": 5, "kind": "crash", "node": 7}])
        assert event == NodeCrash(5.0, 7)

    def test_all_kinds_parse(self):
        events = events_from_dicts([
            {"at": 1, "kind": "partition", "groups": [[0, 1], [2, 3]]},
            {"at": 2, "kind": "heal"},
            {"at": 3, "kind": "region_outage", "region": "tokyo",
             "duration": 10},
            {"at": 4, "kind": "link_degrade", "src": "ohio", "dst": "tokyo",
             "extra_latency": 0.2, "drop_rate": 0.1},
        ])
        assert [type(e) for e in events] == [
            Partition, Heal, RegionOutage, LinkDegrade]

    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError):
            events_from_dicts([{"at": 1, "kind": "meteor-strike"}])

    def test_missing_fields_rejected(self):
        with pytest.raises(SimulationError):
            events_from_dicts([{"kind": "crash", "node": 0}])
        with pytest.raises(SimulationError):
            events_from_dicts([{"at": 1, "kind": "crash"}])

    def test_schedule_sorts_events_by_time(self):
        schedule = FaultSchedule((Heal(60.0), NodeCrash(30.0, 0)))
        assert [e.time for e in schedule] == [30.0, 60.0]

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            FaultSchedule((NodeCrash(-1.0, 0),))

    def test_partition_validation(self):
        with pytest.raises(SimulationError):
            Partition(0.0, (((0, 1),)))  # one group is not a partition
        with pytest.raises(SimulationError):
            Partition(0.0, ((0, 1), (1, 2)))  # duplicate membership

    def test_region_outage_needs_positive_duration(self):
        with pytest.raises(SimulationError):
            RegionOutage(0.0, "tokyo", 0.0)

    def test_link_degrade_validation(self):
        with pytest.raises(SimulationError):
            LinkDegrade(0.0, "a", "b", extra_latency=-1.0)
        with pytest.raises(SimulationError):
            LinkDegrade(0.0, "a", "b", drop_rate=1.5)

    def test_fault_window_covers_outage_duration(self):
        schedule = FaultSchedule.from_dicts([
            {"at": 10, "kind": "region_outage", "region": "tokyo",
             "duration": 45},
            {"at": 20, "kind": "crash", "node": 0},
        ])
        assert schedule.fault_window() == (10.0, 55.0)

    def test_empty_schedule_has_no_window(self):
        assert FaultSchedule().fault_window() is None

    def test_summaries_are_json_friendly(self):
        summary = event_summary(LinkDegrade(3.0, "a", "b", 0.2, 0.1))
        assert summary == {"at": 3.0, "kind": "link_degrade", "src": "a",
                           "dst": "b", "extra_latency": 0.2, "drop_rate": 0.1}


class TestInjectorTransitions:
    def test_crash_and_recover(self):
        injector = FaultInjector()
        injector.crash(2)
        assert injector.is_crashed(2)
        assert not injector.node_available(2)
        injector.recover(2)
        assert injector.node_available(2)

    def test_partition_separates_groups_only(self):
        injector = FaultInjector()
        injector.partition([[0, 1], [2, 3]])
        assert injector.reachable(0, 1)
        assert not injector.reachable(0, 2)
        # unlisted nodes share the implicit rest group
        assert injector.reachable(7, 8)
        assert not injector.reachable(0, 7)
        injector.heal()
        assert injector.reachable(0, 2)

    def test_region_outage_blocks_by_region(self):
        injector = FaultInjector()
        injector.region_outage("tokyo")
        assert not injector.node_available(0, "tokyo")
        assert injector.node_available(0, "ohio")
        assert not injector.reachable(0, 1, "ohio", "tokyo")
        injector.region_heal("tokyo")
        assert injector.reachable(0, 1, "ohio", "tokyo")

    def test_link_degrade_is_undirected_and_restorable(self):
        injector = FaultInjector()
        injector.degrade_link("a", "b", 0.5, 0.25)
        assert injector.link_state("b", "a") == (0.5, 0.25)
        injector.degrade_link("a", "b", 0.0, 0.0)
        assert injector.link_state("a", "b") == (0.0, 0.0)

    def test_largest_side_available(self):
        injector = FaultInjector()
        nodes = list(range(10))
        assert injector.largest_side_available(nodes) == 10
        injector.crash(0)
        injector.crash(1)
        assert injector.largest_side_available(nodes) == 8
        injector.partition([[2, 3, 4], [5, 6, 7, 8, 9]])
        assert injector.largest_side_available(nodes) == 5

    def test_listeners_hear_transitions(self):
        injector = FaultInjector()
        heard = []
        injector.subscribe(lambda kind, payload: heard.append(kind))
        injector.crash(0)
        injector.recover(0)
        injector.heal()
        assert heard == ["crash", "recover", "heal"]


class TestScheduleOnEngine:
    def test_events_fire_at_their_times(self):
        engine = Engine()
        schedule = FaultSchedule.from_dicts([
            {"at": 10, "kind": "crash", "node": 0},
            {"at": 20, "kind": "recover", "node": 0},
        ])
        injector = FaultInjector(schedule)
        injector.register(engine)
        engine.run(until=15.0)
        assert injector.is_crashed(0)
        engine.run(until=25.0)
        assert not injector.is_crashed(0)
        assert [kind for _, kind in injector.events_applied] == [
            "crash", "recover"]

    def test_region_outage_auto_heals(self):
        engine = Engine()
        injector = FaultInjector(FaultSchedule.from_dicts([
            {"at": 5, "kind": "region_outage", "region": "tokyo",
             "duration": 10},
        ]))
        injector.register(engine)
        engine.run(until=7.0)
        assert injector.region_down("tokyo")
        engine.run(until=20.0)
        assert not injector.region_down("tokyo")

    def test_register_is_idempotent(self):
        engine = Engine()
        injector = FaultInjector(FaultSchedule((NodeCrash(5.0, 0),)))
        injector.register(engine)
        injector.register(engine)
        engine.run(until=10.0)
        assert len(injector.events_applied) == 1


class TestNetworkIntegration:
    def _network(self):
        engine = Engine()
        network = Network(engine, jitter_cv=0.0)
        injector = FaultInjector()
        network.attach_faults(injector)
        a = Endpoint("a", "ohio")
        b = Endpoint("b", "tokyo")
        return engine, network, injector, a, b

    def test_crashed_endpoint_blocks_sends(self):
        engine, network, injector, a, b = self._network()
        injector.crash("b")
        delivered = []
        t = network.send(a, b, 100, lambda: delivered.append(1))
        engine.run()
        assert t == float("inf")
        assert delivered == []
        assert network.messages_blocked == 1

    def test_partition_blocks_cross_group_sends(self):
        engine, network, injector, a, b = self._network()
        injector.partition([["a"], ["b"]])
        assert network.send(a, b, 100, lambda: None) == float("inf")
        injector.heal()
        assert network.send(a, b, 100, lambda: None) < float("inf")

    def test_region_partition_applies_to_endpoints(self):
        engine, network, injector, a, b = self._network()
        injector.partition([["ohio"], ["tokyo"]])
        assert network.send(a, b, 100, lambda: None) == float("inf")

    def test_link_degradation_adds_latency(self):
        engine, network, injector, a, b = self._network()
        base = network.send(a, b, 100, lambda: None) - engine.now
        injector.degrade_link("a", "b", extra_latency=0.75, drop_rate=0.0)
        degraded = network.send(a, b, 100, lambda: None) - engine.now
        assert degraded == pytest.approx(base + 0.75, abs=1e-2)

    def test_link_drop_rate_loses_messages(self):
        engine, network, injector, a, b = self._network()
        injector.degrade_link("ohio", "tokyo", extra_latency=0.0,
                              drop_rate=1.0)
        assert network.send(a, b, 100, lambda: None) == float("inf")
        assert network.messages_fault_dropped == 1

    def test_without_injector_nothing_changes(self):
        engine = Engine()
        network = Network(engine, jitter_cv=0.0)
        a, b = Endpoint("a", "ohio"), Endpoint("b", "tokyo")
        assert network.send(a, b, 100, lambda: None) < float("inf")
        assert network.messages_blocked == 0
