"""Client retry/backoff policy tests (§5.2 submission loops)."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.blockchains.base import (
    BlockchainNetwork,
    ExperimentScale,
    RetryPolicy,
)
from repro.blockchains.registry import chain_params
from repro.chain.mempool import MempoolPolicy
from repro.chain.transaction import transfer
from repro.common.errors import ConfigurationError
from repro.common.rng import RngFactory
from repro.sim.deployment import TESTNET
from repro.sim.engine import Engine
from repro.sim.faults import FaultInjector, FaultSchedule


def make_net(retry_policy=None, capacity=None, tx_expiry=None, seed=1):
    params = replace(
        chain_params("quorum", TESTNET),
        retry_policy=retry_policy,
        mempool_policy=MempoolPolicy(capacity=capacity),
        tx_expiry=tx_expiry)
    engine = Engine()
    net = BlockchainNetwork(params, TESTNET, engine,
                            scale=ExperimentScale(1.0), seed=seed)
    net.create_accounts(50)
    return engine, net


def quorum_stall_schedule(recover_at):
    """Crash f+1 = 4 of the 10 testnet validators, denying the n-f quorum."""
    victims = [0, 1, 2, 3]
    events = [{"at": 0.0, "kind": "crash", "nodes": victims}]
    if recover_at is not None:
        events.append({"at": recover_at, "kind": "recover", "nodes": victims})
    return FaultSchedule.from_dicts(events)


class TestPolicyValidation:
    def test_defaults_are_valid(self):
        RetryPolicy()

    def test_bad_values_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay=10.0, max_delay=1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.0)


class TestBackoff:
    def test_deterministic_given_seeded_rng(self):
        policy = RetryPolicy(base_delay=0.5, multiplier=2.0, jitter=0.2)
        a = [policy.backoff(i, RngFactory(7).stream("retry"))
             for i in range(1, 5)]
        b = [policy.backoff(i, RngFactory(7).stream("retry"))
             for i in range(1, 5)]
        assert a == b

    def test_exponential_growth_with_cap(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0, jitter=0.0,
                             max_delay=4.0, max_attempts=6)
        rng = RngFactory(0).stream("retry")
        delays = [policy.backoff(i, rng) for i in range(1, 6)]
        assert delays == [1.0, 2.0, 4.0, 4.0, 4.0]

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.1,
                             max_delay=1.0)
        rng = RngFactory(3).stream("retry")
        for attempt in range(1, 50):
            delay = policy.backoff(attempt, rng)
            assert 0.9 <= delay <= 1.1


class TestRetryOnRejection:
    def test_rejected_submission_schedules_retry(self):
        engine, net = make_net(
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.5),
            capacity=2)
        accts = net.accounts.addresses()
        txs = [transfer(accts[i], accts[i + 1]) for i in range(3)]
        results = [net.submit(tx) for tx in txs]
        assert [r.accepted for r in results] == [True, True, False]
        assert results[2].will_retry
        assert net.retries_scheduled == 1
        # block production drains the pool; the retry then succeeds
        net.active_until = 30.0
        engine.run(until=60.0)
        assert net.retries_succeeded == 1
        assert txs[2] in net.committed
        assert txs[2].retries == net.attempts_for(txs[2]) - 1
        assert 1 <= txs[2].retries < 3

    def test_attempts_are_bounded(self):
        # a stalled quorum keeps the tiny pool full forever, so the retry
        # loop must give up after max_attempts and record the drop
        engine, net = make_net(
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.5,
                                     jitter=0.0),
            capacity=1)
        net.attach_faults(FaultInjector(quorum_stall_schedule(None)))
        accts = net.accounts.addresses()
        assert net.submit(transfer(accts[0], accts[1])).accepted
        victim = transfer(accts[2], accts[3])
        assert not net.submit(victim).accepted
        engine.run(until=120.0)
        assert net.attempts_for(victim) == 3
        assert victim.aborted
        assert victim in net.dropped
        assert net.drop_reasons.get("MempoolFullError") == 1

    def test_no_retry_without_policy(self):
        engine, net = make_net(retry_policy=None, capacity=1)
        accts = net.accounts.addresses()
        net.submit(transfer(accts[0], accts[1]))
        rejected = transfer(accts[2], accts[3])
        result = net.submit(rejected)
        assert not result.accepted and not result.will_retry
        assert rejected.aborted
        assert net.retries_scheduled == 0


class TestExpiryResubmission:
    def test_expired_transactions_resubmit_with_fresh_blockhash(self):
        # quorum stalls until t=20; a 5 s expiry evicts the pending tx,
        # the client resubmits it, and it commits after the recovery
        engine, net = make_net(
            retry_policy=RetryPolicy(max_attempts=5, base_delay=0.5,
                                     jitter=0.0),
            tx_expiry=5.0)
        net.attach_faults(FaultInjector(quorum_stall_schedule(20.0)))
        accts = net.accounts.addresses()
        tx = transfer(accts[0], accts[1])
        assert net.submit(tx).accepted
        net.active_until = 40.0
        engine.run(until=90.0)
        assert tx.retries >= 1
        assert tx.resubmitted_at is not None
        assert tx.recent_block_hash is not None
        assert tx in net.committed
        assert not tx.aborted
        # latency is still measured from the original submission
        assert tx.submitted_at < tx.resubmitted_at

    def test_expiry_without_resubmission_drops(self):
        engine, net = make_net(
            retry_policy=RetryPolicy(resubmit_on_expiry=False),
            tx_expiry=5.0)
        net.attach_faults(FaultInjector(quorum_stall_schedule(None)))
        accts = net.accounts.addresses()
        tx = transfer(accts[0], accts[1])
        net.submit(tx)
        net.active_until = 40.0
        engine.run(until=60.0)
        assert tx.aborted and tx.abort_reason == "expired"
        assert net.drop_reasons.get("expired") == 1


class TestNoRetryStorm:
    def test_overload_retries_are_bounded_and_deterministic(self):
        def run(seed):
            engine, net = make_net(
                retry_policy=RetryPolicy(max_attempts=3, base_delay=1.0),
                capacity=100, seed=seed)
            accts = net.accounts.addresses()
            txs = [transfer(accts[i % 40], accts[(i + 1) % 40])
                   for i in range(1_000)]
            net.submit_batch(txs)
            net.active_until = 10.0
            engine.run(until=60.0)
            return net

        net = run(seed=5)
        # every rejected submission retries at most (max_attempts - 1) times
        assert net.retries_scheduled <= 2 * 1_000
        assert len(net.committed) + len(net.dropped) + len(net.mempool) \
            + net.retries_scheduled - net.retries_succeeded >= 0
        # and the whole cascade is reproducible
        again = run(seed=5)
        assert again.retries_scheduled == net.retries_scheduled
        assert again.retries_succeeded == net.retries_succeeded
        assert len(again.committed) == len(net.committed)
