"""End-to-end tests for the resource-exhaustion (crash-under-load) model.

The unit under test is the §6.3 mechanism: sustained saturation exhausts
node memory, and each chain's configured response fires — Solana-model
validators OOM-crash, Diem-model consensus stalls, survivor chains shed
load and keep committing. Tests run against a tiny-RAM instance type so
exhaustion happens within a few simulated seconds.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.blockchains.base import (
    BlockchainNetwork,
    ExperimentScale,
    OverloadPolicy,
    RetryPolicy,
)
from repro.blockchains.registry import chain_params
from repro.chain.transaction import transfer
from repro.common.errors import ConfigurationError
from repro.core.runner import run_benchmark
from repro.core.spec import (
    AccountSample,
    LoadSchedule,
    TransferSpec,
    simple_spec,
)
from repro.sim.deployment import DeploymentConfig, TESTNET
from repro.sim.engine import Engine
from repro.sim.machine import InstanceType

#: 64 MiB of RAM: tiny enough that a few hundred transactions of charged
#: backlog exhaust it within seconds of simulated time
TINY = DeploymentConfig("testnet", 4,
                        InstanceType("tiny", vcpus=4, memory=64 * 1024**2),
                        ("ohio",))


def make_net(base="quorum", seed=1, deployment=TINY, **overload_kwargs):
    params = replace(chain_params(base, deployment),
                     overload=OverloadPolicy(**overload_kwargs))
    engine = Engine()
    net = BlockchainNetwork(params, deployment, engine,
                            scale=ExperimentScale(1.0), seed=seed)
    net.create_accounts(200)
    return engine, net


def flood(net, count):
    accts = net.accounts.addresses()
    for i in range(count):
        net.submit(transfer(accts[i % 100], accts[(i + 1) % 100]))


class TestPolicyValidation:
    def test_defaults_are_valid(self):
        OverloadPolicy()

    def test_bad_values_rejected(self):
        with pytest.raises(ConfigurationError):
            OverloadPolicy(response="explode")
        with pytest.raises(ConfigurationError):
            OverloadPolicy(high_water=0.5, low_water=0.9)
        with pytest.raises(ConfigurationError):
            OverloadPolicy(pool_tx_bytes=-1)
        with pytest.raises(ConfigurationError):
            OverloadPolicy(oom_jitter=0.5)
        with pytest.raises(ConfigurationError):
            OverloadPolicy(shed_pool_blocks=0.0)


class TestMemoryAccounting:
    def test_no_response_means_no_accounting(self):
        engine, net = make_net(response="none")
        flood(net, 500)
        engine.run(until=10.0)
        assert net.peak_memory_pressure == 0.0
        assert net.overload_events == []

    def test_pressure_rises_under_flood(self):
        engine, net = make_net(response="commit_stall",
                               consensus_tx_bytes=64 * 1024)
        flood(net, 200)
        engine.run(until=5.0)
        assert net.peak_memory_pressure > 0.0
        ledger = net.machines[0].memory
        assert ledger.peak_pressure > 0.0
        # once every transaction sealed into a block, the debt is paid off
        assert ledger.level("consensus") == 0

    def test_state_growth_charged_after_commits(self):
        engine, net = make_net(response="shed_load",
                               state_tx_bytes=4096)
        flood(net, 50)
        net.active_until = 30.0
        engine.run(until=60.0)
        assert len(net.committed) > 0
        assert net.machines[0].memory.level("state") > 0


class TestOomCrash:
    def test_validators_crash_and_chain_dies(self):
        engine, net = make_net(response="oom_crash",
                               consensus_tx_bytes=256 * 1024,
                               oom_jitter=0.05)
        net.active_until = 60.0
        flood(net, 2000)
        engine.run(until=60.0)
        crashes = [e for e in net.overload_events
                   if e["kind"] == "oom_crash"]
        assert crashes, "no validator OOM-crashed under the flood"
        assert net.injector is not None
        assert not net._quorum_available()
        # each crash names a distinct node at finite pressure >= high water
        names = [e["node"] for e in crashes]
        assert len(names) == len(set(names))
        for event in crashes:
            assert event["pressure"] >= 0.9

    def test_jitter_staggers_crash_capacities(self):
        _, net = make_net(response="oom_crash", oom_jitter=0.05)
        capacities = {m.memory.capacity for m in net.machines}
        assert len(capacities) > 1

    def test_no_jitter_means_equal_capacities(self):
        _, net = make_net(response="oom_crash", oom_jitter=0.0)
        capacities = {m.memory.capacity for m in net.machines}
        assert len(capacities) == 1


class TestCommitStall:
    def test_consensus_stalls_and_stops_committing(self):
        engine, net = make_net(response="commit_stall",
                               consensus_tx_bytes=256 * 1024)
        net.active_until = 60.0
        flood(net, 2000)
        engine.run(until=60.0)
        stalls = [e for e in net.overload_events
                  if e["kind"] == "commit_stall"]
        assert len(stalls) == 1
        committed_at_stall = len(net.committed)
        flood(net, 100)
        engine.run(until=120.0)
        assert len(net.committed) == committed_at_stall
        assert net.stalled_rounds > 0


class TestShedLoad:
    def test_shedding_keeps_the_chain_committing(self):
        # continuous arrivals (400 tx/s) so submissions land inside the
        # shedding windows; target of ~0.25 blocks (300 transactions) so
        # a primed pool still rejects the excess at the door
        engine, net = make_net(response="shed_load",
                               consensus_tx_bytes=256 * 1024,
                               shed_pool_blocks=0.25)
        net.active_until = 120.0
        for t in range(120):
            engine.schedule_at(float(t), lambda: flood(net, 400))
        engine.run(until=130.0)
        shed_starts = [e for e in net.overload_events
                       if e["kind"] == "shed_start"]
        assert shed_starts, "admission never started shedding"
        assert net.admission.shed_rejections > 0
        committed_at_shed = sum(
            1 for tx in net.committed
            if tx.committed_at and tx.committed_at > shed_starts[0]["at"])
        assert committed_at_shed > 0, "shedding chain stopped committing"

    def test_shed_rejections_are_retried_then_dropped(self):
        engine, net = make_net(response="shed_load")
        net.params = replace(
            net.params,
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.5,
                                     jitter=0.0, resubmit_on_expiry=False))
        net.admission.set_shedding(True, pool_target=0)
        accts = net.accounts.addresses()
        victim = transfer(accts[0], accts[1])
        result = net.submit(victim)
        assert not result.accepted
        assert result.will_retry
        engine.run(until=30.0)
        assert victim.aborted
        assert net.drop_reasons.get("shed_load") == 1


class TestDeterminism:
    def _events(self, seed):
        engine, net = make_net(base="solana", seed=seed,
                               response="oom_crash",
                               consensus_tx_bytes=256 * 1024,
                               oom_jitter=0.05)
        net.active_until = 60.0
        flood(net, 2000)
        engine.run(until=60.0)
        return net.overload_events

    def test_same_seed_same_crash_schedule(self):
        assert self._events(7) == self._events(7)

    def test_different_seed_different_margins(self):
        a = make_net(base="solana", seed=1, response="oom_crash")[1]
        b = make_net(base="solana", seed=2, response="oom_crash")[1]
        assert ([m.memory.capacity for m in a.machines]
                != [m.memory.capacity for m in b.machines])


class TestEndToEndScenario:
    """The §6.3 acceptance scenario, full pipeline at small scale."""

    def _run(self, chain, seed=0):
        spec = simple_spec(TransferSpec(AccountSample(500)),
                           LoadSchedule.constant(10_000, 60.0))
        return run_benchmark(chain, "testnet", spec,
                             workload_name="overload",
                             scale=0.02, seed=seed, drain=120.0)

    def test_solana_model_ooms_and_fails(self):
        result = self._run("solana")
        assert result.status == "failed"
        assert result.crash_events(), "no OOM crash recorded"
        first = min(e["at"] for e in result.crash_events())
        assert 0.0 < first < 60.0
        assert result.stalled_at() is not None

    def test_diem_model_stalls_and_fails(self):
        result = self._run("diem")
        assert result.status == "failed"
        kinds = [e["kind"] for e in result.overload_events]
        assert "commit_stall" in kinds
        stalled_at = result.stalled_at()
        assert stalled_at is not None and stalled_at < 180.0

    def test_ethereum_model_sheds_and_survives(self):
        result = self._run("ethereum")
        assert result.status == "degraded"
        kinds = [e["kind"] for e in result.overload_events]
        assert "shed_start" in kinds
        assert "oom_crash" not in kinds
        assert result.stalled_at() is None
        # still committing: the run produced real throughput
        assert result.average_throughput > 0

    def test_summary_reports_events(self):
        summary = self._run("solana").summary()
        assert summary["status"] == "failed"
        assert summary["overload_events"]
        assert summary["liveness_events"]
        # crashed nodes freeze their footprint where they died, so the
        # peak sits at/above the high-water mark rather than at overcommit
        assert summary["chain_stats"]["memory_pressure_peak"] >= 0.9

    def test_scenario_is_deterministic(self):
        a = self._run("solana", seed=3).summary()
        b = self._run("solana", seed=3).summary()
        assert a == b


class TestDeadline:
    def _spec(self, deadline=None):
        return simple_spec(TransferSpec(AccountSample(100)),
                           LoadSchedule.constant(200, 30.0),
                           deadline=deadline)

    def test_max_sim_seconds_caps_the_run(self):
        result = run_benchmark("quorum", "testnet", self._spec(),
                               scale=0.05, max_sim_seconds=10.0)
        assert result.status == "failed"
        kinds = [e["kind"] for e in result.liveness_events]
        assert "deadline_hit" in kinds

    def test_spec_deadline_caps_the_run(self):
        result = run_benchmark("quorum", "testnet", self._spec(deadline=10.0),
                               scale=0.05)
        assert result.status == "failed"

    def test_generous_deadline_changes_nothing(self):
        result = run_benchmark("quorum", "testnet", self._spec(),
                               scale=0.05, max_sim_seconds=100_000.0)
        assert result.status == "ok"
        assert all(e["kind"] != "deadline_hit"
                   for e in result.liveness_events)
