"""Every chain's §5.2 parameter sheet, pinned against the paper."""

from __future__ import annotations

import pytest

from repro.blockchains.registry import CHAIN_NAMES, chain_params
from repro.crypto.signing import ECDSA, ED25519
from repro.sim.deployment import CONSORTIUM, TESTNET


@pytest.fixture(scope="module")
def params():
    return {name: chain_params(name, TESTNET) for name in CHAIN_NAMES}


class TestSignatureSchemes:
    def test_avalanche_uses_ecdsa_after_rsa_failure(self, params):
        assert params["avalanche"].signature_scheme is ECDSA

    def test_ed25519_chains(self, params):
        # Solana "replaces the ECDSA signature scheme with EdDSA (ED25519)";
        # Algorand and Diem are ed25519 designs as well
        for chain in ("solana", "algorand", "diem"):
            assert params[chain].signature_scheme is ED25519, chain

    def test_geth_chains_use_ecdsa(self, params):
        for chain in ("ethereum", "quorum"):
            assert params[chain].signature_scheme is ECDSA, chain


class TestFinalitySemantics:
    def test_immediate_finality_chains(self, params):
        # deterministic consensus (Diem, Quorum) and no-fork-whp (Algorand)
        for chain in ("diem", "quorum", "algorand", "avalanche"):
            assert params[chain].confirmation_depth == 0, chain

    def test_forkable_chains_wait_confirmations(self, params):
        assert params["solana"].confirmation_depth == 30
        assert params["ethereum"].confirmation_depth >= 1


class TestMempoolPolicies:
    def test_never_drop_chains(self, params):
        assert params["quorum"].mempool_policy.capacity is None
        assert params["avalanche"].mempool_policy.capacity is None

    def test_bounded_chains(self, params):
        for chain in ("diem", "algorand", "solana"):
            assert params[chain].mempool_policy.capacity is not None, chain

    def test_only_diem_has_a_sender_quota(self, params):
        for chain in CHAIN_NAMES:
            quota = params[chain].mempool_policy.per_sender_quota
            if chain == "diem":
                assert quota == 100
            else:
                assert quota is None, chain

    def test_only_solana_expires_transactions(self, params):
        for chain in CHAIN_NAMES:
            expiry = params[chain].tx_expiry
            if chain == "solana":
                assert expiry == 120.0
            else:
                assert expiry is None, chain


class TestBlockBudgets:
    def test_avalanche_gas_and_period(self, params):
        from repro.blockchains.avalanche import BLOCK_GAS_LIMIT, BLOCK_PERIOD
        assert params["avalanche"].block_gas_limit == BLOCK_GAS_LIMIT == 8_000_000
        assert BLOCK_PERIOD == 1.9

    def test_solana_intake_scales_with_hardware(self, params):
        assert params["solana"].block_gas_per_vcpu is not None
        assert params["solana"].block_gas_limit is None

    def test_fixed_budget_chains(self, params):
        assert params["ethereum"].block_gas_limit is not None
        assert params["quorum"].block_tx_limit is not None
        assert params["diem"].block_tx_limit is not None
        assert params["algorand"].block_gas_limit is not None


class TestDeploymentSensitivity:
    def test_only_diem_params_vary_with_deployment(self):
        for name in CHAIN_NAMES:
            small = chain_params(name, TESTNET)
            large = chain_params(name, CONSORTIUM)
            if name == "diem":
                assert small.account_limits != large.account_limits
            else:
                assert small.account_limits == large.account_limits, name

    def test_commit_apis(self):
        apis = {name: chain_params(name, TESTNET).commit_api
                for name in CHAIN_NAMES}
        assert apis["algorand"] == "poll"     # the DIABLO workaround
        for chain in ("avalanche", "ethereum", "quorum", "solana", "diem"):
            assert apis[chain] == "stream", chain
