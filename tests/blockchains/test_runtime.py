"""Tests for the blockchain runtime (BlockchainNetwork)."""

from __future__ import annotations

import pytest

from repro.blockchains.base import ChainParams, ExperimentScale
from repro.blockchains.registry import (
    CHAIN_NAMES,
    build_network,
    chain_params,
    characteristics_table,
)
from repro.chain.transaction import transfer
from repro.common.errors import ConfigurationError
from repro.contracts import make_counter_contract
from repro.chain.transaction import invoke
from repro.sim.deployment import CONSORTIUM, TESTNET, get_configuration
from repro.sim.engine import Engine


def make_net(chain="quorum", config="testnet", scale=0.1, seed=1):
    engine = Engine()
    net = build_network(chain, config, engine,
                        scale=ExperimentScale(scale), seed=seed)
    net.create_accounts(50)
    return engine, net


class TestExperimentScale:
    def test_rate_scaling(self):
        scale = ExperimentScale(0.1)
        assert scale.rate(1000) == 100.0

    def test_capacity_scaling_rounds_and_floors(self):
        scale = ExperimentScale(0.1)
        assert scale.capacity(1000) == 100
        assert scale.capacity(3) == 1       # never scales to zero
        assert scale.capacity(None) is None

    def test_cpu_and_bytes_inflate(self):
        scale = ExperimentScale(0.1)
        assert scale.inflate_cpu(1.0) == pytest.approx(10.0)
        assert scale.inflate_bytes(100) == 1000

    def test_invalid_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentScale(0.0)
        with pytest.raises(ConfigurationError):
            ExperimentScale(1.5)


class TestRegistry:
    def test_six_chains(self):
        assert CHAIN_NAMES == ("algorand", "avalanche", "diem",
                               "ethereum", "quorum", "solana")

    def test_unknown_chain_rejected(self):
        with pytest.raises(ConfigurationError):
            chain_params("bitcoin", TESTNET)

    def test_table4_characteristics(self):
        rows = {row["blockchain"]: row for row in characteristics_table()}
        # the exact Table 4 matrix
        assert rows["algorand"]["consensus"] == "BA*"
        assert rows["algorand"]["properties"] == "probabilistic"
        assert rows["algorand"]["dapp_language"] == "PyTeal"
        assert rows["avalanche"]["consensus"] == "Avalanche"
        assert rows["avalanche"]["properties"] == "probabilistic"
        assert rows["diem"]["consensus"] == "HotStuff"
        assert rows["diem"]["properties"] == "deterministic"
        assert rows["diem"]["dapp_language"] == "Move"
        assert rows["quorum"]["consensus"] == "IBFT"
        assert rows["quorum"]["properties"] == "deterministic"
        assert rows["ethereum"]["consensus"] == "Clique"
        assert rows["ethereum"]["properties"] == "eventual"
        assert rows["solana"]["consensus"] == "TowerBFT"
        assert rows["solana"]["properties"] == "eventual"

    def test_geth_vm_chains(self):
        # Avalanche, Quorum, Ethereum share the geth EVM (Table 4)
        for name in ("avalanche", "quorum", "ethereum"):
            assert chain_params(name, TESTNET).vm_name == "geth-evm"


class TestSubmissionAndBlocks:
    def test_submitted_transfers_commit(self):
        engine, net = make_net()
        net.active_until = 10.0
        accts = net.accounts.addresses()
        txs = [transfer(accts[i % 50], accts[(i + 1) % 50], 1,
                        gas_limit=21_000) for i in range(20)]
        net.submit_batch(txs)
        engine.run(until=60.0)
        assert len(net.committed) == 20
        assert all(tx.committed_at is not None for tx in txs)
        assert all(tx.committed_at > tx.submitted_at for tx in txs)

    def test_blocks_appear_on_the_ledger(self):
        engine, net = make_net()
        accts = net.accounts.addresses()
        net.submit_batch([transfer(accts[0], accts[1], 1, gas_limit=21_000)
                          for _ in range(5)])
        engine.run(until=30.0)
        assert net.ledger.height >= 1
        assert net.ledger.total_transactions() == 5

    def test_balances_move(self):
        engine, net = make_net()
        a, b = net.accounts.addresses()[:2]
        before_b = net.state.balance(b)
        net.submit(transfer(a, b, amount=7, gas_limit=21_000))
        engine.run(until=30.0)
        assert net.state.balance(b) == before_b + 7

    def test_mempool_rejection_marks_tx(self):
        engine, net = make_net(chain="diem")
        a, b = net.accounts.addresses()[:2]
        # per-sender quota (scaled 100 * 0.1 = 10)
        accepted, rejected = 0, 0
        for _ in range(30):
            tx = transfer(a, b, 1, gas_limit=21_000)
            if net.submit(tx).accepted:
                accepted += 1
            else:
                rejected += 1
                assert tx.aborted
                assert tx.abort_reason == "SenderQuotaError"
        assert accepted == 10
        assert rejected == 20

    def test_failed_execution_is_not_a_commit(self):
        engine, net = make_net(chain="algorand")
        net.deploy_contract(make_counter_contract())
        a = net.accounts.addresses()[0]
        bad = invoke(a, "Counter", "no_such_function", gas_limit=10**6)
        net.submit(bad)
        engine.run(until=60.0)
        assert bad.aborted
        assert bad.abort_reason == "reverted"
        assert bad not in net.committed


class TestConfirmationDepthAndExpiry:
    def test_solana_commits_after_30_confirmations(self):
        engine, net = make_net(chain="solana")
        net.active_until = 60.0
        assert net.params.confirmation_depth == 30
        a, b = net.accounts.addresses()[:2]
        tx = transfer(a, b, 1, gas_limit=21_000)
        net.submit(tx)
        net.start()
        engine.run(until=120.0)
        assert tx.committed_at is not None
        # 30 slots of 0.4 s must elapse after inclusion
        assert tx.committed_at - tx.submitted_at >= 30 * 0.4

    def test_quorum_has_immediate_finality(self):
        engine, net = make_net(chain="quorum")
        a, b = net.accounts.addresses()[:2]
        tx = transfer(a, b, 1, gas_limit=21_000)
        net.submit(tx)
        engine.run(until=60.0)
        assert tx.committed_at is not None
        assert tx.committed_at - tx.submitted_at < 5.0

    def test_stale_transactions_expire_from_the_pool(self):
        # the 120-second recent-block-hash window (§5.2): transactions
        # stuck in the pool longer than the window become invalid. Solana's
        # bounded ingestion queue usually rejects the excess first, so this
        # exercises the expiry path with the queue bound lifted.
        from dataclasses import replace
        from repro.blockchains.base import BlockchainNetwork
        from repro.chain.mempool import MempoolPolicy
        from repro.blockchains.registry import chain_params
        from repro.sim.deployment import get_configuration

        engine = Engine()
        deployment = get_configuration("testnet")
        params = replace(chain_params("solana", deployment),
                         mempool_policy=MempoolPolicy(capacity=None))
        net = BlockchainNetwork(params, deployment, engine,
                                scale=ExperimentScale(0.05), seed=1)
        net.create_accounts(10)
        net.active_until = 400.0
        a, b = net.accounts.addresses()[:2]
        txs = [transfer(a, b, 1, gas_limit=21_000) for _ in range(20_000)]
        for tx in txs:
            net.submit(tx)
        engine.run(until=400.0)
        expired = [tx for tx in txs if tx.abort_reason == "expired"]
        assert expired, "expected stale transactions to expire"
        assert all(tx.aborted for tx in expired)


class TestAccountsProvisioning:
    def test_diem_caps_accounts_at_200_nodes(self):
        engine = Engine()
        net = build_network("diem", CONSORTIUM, engine,
                            scale=ExperimentScale(0.1))
        net.create_accounts(2000)
        assert len(net.accounts) == 130  # §5.2 workaround

    def test_diem_unlimited_on_small_configs(self):
        engine = Engine()
        net = build_network("diem", TESTNET, engine,
                            scale=ExperimentScale(0.1))
        net.create_accounts(2000)
        assert len(net.accounts) == 2000

    def test_accounts_are_funded(self):
        _, net = make_net()
        for address in net.accounts.addresses():
            assert net.state.balance(address) > 0


class TestStats:
    def test_stats_shape(self):
        engine, net = make_net()
        stats = net.stats()
        for key in ("height", "committed", "dropped", "pending",
                    "blocks_failed", "view_changes"):
            assert key in stats

    def test_arrival_rate_tracking(self):
        engine, net = make_net(scale=0.1)
        a, b = net.accounts.addresses()[:2]
        for _ in range(50):
            net.submit(transfer(a, b, 1, gas_limit=21_000))
        # 50 scaled submissions in <=1 s window -> >= 500 unscaled TPS
        assert net.arrival_rate() >= 450
