"""Tests for the simulated cryptography layer."""

from __future__ import annotations

import pytest

from repro.common.errors import InvalidTransactionError
from repro.crypto.hashing import digest, hash_cost, merkle_root
from repro.crypto.signing import ECDSA, ED25519, RSA4096, SCHEMES, keypair


class TestHashing:
    def test_digest_deterministic(self):
        assert digest("a", 1) == digest("a", 1)

    def test_digest_sensitive_to_parts(self):
        assert digest("a", "b") != digest("ab")
        assert digest("a") != digest("b")

    def test_digest_is_hex64(self):
        d = digest("x")
        assert len(d) == 64
        int(d, 16)

    def test_merkle_root_empty(self):
        assert merkle_root([]) == merkle_root([])

    def test_merkle_root_depends_on_content(self):
        assert merkle_root(["a", "b"]) != merkle_root(["a", "c"])

    def test_merkle_root_depends_on_order(self):
        assert merkle_root(["a", "b"]) != merkle_root(["b", "a"])

    def test_merkle_root_odd_leaves(self):
        root = merkle_root(["a", "b", "c"])
        assert len(root) == 64

    def test_merkle_single_leaf_differs_from_empty(self):
        assert merkle_root(["a"]) != merkle_root([])

    def test_hash_cost_scales_with_size(self):
        assert hash_cost(2048) == pytest.approx(2 * hash_cost(1024))
        assert hash_cost(0) == 0.0


class TestSigning:
    def test_sign_verify_roundtrip(self):
        private, public = keypair("alice")
        for scheme in SCHEMES.values():
            sig = scheme.sign(private, "hello")
            assert scheme.verify(public, "hello", sig)

    def test_wrong_message_fails(self):
        private, public = keypair("alice")
        sig = ECDSA.sign(private, "hello")
        assert not ECDSA.verify(public, "tampered", sig)

    def test_wrong_key_fails(self):
        private_a, _ = keypair("alice")
        _, public_b = keypair("bob")
        sig = ECDSA.sign(private_a, "hello")
        assert not ECDSA.verify(public_b, "hello", sig)

    def test_cross_scheme_signatures_differ(self):
        private, _ = keypair("alice")
        assert ECDSA.sign(private, "m") != ED25519.sign(private, "m")

    def test_malformed_public_key_rejected(self):
        with pytest.raises(InvalidTransactionError):
            ECDSA.verify("not-a-key", "m", "sig")

    def test_keypair_deterministic(self):
        assert keypair("seed") == keypair("seed")
        assert keypair("seed") != keypair("other")

    def test_rsa_signing_is_the_slow_one(self):
        # §5.2: Avalanche's RSA4096 signing "was taking too long"
        assert RSA4096.sign_cost > 50 * ECDSA.sign_cost
        assert ED25519.sign_cost < ECDSA.sign_cost

    def test_signature_sizes(self):
        assert RSA4096.signature_size > ECDSA.signature_size
        assert ED25519.signature_size == 64
