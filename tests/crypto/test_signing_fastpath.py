"""PrecomputedSigner must be indistinguishable from SignatureScheme.sign."""

from __future__ import annotations

from repro.crypto.signing import ECDSA, ED25519, RSA4096, SCHEMES, keypair


class TestSignerMatchesSign:
    def test_all_schemes_all_messages(self):
        for scheme in (ECDSA, ED25519, RSA4096):
            private, _ = keypair(f"seed-{scheme.name}")
            signer = scheme.signer(private)
            for message in ("", "m", "payload-123", "ユニコード",
                            "x" * 10_000):
                assert signer(message) == scheme.sign(private, message)

    def test_signatures_verify(self):
        for scheme in SCHEMES.values():
            private, public = keypair(f"verify-{scheme.name}")
            signature = scheme.signer(private)("hello")
            assert scheme.verify(public, "hello", signature)
            assert not scheme.verify(public, "tampered", signature)

    def test_signer_is_reusable_and_stateless(self):
        private, _ = keypair("reuse")
        signer = ECDSA.signer(private)
        first = signer("alpha")
        signer("beta")
        signer("gamma")
        # earlier calls must not perturb later ones (the hash state is
        # copied per call, never mutated in place)
        assert signer("alpha") == first == ECDSA.sign(private, "alpha")

    def test_different_keys_different_signers(self):
        a, _ = keypair("key-a")
        b, _ = keypair("key-b")
        assert ECDSA.signer(a)("msg") != ECDSA.signer(b)("msg")
