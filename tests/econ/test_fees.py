"""Unit tests for the fee dialects, policy/spec layering and the market."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError, SpecError
from repro.chain.transaction import transfer
from repro.econ.fees import (
    AuctionFeeModel,
    Eip1559FeeModel,
    FeePolicy,
    FeeSpec,
    FlatFeeModel,
    build_fee_model,
)
from repro.econ.market import FeeMarket
from repro.obs.metrics import MetricsRegistry
from repro.vm.gas import eip1559_base_fee_update


def tx_priced(fee_per_gas: int, tip: int = 0):
    return transfer("alice", "bob", sequence=0,
                    fee_per_gas=fee_per_gas, tip=tip, gas_limit=21_000)


class TestBaseFeeUpdate:
    def test_above_target_raises(self):
        assert eip1559_base_fee_update(100, 2_000, 1_000) > 100

    def test_below_target_decays(self):
        assert eip1559_base_fee_update(100, 500, 1_000) < 100

    def test_at_target_unchanged(self):
        assert eip1559_base_fee_update(100, 1_000, 1_000) == 100

    def test_minimum_step_is_one(self):
        # base fee 2, denominator 8: the raw delta rounds to zero, but the
        # controller must still move
        assert eip1559_base_fee_update(2, 2_000, 1_000) == 3
        assert eip1559_base_fee_update(2, 0, 1_000) == 1

    def test_floor_clamp(self):
        assert eip1559_base_fee_update(5, 0, 1_000, floor=5) == 5
        assert eip1559_base_fee_update(1, 0, 1_000) == 1

    def test_exact_eip_delta(self):
        # delta = base * (used - target) // (target * denom)
        # = 800 * (1_500 - 1_000) // (1_000 * 8) = 50
        assert eip1559_base_fee_update(800, 1_500, 1_000) == 850


class TestFeePolicy:
    def test_unknown_dialect(self):
        with pytest.raises(ConfigurationError, match="dialect"):
            FeePolicy(dialect="bananas")

    def test_eip1559_base_fee_below_min_fee_rejected(self):
        with pytest.raises(ConfigurationError, match="below min_fee"):
            FeePolicy(dialect="eip1559", min_fee=100)

    def test_flat_dialect_ignores_base_fee(self):
        # flat/auction chains price purely off min_fee; the (unused)
        # base_fee default must not invalidate them
        policy = FeePolicy(dialect="flat", min_fee=25)
        assert policy.min_fee == 25

    def test_non_integer_field_rejected(self):
        with pytest.raises(ConfigurationError, match="integer"):
            FeePolicy(base_fee=1.5)
        with pytest.raises(ConfigurationError, match="integer"):
            FeePolicy(min_fee=True)


class TestFeeSpec:
    def test_unknown_key_rejected(self):
        with pytest.raises(SpecError, match="unknown key"):
            FeeSpec.from_dict({"base_fe": 5})

    def test_overrides_layer_onto_chain_policy(self):
        chain = FeePolicy(dialect="auction", min_fee=5)
        spec = FeeSpec(min_fee=9, default_tip=3)
        policy = spec.applied_to(chain)
        assert policy.dialect == "auction"
        assert policy.min_fee == 9
        assert policy.default_tip == 3

    def test_invalid_override_surfaces_as_spec_error(self):
        with pytest.raises(SpecError, match="invalid fees section"):
            FeeSpec(min_fee=0).applied_to(FeePolicy())

    def test_fee_bump_validation(self):
        with pytest.raises(SpecError, match="fee_bump"):
            FeeSpec(fee_bump=0.5)
        with pytest.raises(SpecError, match="fee_bump_cap"):
            FeeSpec(fee_bump_cap=0.9)


class TestEip1559Model:
    def make(self, **kwargs) -> Eip1559FeeModel:
        policy = FeePolicy(dialect="eip1559", **kwargs)
        return build_fee_model(policy, gas_target=1_000)

    def test_effective_price_is_capped(self):
        model = self.make(base_fee=10)
        assert model.effective_price(tx_priced(8, tip=5)) == 8
        assert model.effective_price(tx_priced(100, tip=5)) == 15

    def test_suggestion_has_headroom(self):
        model = self.make(base_fee=10, headroom=2, default_tip=1)
        assert model.suggest() == (20, 1)

    def test_attack_bid_outbids_suggestion(self):
        model = self.make(base_fee=10)
        honest_fee, honest_tip = model.suggest()
        fee, tip = model.attack_bid(2.0)
        assert fee > honest_fee
        assert tip > honest_tip

    def test_full_blocks_raise_the_floor(self):
        model = self.make(base_fee=100)
        for _ in range(5):
            model.on_block(2_000)
        assert model.floor() > 100

    def test_empty_blocks_decay_to_min_fee(self):
        model = self.make(base_fee=10, min_fee=2)
        for _ in range(100):
            model.on_block(0)
        assert model.floor() == 2


class TestOtherDialects:
    def test_auction_floor_never_moves(self):
        model = build_fee_model(
            FeePolicy(dialect="auction", min_fee=5), gas_target=1_000)
        assert isinstance(model, AuctionFeeModel)
        for _ in range(10):
            model.on_block(10_000_000)
        assert model.floor() == 5
        assert model.effective_price(tx_priced(5, tip=7)) == 12

    def test_flat_ignores_bids(self):
        model = build_fee_model(
            FeePolicy(dialect="flat", min_fee=25), gas_target=1_000)
        assert isinstance(model, FlatFeeModel)
        assert model.effective_price(tx_priced(1_000, tip=999)) == 25
        # bidding buys nothing; the attack bid is the minimum fee itself
        assert model.attack_bid(10.0) == (25, 0)


class TestFeeMarket:
    def make(self) -> FeeMarket:
        model = build_fee_model(FeePolicy(base_fee=10), gas_target=1_000)
        return FeeMarket(model, MetricsRegistry().namespace("fees"))

    def test_charge_attributes_spend_by_label(self):
        market = self.make()
        market.track(["mallory"], "attacker")
        honest = tx_priced(100, tip=2)
        evil = transfer("mallory", "bob", sequence=0,
                        fee_per_gas=100, tip=2, gas_limit=21_000)
        market.charge(honest, gas_used=1_000)
        market.charge(evil, gas_used=1_000)
        assert market.spend("honest") == 12_000
        assert market.spend("attacker") == 12_000
        assert market.spend("nobody") == 0

    def test_economics_block_shape(self):
        market = self.make()
        market.charge(tx_priced(100, tip=2), gas_used=500)
        econ = market.economics()
        assert econ["dialect"] == "eip1559"
        assert econ["fees_collected"] == 6_000
        assert econ["txs_charged"] == 1
        assert econ["spend"] == {"honest": 6_000}
        assert econ["price_p50"] == 12

    def test_stats_are_flat_numbers(self):
        market = self.make()
        market.charge(tx_priced(100), gas_used=100)
        for value in market.stats().values():
            assert isinstance(value, (int, float))
