"""Price-aware mempool admission: floors, displacement, eviction, ordering."""

from __future__ import annotations

import pytest

from repro.chain.mempool import (
    DROP_FEE_EVICTED,
    DROP_UNDERPRICED,
    Mempool,
    MempoolPolicy,
)
from repro.chain.transaction import transfer
from repro.common.errors import MempoolFullError, UnderpricedError
from repro.econ.fees import FeePolicy, build_fee_model


def tx(sender: str, fee: int, tip: int = 0, sequence: int = 0):
    return transfer(sender, "sink", sequence=sequence,
                    fee_per_gas=fee, tip=tip, gas_limit=21_000)


def pricer(base_fee: int = 10):
    return build_fee_model(FeePolicy(base_fee=base_fee), gas_target=1_000)


def priced_pool(capacity=None, base_fee: int = 10, **policy) -> Mempool:
    pool = Mempool(MempoolPolicy(capacity=capacity, **policy))
    pool.pricer = pricer(base_fee)
    return pool


class TestFloor:
    def test_below_floor_rejected_and_counted(self):
        pool = priced_pool(base_fee=10)
        with pytest.raises(UnderpricedError):
            pool.add(tx("a", fee=9))
        assert pool.drops == {DROP_UNDERPRICED: 1}
        assert pool.would_accept(tx("a", fee=9)) == DROP_UNDERPRICED

    def test_at_floor_admitted(self):
        pool = priced_pool(base_fee=10)
        pool.add(tx("a", fee=10))
        assert len(pool) == 1

    def test_underpriced_is_retryable_mempool_error(self):
        # clients treat it like any transient mempool rejection: back off,
        # bump the fee, resubmit
        assert issubclass(UnderpricedError, MempoolFullError)


class TestDisplacement:
    # under eip1559 the effective price is min(fee_cap, base + tip), so
    # with a generous cap the tip is what differentiates bids
    def test_higher_bid_displaces_cheapest(self):
        pool = priced_pool(capacity=2)
        cheap, mid = tx("a", fee=100, tip=1), tx("b", fee=100, tip=5)
        pool.add(cheap)
        pool.add(mid)
        evicted = []
        pool.on_evict = evicted.append
        pool.add(tx("c", fee=100, tip=10))
        assert evicted == [cheap]
        assert cheap not in pool and mid in pool
        assert pool.drops[DROP_FEE_EVICTED] == 1

    def test_equal_bid_cannot_displace(self):
        pool = priced_pool(capacity=1)
        pool.add(tx("a", fee=100, tip=5))
        with pytest.raises(UnderpricedError):
            pool.add(tx("b", fee=100, tip=5))
        assert pool.drops[DROP_UNDERPRICED] == 1

    def test_price_floor_tracks_cheapest_resident_at_capacity(self):
        pool = priced_pool(capacity=2, base_fee=10)
        assert pool.price_floor() == 10
        pool.add(tx("a", fee=100, tip=3))
        pool.add(tx("b", fee=100, tip=7))
        # at capacity: entry now requires strictly outbidding the
        # cheapest resident's effective price
        assert pool.price_floor() == 13

    def test_no_pricer_keeps_legacy_capacity_behavior(self):
        pool = Mempool(MempoolPolicy(capacity=1))
        pool.add(tx("a", fee=1))
        with pytest.raises(MempoolFullError):
            pool.add(tx("b", fee=100))
        assert pool.price_floor() == 0


class TestOrdering:
    def test_pop_batch_is_price_ordered(self):
        pool = priced_pool()
        low = tx("a", fee=100, tip=1)
        high = tx("b", fee=100, tip=20)
        mid = tx("c", fee=100, tip=10)
        for t in (low, high, mid):
            pool.add(t)
        batch = pool.pop_batch()
        assert batch == [high, mid, low]

    def test_price_ties_break_by_uid(self):
        pool = priced_pool()
        first, second = tx("a", fee=100, tip=2), tx("b", fee=100, tip=2)
        pool.add(second)
        pool.add(first)
        assert pool.pop_batch() == sorted([first, second],
                                          key=lambda t: t.uid)


class TestByteBudget:
    def test_bytes_pressure_evicts_cheapest_first(self):
        size = tx("x", fee=100).size
        pool = Mempool(MempoolPolicy(max_bytes=2 * size))
        pool.pricer = pricer()
        cheap, rich = tx("a", fee=100, tip=1), tx("b", fee=100, tip=20)
        pool.add(cheap)
        pool.add(rich)
        pool.add(tx("c", fee=100, tip=10))
        assert cheap not in pool and rich in pool
        assert pool.drops[DROP_FEE_EVICTED] == 1
