"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.blockchains.base import ExperimentScale
from repro.sim.engine import Engine
from repro.sim.network import Endpoint, Network


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def network(engine: Engine) -> Network:
    return Network(engine)


@pytest.fixture
def ohio() -> Endpoint:
    return Endpoint("node-ohio", "ohio")


@pytest.fixture
def tokyo() -> Endpoint:
    return Endpoint("node-tokyo", "tokyo")


@pytest.fixture
def small_scale() -> ExperimentScale:
    """A small scale factor for fast end-to-end tests."""
    return ExperimentScale(0.05)
