"""Tests for gas metering, the contract framework and the four VMs."""

from __future__ import annotations

import pytest

from repro.chain.receipt import ExecStatus
from repro.chain.state import ContractStorage, WorldState
from repro.chain.transaction import invoke, transfer
from repro.common.errors import (
    BudgetExceededError,
    ContractError,
    OutOfGasError,
    StateLimitError,
    UnsupportedOperationError,
)
from repro.vm.base import VirtualMachine
from repro.vm.gas import DEFAULT_SCHEDULE, GasMeter
from repro.vm.machines import (
    AVM_CAPS,
    EBPF_CAPS,
    GETH_EVM_CAPS,
    MOVE_VM_CAPS,
    avm,
    ebpf_vm,
    geth_evm,
    move_vm,
)
from repro.vm.program import Contract, ExecutionContext, VMCapabilities


class TestGasMeter:
    def test_charges_accumulate(self):
        meter = GasMeter(limit=1000)
        meter.charge(300)
        meter.charge(200)
        assert meter.used == 500
        assert meter.remaining == 500

    def test_out_of_gas(self):
        meter = GasMeter(limit=100)
        with pytest.raises(OutOfGasError):
            meter.charge(101)

    def test_hard_budget_takes_priority(self):
        # the hard budget cannot be lifted by a higher gas limit (§6.4)
        meter = GasMeter(limit=10**9, hard_budget=500)
        with pytest.raises(BudgetExceededError):
            meter.charge(501)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            GasMeter(limit=10).charge(-1)

    def test_remaining_respects_both_ceilings(self):
        meter = GasMeter(limit=1000, hard_budget=400)
        assert meter.remaining == 400


def _ctx(caps=GETH_EVM_CAPS, limit=10_000_000, args=()):
    return ExecutionContext(ContractStorage(), GasMeter(limit, caps.hard_budget),
                            caps, caller="alice", args=args,
                            contract_name="T")


class TestExecutionContext:
    def test_store_and_load(self):
        ctx = _ctx()
        ctx.store("k", 7)
        assert ctx.load("k") == 7

    def test_storage_gas_costs_are_charged(self):
        ctx = _ctx()
        ctx.store("k", 1)
        fresh = ctx.meter.used
        assert fresh >= DEFAULT_SCHEDULE.store_new
        ctx.store("k", 2)  # overwrite is cheaper
        assert ctx.meter.used - fresh < DEFAULT_SCHEDULE.store_new

    def test_kv_entry_limit(self):
        # AVM: "key-value store with 128 bytes per key-value pair"
        ctx = _ctx(AVM_CAPS)
        with pytest.raises(StateLimitError):
            ctx.store("k", "x" * 200)

    def test_max_state_entries(self):
        caps = VMCapabilities("tiny", max_state_entries=2)
        ctx = _ctx(caps)
        ctx.store("a", 1)
        ctx.store("b", 2)
        with pytest.raises(StateLimitError):
            ctx.store("c", 3)
        ctx.store("a", 9)  # overwriting existing keys stays legal

    def test_float_unsupported_everywhere(self):
        # §3: none of Solidity/PyTeal/Move support floating point
        for caps in (GETH_EVM_CAPS, AVM_CAPS, MOVE_VM_CAPS, EBPF_CAPS):
            with pytest.raises(UnsupportedOperationError):
                _ctx(caps).float_op()

    def test_isqrt_matches_math(self):
        import math
        ctx = _ctx()
        for value in (0, 1, 2, 15, 16, 17, 10**6, 10**12 + 7):
            assert ctx.isqrt(value) == math.isqrt(value)

    def test_isqrt_charges_per_newton_iteration(self):
        ctx = _ctx()
        before = ctx.meter.used
        ctx.isqrt(10**12)
        assert ctx.meter.used - before >= DEFAULT_SCHEDULE.sqrt_newton_iter

    def test_isqrt_rejects_negative(self):
        with pytest.raises(ContractError):
            _ctx().isqrt(-1)

    def test_bulk_loop_charges_iterations(self):
        ctx = _ctx()
        result = ctx.bulk_loop(1000, 10, lambda: "done")
        assert result == "done"
        assert ctx.meter.used == 10_000

    def test_bulk_loop_hits_hard_budget(self):
        ctx = _ctx(AVM_CAPS)
        with pytest.raises(BudgetExceededError):
            ctx.bulk_loop(10_000, 120)

    def test_require(self):
        ctx = _ctx()
        ctx.require(True)
        with pytest.raises(ContractError):
            ctx.require(False, "nope")

    def test_emit_collects_events(self):
        ctx = _ctx()
        ctx.emit("Sold", "alice", 3)
        assert len(ctx.events) == 1
        assert ctx.events[0].name == "Sold"

    def test_args_access(self):
        ctx = _ctx(args=(5,))
        assert ctx.arg(0) == 5
        assert ctx.arg(1, default=9) == 9
        with pytest.raises(ContractError):
            ctx.arg(2)


def _counter_contract():
    contract = Contract("C")

    @contract.constructor
    def init(ctx):
        ctx.store("n", 0)

    @contract.function("inc")
    def inc(ctx):
        value = ctx.load("n") + 1
        ctx.store("n", value)
        return value

    @contract.function("boom")
    def boom(ctx):
        ctx.require(False, "always fails")

    return contract


class TestVirtualMachine:
    def test_deploy_runs_constructor(self):
        vm = geth_evm()
        state = WorldState()
        deployed = vm.deploy(state, _counter_contract())
        assert state.storage(deployed.address).get("n") == 0
        assert vm.is_deployed("C")

    def test_invoke_success(self):
        vm = geth_evm()
        state = WorldState()
        vm.deploy(state, _counter_contract())
        receipt = vm.execute(state, invoke("a", "C", "inc", gas_limit=10**6))
        assert receipt.status is ExecStatus.SUCCESS
        assert receipt.return_value == 1
        assert receipt.gas_used > 0

    def test_invoke_revert_becomes_receipt(self):
        vm = geth_evm()
        state = WorldState()
        vm.deploy(state, _counter_contract())
        receipt = vm.execute(state, invoke("a", "C", "boom", gas_limit=10**6))
        assert receipt.status is ExecStatus.REVERTED
        assert "always fails" in receipt.error

    def test_invoke_unknown_contract(self):
        vm = geth_evm()
        receipt = vm.execute(WorldState(), invoke("a", "Ghost", "f"))
        assert receipt.status is ExecStatus.INVALID

    def test_invoke_unknown_function(self):
        vm = geth_evm()
        state = WorldState()
        vm.deploy(state, _counter_contract())
        receipt = vm.execute(state, invoke("a", "C", "nope", gas_limit=10**6))
        assert receipt.status is ExecStatus.REVERTED

    def test_out_of_gas_receipt(self):
        vm = geth_evm()
        state = WorldState()
        vm.deploy(state, _counter_contract())
        receipt = vm.execute(state, invoke("a", "C", "inc", gas_limit=25_000))
        assert receipt.status is ExecStatus.OUT_OF_GAS

    def test_transfer_moves_funds(self):
        vm = geth_evm()
        state = WorldState()
        state.credit("a", 100)
        receipt = vm.execute(state, transfer("a", "b", amount=40))
        assert receipt.ok
        assert state.balance("a") == 60
        assert state.balance("b") == 40

    def test_transfer_insufficient_funds_reverts(self):
        vm = geth_evm()
        state = WorldState()
        receipt = vm.execute(state, transfer("a", "b", amount=40))
        assert receipt.status is ExecStatus.REVERTED

    def test_strict_nonce_rejects_gaps(self):
        vm = VirtualMachine(GETH_EVM_CAPS, strict_nonce=True)
        state = WorldState()
        state.credit("a", 100)
        assert vm.execute(state, transfer("a", "b", sequence=0)).ok
        bad = vm.execute(state, transfer("a", "b", sequence=5))
        assert bad.status is ExecStatus.INVALID

    def test_cpu_cost_scales_with_gas(self):
        vm = move_vm()
        assert vm.cpu_cost(1_000_000) == pytest.approx(
            10 * vm.cpu_cost(100_000))

    def test_geth_is_the_fast_vm(self):
        assert geth_evm().cpu_cost(10**6) < move_vm().cpu_cost(10**6)

    def test_probe_gas_does_not_mutate_state(self):
        vm = geth_evm()
        state = WorldState()
        vm.deploy(state, _counter_contract())
        status, gas = vm.probe_gas(state, invoke("a", "C", "inc",
                                                 gas_limit=10**6))
        assert status is ExecStatus.SUCCESS
        assert gas > 0
        assert state.storage("contract:C").get("n") == 0


class TestVMBudgets:
    """The Table 4 / Fig. 5 capability matrix."""

    def test_geth_has_no_hard_budget(self):
        assert GETH_EVM_CAPS.hard_budget is None

    def test_other_vms_have_hard_budgets(self):
        assert AVM_CAPS.hard_budget is not None
        assert MOVE_VM_CAPS.hard_budget is not None
        assert EBPF_CAPS.hard_budget is not None

    def test_avm_has_kv_limits(self):
        assert AVM_CAPS.kv_entry_limit == 128
        assert AVM_CAPS.max_state_entries == 64

    def test_languages(self):
        assert "solidity" in GETH_EVM_CAPS.language
        assert "pyteal" in AVM_CAPS.language
        assert "move" in MOVE_VM_CAPS.language
        assert "ebpf" in EBPF_CAPS.language
