"""Additional property-based tests: engine, network, spec round-trips."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rng import RngFactory
from repro.core.spec import (
    AccountSample,
    Behavior,
    ClientSpec,
    ContractSample,
    EndpointSample,
    InvokeSpec,
    LoadSchedule,
    LocationSample,
    TransferSpec,
    WorkloadGroup,
    WorkloadSpec,
    parse_function_call,
)
from repro.sim.engine import Engine
from repro.sim.network import Endpoint, Network
from repro.vm.gas import DEFAULT_SCHEDULE, scaled_schedule


class TestEngineCancellation:
    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=100,
                                        allow_nan=False),
                              st.booleans()),
                    min_size=1, max_size=40))
    def test_exactly_the_uncancelled_events_run(self, entries):
        engine = Engine()
        executed = []
        handles = []
        for index, (time, cancel) in enumerate(entries):
            handles.append((engine.schedule_at(
                time, lambda i=index: executed.append(i)), cancel))
        for handle, cancel in handles:
            if cancel:
                handle.cancel()
        engine.run()
        expected = {i for i, (_, cancel) in enumerate(entries) if not cancel}
        assert set(executed) == expected


class TestNetworkProperties:
    @given(st.lists(st.integers(min_value=1, max_value=10_000),
                    min_size=1, max_size=20),
           st.integers(min_value=0, max_value=2**16))
    def test_same_link_messages_arrive_in_fifo_order(self, sizes, seed):
        engine = Engine()
        network = Network(engine, RngFactory(seed), jitter_cv=0.0)
        src = Endpoint("a", "ohio")
        dst = Endpoint("b", "tokyo")
        arrivals = []
        for index, size in enumerate(sizes):
            network.send(src, dst, size,
                         lambda i=index: arrivals.append(i))
        engine.run()
        assert arrivals == sorted(arrivals)

    @given(st.integers(min_value=0, max_value=2**16))
    def test_delivery_is_never_faster_than_propagation(self, seed):
        engine = Engine()
        network = Network(engine, RngFactory(seed))
        src, dst = Endpoint("a", "sydney"), Endpoint("b", "cape-town")
        times = []
        network.send(src, dst, 100, lambda: times.append(engine.now))
        engine.run()
        assert times[0] >= 0.4104 / 2


class TestGasScheduleProperties:
    @given(st.floats(min_value=1.0, max_value=64.0, allow_nan=False))
    def test_scaling_preserves_base_tx_and_orders_costs(self, factor):
        scaled = scaled_schedule(factor)
        assert scaled.base_tx == DEFAULT_SCHEDULE.base_tx
        assert scaled.store >= DEFAULT_SCHEDULE.store
        assert scaled.load >= DEFAULT_SCHEDULE.load
        # relative ordering of operations survives scaling
        assert scaled.store_new > scaled.store > scaled.load > scaled.arith


class TestSpecProperties:
    @given(st.text(alphabet=st.characters(whitelist_categories=("Ll",)),
                   min_size=1, max_size=12),
           st.lists(st.integers(min_value=0, max_value=10**6),
                    max_size=5))
    def test_function_call_roundtrip(self, name, args):
        call = f"{name}({', '.join(map(str, args))})" if args else name
        parsed_name, parsed_args = parse_function_call(call)
        assert parsed_name == name
        assert list(parsed_args) == args

    @given(st.integers(min_value=1, max_value=50),
           st.integers(min_value=1, max_value=1000),
           st.floats(min_value=1.0, max_value=600.0, allow_nan=False))
    def test_offered_load_scales_with_clients(self, clients, rate, duration):
        def build(n):
            return WorkloadSpec((WorkloadGroup(
                number=n,
                client=ClientSpec(
                    LocationSample((".*",)), EndpointSample((".*",)),
                    (Behavior(TransferSpec(AccountSample(10)),
                              LoadSchedule.constant(rate, duration)),))),))
        single = build(1).offered_load()
        many = build(clients).offered_load()
        assert many == pytest.approx(single * clients)
