"""Properties of the fee market and the budget-constrained adversary.

Two invariants the economic model promises:

* a price-aware mempool never fee-evicts a transaction priced above the
  current admission floor — displacement only ever removes the cheapest
  resident, and only for a strictly higher bid;
* the DoS adversary's actual spend never exceeds its budget, whatever
  the chain, dialect, budget or attack rate — worst-case reservations
  make the budget a hard invariant, not an aspiration.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.mempool import Mempool, MempoolPolicy
from repro.chain.transaction import transfer
from repro.common.errors import MempoolFullError
from repro.core.primary import Primary
from repro.core.spec import (
    AccountSample,
    LoadSchedule,
    TransferSpec,
    simple_spec,
)
from repro.econ.fees import FeePolicy, FeeSpec, build_fee_model
from repro.sim.dos import AdversarySpec

bids = st.tuples(st.integers(min_value=1, max_value=60),
                 st.integers(min_value=0, max_value=30))


class TestEvictionFloor:
    @settings(max_examples=50, deadline=None)
    @given(prices=st.lists(bids, min_size=1, max_size=40),
           capacity=st.integers(min_value=1, max_value=8),
           base_fee=st.integers(min_value=1, max_value=20))
    def test_fee_eviction_never_drops_above_floor(self, prices, capacity,
                                                  base_fee):
        pool = Mempool(MempoolPolicy(capacity=capacity))
        pool.pricer = build_fee_model(
            FeePolicy(base_fee=base_fee), gas_target=1_000)
        violations = []
        floor_before = 0
        incoming_price = 0

        def check(victim) -> None:
            # only the cheapest resident, outbid strictly, may go: the
            # victim is never priced above the admission floor that was
            # in force when the displacing transaction arrived, and is
            # always strictly cheaper than what displaced it
            price = pool.pricer.effective_price(victim)
            if price > floor_before or price >= incoming_price:
                violations.append(victim)

        pool.on_evict = check
        for i, (fee, tip) in enumerate(prices):
            tx = transfer(f"s{i % 5}", "sink", sequence=i,
                          fee_per_gas=fee, tip=tip, gas_limit=21_000)
            floor_before = pool.price_floor()
            incoming_price = pool.pricer.effective_price(tx)
            try:
                pool.add(tx)
            except MempoolFullError:
                pass
        assert not violations


class TestBudgetInvariant:
    @settings(max_examples=4, deadline=None)
    @given(chain=st.sampled_from(("ethereum", "algorand", "solana")),
           budget=st.integers(min_value=10_000, max_value=5_000_000),
           rate=st.sampled_from((200.0, 2_000.0)),
           bid=st.floats(min_value=1.0, max_value=5.0))
    def test_attacker_spend_never_exceeds_budget(self, chain, budget,
                                                 rate, bid):
        spec = simple_spec(
            TransferSpec(AccountSample(100)),
            LoadSchedule.constant(100, 15),
            fees=FeeSpec(),
            adversary=AdversarySpec(budget=budget, rate=rate,
                                    bid_multiplier=bid))
        primary = Primary(chain, "testnet", scale=0.02, seed=1)
        result = primary.run(spec, workload_name="budget-property",
                             drain=60.0, max_sim_seconds=200.0)
        adversary = result.economics["adversary"]
        assert 0 <= adversary["spend"] <= budget
        # nothing stays reserved once the run has fully drained or been
        # cut off: every submission commits, drops, or was never made
        assert adversary["reserved"] >= 0
