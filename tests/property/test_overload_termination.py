"""Property: every chain terminates cleanly under 10x saturation load.

The resource-exhaustion model must never wedge the harness: whatever a
chain's configured overload response (OOM crash, commit stall, shedding,
or none), a saturating run must come back with a well-formed result — the
watchdog and deadline machinery bound the run even when the chain itself
stops making progress.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blockchains.registry import CHAIN_NAMES
from repro.core.runner import run_benchmark
from repro.core.spec import (
    AccountSample,
    LoadSchedule,
    TransferSpec,
    simple_spec,
)

#: roughly 10x the fastest chain's sustainable rate at scale 0.02
SATURATION_TPS = 20_000


def saturating_spec():
    return simple_spec(TransferSpec(AccountSample(200)),
                       LoadSchedule.constant(SATURATION_TPS, 20.0))


class TestSaturationTermination:
    @settings(max_examples=6, deadline=None)
    @given(chain=st.sampled_from(CHAIN_NAMES),
           seed=st.integers(min_value=0, max_value=3))
    def test_every_chain_terminates_with_well_formed_result(self, chain,
                                                            seed):
        result = run_benchmark(chain, "testnet", saturating_spec(),
                               workload_name="saturation",
                               scale=0.02, seed=seed, drain=60.0,
                               max_sim_seconds=300.0)
        assert result.status in {"ok", "degraded", "failed"}
        summary = result.summary()
        json.dumps(summary)   # must be serialisable, no NaN/objects
        assert summary["submitted"] > 0
        assert summary["average_throughput_tps"] >= 0
        # every overload event carries a finite timestamp and a kind
        for event in result.overload_events:
            assert event["at"] >= 0.0
            assert event["kind"]
        # a failed run must explain itself via watchdog or deadline events
        if result.status == "failed":
            assert result.liveness_events
