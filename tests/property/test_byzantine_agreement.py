"""Property tests: BFT safety holds under k <= f adversarial replicas.

The acceptance invariant of the Byzantine subsystem: whichever single
replica misbehaves (equivocation or vote withholding), whenever the
window opens, every quorum-BFT protocol preserves agreement and total
order — the :class:`SafetyAuditor` verdict stays ``ok``. The final test
turns the lens on the auditor itself: a hand-forged fork in the decision
stream must be detected (the auditor-of-the-auditor check).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consensus.auditor import SafetyAuditor
from repro.consensus.base import Decision
from repro.consensus.testbed import run_audited
from repro.sim.byzantine import ByzantineSchedule, Equivocate, Silence

N = 4  # f = 1 for the quorum-BFT recipes


def adversarial_run(protocol, kind, byzantine_node, start, seed):
    until = {"hotstuff": 6.0, "ibft": 8.0, "tower": 15.0}[protocol]
    schedule = ByzantineSchedule((
        kind(node=byzantine_node, start=start, stop=until / 2),))
    return run_audited(protocol, schedule, seed=seed, until=until)


@pytest.mark.parametrize("protocol", ("hotstuff", "ibft", "tower"))
class TestSafetyWithinTolerance:
    @settings(max_examples=4, deadline=None)
    @given(byzantine_node=st.integers(min_value=0, max_value=N - 1),
           start=st.floats(min_value=0.0, max_value=1.0),
           seed=st.integers(min_value=1, max_value=3))
    def test_equivocator_never_breaks_agreement(self, protocol,
                                                byzantine_node, start,
                                                seed):
        harness, auditor = adversarial_run(protocol, Equivocate,
                                           byzantine_node, start, seed)
        assert auditor.verdict == "ok", auditor.forensic_lines()
        if protocol != "hotstuff":
            # HotStuff's exponential pacemaker backoff can push recovery
            # past this compressed horizon on some seeds (timeouts double
            # per view wasted inside the attack window) — a liveness
            # artifact, so the honest-progress claim is asserted on the
            # protocols whose round timers reset per height
            honest = [d for d in harness.decisions
                      if d.node != byzantine_node]
            assert honest, "honest replicas never committed"

    @settings(max_examples=4, deadline=None)
    @given(byzantine_node=st.integers(min_value=0, max_value=N - 1),
           start=st.floats(min_value=0.0, max_value=1.0),
           seed=st.integers(min_value=1, max_value=3))
    def test_silent_replica_never_breaks_agreement(self, protocol,
                                                   byzantine_node, start,
                                                   seed):
        harness, auditor = adversarial_run(protocol, Silence,
                                           byzantine_node, start, seed)
        assert auditor.verdict == "ok", auditor.forensic_lines()
        honest = [d for d in harness.decisions
                  if d.node != byzantine_node]
        assert honest, "honest replicas never committed"


class TestAuditorDetectsForgedForks:
    """Auditor-of-the-auditor: deliberately forked commit sequences."""

    @settings(max_examples=10, deadline=None)
    @given(height=st.integers(min_value=1, max_value=50),
           nodes=st.tuples(st.integers(min_value=0, max_value=3),
                           st.integers(min_value=0, max_value=3)))
    def test_conflicting_commits_always_detected(self, height, nodes):
        first, second = nodes
        auditor = SafetyAuditor(check_certificates=False)
        auditor.observe_decision(Decision(height, "a", first, 1.0))
        auditor.observe_decision(Decision(height, "b", second, 1.1))
        # same node twice is a total-order breach; two nodes disagreeing
        # is an agreement breach — either way the fork must be caught
        assert auditor.verdict == "violated"
        checks = {v["check"] for v in auditor.violations}
        expected = "total_order" if first == second else "agreement"
        assert expected in checks

    @settings(max_examples=10, deadline=None)
    @given(heights=st.lists(st.integers(min_value=1, max_value=20),
                            min_size=1, max_size=8, unique=True))
    def test_consistent_commits_never_flagged(self, heights):
        auditor = SafetyAuditor(check_certificates=False)
        for height in heights:
            for node in range(4):
                auditor.observe_decision(
                    Decision(height, f"v{height}", node, float(height)))
        assert auditor.verdict == "ok"
        assert auditor.violations == []
