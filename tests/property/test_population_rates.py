"""Property: population emission counts match the declared rate profile.

The aggregate lane collapses millions of users into per-tick counts; the
cohort lane runs them as ordinary clients. Whatever the population size,
tick, rate or split, both lanes must emit what the per-user rate profile
times their user count dictates — the deterministic arrival process
exactly (carry accumulator, error < 1 tx), the Poisson process to within
sampling error at a fixed seed.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blockchains.base import ExperimentScale
from repro.common.rng import RngFactory
from repro.core.interface import BlockchainConnector, Client
from repro.core.population import AggregateArrivals, PopulationSpec
from repro.core.secondary import Secondary
from repro.core.spec import (
    AccountSample,
    Behavior,
    LoadSchedule,
    TransferSpec,
)
from repro.sim.engine import Engine

INTERACTION = TransferSpec(AccountSample(10))


class CountingConnector(BlockchainConnector):
    """Counts per-lane emissions; inherits the default batch forms."""

    def __init__(self) -> None:
        self.cohort_emitted = 0
        self.aggregate_emitted = 0

    def create_client(self, name, location, endpoints):
        return Client(name, location, tuple(endpoints))

    def encode(self, interaction, resource, t):
        return object()

    def trigger(self, client, encoded):
        if client.name == "population":
            self.aggregate_emitted += 1
        else:
            self.cohort_emitted += 1
        return True


def run_population_secondary(spec: PopulationSpec, tick: float,
                             scale: float = 1.0, seed: int = 7):
    """One Secondary carrying both lanes of *spec*; returns the connector."""
    connector = CountingConnector()
    engine = Engine()
    experiment = ExperimentScale(scale)
    secondary = Secondary("sec-0", "ohio", engine, connector,
                          scale=experiment, tick=tick)
    cohort = [connector.create_client(f"c{i}", "ohio", ())
              for i in range(spec.cohort_size)]
    secondary.assign(cohort, Behavior(spec.interaction, spec.load))
    process = AggregateArrivals(spec, experiment.rate, tick,
                                RngFactory(seed).child("population"))
    secondary.assign_aggregate(process, spec.interaction)
    secondary.start()
    engine.run()
    return connector


def tick_grid_total(rate: float, users: int, duration: float,
                    tick: float, scale: float) -> float:
    """The exact offered transactions over the emission tick grid."""
    nticks = math.ceil(duration / tick - 1e-9)
    return rate * users * scale * tick * nticks


class TestDeterministicArrivalsExact:
    @given(users=st.integers(min_value=10, max_value=10_000_000),
           cohort=st.integers(min_value=1, max_value=8),
           rate=st.floats(min_value=1e-4, max_value=0.05,
                          allow_nan=False),
           duration=st.floats(min_value=1.0, max_value=30.0,
                              allow_nan=False),
           tick=st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
           scale=st.floats(min_value=0.01, max_value=1.0,
                           allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_both_lanes_match_the_rate_profile(self, users, cohort, rate,
                                               duration, tick, scale):
        spec = PopulationSpec(users=users, interaction=INTERACTION,
                              load=LoadSchedule.constant(rate, duration),
                              cohort=cohort, arrival="deterministic")
        connector = run_population_secondary(spec, tick, scale=scale)
        expected_aggregate = tick_grid_total(
            rate, spec.aggregate_users, duration, tick, scale)
        expected_cohort = tick_grid_total(
            rate, spec.cohort_size, duration, tick, scale)
        # carry accumulators truncate at most one transaction per lane
        assert abs(connector.aggregate_emitted - expected_aggregate) <= 1.0
        assert abs(connector.cohort_emitted - expected_cohort) <= 1.0


class TestPoissonArrivalsMean:
    def test_poisson_total_tracks_the_mean(self):
        # fixed seed: deterministic draw sequence, large lambda per tick
        spec = PopulationSpec(users=2_000_000, interaction=INTERACTION,
                              load=LoadSchedule.constant(0.001, 30.0),
                              cohort=1)
        connector = run_population_secondary(spec, tick=0.1, scale=1.0,
                                             seed=11)
        expected = tick_grid_total(0.001, spec.aggregate_users, 30.0,
                                   0.1, 1.0)
        relative_error = abs(connector.aggregate_emitted
                             - expected) / expected
        assert relative_error < 0.01

    def test_burst_envelope_preserves_the_mean(self):
        # with burst_length 0.5 s at fraction 0.1 the mean on/off cycle
        # is ~5 s, so a 2000 s horizon sees ~400 cycles and the sample
        # mean converges on the nominal rate (the envelope is
        # mean-preserving); the horizon only costs 20k stub ticks
        spec = PopulationSpec(users=2_000_000, interaction=INTERACTION,
                              load=LoadSchedule.constant(0.001, 2000.0),
                              cohort=1, arrival="burst",
                              burst_factor=4.0, burst_fraction=0.1,
                              burst_length=0.5)
        connector = run_population_secondary(spec, tick=0.1, scale=1.0,
                                             seed=11)
        expected = tick_grid_total(0.001, spec.aggregate_users, 2000.0,
                                   0.1, 1.0)
        relative_error = abs(connector.aggregate_emitted
                             - expected) / expected
        assert relative_error < 0.05

    def test_same_seed_same_counts(self):
        spec = PopulationSpec(users=500_000, interaction=INTERACTION,
                              load=LoadSchedule.constant(0.001, 10.0),
                              cohort=1)
        first = run_population_secondary(spec, tick=0.1, seed=5)
        second = run_population_secondary(spec, tick=0.1, seed=5)
        assert first.aggregate_emitted == second.aggregate_emitted
