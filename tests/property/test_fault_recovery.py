"""Property tests: BFT safety holds across crash-and-recover schedules.

The satellite invariant of the fault-injection subsystem: with at most f
replicas crashed and later recovered, HotStuff and IBFT never commit two
different blocks at the same height (agreement), never double-commit a
height on one node, and eventually resume committing after the heal.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consensus.base import ConsensusHarness
from repro.consensus.hotstuff import HotStuffReplica
from repro.consensus.ibft import IBFTReplica
from repro.sim.faults import FaultInjector, FaultSchedule

N = 4  # f = 1: any single replica may crash and recover
RECOVER_AT = 1.8
UNTIL = 4.5


def crash_recover_schedule(victim: int, crash_at: float) -> FaultSchedule:
    return FaultSchedule.from_dicts([
        {"at": crash_at, "kind": "crash", "node": victim},
        {"at": RECOVER_AT, "kind": "recover", "node": victim},
    ])


def run_protocol(replica_factory, victim: int, crash_at: float,
                 seed: int) -> ConsensusHarness:
    harness = ConsensusHarness(
        [replica_factory() for _ in range(N)],
        seed=seed,
        injector=FaultInjector(crash_recover_schedule(victim, crash_at)))
    for i in range(10):
        harness.submit(f"tx-{i}")
    harness.run(until=UNTIL)
    return harness


class TestHotStuffCrashRecoverSafety:
    @settings(max_examples=6, deadline=None)
    @given(victim=st.integers(min_value=0, max_value=N - 1),
           crash_at=st.floats(min_value=0.1, max_value=1.5),
           seed=st.integers(min_value=0, max_value=3))
    def test_agreement_and_liveness(self, victim, crash_at, seed):
        harness = run_protocol(
            lambda: HotStuffReplica(base_timeout=0.25),
            victim, crash_at, seed)
        harness.check_agreement()
        harness.check_no_duplicate_commits()
        assert any(d.time > RECOVER_AT for d in harness.decisions), \
            "commits never resumed after the heal"


class TestIBFTCrashRecoverSafety:
    @settings(max_examples=6, deadline=None)
    @given(victim=st.integers(min_value=0, max_value=N - 1),
           crash_at=st.floats(min_value=0.1, max_value=1.5),
           seed=st.integers(min_value=0, max_value=3))
    def test_agreement_and_liveness(self, victim, crash_at, seed):
        harness = run_protocol(
            lambda: IBFTReplica(base_timeout=0.5),
            victim, crash_at, seed)
        harness.check_agreement()
        harness.check_no_duplicate_commits()
        assert any(d.time > RECOVER_AT for d in harness.decisions), \
            "commits never resumed after the heal"
