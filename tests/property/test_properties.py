"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.ledger import Ledger
from repro.chain.block import Block
from repro.chain.mempool import Mempool, MempoolPolicy
from repro.chain.state import ContractStorage, WorldState
from repro.chain.transaction import transfer
from repro.common.errors import MempoolFullError
from repro.common.rng import derive_seed
from repro.crypto.hashing import merkle_root
from repro.core.spec import LoadSchedule
from repro.sim.engine import Engine
from repro.vm.gas import GasMeter
from repro.vm.machines import GETH_EVM_CAPS
from repro.vm.program import ExecutionContext


class TestEngineProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50))
    def test_events_always_execute_in_time_order(self, times):
        engine = Engine()
        executed = []
        for t in times:
            engine.schedule_at(t, lambda t=t: executed.append(t))
        engine.run()
        assert executed == sorted(executed)
        assert len(executed) == len(times)

    @given(st.lists(st.floats(min_value=0.001, max_value=100,
                              allow_nan=False), min_size=1, max_size=30))
    def test_clock_never_goes_backwards(self, delays):
        engine = Engine()
        observed = []

        def chain(remaining):
            observed.append(engine.now)
            if remaining:
                engine.schedule_after(remaining[0],
                                      lambda: chain(remaining[1:]))

        engine.schedule_at(0.0, lambda: chain(delays))
        engine.run()
        assert observed == sorted(observed)


class TestMempoolProperties:
    @given(st.lists(st.sampled_from(["s0", "s1", "s2"]), min_size=1,
                    max_size=60),
           st.integers(min_value=1, max_value=10))
    def test_per_sender_quota_never_exceeded(self, senders, quota):
        pool = Mempool(MempoolPolicy(per_sender_quota=quota))
        for sender in senders:
            try:
                pool.add(transfer(sender, "r"))
            except MempoolFullError:
                pass
            assert pool.pending_for(sender) <= quota

    @given(st.integers(min_value=1, max_value=30),
           st.integers(min_value=1, max_value=50))
    def test_capacity_never_exceeded(self, capacity, submissions):
        pool = Mempool(MempoolPolicy(capacity=capacity))
        for i in range(submissions):
            pool.try_add(transfer(f"s{i}", "r"))
            assert len(pool) <= capacity

    @given(st.integers(min_value=1, max_value=30),
           st.integers(min_value=1, max_value=50))
    def test_evict_oldest_keeps_newest(self, capacity, submissions):
        pool = Mempool(MempoolPolicy(capacity=capacity, evict_oldest=True))
        txs = [transfer(f"s{i}", "r") for i in range(submissions)]
        for tx in txs:
            pool.add(tx)
        survivors = pool.pop_batch()
        expected = txs[max(0, submissions - capacity):]
        assert survivors == expected

    @given(st.integers(min_value=1, max_value=40))
    def test_pop_conserves_transactions(self, n):
        pool = Mempool()
        txs = [transfer(f"s{i}", "r") for i in range(n)]
        for tx in txs:
            pool.add(tx)
        popped = []
        while len(pool):
            popped.extend(pool.pop_batch(max_count=3))
        assert popped == txs


class TestMerkleProperties:
    @given(st.lists(st.text(max_size=20), max_size=40))
    def test_root_is_deterministic(self, leaves):
        assert merkle_root(leaves) == merkle_root(leaves)

    @given(st.lists(st.text(max_size=20), min_size=2, max_size=40))
    def test_root_changes_when_a_leaf_changes(self, leaves):
        mutated = list(leaves)
        mutated[0] = mutated[0] + "-changed"
        assert merkle_root(leaves) != merkle_root(mutated)


class TestIsqrtProperties:
    @given(st.integers(min_value=0, max_value=10**16))
    def test_matches_math_isqrt(self, value):
        ctx = ExecutionContext(ContractStorage(),
                               GasMeter(10**12), GETH_EVM_CAPS, "a")
        assert ctx.isqrt(value) == math.isqrt(value)

    @given(st.integers(min_value=0, max_value=10**12))
    def test_result_squares_below_value(self, value):
        ctx = ExecutionContext(ContractStorage(),
                               GasMeter(10**12), GETH_EVM_CAPS, "a")
        root = ctx.isqrt(value)
        assert root * root <= value < (root + 1) * (root + 1)


class TestLoadScheduleProperties:
    @given(st.dictionaries(st.integers(min_value=0, max_value=1000),
                           st.integers(min_value=0, max_value=10_000),
                           min_size=1, max_size=10))
    def test_total_equals_numeric_integral(self, mapping):
        schedule = LoadSchedule.from_mapping(mapping)
        numeric = sum(schedule.rate_at(t + 0.5)
                      for t in range(int(schedule.duration)))
        assert schedule.total_transactions() == pytest.approx(
            numeric, rel=1e-6, abs=1e-6)

    @given(st.floats(min_value=0.01, max_value=10, allow_nan=False),
           st.dictionaries(st.integers(min_value=0, max_value=100),
                           st.integers(min_value=0, max_value=1000),
                           min_size=1, max_size=6))
    def test_scaling_scales_the_total(self, factor, mapping):
        schedule = LoadSchedule.from_mapping(mapping)
        scaled = schedule.scaled(factor)
        assert scaled.total_transactions() == pytest.approx(
            schedule.total_transactions() * factor)


class TestLedgerProperties:
    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=1,
                    max_size=30),
           st.integers(min_value=0, max_value=5))
    def test_finality_is_monotone_and_complete(self, tx_counts, depth):
        ledger = Ledger(confirmation_depth=depth)
        time = 0.0
        for count in tx_counts:
            time += 1.0
            block = Block(ledger.height + 1, ledger.head.block_hash, "n",
                          [transfer("a", "b") for _ in range(count)])
            ledger.append(block, decided_at=time)
        final_heights = [h for h in range(1, ledger.height + 1)
                         if ledger.final_at(h) is not None]
        # exactly the heights buried at least `depth` deep are final
        assert final_heights == list(range(1, max(0, ledger.height - depth) + 1))
        # finality times never decrease with height
        times = [ledger.final_at(h) for h in final_heights]
        assert times == sorted(times)


class TestStateProperties:
    @given(st.lists(st.tuples(st.sampled_from("abc"), st.sampled_from("abc"),
                              st.integers(min_value=0, max_value=100)),
                    max_size=50))
    def test_transfers_conserve_total_balance(self, moves):
        state = WorldState()
        for account in "abc":
            state.credit(account, 1000)
        total_before = sum(state.balance(x) for x in "abc")
        for src, dst, amount in moves:
            if state.debit(src, amount):
                state.credit(dst, amount)
        assert sum(state.balance(x) for x in "abc") == total_before
        assert all(state.balance(x) >= 0 for x in "abc")


class TestSeedProperties:
    @given(st.integers(min_value=0, max_value=2**32),
           st.lists(st.text(min_size=1, max_size=8), min_size=1, max_size=4))
    def test_derive_seed_stable_and_in_range(self, root, names):
        seed = derive_seed(root, *names)
        assert seed == derive_seed(root, *names)
        assert 0 <= seed < 2**64
