"""Schedule-driven fault injection through the consensus harness.

Horizons are short (a few virtual seconds) and pacemaker timeouts are
compressed — a single-region cluster commits ~1000 heights per virtual
second, so these windows already cover thousands of protocol rounds.
"""

from __future__ import annotations

import pytest

from repro.consensus.base import ConsensusHarness
from repro.consensus.hotstuff import HotStuffReplica
from repro.consensus.ibft import IBFTReplica
from repro.sim.faults import FaultInjector, FaultSchedule


def hotstuff_harness(n=4, schedule=None, until=6.0, seed=1, payloads=20):
    injector = FaultInjector(schedule) if schedule is not None else None
    harness = ConsensusHarness(
        [HotStuffReplica(base_timeout=0.25) for _ in range(n)],
        seed=seed, injector=injector)
    for i in range(payloads):
        harness.submit(f"tx-{i}")
    harness.run(until=until)
    return harness


def ibft_harness(n=4, schedule=None, until=6.0, seed=1, payloads=20):
    injector = FaultInjector(schedule) if schedule is not None else None
    harness = ConsensusHarness(
        [IBFTReplica(base_timeout=0.5) for _ in range(n)],
        seed=seed, injector=injector)
    for i in range(payloads):
        harness.submit(f"tx-{i}")
    harness.run(until=until)
    return harness


class TestDropAccounting:
    def test_crash_drops_counted_separately_from_loss(self):
        schedule = FaultSchedule.from_dicts([
            {"at": 0.5, "kind": "crash", "node": 3},
        ])
        harness = ConsensusHarness(
            [HotStuffReplica(base_timeout=0.25) for _ in range(4)],
            seed=1, drop_rate=0.05,
            injector=FaultInjector(schedule))
        harness.run(until=4.0)
        stats = harness.stats()
        assert stats["dropped_by_crash"] > 0
        assert stats["dropped_by_loss"] > 0
        # no partition/outage/link faults were scheduled
        assert stats["dropped_by_fault"] == 0

    def test_partition_drops_counted_as_fault(self):
        schedule = FaultSchedule.from_dicts([
            {"at": 0.5, "kind": "partition", "groups": [[0, 1], [2, 3]]},
        ])
        harness = hotstuff_harness(schedule=schedule, until=4.0)
        stats = harness.stats()
        assert stats["dropped_by_fault"] > 0
        assert stats["dropped_by_crash"] == 0

    def test_fault_free_run_counts_nothing(self):
        harness = hotstuff_harness(until=2.0)
        stats = harness.stats()
        assert stats["dropped_by_crash"] == 0
        assert stats["dropped_by_fault"] == 0
        assert stats["dropped_by_loss"] == 0


class TestHotStuffRecovery:
    def test_crash_then_recover_resumes_commits(self):
        schedule = FaultSchedule.from_dicts([
            {"at": 1.0, "kind": "crash", "node": 0},
            {"at": 2.0, "kind": "recover", "node": 0},
        ])
        harness = hotstuff_harness(schedule=schedule, until=6.0)
        harness.check_agreement()
        harness.check_no_duplicate_commits()
        recovered_commits = [d for d in harness.decisions if d.time > 2.0]
        assert recovered_commits, "commits never resumed after recovery"

    def test_recovered_node_commits_again(self):
        schedule = FaultSchedule.from_dicts([
            {"at": 1.0, "kind": "crash", "node": 1},
            {"at": 2.0, "kind": "recover", "node": 1},
        ])
        harness = hotstuff_harness(schedule=schedule, until=8.0)
        own = [d for d in harness.decisions if d.node == 1 and d.time > 2.0]
        assert own, "the recovered replica never committed again"

    def test_partition_then_heal_keeps_safety(self):
        schedule = FaultSchedule.from_dicts([
            {"at": 0.5, "kind": "partition", "groups": [[0], [1, 2, 3]]},
            {"at": 2.0, "kind": "heal"},
        ])
        harness = hotstuff_harness(schedule=schedule, until=6.0)
        harness.check_agreement()
        harness.check_no_duplicate_commits()
        assert any(d.time > 2.0 for d in harness.decisions)


class TestIBFTRecovery:
    def test_crash_then_recover_state_syncs(self):
        schedule = FaultSchedule.from_dicts([
            {"at": 1.0, "kind": "crash", "node": 2},
            {"at": 3.0, "kind": "recover", "node": 2},
        ])
        harness = ibft_harness(schedule=schedule, until=8.0)
        harness.check_agreement()
        harness.check_no_duplicate_commits()
        # the recovered node adopted the heights it slept through and
        # resumed committing new ones
        own = [d for d in harness.decisions if d.node == 2 and d.time > 3.0]
        assert own
        replica = harness.replicas[2]
        assert replica.height > 1

    def test_commits_resume_after_quorum_restored(self):
        # with n=4, two crashed nodes deny the 2f+1=3 quorum entirely
        schedule = FaultSchedule.from_dicts([
            {"at": 1.0, "kind": "crash", "nodes": [0, 1]},
            {"at": 4.0, "kind": "recover", "nodes": [0, 1]},
        ])
        harness = ibft_harness(schedule=schedule, until=12.0)
        harness.check_agreement()
        stalled = [d for d in harness.decisions if 1.5 < d.time < 4.0]
        resumed = [d for d in harness.decisions if d.time > 4.0]
        assert not stalled, "commits happened without a quorum"
        assert resumed, "commits never resumed after recovery"


class TestManualDriving:
    def test_legacy_crash_api_still_works(self):
        harness = ConsensusHarness([HotStuffReplica() for _ in range(4)],
                                   seed=1)
        harness.crash(3)
        assert 3 in harness.crashed
        harness.recover(3)
        assert 3 not in harness.crashed

    def test_injector_shared_with_network_layer(self):
        # one injector can serve the harness and a Network simultaneously
        schedule = FaultSchedule.from_dicts([
            {"at": 0.5, "kind": "crash", "node": 0},
        ])
        injector = FaultInjector(schedule)
        harness = ConsensusHarness(
            [HotStuffReplica(base_timeout=0.25) for _ in range(4)],
            seed=1, injector=injector)
        harness.network.attach_faults(injector)
        harness.run(until=3.0)
        assert injector.is_crashed(0)
        assert harness.stats()["dropped_by_crash"] > 0
