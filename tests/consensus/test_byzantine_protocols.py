"""Adversarial replicas against every protocol, audited online.

The acceptance matrix for the Byzantine subsystem: with k <= f
adversarial replicas every quorum-BFT protocol keeps both safety and
liveness; past the bound the auditor produces a deterministic forensic
report; and the empty schedule is a strict no-op (byte-identical runs).
"""

from __future__ import annotations

import pytest

from repro.consensus.auditor import SafetyAuditor
from repro.consensus.base import ConsensusHarness
from repro.consensus.ibft import IBFTReplica
from repro.consensus.testbed import (
    PROTOCOLS,
    _drive_raft,
    build_harness,
    protocol_for_chain,
    run_audited,
)
from repro.sim.byzantine import (
    ByzantineAdversary,
    ByzantineSchedule,
    CensorLeader,
    DelayReorder,
    Equivocate,
    Silence,
)

BFT_PROTOCOLS = ("hotstuff", "ibft", "tower", "algorand")


def one_adversary(kind, until=1e9):
    return ByzantineSchedule((kind(node=0, start=0.0, stop=until),))


def honest_decisions(harness, schedule):
    byzantine = set(schedule.nodes())
    return [d for d in harness.decisions if d.node not in byzantine]


class TestWithinTolerance:
    """k = 1 <= f: safety and liveness hold for every BFT protocol."""

    @pytest.mark.parametrize("protocol", BFT_PROTOCOLS)
    def test_single_equivocator_is_absorbed(self, protocol):
        schedule = one_adversary(Equivocate)
        harness, auditor = run_audited(protocol, schedule)
        assert auditor.verdict == "ok"
        assert honest_decisions(harness, schedule)
        assert auditor.liveness_grade() == "ok"

    @pytest.mark.parametrize("protocol", BFT_PROTOCOLS)
    def test_silence_window_is_absorbed(self, protocol):
        # the window closes halfway: safety must hold throughout and
        # honest commits must exist by the end of the run
        until = PROTOCOLS[protocol].until
        schedule = ByzantineSchedule((
            Silence(node=0, start=0.0, stop=until / 2),))
        harness, auditor = run_audited(protocol, schedule)
        assert auditor.verdict == "ok"
        assert honest_decisions(harness, schedule)
        assert auditor.liveness_grade() == "ok"

    def test_permanent_silence_starves_hotstuff_three_chains(self):
        # the nuance the auditor makes visible: at n=4 every fourth QC
        # transits the silent next-leader and is lost, so honest
        # replicas never see three consecutive QCs — a pure liveness
        # failure (safety stays intact) that ends when the window does
        schedule = one_adversary(Silence)
        harness, auditor = run_audited("hotstuff", schedule)
        assert auditor.verdict == "ok"
        assert not honest_decisions(harness, schedule)

    def test_delay_reorder_within_bounds(self):
        schedule = one_adversary(DelayReorder)
        harness, auditor = run_audited("hotstuff", schedule)
        assert auditor.verdict == "ok"
        assert honest_decisions(harness, schedule)
        assert harness.stats()["byzantine_delayed"] > 0

    def test_leader_censorship(self):
        schedule = one_adversary(CensorLeader)
        harness, auditor = run_audited("hotstuff", schedule)
        assert auditor.verdict == "ok"
        assert honest_decisions(harness, schedule)
        assert harness.stats()["byzantine_censored"] > 0

    def test_interventions_are_counted(self):
        schedule = one_adversary(Equivocate)
        harness, _ = run_audited("ibft", schedule)
        stats = harness.stats()
        assert stats["byzantine_equivocations"] > 0
        assert stats["byzantine_withheld"] == 0


class TestBeyondTolerance:
    """k = f+1 equivocators spanning both fork audiences: the fork lands."""

    def fork_ibft(self):
        # nodes {0, 1} cover both audience parities, so the two
        # coordinated stories each reach a quorum-sized set
        schedule = ByzantineSchedule(tuple(
            Equivocate(node=node, start=0.0, stop=10.0)
            for node in (0, 1)))
        return run_audited("ibft", schedule, until=4.0)

    def test_ibft_forks_at_f_plus_one(self):
        harness, auditor = self.fork_ibft()
        assert auditor.verdict == "violated"
        checks = {v["check"] for v in auditor.violations}
        assert "agreement" in checks

    def test_forensic_report_names_the_fork(self):
        _, auditor = self.fork_ibft()
        violation = auditor.violations[0]
        assert violation["height"] >= 1
        assert len(violation["values"]) == 2
        assert violation["values"][0] != violation["values"][1]
        assert auditor.forensic_lines()

    def test_violation_report_is_deterministic(self):
        _, first = self.fork_ibft()
        _, second = self.fork_ibft()
        assert first.report() == second.report()

    def test_raft_leader_equivocation_forks_followers(self):
        # Raft is CFT: one double-signing *leader* forks the honest
        # followers immediately (a follower's acks carry no values, so
        # a byzantine follower is harmless — the cliff is the leader)
        probe = build_harness("raft")
        probe.run(until=10.0)
        leader = max((r for r in probe.replicas if r.role == "leader"),
                     key=lambda r: r.term).node_id
        schedule = ByzantineSchedule((
            Equivocate(node=leader, start=0.0, stop=1e9),))
        adversary = ByzantineAdversary(schedule, seed=7)
        auditor = SafetyAuditor()
        harness = build_harness("raft", adversary=adversary,
                                auditor=auditor)
        _drive_raft(harness, PROTOCOLS["raft"], 18.0)
        assert auditor.verdict == "violated"
        assert {v["check"] for v in auditor.violations} == {"agreement"}


class TestEmptyScheduleIsNoOp:
    """Acceptance: byzantine runs byte-identical when the schedule is empty."""

    def run_ibft(self, adversary=None):
        harness = ConsensusHarness(
            [IBFTReplica(base_timeout=0.5) for _ in range(4)],
            seed=1, adversary=adversary)
        for i in range(20):
            harness.submit(f"tx-{i}")
        harness.run(until=6.0)
        return harness

    def test_empty_schedule_normalised_away(self):
        adversary = ByzantineAdversary(ByzantineSchedule(), seed=1)
        harness = self.run_ibft(adversary=adversary)
        assert harness.adversary is None

    def test_decisions_and_stats_identical(self):
        plain = self.run_ibft()
        empty = self.run_ibft(
            adversary=ByzantineAdversary(ByzantineSchedule(), seed=1))
        assert plain.decisions == empty.decisions
        assert plain.stats() == empty.stats()
        assert plain.engine.now == empty.engine.now


class TestAuditorStandalone:
    def test_byzantine_nodes_are_exempt(self):
        from repro.consensus.base import Decision
        auditor = SafetyAuditor(byzantine=(0,), check_certificates=False)
        auditor.observe_decision(Decision(1, "a", 0, 1.0))
        auditor.observe_decision(Decision(1, "b", 1, 1.1))
        # node 0 lies, node 1 sets the canonical value: no conflict yet
        assert auditor.verdict == "ok"
        auditor.observe_decision(Decision(1, "c", 2, 1.2))
        assert auditor.verdict == "violated"

    def test_strict_mode_raises(self):
        from repro.common.errors import SafetyViolationError
        from repro.consensus.base import Decision
        auditor = SafetyAuditor(strict=True, check_certificates=False)
        auditor.observe_decision(Decision(1, "a", 1, 1.0))
        with pytest.raises(SafetyViolationError) as excinfo:
            auditor.observe_decision(Decision(1, "b", 2, 1.1))
        assert excinfo.value.violation["check"] == "agreement"


class TestTracing:
    def test_adversary_windows_become_spans(self):
        from repro.obs.trace import LifecycleTracer
        tracer = LifecycleTracer(chain="ibft")
        schedule = ByzantineSchedule((
            Equivocate(node=0, start=0.0, stop=4.0),
            Silence(node=1, start=1.0, stop=3.0)))
        harness, _ = run_audited("ibft", schedule, until=4.0,
                                 tracer=tracer)
        spans = tracer.byzantine_spans()
        assert len(spans) == 2
        assert {s.phase for s in spans} == {"equivocate", "silence"}
        assert all(s.scope == "byzantine" for s in spans)
        meta = dict(spans[0].meta)
        assert meta["node"] == 0


class TestChainMapping:
    def test_every_benchmark_chain_maps_to_a_protocol(self):
        from repro.blockchains.registry import CHAIN_NAMES
        for chain in CHAIN_NAMES:
            assert protocol_for_chain(chain) in PROTOCOLS

    def test_unknown_chain_fails_fast(self):
        from repro.common.errors import SpecError
        with pytest.raises(SpecError):
            protocol_for_chain("bitcoin")
