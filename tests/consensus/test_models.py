"""Tests for the analytic consensus performance models."""

from __future__ import annotations

import pytest

from repro.consensus.models import (
    BlockAttempt,
    CliquePerf,
    CommitteePerf,
    DAGPerf,
    LeaderBFTPerf,
    PoHPerf,
    WanProfile,
)
from repro.sim.deployment import COMMUNITY, DATACENTER, DEVNET


def profile_for(config):
    return WanProfile(config.node_regions())


def attempt(tx_count=100, payload=11_000, exec_cpu=0.01, backlog=0,
            region="ohio", arrival=0.0):
    return BlockAttempt(tx_count=tx_count, payload_bytes=payload,
                        exec_cpu_seconds=exec_cpu, backlog=backlog,
                        leader_region=region, arrival_rate=arrival)


class TestWanProfile:
    def test_datacenter_rtts_are_tiny(self):
        profile = profile_for(DATACENTER)
        assert profile.rtt_quantile(0.66) == pytest.approx(0.001)

    def test_geo_rtts_are_large(self):
        profile = profile_for(DEVNET)
        assert profile.rtt_quantile(0.66) > 0.1

    def test_quantiles_are_monotonic(self):
        profile = profile_for(COMMUNITY)
        assert (profile.rtt_quantile(0.5) <= profile.rtt_quantile(0.66)
                <= profile.rtt_quantile(0.9))

    def test_dissemination_grows_with_payload(self):
        profile = profile_for(DEVNET)
        small = profile.dissemination_time(1_000, "ohio")
        large = profile.dissemination_time(10_000_000, "ohio")
        assert large > small

    def test_flat_dissemination_costs_more_than_tree(self):
        profile = profile_for(COMMUNITY)
        tree = profile.dissemination_time(100_000, "ohio", flat=False)
        flat = profile.dissemination_time(100_000, "ohio", flat=True)
        assert flat > tree

    def test_relay_cap_bounds_flat_cost(self):
        profile = profile_for(COMMUNITY)
        capped = profile.dissemination_time(100_000, "ohio", flat=True,
                                            relay_cap=2)
        uncapped = profile.dissemination_time(100_000, "ohio", flat=True,
                                              relay_cap=100)
        assert capped < uncapped

    def test_client_delay(self):
        profile = profile_for(DEVNET)
        assert profile.client_delay("ohio", "tokyo") == pytest.approx(
            0.1318 / 2)


class TestOverloadCurves:
    def test_no_stress_no_penalty(self):
        model = LeaderBFTPerf(profile_for(DATACENTER), overload_gamma=1.0)
        assert model.payload_factor(backlog=0, block_capacity=100) == 1.0
        assert model.payload_factor(backlog=100, block_capacity=100) == 1.0

    def test_gamma_one_halves_per_doubling(self):
        model = LeaderBFTPerf(profile_for(DATACENTER), overload_gamma=1.0)
        factor = model.payload_factor(backlog=300, block_capacity=100)
        assert factor == pytest.approx(1 / 3)

    def test_small_gamma_degrades_gently(self):
        gentle = CommitteePerf(profile_for(DATACENTER), overload_gamma=0.1)
        harsh = LeaderBFTPerf(profile_for(DATACENTER), overload_gamma=1.0)
        assert (gentle.payload_factor(1000, 100)
                > harsh.payload_factor(1000, 100))

    def test_negative_gamma_packs_blocks_fuller(self):
        # Avalanche under overload: throughput *rises* (§6.3, x1.38)
        model = DAGPerf(profile_for(DATACENTER), overload_gamma=-0.06,
                        packing_cap=1.5)
        factor = model.payload_factor(10_000, 100)
        assert 1.0 < factor <= 1.5

    def test_payload_floor(self):
        model = LeaderBFTPerf(profile_for(DATACENTER), overload_gamma=1.0,
                              payload_floor=0.25)
        assert model.payload_factor(10**6, 100) == 0.25


class TestLeaderBFT:
    def test_round_latency_grows_with_rtt(self):
        local = LeaderBFTPerf(profile_for(DATACENTER))
        geo = LeaderBFTPerf(profile_for(DEVNET))
        assert geo.round_latency(attempt()) > local.round_latency(attempt())

    def test_pool_overhead_slows_rounds(self):
        model = LeaderBFTPerf(profile_for(DATACENTER),
                              pool_overhead_per_tx=20e-6)
        fast = model.round_latency(attempt(backlog=0))
        slow = model.round_latency(attempt(backlog=100_000))
        assert slow - fast == pytest.approx(2.0, rel=0.01)

    def test_admission_overhead_tracks_arrival_rate(self):
        model = LeaderBFTPerf(profile_for(DATACENTER),
                              admission_cpu_per_tx=100e-6)
        calm = model.round_latency(attempt(arrival=0))
        stormy = model.round_latency(attempt(arrival=10_000))
        assert stormy - calm == pytest.approx(1.0, rel=0.01)

    def test_view_change_on_timeout(self):
        model = LeaderBFTPerf(profile_for(DATACENTER), round_timeout=0.5,
                              pool_overhead_per_tx=1e-3)
        outcome = model.decide(attempt(backlog=2_000))  # 2 s round > 0.5 s
        assert outcome.view_changes >= 1
        assert outcome.latency > 0.5

    def test_view_change_cascade_gives_up(self):
        model = LeaderBFTPerf(profile_for(DATACENTER), round_timeout=0.1,
                              max_timeout=0.2, pool_overhead_per_tx=1.0)
        outcome = model.decide(attempt(backlog=10_000))
        assert not outcome.committed
        assert outcome.view_changes == 8

    def test_timeout_resets_after_clean_round(self):
        model = LeaderBFTPerf(profile_for(DATACENTER), round_timeout=0.5,
                              pool_overhead_per_tx=1e-3)
        model.decide(attempt(backlog=2_000))   # forces a view change
        clean = model.decide(attempt(backlog=0))
        assert clean.view_changes == 0
        assert model._current_timeout == 0.5

    def test_pipeline_shortens_cadence(self):
        pipelined = LeaderBFTPerf(profile_for(DATACENTER), pipeline_depth=3.0,
                                  min_block_interval=0.01)
        serial = LeaderBFTPerf(profile_for(DATACENTER), pipeline_depth=1.0,
                               min_block_interval=0.01)
        assert (pipelined.next_block_delay(0.9)
                == pytest.approx(serial.next_block_delay(0.9) / 3))

    def test_view_change_flushes_pipeline(self):
        model = LeaderBFTPerf(profile_for(DATACENTER), pipeline_depth=3.0,
                              round_timeout=0.5, pool_overhead_per_tx=1e-3,
                              min_block_interval=0.01)
        model.decide(attempt(backlog=2_000))
        assert model.next_block_delay(0.9) == pytest.approx(0.9)

    def test_per_node_overhead_penalises_large_networks(self):
        small = LeaderBFTPerf(profile_for(DATACENTER), per_node_overhead=3e-3)
        large = LeaderBFTPerf(profile_for(COMMUNITY), per_node_overhead=3e-3)
        delta = (large.round_latency(attempt(region="ohio"))
                 - small.round_latency(attempt(region="ohio")))
        assert delta > 0.5  # 190 extra nodes x 3 ms


class TestFixedCadenceModels:
    def test_clique_period(self):
        model = CliquePerf(profile_for(DEVNET), period=5.0)
        assert model.next_block_delay(99.0) == 5.0

    def test_dag_period(self):
        model = DAGPerf(profile_for(DEVNET), block_period=1.9)
        assert model.next_block_delay(99.0) == 1.9

    def test_poh_slot(self):
        model = PoHPerf(profile_for(DEVNET), slot_duration=0.4)
        assert model.next_block_delay(99.0) == 0.4

    def test_committee_round_floor(self):
        model = CommitteePerf(profile_for(DATACENTER), min_round=3.6)
        outcome = model.decide(attempt())
        assert outcome.latency >= 3.6

    def test_dag_latency_includes_polling(self):
        fast = DAGPerf(profile_for(DATACENTER), beta=2)
        slow = DAGPerf(profile_for(DEVNET), beta=20)
        assert (slow.decide(attempt()).latency
                > fast.decide(attempt()).latency)

    def test_all_fixed_models_always_commit(self):
        for model in (CliquePerf(profile_for(DEVNET)),
                      DAGPerf(profile_for(DEVNET)),
                      PoHPerf(profile_for(DEVNET)),
                      CommitteePerf(profile_for(DEVNET))):
            assert model.decide(attempt()).committed
