"""Message-level tests for Clique, Algorand BA*, Snowball and Tower BFT."""

from __future__ import annotations

import pytest

from repro.consensus.algorand import AlgorandReplica, sortition
from repro.consensus.avalanche import SnowballReplica
from repro.consensus.base import ConsensusHarness
from repro.consensus.clique import CliqueReplica
from repro.consensus.towerbft import TowerReplica


class TestClique:
    def run(self, n=4, period=1.0, confirmations=2, until=25.0,
            regions=("ohio",), seed=3):
        harness = ConsensusHarness(
            [CliqueReplica(period=period, confirmations=confirmations,
                           seed=seed + i) for i, _ in enumerate(range(n))],
            regions=regions, seed=seed)
        for i in range(12):
            harness.submit(f"tx-{i}")
        harness.run(until=until)
        return harness

    def test_agreement(self):
        harness = self.run()
        harness.check_agreement()

    def test_block_cadence_respects_period(self):
        # §5.2: "This version still requires a minimum period between
        # consecutive blocks"
        harness = self.run(period=2.0, until=21.0)
        heights = {d.height for d in harness.decisions}
        # ~21s of virtual time, 2s period, 2 confirmations held back
        assert max(heights) <= 21 / 2.0
        assert max(heights) >= 4

    def test_confirmation_depth_holds_back_head(self):
        harness = self.run(period=1.0, confirmations=4, until=12.0)
        # the newest 4 blocks are not reported committed
        committed = max(d.height for d in harness.decisions)
        best_head = max(r.head.height for r in harness.replicas)
        assert best_head - committed >= 4

    def test_geo_distribution_still_agrees(self):
        harness = self.run(regions=("ohio", "tokyo", "sao-paulo"), until=30.0)
        harness.check_agreement()

    def test_sealers_rotate(self):
        harness = self.run(until=30.0)
        replica = harness.replicas[0]
        sealers = {b.sealer for b in replica.blocks.values() if b.height > 0}
        assert len(sealers) >= 2


class TestAlgorandBAStar:
    def run(self, n=7, until=25.0, regions=("ohio", "milan"), seed=4,
            committee=5.0, proposers=3.0):
        harness = ConsensusHarness(
            [AlgorandReplica(committee_size=committee,
                             proposer_count=proposers) for _ in range(n)],
            regions=regions, seed=seed)
        for i in range(10):
            harness.submit(f"tx-{i}")
        harness.run(until=until)
        return harness

    def test_agreement(self):
        harness = self.run()
        harness.check_agreement()

    def test_progress_across_rounds(self):
        harness = self.run()
        rounds = {d.height for d in harness.decisions}
        assert len(rounds) >= 3

    def test_immediate_finality_no_forks(self):
        # "It does not fork with high probability" — one value per round
        harness = self.run()
        by_round = {}
        for decision in harness.decisions:
            by_round.setdefault(decision.height, set()).add(decision.value)
        assert all(len(values) == 1 for values in by_round.values())

    def test_sortition_is_deterministic(self):
        assert sortition(1, "soft", 3, 10, 5.0) == sortition(1, "soft", 3, 10, 5.0)

    def test_sortition_selection_rate_tracks_expectation(self):
        n, expected = 200, 20.0
        selected = sum(1 for node in range(n)
                       if sortition(7, "soft", node, n, expected)[0])
        assert 5 <= selected <= 50  # ~20 expected, generous bounds

    def test_sortition_differs_per_step(self):
        rounds = range(50)
        a = [sortition(r, "soft", 0, 10, 5.0)[0] for r in rounds]
        b = [sortition(r, "cert", 0, 10, 5.0)[0] for r in rounds]
        assert a != b


class TestSnowball:
    def run(self, n=8, split=True, until=30.0, seed=5, k=3, alpha=2, beta=5):
        replicas = []
        for i in range(n):
            preference = ("A" if i % 2 else "B") if split else "A"
            replicas.append(SnowballReplica(
                k=k, alpha=alpha, beta=beta,
                initial_preference=preference, seed=seed + i))
        harness = ConsensusHarness(replicas, regions=("ohio",), seed=seed)
        harness.run(until=until)
        return harness

    def test_metastability_converges_from_split(self):
        # the defining property: a 50/50 split still collapses to one value
        harness = self.run()
        values = {d.value for d in harness.decisions}
        assert len(values) == 1
        assert len(harness.decisions) == 8  # everyone finalised

    def test_unanimous_start_finalizes_fast(self):
        harness = self.run(split=False, until=10.0)
        assert {d.value for d in harness.decisions} == {"A"}

    def test_beta_consecutive_polls_required(self):
        harness = self.run(split=False, until=10.0)
        replica = harness.replicas[0]
        assert replica.consecutive >= replica.beta

    def test_polls_are_sampled_not_broadcast(self):
        harness = self.run(split=False, until=10.0)
        replica = harness.replicas[0]
        # k=3 sampled peers per poll — far fewer messages than n per round
        assert replica.polls_sent >= replica.beta * 3

    def test_determinism_per_seed(self):
        a = self.run(seed=11)
        b = self.run(seed=11)
        assert [d.value for d in a.decisions] == [d.value for d in b.decisions]


class TestTowerBFT:
    def run(self, n=4, until=15.0, regions=("ohio",), seed=6, root_depth=4):
        harness = ConsensusHarness(
            [TowerReplica(root_depth=root_depth) for _ in range(n)],
            regions=regions, seed=seed)
        for i in range(10):
            harness.submit(f"tx-{i}")
        harness.run(until=until)
        return harness

    def test_agreement(self):
        harness = self.run()
        harness.check_agreement()

    def test_slots_fire_on_the_poh_clock(self):
        # a block every 400 ms regardless of votes
        harness = self.run(until=8.0)
        max_slot = max(r.current_slot for r in harness.replicas)
        assert max_slot == int(8.0 / 0.4) - 1 or max_slot == int(8.0 / 0.4)

    def test_rooting_lags_head_by_depth(self):
        harness = self.run(until=12.0)
        committed = max(d.height for d in harness.decisions)
        head_slot = max(r.current_slot for r in harness.replicas)
        assert head_slot - committed >= 4

    def test_leaders_rotate_by_slot(self):
        harness = self.run(until=6.0)
        replica = harness.replicas[0]
        leaders = {b.leader for b in replica.blocks.values() if b.slot > 0}
        assert len(leaders) >= 3

    def test_tower_votes_strictly_increase(self):
        harness = self.run()
        for replica in harness.replicas:
            assert replica.tower == sorted(set(replica.tower))
