"""Cross-validation: analytic models vs message-level protocols.

The analytic models (consensus/models.py) drive the 200-node benchmark
runs; these tests check that, at small scale where both fidelity levels are
affordable, the analytic latency predictions sit in the same regime as the
message-level protocol executions — same order of magnitude, same ordering
between local and geo-distributed placements.
"""

from __future__ import annotations

import pytest

from repro.consensus.base import ConsensusHarness
from repro.consensus.hotstuff import HotStuffReplica
from repro.consensus.ibft import IBFTReplica
from repro.consensus.models import (
    BlockAttempt,
    CommitteePerf,
    LeaderBFTPerf,
    WanProfile,
)


def message_level_round_time(replicas, regions, until, seed=1):
    """Average committed-heights-per-second from a protocol execution."""
    harness = ConsensusHarness(replicas, regions=regions, seed=seed)
    for i in range(50):
        harness.submit(f"tx-{i}")
    harness.run(until=until)
    heights = max((d.height for d in harness.decisions), default=0)
    return until / max(1, heights)  # seconds per committed height


def analytic_round_time(model_factory, regions, n):
    placement = [regions[i % len(regions)] for i in range(n)]
    profile = WanProfile(placement)
    model = model_factory(profile)
    attempt = BlockAttempt(tx_count=1, payload_bytes=600,
                           exec_cpu_seconds=0.0, backlog=0,
                           leader_region=placement[0])
    outcome = model.decide(attempt)
    return model.next_block_delay(outcome.latency)


class TestLeaderBFTCalibration:
    def test_ibft_geo_rounds_within_3x_of_message_level(self):
        regions = ("ohio", "tokyo", "milan", "sydney")
        measured = message_level_round_time(
            [IBFTReplica() for _ in range(4)], regions, until=60.0)
        predicted = analytic_round_time(
            lambda p: LeaderBFTPerf(p, phases=2, base_overhead=0.0,
                                    min_block_interval=0.0),
            regions, 4)
        assert predicted == pytest.approx(measured, rel=2.0)

    def test_hotstuff_geo_vs_local_ordering(self):
        local = message_level_round_time(
            [HotStuffReplica() for _ in range(4)], ("ohio",), until=5.0)
        geo = message_level_round_time(
            [HotStuffReplica() for _ in range(4)],
            ("ohio", "tokyo", "milan", "sydney"), until=60.0)
        assert geo > 20 * local  # WAN rounds are orders slower
        # the analytic model predicts the same ordering
        predicted_local = analytic_round_time(
            lambda p: LeaderBFTPerf(p, phases=3, base_overhead=0.0,
                                    min_block_interval=0.0,
                                    pipeline_depth=3.0),
            ("ohio",), 4)
        predicted_geo = analytic_round_time(
            lambda p: LeaderBFTPerf(p, phases=3, base_overhead=0.0,
                                    min_block_interval=0.0,
                                    pipeline_depth=3.0),
            ("ohio", "tokyo", "milan", "sydney"), 4)
        assert predicted_geo > 20 * predicted_local

    def test_rtt_dominates_both_levels(self):
        # doubling the worst-pair RTT (by placement) slows both
        near = ("milan", "stockholm")     # 30 ms
        far = ("sydney", "cape-town")     # 410 ms
        measured_near = message_level_round_time(
            [IBFTReplica() for _ in range(4)], near, until=30.0)
        measured_far = message_level_round_time(
            [IBFTReplica() for _ in range(4)], far, until=60.0)
        assert measured_far > 2 * measured_near
        predicted_near = analytic_round_time(
            lambda p: LeaderBFTPerf(p, phases=2, base_overhead=0.0,
                                    min_block_interval=0.0), near, 4)
        predicted_far = analytic_round_time(
            lambda p: LeaderBFTPerf(p, phases=2, base_overhead=0.0,
                                    min_block_interval=0.0), far, 4)
        assert predicted_far > 2 * predicted_near


class TestCommitteeCalibration:
    def test_algorand_round_floor_dominates_at_small_scale(self):
        # BA* rounds take seconds even locally (proposal window + steps) —
        # in both the message-level protocol and the analytic model
        from repro.consensus.algorand import AlgorandReplica
        measured = message_level_round_time(
            [AlgorandReplica(committee_size=5, proposer_count=3)
             for _ in range(7)], ("ohio", "milan"), until=40.0)
        predicted = analytic_round_time(
            lambda p: CommitteePerf(p, min_round=3.6),
            ("ohio", "milan"), 7)
        assert measured > 1.0
        assert predicted > 1.0
        assert predicted == pytest.approx(measured, rel=3.0)
