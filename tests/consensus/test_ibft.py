"""Message-level tests for IBFT (Quorum's consensus)."""

from __future__ import annotations

import pytest

from repro.consensus.base import ConsensusHarness
from repro.consensus.ibft import IBFTReplica


def run_harness(n=4, regions=("ohio",), until=3.0, payloads=10, seed=2,
                drop_rate=0.0, **replica_kwargs):
    harness = ConsensusHarness(
        [IBFTReplica(**replica_kwargs) for _ in range(n)],
        regions=regions, seed=seed, drop_rate=drop_rate)
    for i in range(payloads):
        harness.submit(f"tx-{i}")
    harness.run(until=until)
    return harness


class TestSafety:
    def test_agreement_local(self):
        harness = run_harness()
        harness.check_agreement()
        harness.check_no_duplicate_commits()

    def test_agreement_geo(self):
        harness = run_harness(n=7, regions=("ohio", "sydney", "stockholm"),
                              until=15.0)
        harness.check_agreement()

    def test_agreement_under_loss(self):
        harness = run_harness(regions=("ohio", "milan"), until=20.0,
                              drop_rate=0.05)
        harness.check_agreement()

    def test_every_height_decided_once_per_node(self):
        harness = run_harness()
        for node, decisions in harness.decisions_by_node().items():
            heights = [d.height for d in decisions]
            assert heights == sorted(set(heights))


class TestLiveness:
    def test_progress(self):
        harness = run_harness()
        assert len(harness.decisions) >= 4  # every node commits something

    def test_heights_are_contiguous_from_one(self):
        harness = run_harness()
        heights = sorted({d.height for d in harness.decisions})
        assert heights[0] == 1
        assert heights == list(range(1, len(heights) + 1))

    def test_payloads_commit_in_submission_order(self):
        harness = run_harness(payloads=5)
        values = [v for _, v in harness.committed_chain(0)]
        submitted = [v for v in values if str(v).startswith("tx-")]
        assert submitted[:5] == [f"tx-{i}" for i in range(5)]


class TestRoundChange:
    def test_slow_proposer_triggers_round_changes(self):
        # a proposer slower than the round timer forces ROUND-CHANGEs — the
        # §6.3 overload mechanism in miniature
        harness = run_harness(base_timeout=0.5, proposal_delay=0.8,
                              until=10.0)
        total_round_changes = sum(r.round_changes_seen
                                  for r in harness.replicas)
        assert total_round_changes > 0
        harness.check_agreement()

    def test_fast_proposers_avoid_round_changes(self):
        harness = run_harness(base_timeout=5.0, until=3.0)
        assert all(r.round_changes_seen == 0 for r in harness.replicas)

    def test_collapse_when_proposals_never_beat_the_timer(self):
        # proposal always slower than even the doubled timeouts early on:
        # throughput degrades sharply vs the healthy run
        healthy = run_harness(until=10.0)
        degraded = run_harness(base_timeout=0.2, proposal_delay=3.0,
                               until=10.0)
        healthy_heights = max((d.height for d in healthy.decisions), default=0)
        degraded_heights = max((d.height for d in degraded.decisions),
                               default=0)
        assert degraded_heights < healthy_heights / 5

    def test_timeout_doubles_with_round(self):
        replica = IBFTReplica(base_timeout=1.0)
        assert replica._timeout_for(0) == 1.0
        assert replica._timeout_for(3) == 8.0

    def test_timeout_capped(self):
        replica = IBFTReplica(base_timeout=1.0, max_timeout=16.0)
        assert replica._timeout_for(10) == 16.0


class TestProposerRotation:
    def test_proposer_depends_on_height_and_round(self):
        replica = IBFTReplica()
        harness = ConsensusHarness([replica] + [IBFTReplica() for _ in range(3)])
        assert replica.proposer_of(1, 0) != replica.proposer_of(2, 0)
        assert replica.proposer_of(1, 0) != replica.proposer_of(1, 1)

    def test_immediate_finality(self):
        # Quorum "provides immediate finality" (§6.2): a decided height is
        # final at decision time — the harness records one decision per
        # height per node, never revised
        harness = run_harness()
        seen = {}
        for decision in harness.decisions:
            key = (decision.node, decision.height)
            assert key not in seen
            seen[key] = decision.value
