"""Tests for Raft and for crash-fault injection across protocols."""

from __future__ import annotations

import pytest

from repro.consensus.base import ConsensusHarness
from repro.consensus.hotstuff import HotStuffReplica
from repro.consensus.ibft import IBFTReplica
from repro.consensus.raft import RaftReplica


def raft_harness(n=5, regions=("ohio",), seed=7):
    return ConsensusHarness(
        [RaftReplica(seed=seed + i) for i in range(n)],
        regions=regions, seed=seed)


def elect_and_get_leader(harness, until=10.0):
    harness.run(until=until)
    leaders = [r for r in harness.replicas
               if r.role == "leader" and r.node_id not in harness.crashed]
    assert leaders, "no leader elected"
    # highest term wins
    return max(leaders, key=lambda r: r.term)


class TestRaftElection:
    def test_exactly_one_leader_per_term(self):
        harness = raft_harness()
        harness.run(until=15.0)
        by_term = {}
        for replica in harness.replicas:
            if replica.role == "leader":
                by_term.setdefault(replica.term, []).append(replica.node_id)
        for term, leaders in by_term.items():
            assert len(leaders) == 1, f"split brain in term {term}"

    def test_leader_emerges(self):
        harness = raft_harness()
        leader = elect_and_get_leader(harness)
        assert leader.role == "leader"

    def test_followers_adopt_leader_term(self):
        harness = raft_harness()
        leader = elect_and_get_leader(harness)
        harness.engine.run(until=harness.engine.now + 3.0)
        for replica in harness.replicas:
            assert replica.term == leader.term


class TestRaftReplication:
    def test_committed_values_reach_everyone(self):
        harness = raft_harness()
        leader = elect_and_get_leader(harness)
        for i in range(5):
            assert leader.propose(f"v{i}")
        harness.engine.run(until=harness.engine.now + 5.0)
        harness.check_agreement()
        for replica in harness.replicas:
            assert replica.commit_index == 5
            assert [e.value for e in replica.log[:5]] == [
                f"v{i}" for i in range(5)]

    def test_follower_rejects_proposals(self):
        harness = raft_harness()
        leader = elect_and_get_leader(harness)
        follower = next(r for r in harness.replicas
                        if r.node_id != leader.node_id)
        assert not follower.propose("nope")

    def test_commit_order_is_proposal_order(self):
        harness = raft_harness()
        leader = elect_and_get_leader(harness)
        for i in range(8):
            leader.propose(f"v{i}")
        harness.engine.run(until=harness.engine.now + 5.0)
        chain = harness.committed_chain(leader.node_id)
        assert [v for _, v in chain] == [f"v{i}" for i in range(8)]

    def test_survives_leader_crash(self):
        harness = raft_harness()
        leader = elect_and_get_leader(harness)
        leader.propose("before-crash")
        harness.engine.run(until=harness.engine.now + 3.0)
        harness.crash(leader.node_id)
        new_leader = elect_and_get_leader(harness,
                                          until=harness.engine.now + 20.0)
        assert new_leader.node_id != leader.node_id
        assert new_leader.propose("after-crash")
        harness.engine.run(until=harness.engine.now + 5.0)
        harness.check_agreement()
        survivors = [r for r in harness.replicas
                     if r.node_id not in harness.crashed]
        assert all("after-crash" in [e.value for e in r.log]
                   for r in survivors)


class TestCrashFaultInjection:
    def test_hotstuff_survives_f_crashes(self):
        harness = ConsensusHarness(
            [HotStuffReplica() for _ in range(4)],
            regions=("ohio", "tokyo"), seed=8)
        for i in range(10):
            harness.submit(f"tx-{i}")
        harness.run(until=2.0)
        before = len([d for d in harness.decisions if d.node != 0])
        harness.crash(0)  # f = 1 for n = 4
        harness.engine.run(until=30.0)
        harness.check_agreement()
        after = len([d for d in harness.decisions if d.node != 0])
        assert after > before  # progress continues without node 0

    def test_hotstuff_halts_beyond_f_crashes(self):
        harness = ConsensusHarness(
            [HotStuffReplica() for _ in range(4)],
            regions=("ohio",), seed=9)
        harness.run(until=0.5)
        harness.crash(0)
        harness.crash(1)  # 2 > f = 1: no quorum of 3 among 2 survivors
        marker = len(harness.decisions)
        harness.engine.run(until=30.0)
        live = [d for d in harness.decisions[marker:]
                if d.node not in harness.crashed]
        # allow in-flight decisions from the pre-crash pipeline
        assert len(live) <= 6

    def test_ibft_rotates_past_a_crashed_proposer(self):
        harness = ConsensusHarness(
            [IBFTReplica(base_timeout=1.0) for _ in range(4)],
            regions=("ohio",), seed=10)
        for i in range(10):
            harness.submit(f"tx-{i}")
        harness.run(until=0.5)
        # crash whoever proposes next
        survivor = harness.replicas[3]
        next_height = survivor.height
        proposer = survivor.proposer_of(next_height + 1, 0)
        harness.crash(proposer)
        harness.engine.run(until=40.0)
        harness.check_agreement()
        heights_after = [d.height for d in harness.decisions
                         if d.node not in harness.crashed]
        assert max(heights_after) > next_height

    def test_crashed_nodes_stay_silent(self):
        harness = raft_harness()
        leader = elect_and_get_leader(harness)
        harness.crash(leader.node_id)
        routed_before = harness.messages_routed
        harness.engine.run(until=harness.engine.now + 5.0)
        # messages are still *attempted* but none are delivered to/from it;
        # no decision is recorded by the crashed node after the crash
        crash_decisions = [d for d in harness.decisions
                           if d.node == leader.node_id
                           and d.time > harness.engine.now - 5.0]
        assert not crash_decisions


class TestRaftVsIBFTLatency:
    def test_raft_commits_faster_over_wan(self):
        """Why Quorum offers Raft at all: one majority round trip vs IBFT's
        two all-to-all phases. The paper runs IBFT anyway because Raft
        'only tolerates crash failures' (§5.2)."""
        regions = ("ohio", "tokyo", "milan", "sydney", "oregon")

        raft = raft_harness(n=5, regions=regions)
        leader = elect_and_get_leader(raft, until=20.0)
        start = raft.engine.now
        leader.propose("probe")
        raft.engine.run(until=start + 30.0)
        raft_latency = min(
            (d.time - start for d in raft.decisions
             if d.value == "probe"), default=None)
        assert raft_latency is not None

        ibft = ConsensusHarness(
            [IBFTReplica() for _ in range(5)], regions=regions, seed=11)
        ibft.submit("probe")
        ibft.run(until=30.0)
        probe = [d for d in ibft.decisions if d.value == "probe"]
        assert probe
        ibft_latency = min(d.time for d in probe)

        # Raft: leader -> majority -> leader (about one WAN round trip).
        # IBFT: dissemination + PREPARE + COMMIT. Raft never needs to be
        # slower; depending on who leads, the two can come close.
        assert raft_latency < 0.6
        assert raft_latency <= ibft_latency * 1.25
