"""Message-level tests for chained HotStuff (Diem's consensus)."""

from __future__ import annotations

import pytest

from repro.consensus.base import ConsensusHarness
from repro.consensus.hotstuff import HotStuffReplica, QuorumCertificate


def run_harness(n=4, regions=("ohio",), until=2.0, payloads=10, seed=1,
                drop_rate=0.0, **replica_kwargs):
    harness = ConsensusHarness(
        [HotStuffReplica(**replica_kwargs) for _ in range(n)],
        regions=regions, seed=seed, drop_rate=drop_rate)
    for i in range(payloads):
        harness.submit(f"tx-{i}")
    harness.run(until=until)
    return harness


class TestSafety:
    def test_agreement_local_cluster(self):
        harness = run_harness(n=4, until=1.0)
        harness.check_agreement()
        harness.check_no_duplicate_commits()

    def test_agreement_geo_distributed(self):
        harness = run_harness(n=7, regions=("ohio", "tokyo", "milan"),
                              until=10.0)
        harness.check_agreement()
        harness.check_no_duplicate_commits()

    def test_committed_chains_are_prefixes(self):
        harness = run_harness(n=4)
        chains = [harness.committed_chain(i) for i in range(4)]
        longest = max(chains, key=len)
        for chain in chains:
            assert chain == longest[:len(chain)]

    def test_agreement_under_message_loss(self):
        harness = run_harness(n=4, regions=("ohio", "tokyo"), until=15.0,
                              drop_rate=0.05)
        harness.check_agreement()
        harness.check_no_duplicate_commits()


class TestLiveness:
    def test_progress_in_synchrony(self):
        harness = run_harness(n=4)
        assert len(harness.decisions) > 0

    def test_client_payloads_commit_in_order(self):
        harness = run_harness(n=4, payloads=5)
        values = [v for _, v in harness.committed_chain(0)]
        submitted = [v for v in values if str(v).startswith("tx-")]
        assert submitted[:5] == [f"tx-{i}" for i in range(5)]

    def test_all_replicas_eventually_commit(self):
        harness = run_harness(n=4, until=3.0)
        per_node = harness.decisions_by_node()
        assert all(len(decisions) > 0 for decisions in per_node.values())

    def test_progress_despite_message_loss(self):
        # the pacemaker must recover lost proposals/votes
        harness = run_harness(n=4, regions=("ohio", "tokyo"), until=30.0,
                              drop_rate=0.05)
        assert len(harness.decisions) > 0


class TestThreeChainRule:
    def test_commit_lags_by_two_views(self):
        harness = run_harness(n=4, until=1.0)
        max_view = max(r.view for r in harness.replicas)
        max_committed = max((d.height for d in harness.decisions), default=0)
        # height h commits once views h+1 and h+2 form the chain
        assert max_committed <= max_view
        assert max_committed >= max_view - 4

    def test_locked_qc_advances(self):
        harness = run_harness(n=4)
        assert all(r.locked_qc.view > 0 for r in harness.replicas)

    def test_genesis_qc(self):
        qc = QuorumCertificate.genesis()
        assert qc.view == 0
        assert qc.block_id == "genesis"


class TestPacemaker:
    def test_quorum_size(self):
        harness = ConsensusHarness([HotStuffReplica() for _ in range(4)])
        assert harness.replicas[0].f == 1
        assert harness.replicas[0].quorum == 3

    def test_quorum_size_n7(self):
        harness = ConsensusHarness([HotStuffReplica() for _ in range(7)])
        assert harness.replicas[0].f == 2
        assert harness.replicas[0].quorum == 5

    def test_leader_rotation(self):
        harness = run_harness(n=4, until=0.1)
        replica = harness.replicas[0]
        leaders = {replica.leader_of(v) for v in range(1, 9)}
        assert leaders == {0, 1, 2, 3}

    def test_timeout_grows_exponentially(self):
        replica = HotStuffReplica(base_timeout=1.0)
        replica._timeouts_fired = 3
        assert replica._current_timeout() == 8.0

    def test_timeout_capped(self):
        replica = HotStuffReplica(base_timeout=1.0, max_timeout=10.0)
        replica._timeouts_fired = 30
        assert replica._current_timeout() == 10.0
