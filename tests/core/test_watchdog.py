"""Tests for the harness liveness watchdog."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.core.watchdog import LivenessWatchdog
from repro.sim.engine import Engine


class StubNetwork:
    """Minimal network surface the watchdog observes."""

    def __init__(self):
        self._listeners = []
        self._pending = 0
        self.last_arrival_at = None

    def on_commit(self, listener):
        self._listeners.append(listener)

    def __len__(self):
        return self._pending

    @property
    def mempool(self):
        return self

    def commit(self):
        for listener in self._listeners:
            listener(object())

    def arrive(self, at, pending=1):
        self.last_arrival_at = at
        self._pending = pending


@pytest.fixture
def net():
    return StubNetwork()


class TestConfiguration:
    def test_bad_window_rejected(self, engine, net):
        with pytest.raises(ConfigurationError):
            LivenessWatchdog(engine, net, window=0.0)
        with pytest.raises(ConfigurationError):
            LivenessWatchdog(engine, net, window=10.0, check_interval=20.0)


class TestStallDetection:
    def test_idle_chain_never_stalls(self, engine, net):
        dog = LivenessWatchdog(engine, net, window=10.0)
        engine.run(until=500.0)
        assert not dog.stalled
        assert dog.events == []
        assert dog.finalize() == "ok"

    def test_demand_without_commits_stalls(self, engine, net):
        dog = LivenessWatchdog(engine, net, window=10.0, check_interval=1.0)
        engine.schedule_at(1.0, lambda: net.arrive(1.0, pending=5))
        engine.run(until=30.0)
        assert dog.stalled
        assert dog.events[0]["kind"] == "stall_detected"
        assert dog.events[0]["at"] <= 13.0
        assert dog.stalled_since is not None
        assert dog.finalize() == "failed"

    def test_commits_keep_the_watchdog_quiet(self, engine, net):
        dog = LivenessWatchdog(engine, net, window=10.0, check_interval=1.0)
        net.arrive(0.0, pending=5)
        for t in range(0, 60, 5):
            engine.schedule_at(float(t), net.commit)
        engine.run(until=60.0)
        assert not dog.stalled
        assert dog.finalize() == "ok"

    def test_recovery_is_degraded_not_failed(self, engine, net):
        dog = LivenessWatchdog(engine, net, window=10.0, check_interval=1.0)
        net.arrive(0.0, pending=5)

        def commit_and_drain():
            net.commit()
            net._pending = 0   # the backlog landed; demand is gone

        engine.schedule_at(40.0, commit_and_drain)
        engine.run(until=60.0)
        kinds = [e["kind"] for e in dog.events]
        assert kinds == ["stall_detected", "progress_resumed"]
        assert not dog.stalled
        assert dog.finalize() == "degraded"

    def test_stall_reported_once_until_resumed(self, engine, net):
        dog = LivenessWatchdog(engine, net, window=5.0, check_interval=1.0)
        net.arrive(0.0, pending=5)
        engine.run(until=100.0)
        stalls = [e for e in dog.events if e["kind"] == "stall_detected"]
        assert len(stalls) == 1

    def test_stop_halts_checks(self, engine, net):
        dog = LivenessWatchdog(engine, net, window=5.0, check_interval=1.0)
        dog.stop()
        net.arrive(0.0, pending=5)
        engine.run(until=60.0)
        assert dog.events == []

    def test_arrivals_within_window_count_as_demand(self, engine, net):
        # an empty pool with fresh arrivals (all being rejected) is demand:
        # the Solana-after-crash shape where nothing is ever admitted
        dog = LivenessWatchdog(engine, net, window=10.0, check_interval=1.0)

        def rejected_arrival():
            net.last_arrival_at = engine.now
            net._pending = 0

        for t in range(0, 40):
            engine.schedule_at(float(t), rejected_arrival)
        engine.run(until=40.0)
        assert dog.stalled
