"""Focused tests for the Secondary load generator."""

from __future__ import annotations

import pytest

from repro.blockchains.base import ExperimentScale
from repro.blockchains.registry import build_network
from repro.core.interface import Client, SimConnector
from repro.core.secondary import Secondary
from repro.core.spec import (
    AccountSample,
    Behavior,
    LoadSchedule,
    TransferSpec,
)
from repro.sim.engine import Engine


@pytest.fixture
def setup():
    engine = Engine()
    net = build_network("quorum", "testnet", engine,
                        scale=ExperimentScale(1.0), seed=1)
    net.create_accounts(20)
    connector = SimConnector(net)
    client = connector.create_client("c0", "ohio",
                                     [net.endpoints[0].name])
    secondary = Secondary("sec-0", "ohio", engine, connector,
                          ExperimentScale(1.0))
    return engine, net, connector, client, secondary


class TestEmission:
    def test_constant_rate_emits_expected_count(self, setup):
        engine, net, connector, client, secondary = setup
        behavior = Behavior(TransferSpec(AccountSample(20)),
                            LoadSchedule.constant(50, 10))
        secondary.assign([client], behavior)
        secondary.start()
        engine.run(until=60)
        assert len(secondary.sent) == pytest.approx(500, abs=5)

    def test_rate_change_mid_schedule(self, setup):
        engine, net, connector, client, secondary = setup
        load = LoadSchedule(((0.0, 100.0), (5.0, 10.0), (10.0, 0.0)))
        secondary.assign([client], Behavior(TransferSpec(AccountSample(20)),
                                            load))
        secondary.start()
        engine.run(until=60)
        assert len(secondary.sent) == pytest.approx(550, abs=10)

    def test_client_attribution_round_robins(self, setup):
        engine, net, connector, client, secondary = setup
        other = connector.create_client("c1", "ohio",
                                        [net.endpoints[0].name])
        behavior = Behavior(TransferSpec(AccountSample(20)),
                            LoadSchedule.constant(20, 5))
        secondary.assign([client, other], behavior)
        secondary.start()
        engine.run(until=30)
        names = {name for _, name in secondary.sent}
        assert names == {"c0", "c1"}

    def test_multiple_behaviors_overlap(self, setup):
        engine, net, connector, client, secondary = setup
        fast = Behavior(TransferSpec(AccountSample(20)),
                        LoadSchedule.constant(30, 5))
        slow = Behavior(TransferSpec(AccountSample(20)),
                        LoadSchedule.constant(10, 5))
        secondary.assign([client], fast)
        secondary.assign([client], slow)
        secondary.start()
        engine.run(until=30)
        assert len(secondary.sent) == pytest.approx(200, abs=8)

    def test_submission_timestamps_recorded(self, setup):
        engine, net, connector, client, secondary = setup
        behavior = Behavior(TransferSpec(AccountSample(20)),
                            LoadSchedule.constant(10, 3))
        secondary.assign([client], behavior)
        secondary.start()
        engine.run(until=30)
        for tx, _ in secondary.sent:
            assert tx.submitted_at is not None
            assert 0 <= tx.submitted_at <= 3.1

    def test_fractional_rates_accumulate(self, setup):
        engine, net, connector, client, secondary = setup
        # 0.5 TPS for 10 s -> 5 transactions despite sub-tick rates
        behavior = Behavior(TransferSpec(AccountSample(20)),
                            LoadSchedule.constant(0.5, 10))
        secondary.assign([client], behavior)
        secondary.start()
        engine.run(until=60)
        assert len(secondary.sent) == pytest.approx(5, abs=1)

    def test_rejections_counted(self, setup):
        engine, net, connector, client, secondary = setup
        # shrink the pool so the burst overflows it
        net.mempool.policy = type(net.mempool.policy)(capacity=10)
        behavior = Behavior(TransferSpec(AccountSample(20)),
                            LoadSchedule.constant(1000, 1))
        secondary.assign([client], behavior)
        secondary.start()
        engine.run(until=5)
        assert secondary.rejected > 0

    def test_empty_assignment_is_ignored(self, setup):
        engine, net, connector, client, secondary = setup
        secondary.assign([], Behavior(TransferSpec(AccountSample(20)),
                                      LoadSchedule.constant(10, 5)))
        assert secondary.assignments == []
        assert secondary.worker_count == 0
