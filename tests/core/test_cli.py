"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestCli:
    def test_chains_lists_six(self, capsys):
        assert main(["chains"]) == 0
        out = capsys.readouterr().out
        for chain in ("algorand", "avalanche", "diem", "ethereum",
                      "quorum", "solana"):
            assert chain in out

    def test_workloads_lists_suite(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("dapp-exchange", "nasdaq-apple", "native-1000"):
            assert name in out

    def test_suite_run_prints_summary(self, capsys):
        assert main(["suite", "--chain", "quorum",
                     "--configuration", "testnet",
                     "--workload", "nasdaq-google",
                     "--scale", "0.1", "--accounts", "50"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["chain"] == "quorum"
        assert summary["submitted"] > 0

    def test_run_yaml_and_csv_roundtrip(self, tmp_path, capsys):
        workload = tmp_path / "w.yaml"
        workload.write_text("""
workloads:
  - number: 1
    client:
      location: { sample: !location [ ".*" ] }
      view: { sample: !endpoint [ ".*" ] }
      behavior:
        - interaction: !transfer
            from: { sample: !account { number: 10 } }
          load: { 0: 50, 5: 0 }
""")
        output = tmp_path / "results.json"
        assert main(["run", "--chain", "solana",
                     "--configuration", "testnet",
                     "--scale", "0.2",
                     "--output", str(output), "--stat",
                     str(workload)]) == 0
        assert output.exists()
        capsys.readouterr()
        assert main(["csv", str(output)]) == 0
        csv_text = capsys.readouterr().out
        assert csv_text.startswith("submitted_at,latency_s,committed")
        assert len(csv_text.splitlines()) > 10

    def test_unknown_chain_rejected(self):
        with pytest.raises(SystemExit):
            main(["suite", "--chain", "bitcoin", "--workload", "native-1000"])


class TestCompression:
    def test_compressed_output_roundtrips(self, tmp_path, capsys):
        output = tmp_path / "results.json"
        assert main(["suite", "--chain", "quorum",
                     "--configuration", "testnet",
                     "--workload", "nasdaq-google",
                     "--scale", "0.1", "--accounts", "50",
                     "--output", str(output), "--compress"]) == 0
        gz = tmp_path / "results.json.gz"
        assert gz.exists()
        capsys.readouterr()
        assert main(["csv", str(gz)]) == 0
        assert "submitted_at" in capsys.readouterr().out


class TestFractionWithin:
    def test_fraction_within_matches_fig6_statistic(self):
        from repro.core.results import BenchmarkResult, TransactionRecord
        result = BenchmarkResult("q", "t", "w", 10.0, 1.0)
        for i in range(10):
            result.records.append(TransactionRecord(
                uid=i, kind="transfer", contract=None, function=None,
                client="c", submitted_at=0.0,
                committed_at=float(i + 1) if i < 8 else None,
                aborted=i >= 8, abort_reason=None))
        assert result.fraction_within(4.0) == 0.4
        assert result.fraction_within(100.0) == 0.8
        assert result.fraction_within(0.0) == 0.0
