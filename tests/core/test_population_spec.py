"""Fail-fast validation of the ``population:`` workload section."""

from __future__ import annotations

import pytest

from repro.common.errors import SpecError
from repro.core.population import DEFAULT_COHORT, PopulationSpec
from repro.core.spec import (
    AccountSample,
    LoadSchedule,
    TransferSpec,
    WorkloadSpec,
    load_spec,
    population_from_dict,
    simple_population_spec,
    simple_spec,
)

INTERACTION = TransferSpec(AccountSample(100))
PER_USER = LoadSchedule.constant(0.001, 60.0)


def population(**overrides) -> PopulationSpec:
    kwargs = dict(users=10_000, interaction=INTERACTION, load=PER_USER)
    kwargs.update(overrides)
    return PopulationSpec(**kwargs)


POPULATION_YAML = """
population:
  users: 50000
  rate_per_user: 0.001
  duration: 60
  cohort: 500
  arrival: poisson
  interaction: !transfer
    from: { sample: !account { number: 100 } }
"""


class TestPopulationSpecValidation:
    def test_users_must_be_positive(self):
        with pytest.raises(SpecError, match="users must be positive"):
            population(users=0)

    def test_cohort_must_be_positive(self):
        with pytest.raises(SpecError, match="cohort must be positive"):
            population(cohort=0)

    def test_cohort_cannot_exceed_users(self):
        with pytest.raises(SpecError, match="cannot exceed"):
            population(users=100, cohort=101)

    def test_unknown_arrival_rejected(self):
        with pytest.raises(SpecError, match="unknown population.arrival"):
            population(arrival="weibull")

    def test_burst_envelope_must_be_mean_preserving(self):
        with pytest.raises(SpecError, match="must be < 1"):
            population(arrival="burst", burst_factor=10.0,
                       burst_fraction=0.2)

    def test_burst_fraction_bounds(self):
        with pytest.raises(SpecError, match="burst_fraction"):
            population(arrival="burst", burst_fraction=1.0)

    def test_cohort_defaults_capped_at_population(self):
        assert population(users=10).cohort_size == 10
        assert population(users=10 ** 6).cohort_size == DEFAULT_COHORT
        assert population(users=10 ** 6).aggregate_users == \
            10 ** 6 - DEFAULT_COHORT

    def test_offered_load_is_users_times_rate(self):
        assert population(users=10_000).offered_load() == \
            pytest.approx(10.0)


class TestWorkloadSpecExclusion:
    def test_population_and_workloads_mutually_exclusive(self):
        classic = simple_spec(INTERACTION, PER_USER, clients=2)
        with pytest.raises(SpecError, match="cannot declare both"):
            WorkloadSpec(classic.workloads, population=population())

    def test_neither_population_nor_workloads_rejected(self):
        with pytest.raises(SpecError, match="at least one workload"):
            WorkloadSpec(())

    def test_cohort_group_synthesized(self):
        spec = simple_population_spec(
            users=5_000, interaction=INTERACTION,
            rate_per_user=0.001, duration=30.0, cohort=200)
        (group,) = spec.client_groups()
        assert group.number == 200
        (behavior,) = group.client.behaviors
        # cohort members carry the per-user schedule verbatim — the
        # cohort-only byte-identity contract depends on this
        assert behavior.load.rate_at(10.0) == pytest.approx(0.001)
        assert spec.duration == pytest.approx(30.0)
        assert spec.offered_load() == pytest.approx(5.0)


class TestPopulationYaml:
    def test_yaml_round_trip(self):
        spec = load_spec(POPULATION_YAML)
        pop = spec.population
        assert pop is not None
        assert (pop.users, pop.cohort_size, pop.arrival) == \
            (50_000, 500, "poisson")
        assert pop.load.rate_at(30.0) == pytest.approx(0.001)
        assert spec.account_population() == 100

    def test_unknown_population_keys_rejected(self):
        with pytest.raises(SpecError, match="unknown population keys"):
            population_from_dict({"users": 10, "interaction": {},
                                  "rate_per_user": 0.1, "duration": 10,
                                  "clients": 5})

    def test_load_and_shorthand_mutually_exclusive(self):
        raw = {"users": 10,
               "interaction": {"__kind__": "transfer",
                               "from": {"sample": AccountSample(10)}},
               "load": {0: 0.1, 10: 0},
               "rate_per_user": 0.1, "duration": 10}
        with pytest.raises(SpecError, match="not both"):
            population_from_dict(raw)

    def test_rate_profile_required(self):
        raw = {"users": 10,
               "interaction": {"__kind__": "transfer",
                               "from": {"sample": AccountSample(10)}}}
        with pytest.raises(SpecError, match="per-user rate profile"):
            population_from_dict(raw)

    def test_workloads_still_required_without_population(self):
        with pytest.raises(SpecError, match="top-level 'workloads' list"):
            load_spec("deadline: 10\n")

    def test_population_alongside_workloads_rejected_at_parse(self):
        text = POPULATION_YAML + """
workloads:
  - number: 1
    client:
      location: { sample: !location [ ".*" ] }
      view: { sample: !endpoint [ ".*" ] }
      behavior:
        - interaction: !transfer
            from: { sample: !account { number: 10 } }
          load: { 0: 1, 10: 0 }
"""
        with pytest.raises(SpecError, match="cannot declare both"):
            load_spec(text)
