"""The batched emission fast path must be byte-identical to the reference.

Three layers of evidence, mirroring the determinism contract:

* connector level — ``SimConnector.encode_batch`` produces exactly the
  transactions of ``count`` sequential ``encode`` calls, for transfers,
  invocations, fee markets and expiry chains;
* run level — full six-chain benchmarks serialize to identical JSON with
  the fast path on and off;
* schedule level (hypothesis) — the carry-accumulator emission counts and
  the account/client round-robin cursor sequence are unchanged for
  arbitrary rate profiles, tick sizes and client counts.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.secondary as secondary_module
from repro.blockchains.registry import build_network
from repro.chain.transaction import reset_tx_counter
from repro.core.interface import BlockchainConnector, SimConnector
from repro.core.runner import run_trace
from repro.core.secondary import Secondary
from repro.core.spec import (
    AccountSample,
    Behavior,
    ContractSample,
    InvokeSpec,
    LoadSchedule,
    TransferSpec,
)
from repro.econ.fees import FeeSpec
from repro.sim.engine import Engine
from repro.workloads import constant_transfer_trace, stock_trace

SIX_CHAINS = ["algorand", "avalanche", "diem", "ethereum", "quorum",
              "solana"]

FAST = dict(accounts=100, scale=0.05, drain=120, seed=3)


def tx_fields(tx):
    """Every semantic field of a transaction (uid included)."""
    return (tx.uid, tx.sender, tx.kind, tx.sequence, tx.amount,
            tx.recipient, tx.contract, tx.function, tx.args,
            tx.fee_per_gas, tx.tip, tx.gas_limit, tx.recent_block_hash,
            tx.signature)


def fresh_connector(chain: str, *, accounts: int = 10, fees: bool = False):
    network = build_network(chain, "testnet", Engine(), seed=11)
    network.create_accounts(accounts)
    if fees:
        network.attach_fees(FeeSpec())
    return SimConnector(network)


class TestEncodeBatchMatchesEncodeLoop:
    @pytest.mark.parametrize("chain", SIX_CHAINS)
    def test_transfers(self, chain):
        spec = TransferSpec(AccountSample(10), amount=4)
        reset_tx_counter()
        reference = fresh_connector(chain)
        expected = [tx_fields(reference.encode(spec, None, 0.5))
                    for _ in range(25)]
        reset_tx_counter()
        fast = fresh_connector(chain)
        got = [tx_fields(tx) for tx in fast.encode_batch(spec, None, 0.5, 25)]
        assert got == expected
        assert fast._account_cursor == reference._account_cursor

    def test_invocations(self):
        spec = InvokeSpec(AccountSample(10), ContractSample("exchange"),
                          "order", ("google", 2))
        reset_tx_counter()
        reference = fresh_connector("quorum")
        expected = [tx_fields(reference.encode(spec, None, 1.0))
                    for _ in range(12)]
        reset_tx_counter()
        fast = fresh_connector("quorum")
        got = [tx_fields(tx) for tx in fast.encode_batch(spec, None, 1.0, 12)]
        assert got == expected

    def test_with_fee_market(self):
        spec = TransferSpec(AccountSample(10))
        reset_tx_counter()
        reference = fresh_connector("ethereum", fees=True)
        expected = [tx_fields(reference.encode(spec, None, 0.0))
                    for _ in range(8)]
        reset_tx_counter()
        fast = fresh_connector("ethereum", fees=True)
        got = [tx_fields(tx) for tx in fast.encode_batch(spec, None, 0.0, 8)]
        assert got == expected
        assert all(fields[9] > 0 for fields in got)  # fee_per_gas priced

    def test_expiry_chain_stamps_recent_block_hash(self):
        spec = TransferSpec(AccountSample(10))
        reset_tx_counter()
        fast = fresh_connector("solana")
        txs = fast.encode_batch(spec, None, 0.0, 5)
        head = fast.network.ledger.head.block_hash
        assert all(tx.recent_block_hash == head for tx in txs)
        reset_tx_counter()
        reference = fresh_connector("solana")
        expected = [tx_fields(reference.encode(spec, None, 0.0))
                    for _ in range(5)]
        assert [tx_fields(tx) for tx in txs] == expected

    def test_empty_batch(self):
        fast = fresh_connector("ethereum")
        assert fast.encode_batch(TransferSpec(AccountSample(10)),
                                 None, 0.0, 0) == []
        assert fast._account_cursor == 0

    def test_cursor_continues_across_batches_and_singles(self):
        spec = TransferSpec(AccountSample(10))
        reset_tx_counter()
        reference = fresh_connector("ethereum")
        expected = [tx_fields(reference.encode(spec, None, 0.0))
                    for _ in range(9)]
        reset_tx_counter()
        fast = fresh_connector("ethereum")
        got = [tx_fields(tx) for tx in fast.encode_batch(spec, None, 0.0, 4)]
        got.append(tx_fields(fast.encode(spec, None, 0.0)))
        got += [tx_fields(tx) for tx in fast.encode_batch(spec, None, 0.0, 4)]
        assert got == expected


class TestRunLevelByteIdentity:
    def run_both(self, chain, trace, **kwargs):
        outputs = {}
        original = secondary_module.USE_FAST_PATH
        try:
            for fast in (False, True):
                secondary_module.USE_FAST_PATH = fast
                outputs[fast] = run_trace(chain, "testnet", trace,
                                          **kwargs).to_json()
        finally:
            secondary_module.USE_FAST_PATH = original
        return outputs

    @pytest.mark.parametrize("chain", SIX_CHAINS)
    def test_transfer_runs_identical(self, chain):
        outputs = self.run_both(chain, constant_transfer_trace(200, 20),
                                **FAST)
        assert outputs[False] == outputs[True]

    def test_invoke_run_identical(self):
        outputs = self.run_both("quorum", stock_trace("google"), **FAST)
        assert outputs[False] == outputs[True]


class StubConnector(BlockchainConnector):
    """Records the emission schedule; inherits the default batch forms."""

    def __init__(self, reject_every: int = 0) -> None:
        self.encodes = []          # t per encode, in call order
        self.triggered = []        # client name per trigger, in call order
        self.reject_every = reject_every

    def create_client(self, name, location, endpoints):
        from repro.core.interface import Client
        return Client(name, location, tuple(endpoints))

    def encode(self, interaction, resource, t):
        self.encodes.append(t)
        return len(self.encodes)

    def trigger(self, client, encoded):
        self.triggered.append(client.name)
        if self.reject_every and len(self.triggered) % self.reject_every == 0:
            return False
        return True


def run_secondary(fast_path, points, tick, nclients, reject_every):
    connector = StubConnector(reject_every)
    clients = [connector.create_client(f"c{i}", "ohio", ())
               for i in range(nclients)]
    engine = Engine()
    secondary = Secondary("sec-0", "ohio", engine, connector,
                          scale=secondary_module.ExperimentScale(1.0),
                          tick=tick, fast_path=fast_path)
    secondary.assign(clients, Behavior(TransferSpec(AccountSample(1)),
                                       LoadSchedule(points)))
    secondary.start()
    engine.run()
    return connector, secondary


rates = st.floats(min_value=0.0, max_value=40.0, allow_nan=False)
segments = st.lists(st.tuples(st.floats(min_value=0.05, max_value=3.0,
                                        allow_nan=False), rates),
                    min_size=1, max_size=5)


class TestEmissionScheduleProperty:
    @given(segments=segments,
           tick=st.floats(min_value=0.02, max_value=1.0, allow_nan=False),
           nclients=st.integers(min_value=1, max_value=4),
           reject_every=st.integers(min_value=0, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_counts_and_cursor_sequence_unchanged(self, segments, tick,
                                                  nclients, reject_every):
        t, points = 0.0, []
        for width, rate in segments:
            points.append((t, rate))
            t += width
        points.append((t, 0.0))
        points = tuple(points)
        ref_conn, ref_sec = run_secondary(False, points, tick, nclients,
                                          reject_every)
        fast_conn, fast_sec = run_secondary(True, points, tick, nclients,
                                            reject_every)
        # identical per-tick emission counts and encode timestamps...
        assert fast_conn.encodes == ref_conn.encodes
        # ...identical client round-robin sequence...
        assert fast_conn.triggered == ref_conn.triggered
        # ...and identical client-visible bookkeeping
        assert len(fast_sec.sent) == len(ref_sec.sent)
        assert [name for _, name in fast_sec.sent] == \
            [name for _, name in ref_sec.sent]
        assert fast_sec.rejected == ref_sec.rejected
        assert fast_sec.late_warnings == ref_sec.late_warnings
