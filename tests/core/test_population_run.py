"""End-to-end contracts of population runs.

* cohort-only byte-identity — a population whose cohort covers every
  user is the classic client path, byte for byte (the cohort carries the
  per-user schedule verbatim, so no float scaling round-trips);
* aggregate-lane sanity — a million-user run completes within watchdog
  bounds, reports per-lane arrivals, and renders the population block;
* determinism — same seed, same JSON; different seed, different draws.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.summary import (
    binding_subsystem,
    knee_table,
    population_report,
)
from repro.core.runner import run_benchmark, run_population
from repro.core.spec import (
    AccountSample,
    LoadSchedule,
    TransferSpec,
    simple_population_spec,
    simple_spec,
)

INTERACTION = TransferSpec(AccountSample(100))
FAST = dict(scale=0.5, seed=3, drain=120.0)


def classic_run(chain: str):
    spec = simple_spec(INTERACTION, LoadSchedule.constant(2.0, 20.0),
                       clients=8)
    return run_benchmark(chain, "testnet", spec, workload_name="w", **FAST)


def cohort_only_run(chain: str):
    spec = simple_population_spec(users=8, interaction=INTERACTION,
                                  rate_per_user=2.0, duration=20.0,
                                  cohort=8)
    return run_benchmark(chain, "testnet", spec, workload_name="w", **FAST)


class TestCohortOnlyByteIdentity:
    @pytest.mark.parametrize("chain", ["ethereum", "solana"])
    def test_full_cohort_equals_classic_path(self, chain):
        classic = classic_run(chain)
        population = cohort_only_run(chain)
        assert population.records == classic.records
        classic_summary = classic.summary()
        population_summary = population.summary()
        block = population_summary.pop("population")
        # serialize for the comparison: NaN latencies are byte-equal in
        # JSON but unequal under ==
        assert json.dumps(population_summary, sort_keys=True) == \
            json.dumps(classic_summary, sort_keys=True)
        # the aggregate lane never ran: 8 users, cohort of 8
        assert block["aggregate_users"] == 0
        assert block["aggregate_lane"]["submitted"] == 0
        assert block["cohort_exact"]["submitted"] == \
            classic_summary["submitted"]
        assert "arrivals_aggregate" not in population.chain_stats

    def test_classic_json_has_no_population_key(self):
        summary = classic_run("ethereum").summary()
        assert "population" not in summary


class TestAggregateRun:
    def run_million(self, seed=1):
        return run_population("ethereum", "testnet", users=1_000_000,
                              rate_per_user=0.002, duration=20.0,
                              cohort=1_000, seed=seed, scale=0.1)

    def test_million_users_within_watchdog_bounds(self):
        result = self.run_million()
        assert result.status == "ok"
        block = result.population
        assert block["users"] == 1_000_000
        assert block["cohort_size"] == 1_000
        assert block["aggregate_users"] == 999_000
        # the aggregate lane carried real traffic through admission
        assert result.chain_stats["arrivals_aggregate"] == \
            block["aggregate_lane"]["submitted"]
        assert block["aggregate_lane"]["submitted"] > 0
        assert block["population_scaled"]["offered_load_tps"] == \
            pytest.approx(2_000.0)
        # analysis helpers accept the result
        assert binding_subsystem(result) in (
            "none", "memory", "admission", "mempool", "consensus")
        report = population_report(result)
        assert "1,000,000 users" in report
        rows = knee_table({1_000_000: result})
        assert rows[0]["users"] == 1_000_000

    def test_same_seed_byte_identical(self):
        assert self.run_million().to_json() == self.run_million().to_json()

    def test_different_seed_different_arrivals(self):
        a = self.run_million(seed=1)
        b = self.run_million(seed=2)
        assert a.population["aggregate_lane"]["submitted"] != \
            b.population["aggregate_lane"]["submitted"]

    def test_population_block_survives_json_round_trip(self):
        result = self.run_million()
        restored = type(result).from_json(result.to_json())
        assert restored.population == result.population
        assert json.loads(restored.to_json()) == \
            json.loads(result.to_json())


class TestPopulationReportFallback:
    def test_classic_run_reports_not_population(self):
        assert population_report(classic_run("ethereum")) == \
            "(not a population run)"
