"""The ``byzantine:`` spec section and the analytic degradation path."""

from __future__ import annotations

import pytest

from repro.common.errors import SpecError
from repro.consensus.models import (
    BlockAttempt,
    CliquePerf,
    ConsensusPerfModel,
    LeaderBFTPerf,
    WanProfile,
)
from repro.core.primary import Primary
from repro.core.spec import (
    AccountSample,
    LoadSchedule,
    TransferSpec,
    load_spec,
    simple_spec,
)
from repro.sim.byzantine import Equivocate, Silence

BYZANTINE_YAML = """
let:
  - &loc { sample: !location [ ".*" ] }
  - &end { sample: !endpoint [ ".*" ] }
  - &acc { sample: !account { number: 100 } }
workloads:
  - number: 1
    client:
      location: *loc
      view: *end
      behavior:
        - interaction: !transfer
            from: *acc
          load:
            0: 200
            30: 0
byzantine:
  - { start: 5, stop: 12, kind: equivocate, node: 0 }
  - { start: 5, stop: 12, kind: silence, nodes: [1, 2] }
"""


class TestSpecParsing:
    def test_yaml_byzantine_section_parses(self):
        spec = load_spec(BYZANTINE_YAML)
        schedule = spec.byzantine_schedule()
        assert len(schedule) == 3
        assert schedule.nodes() == (0, 1, 2)
        assert schedule.window() == (5.0, 12.0)

    def test_spec_without_section_has_empty_schedule(self):
        spec = load_spec(BYZANTINE_YAML.split("byzantine:")[0])
        assert spec.byzantine == ()
        assert len(spec.byzantine_schedule()) == 0

    def test_bad_section_rejected(self):
        with pytest.raises(SpecError):
            load_spec(BYZANTINE_YAML.split("byzantine:")[0]
                      + "byzantine: not-a-list\n")

    def test_simple_spec_carries_byzantine(self):
        byzantine = (Equivocate(node=0, start=1.0, stop=2.0),)
        spec = simple_spec(TransferSpec(AccountSample(10)),
                           LoadSchedule.constant(100, 30),
                           byzantine=byzantine)
        assert spec.byzantine == byzantine

    def test_malformed_event_rejected_at_parse_time(self):
        with pytest.raises(SpecError):
            load_spec(BYZANTINE_YAML.replace("kind: equivocate",
                                             "kind: bribe"))


class TestPrimaryValidation:
    """Satellite: the Primary fails fast before simulating anything."""

    def spec(self, byzantine):
        return simple_spec(TransferSpec(AccountSample(10)),
                           LoadSchedule.constant(20, 10),
                           byzantine=byzantine)

    def test_unknown_node_rejected(self):
        spec = self.spec((Equivocate(node=99, start=1.0, stop=2.0),))
        with pytest.raises(SpecError, match="unknown node 99"):
            Primary("quorum", "testnet", seed=3).run(spec)

    def test_known_nodes_accepted(self):
        spec = self.spec((Silence(node=9, start=1.0, stop=2.0),))
        result = Primary("quorum", "testnet", seed=3).run(spec, drain=20.0)
        assert result.status == "ok"


class TestAnalyticDegradation:
    """spec -> Primary -> BlockchainNetwork -> ConsensusPerfModel."""

    def run(self, byzantine=(), rate=20.0, duration=20.0, drain=30.0):
        spec = simple_spec(TransferSpec(AccountSample(10)),
                          LoadSchedule.constant(rate, duration),
                          byzantine=byzantine)
        return Primary("quorum", "testnet", seed=3).run(spec, drain=drain)

    def test_sub_tolerance_fraction_stretches_commits(self):
        byzantine = (Equivocate(node=0, start=5.0, stop=12.0),
                     Silence(node=1, start=5.0, stop=12.0))
        result = self.run(byzantine)
        assert result.status == "ok"
        assert result.fault_window() == (5.0, 12.0)
        degradation = result.degradation()
        assert (degradation["commit_ratio_during"]
                < degradation["commit_ratio_before"])

    def test_over_tolerance_fraction_denies_quorum(self):
        byzantine = tuple(Equivocate(node=i, start=5.0, stop=15.0)
                          for i in range(4))  # 4/10 >= 1/3
        result = self.run(byzantine, duration=25.0, drain=40.0)
        assert result.status == "ok"  # recovers after the window
        assert result.chain_stats["byzantine_stalled_blocks"] > 0
        assert result.degradation()["commit_ratio_during"] == 0.0

    def test_byzantine_windows_merge_into_fault_events(self):
        byzantine = (Equivocate(node=0, start=5.0, stop=12.0),)
        result = self.run(byzantine)
        kinds = [e["kind"] for e in result.fault_events]
        assert kinds == ["equivocate"]
        assert result.fault_events[0]["duration"] == 7.0

    def test_benign_run_reports_no_byzantine_stats(self):
        result = self.run()
        assert "byzantine_stalled_blocks" not in result.chain_stats
        assert result.fault_events == []


class TestPerfModelHook:
    def model(self, cls=ConsensusPerfModel, **kwargs):
        profile = WanProfile(["ohio"] * 4)
        return cls(profile, **kwargs) if kwargs else cls(profile)

    def outcome(self, model):
        return model.decide(BlockAttempt(
            tx_count=10, payload_bytes=10 * 250, exec_cpu_seconds=0.01,
            backlog=0, leader_region="ohio", arrival_rate=0.0))

    def test_zero_fraction_is_identity(self):
        model = self.model(LeaderBFTPerf)
        model.set_byzantine_fraction(0.0)
        outcome = self.outcome(model)
        assert model.apply_byzantine(outcome) is outcome

    def test_sub_tolerance_stretches_latency(self):
        model = self.model(LeaderBFTPerf)
        base = self.outcome(model)
        model.set_byzantine_fraction(0.25)
        stretched = model.apply_byzantine(self.outcome(model))
        assert stretched.committed
        assert stretched.latency > base.latency
        assert "byzantine" in stretched.breakdown

    def test_at_tolerance_denies_commit(self):
        model = self.model(LeaderBFTPerf)
        model.set_byzantine_fraction(1.0 / 3.0)
        denied = model.apply_byzantine(self.outcome(model))
        assert not denied.committed
        assert denied.view_changes >= 1

    def test_clique_tolerates_up_to_half(self):
        model = self.model(CliquePerf)
        model.set_byzantine_fraction(0.4)
        outcome = model.apply_byzantine(self.outcome(model))
        assert outcome.committed
        model.set_byzantine_fraction(0.5)
        denied = model.apply_byzantine(self.outcome(model))
        assert not denied.committed
