"""Tests for benchmark results aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.results import BenchmarkResult, TransactionRecord
from repro.chain.transaction import transfer


def record(uid, submit, commit=None, aborted=False, reason=None):
    return TransactionRecord(
        uid=uid, kind="transfer", contract=None, function=None,
        client="c", submitted_at=submit, committed_at=commit,
        aborted=aborted, abort_reason=reason)


def make_result(records, duration=10.0, scale=1.0):
    result = BenchmarkResult("quorum", "testnet", "w", duration, scale)
    result.records = list(records)
    return result


class TestAggregates:
    def test_average_load(self):
        result = make_result([record(i, i * 0.1) for i in range(100)])
        assert result.average_load == pytest.approx(10.0)

    def test_average_throughput_counts_in_window_only(self):
        records = [record(0, 0.0, commit=5.0),
                   record(1, 1.0, commit=9.0),
                   record(2, 2.0, commit=15.0)]  # after the 10 s window
        result = make_result(records)
        assert result.average_throughput == pytest.approx(2 / 10.0)

    def test_scale_unscaling(self):
        result = make_result([record(i, 0.5, commit=1.0) for i in range(10)],
                             scale=0.1)
        assert result.average_throughput == pytest.approx(10 / 10.0 / 0.1)

    def test_commit_ratio_counts_all_commits(self):
        records = [record(0, 0.0, commit=5.0),
                   record(1, 0.0, commit=50.0),   # late but committed
                   record(2, 0.0, aborted=True, reason="expired"),
                   record(3, 0.0)]                # still pending
        result = make_result(records)
        assert result.commit_ratio == pytest.approx(0.5)

    def test_latency_statistics(self):
        records = [record(0, 0.0, commit=1.0), record(1, 0.0, commit=3.0)]
        result = make_result(records)
        assert result.average_latency == pytest.approx(2.0)
        assert result.median_latency == pytest.approx(2.0)

    def test_latency_of_aborted_is_none(self):
        rec = record(0, 0.0, aborted=True)
        assert rec.latency is None
        assert not rec.committed


class TestSeries:
    def test_throughput_series_bins_commits(self):
        records = [record(i, 0.0, commit=0.5) for i in range(4)]
        records += [record(10 + i, 0.0, commit=3.5) for i in range(2)]
        result = make_result(records, duration=5.0)
        times, tput = result.throughput_series(bin_size=1.0)
        assert tput[0] == 4.0
        assert tput[3] == 2.0

    def test_load_series_bins_submissions(self):
        records = [record(i, 2.2) for i in range(5)]
        result = make_result(records, duration=5.0)
        _, load = result.load_series(bin_size=1.0)
        assert load[2] == 5.0

    def test_latency_cdf_plateaus_below_one_on_drops(self):
        # the Fig. 6 presentation: drops keep the CDF below 1.0
        records = [record(i, 0.0, commit=float(i + 1)) for i in range(6)]
        records += [record(10 + i, 0.0, aborted=True) for i in range(4)]
        result = make_result(records, duration=20.0)
        latencies, fractions = result.latency_cdf()
        assert fractions[-1] == pytest.approx(0.6)
        assert list(latencies) == sorted(latencies)


class TestAborts:
    def test_abort_reasons_counted(self):
        records = [record(0, 0.0, aborted=True, reason="expired"),
                   record(1, 0.0, aborted=True, reason="expired"),
                   record(2, 0.0, aborted=True, reason="budget_exceeded")]
        result = make_result(records)
        assert result.abort_reasons() == {"expired": 2, "budget_exceeded": 1}

    def test_execution_failed_requires_budget_errors_and_no_commits(self):
        failed = make_result([record(0, 0.0, aborted=True,
                                     reason="budget_exceeded")])
        assert failed.execution_failed()
        mixed = make_result([record(0, 0.0, aborted=True,
                                    reason="budget_exceeded"),
                             record(1, 0.0, commit=1.0)])
        assert not mixed.execution_failed()
        healthy = make_result([record(0, 0.0, commit=1.0)])
        assert not healthy.execution_failed()


class TestSerialization:
    def test_json_roundtrip(self):
        records = [record(0, 0.0, commit=1.0),
                   record(1, 0.5, aborted=True, reason="expired")]
        result = make_result(records)
        clone = BenchmarkResult.from_json(result.to_json())
        assert clone.chain == result.chain
        assert clone.summary() == result.summary()
        assert len(clone.records) == 2

    def test_from_transaction(self):
        tx = transfer("a", "b")
        tx.submitted_at = 1.0
        tx.committed_at = 3.0
        rec = TransactionRecord.from_transaction(tx, client="c7")
        assert rec.committed
        assert rec.latency == pytest.approx(2.0)
        assert rec.client == "c7"

    def test_from_aborted_transaction(self):
        tx = transfer("a", "b")
        tx.submitted_at = 1.0
        tx.aborted = True
        tx.abort_reason = "expired"
        rec = TransactionRecord.from_transaction(tx)
        assert not rec.committed
        assert rec.abort_reason == "expired"

    def test_summary_keys(self):
        result = make_result([record(0, 0.0, commit=1.0)])
        summary = result.summary()
        for key in ("chain", "configuration", "workload",
                    "average_load_tps", "average_throughput_tps",
                    "average_latency_s", "commit_ratio"):
            assert key in summary
