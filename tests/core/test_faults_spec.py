"""The ``faults:`` spec section and the end-to-end degradation pipeline."""

from __future__ import annotations

import json

import pytest

from repro.common.errors import SpecError
from repro.core.results import BenchmarkResult
from repro.core.runner import run_benchmark
from repro.core.spec import (
    AccountSample,
    LoadSchedule,
    TransferSpec,
    load_spec,
    simple_spec,
)
from repro.sim.faults import NodeCrash, NodeRecover, events_from_dicts

FAULTED_YAML = """
let:
  - &loc { sample: !location [ ".*" ] }
  - &end { sample: !endpoint [ ".*" ] }
  - &acc { sample: !account { number: 100 } }
workloads:
  - number: 1
    client:
      location: *loc
      view: *end
      behavior:
        - interaction: !transfer
            from: *acc
          load:
            0: 200
            90: 0
faults:
  - { at: 30, kind: crash, nodes: [0, 1, 2, 3] }
  - { at: 60, kind: recover, nodes: [0, 1, 2, 3] }
"""


class TestSpecParsing:
    def test_yaml_faults_section_parses(self):
        spec = load_spec(FAULTED_YAML)
        assert len(spec.faults) == 8
        schedule = spec.fault_schedule()
        assert schedule.fault_window() == (30.0, 60.0)
        kinds = [type(e) for e in schedule]
        assert kinds[:4] == [NodeCrash] * 4
        assert kinds[4:] == [NodeRecover] * 4

    def test_spec_without_faults_has_empty_schedule(self):
        spec = load_spec(FAULTED_YAML.split("faults:")[0])
        assert spec.faults == ()
        assert spec.fault_schedule().fault_window() is None

    def test_bad_faults_section_rejected(self):
        with pytest.raises(SpecError):
            load_spec(FAULTED_YAML.split("faults:")[0]
                      + "faults: not-a-list\n")

    def test_simple_spec_carries_faults(self):
        faults = events_from_dicts([{"at": 5, "kind": "crash", "node": 0}])
        spec = simple_spec(TransferSpec(AccountSample(10)),
                           LoadSchedule.constant(100, 30), faults=faults)
        assert spec.faults == faults


class TestEndToEnd:
    """The acceptance scenario: crash 4/10 validators at t=30, recover at 60.

    With n=10 and f=3 the commit quorum is 7; four crashed validators leave
    6 — the chain stalls during [30, 60) and resumes after recovery.
    """

    @pytest.fixture(scope="class")
    def result(self):
        return run_benchmark(
            "quorum", "testnet", load_spec(FAULTED_YAML),
            workload_name="crash-and-recover", scale=0.05, seed=3)

    def test_commit_ratio_dips_during_fault(self, result):
        before = result.commit_ratio_between(0.0, 30.0)
        during = result.commit_ratio_between(32.0, 60.0)
        after = result.commit_ratio_between(60.0, 90.0)
        assert before > 0.8
        assert during < 0.1 * before
        assert after > 0.5

    def test_time_to_recover_is_finite(self, result):
        ttr = result.time_to_recover()
        assert ttr is not None
        assert 0.0 <= ttr < 20.0

    def test_degradation_summary(self, result):
        info = result.degradation()
        assert info is not None
        assert info["fault_window"] == [30.0, 60.0]
        assert info["commit_ratio_during"] < info["commit_ratio_before"]
        assert info["time_to_recover_s"] is not None

    def test_fault_events_recorded_in_result(self, result):
        assert len(result.fault_events) == 8
        kinds = {e["kind"] for e in result.fault_events}
        assert kinds == {"crash", "recover"}
        assert result.chain_stats["stalled_rounds"] > 0
        assert result.chain_stats["fault_events_applied"] == 8

    def test_degradation_survives_json_roundtrip(self, result):
        text = result.to_json()
        loaded = BenchmarkResult.from_json(text)
        assert loaded.fault_events == result.fault_events
        assert loaded.degradation() == result.degradation()
        # the summary block carries the degradation report
        assert "degradation" in json.loads(text)["summary"]

    def test_unfaulted_run_reports_no_degradation(self):
        spec = simple_spec(TransferSpec(AccountSample(50)),
                           LoadSchedule.constant(100, 20))
        result = run_benchmark("quorum", "testnet", spec, scale=0.05, seed=3)
        assert result.degradation() is None
        assert result.fault_events == []
        assert "stalled_rounds" not in result.chain_stats
