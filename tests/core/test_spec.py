"""Tests for the workload specification language (§4)."""

from __future__ import annotations

import pytest

from repro.common.errors import SpecError
from repro.core.spec import (
    AccountSample,
    Behavior,
    ContractSample,
    EndpointSample,
    InvokeSpec,
    LoadSchedule,
    LocationSample,
    TransferSpec,
    WorkloadGroup,
    WorkloadSpec,
    load_spec,
    parse_function_call,
    simple_spec,
)

PAPER_EXAMPLE = """
let:
  - &loc { sample: !location [ "us-east-2" ] }
  - &end { sample: !endpoint [ ".*" ] }
  - &acc { sample: !account { number: 2000 } }
  - &dapp { sample: !contract { name: "dota" } }
workloads:
  - number: 3
    client:
      location: *loc
      view: *end
      behavior:
        - interaction: !invoke
            from: *acc
            contract: *dapp
            function: "update(1, 1)"
          load:
            0: 4432
            50: 4438
            120: 0
"""


class TestPaperExample:
    """The exact configuration file printed in §4."""

    def test_parses(self):
        spec = load_spec(PAPER_EXAMPLE)
        assert len(spec.workloads) == 1

    def test_three_clients(self):
        spec = load_spec(PAPER_EXAMPLE)
        assert spec.workloads[0].number == 3

    def test_account_population(self):
        spec = load_spec(PAPER_EXAMPLE)
        assert spec.account_population() == 2000

    def test_dapp_and_function(self):
        spec = load_spec(PAPER_EXAMPLE)
        interaction = spec.workloads[0].client.behaviors[0].interaction
        assert isinstance(interaction, InvokeSpec)
        assert interaction.contract.name == "dota"
        assert interaction.function == "update"
        assert interaction.args == (1, 1)

    def test_load_schedule(self):
        spec = load_spec(PAPER_EXAMPLE)
        load = spec.workloads[0].client.behaviors[0].load
        assert load.rate_at(10) == 4432
        assert load.rate_at(60) == 4438
        assert load.rate_at(130) == 0
        assert load.duration == 120

    def test_location_and_view_samples(self):
        spec = load_spec(PAPER_EXAMPLE)
        client = spec.workloads[0].client
        assert client.location.matches("us-east-2")
        assert not client.location.matches("ohio")
        assert client.view.matches("any-endpoint-at-all")

    def test_contracts_used(self):
        assert load_spec(PAPER_EXAMPLE).contracts_used() == ["dota"]

    def test_offered_load(self):
        spec = load_spec(PAPER_EXAMPLE)
        total = 3 * (4432 * 50 + 4438 * 70)
        assert spec.offered_load() == pytest.approx(total / 120)


class TestFunctionCallParsing:
    def test_no_args(self):
        assert parse_function_call("add") == ("add", ())
        assert parse_function_call("add()") == ("add", ())

    def test_int_args(self):
        assert parse_function_call("update(1, 2)") == ("update", (1, 2))

    def test_string_args(self):
        name, args = parse_function_call('upload("vid")')
        assert name == "upload"
        assert args == ("vid",)

    def test_garbage_rejected(self):
        with pytest.raises(SpecError):
            parse_function_call("???")


class TestLoadSchedule:
    def test_constant(self):
        load = LoadSchedule.constant(100, 60)
        assert load.rate_at(0) == 100
        assert load.rate_at(59.9) == 100
        assert load.rate_at(60) == 0
        assert load.duration == 60

    def test_total_transactions(self):
        load = LoadSchedule.constant(100, 60)
        assert load.total_transactions() == 6000

    def test_from_mapping_sorts(self):
        load = LoadSchedule.from_mapping({50: 10, 0: 20, 120: 0})
        assert load.points[0] == (0, 20)

    def test_scaled(self):
        load = LoadSchedule.constant(100, 60).scaled(0.5)
        assert load.rate_at(0) == 50

    def test_negative_rate_rejected(self):
        with pytest.raises(SpecError):
            LoadSchedule(((0.0, -1.0),))

    def test_unsorted_points_rejected(self):
        with pytest.raises(SpecError):
            LoadSchedule(((10.0, 1.0), (0.0, 2.0)))

    def test_empty_rejected(self):
        with pytest.raises(SpecError):
            LoadSchedule(())

    def test_rate_before_start_is_zero(self):
        assert LoadSchedule.constant(5, 10).rate_at(-1) == 0


class TestValidation:
    def test_transfer_interaction(self):
        text = """
workloads:
  - number: 1
    client:
      location: { sample: !location [ ".*" ] }
      view: { sample: !endpoint [ ".*" ] }
      behavior:
        - interaction: !transfer
            from: { sample: !account { number: 10 } }
            amount: 5
          load: { 0: 10, 10: 0 }
"""
        spec = load_spec(text)
        interaction = spec.workloads[0].client.behaviors[0].interaction
        assert isinstance(interaction, TransferSpec)
        assert interaction.amount == 5

    def test_missing_workloads_rejected(self):
        with pytest.raises(SpecError):
            load_spec("let: []")

    def test_empty_document_rejected(self):
        with pytest.raises(SpecError):
            load_spec("")

    def test_zero_accounts_rejected(self):
        with pytest.raises(SpecError):
            AccountSample(0)

    def test_zero_clients_rejected(self):
        with pytest.raises(SpecError):
            WorkloadGroup(0, None)

    def test_spec_needs_a_workload(self):
        with pytest.raises(SpecError):
            WorkloadSpec(())

    def test_simple_spec_helper(self):
        spec = simple_spec(TransferSpec(AccountSample(5)),
                           LoadSchedule.constant(10, 5), clients=2)
        assert spec.workloads[0].number == 2
        assert spec.duration == 5
        assert spec.account_population() == 5

    def test_endpoint_sample_regex(self):
        sample = EndpointSample(("quorum-node-.*",))
        assert sample.matches("quorum-node-3")
        assert not sample.matches("diem-node-3")
