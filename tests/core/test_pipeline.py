"""Tests for the connector, Secondary and Primary pipeline."""

from __future__ import annotations

import pytest

from repro.blockchains.base import ExperimentScale
from repro.blockchains.registry import build_network
from repro.common.errors import ConfigurationError, SpecError
from repro.core.interface import SimConnector
from repro.core.primary import Primary
from repro.core.runner import run_benchmark, run_matrix, run_trace
from repro.core.spec import (
    AccountSample,
    ContractSample,
    InvokeSpec,
    LoadSchedule,
    TransferSpec,
    simple_spec,
)
from repro.sim.engine import Engine
from repro.workloads.synthetic import constant_transfer_trace


@pytest.fixture
def connector():
    engine = Engine()
    net = build_network("quorum", "testnet", engine,
                        scale=ExperimentScale(0.1), seed=1)
    return SimConnector(net)


class TestConnector:
    def test_create_resource_accounts(self, connector):
        connector.create_resource(AccountSample(20))
        assert len(connector.network.accounts) == 20

    def test_create_resource_contract(self, connector):
        connector.create_resource(ContractSample("counter"))
        assert connector.network.vm.is_deployed("Counter")

    def test_unknown_dapp_rejected(self, connector):
        with pytest.raises(SpecError):
            connector.create_resource(ContractSample("pokemon"))

    def test_encode_transfer_signs_and_sequences(self, connector):
        connector.create_resource(AccountSample(5))
        tx = connector.encode(TransferSpec(AccountSample(5)), None, 0.0)
        assert tx.signature is not None
        assert tx.gas_limit == 21_000
        scheme = connector.network.params.signature_scheme
        sender = connector.network.accounts.get(tx.sender)
        assert scheme.verify(sender.public_key, tx.signing_payload(),
                             tx.signature)

    def test_encode_rotates_senders(self, connector):
        connector.create_resource(AccountSample(5))
        spec = TransferSpec(AccountSample(5))
        senders = {connector.encode(spec, None, 0.0).sender
                   for _ in range(10)}
        assert len(senders) == 5

    def test_encode_invoke_estimates_gas(self, connector):
        connector.create_resource(AccountSample(5))
        connector.create_resource(ContractSample("counter"))
        spec = InvokeSpec(AccountSample(5), ContractSample("counter"), "add")
        tx = connector.encode(spec, None, 0.0)
        assert tx.contract == "Counter"
        # ~29k actual gas * 1.5 margin, well below the 5M default
        assert 25_000 < tx.gas_limit < 100_000

    def test_gas_estimates_are_cached(self, connector):
        connector.create_resource(AccountSample(5))
        connector.create_resource(ContractSample("counter"))
        spec = InvokeSpec(AccountSample(5), ContractSample("counter"), "add")
        first = connector.encode(spec, None, 0.0)
        second = connector.encode(spec, None, 0.0)
        assert first.gas_limit == second.gas_limit
        assert len(connector._gas_estimates) == 1

    def test_create_client_validates_endpoints(self, connector):
        with pytest.raises(ConfigurationError):
            connector.create_client("c", "ohio", ["ghost-node"])

    def test_trigger_submits(self, connector):
        connector.create_resource(AccountSample(2))
        client = connector.create_client(
            "c", "ohio", [connector.network.endpoints[0].name])
        tx = connector.encode(TransferSpec(AccountSample(2)), None, 0.0)
        assert connector.trigger(client, tx)
        assert len(connector.network.mempool) == 1


class TestPrimary:
    def test_run_produces_result(self):
        spec = simple_spec(TransferSpec(AccountSample(20)),
                           LoadSchedule.constant(100, 10))
        primary = Primary("quorum", "testnet", scale=0.2, seed=1)
        result = primary.run(spec, workload_name="smoke", drain=60)
        assert result.workload_name == "smoke"
        assert result.submitted == pytest.approx(100 * 10 * 0.2, abs=5)
        assert result.commit_ratio > 0.95

    def test_secondaries_collocate_with_node_regions(self):
        spec = simple_spec(TransferSpec(AccountSample(10)),
                           LoadSchedule.constant(10, 5))
        primary = Primary("quorum", "devnet", scale=0.2)
        primary.run(spec, drain=30)
        regions = {s.region for s in primary.secondaries}
        node_regions = {ep.region for ep in primary.network.endpoints}
        assert regions == node_regions

    def test_location_sample_filters_secondaries(self):
        spec = simple_spec(TransferSpec(AccountSample(10)),
                           LoadSchedule.constant(50, 5), location="ohio")
        primary = Primary("quorum", "devnet", scale=0.2)
        primary.run(spec, drain=30)
        active = [s for s in primary.secondaries if s.sent]
        assert {s.region for s in active} == {"ohio"}

    def test_unmatchable_location_rejected(self):
        spec = simple_spec(TransferSpec(AccountSample(10)),
                           LoadSchedule.constant(10, 5), location="us-east-2")
        primary = Primary("quorum", "testnet", scale=0.2)
        with pytest.raises(ConfigurationError):
            primary.run(spec)

    def test_client_count_matches_group_number(self):
        from repro.core.spec import Behavior, ClientSpec, EndpointSample, \
            LocationSample, WorkloadGroup, WorkloadSpec
        spec = WorkloadSpec((WorkloadGroup(
            number=7,
            client=ClientSpec(
                LocationSample((".*",)), EndpointSample((".*",)),
                (Behavior(TransferSpec(AccountSample(10)),
                          LoadSchedule.constant(70, 5)),))),))
        primary = Primary("quorum", "testnet", scale=0.2)
        primary.run(spec, drain=30)
        assert sum(s.worker_count for s in primary.secondaries) == 7


class TestRunner:
    def test_run_trace(self):
        result = run_trace("quorum", "testnet", constant_transfer_trace(100, 10),
                           accounts=20, scale=0.2, drain=60)
        assert result.chain == "quorum"
        assert result.average_throughput > 50

    def test_run_benchmark_accepts_yaml(self):
        yaml_text = """
workloads:
  - number: 1
    client:
      location: { sample: !location [ ".*" ] }
      view: { sample: !endpoint [ ".*" ] }
      behavior:
        - interaction: !transfer
            from: { sample: !account { number: 10 } }
          load: { 0: 50, 5: 0 }
"""
        result = run_benchmark("quorum", "testnet", yaml_text, scale=0.2,
                               drain=30)
        assert result.submitted > 0

    def test_run_matrix(self):
        results = run_matrix(["quorum", "solana"], "testnet",
                             constant_transfer_trace(50, 10),
                             accounts=20, scale=0.2, drain=60)
        assert set(results) == {"quorum", "solana"}
        assert all(r.submitted > 0 for r in results.values())

    def test_deterministic_given_seed(self):
        kwargs = dict(accounts=20, scale=0.2, seed=9, drain=60)
        a = run_trace("quorum", "testnet", constant_transfer_trace(100, 10),
                      **kwargs)
        b = run_trace("quorum", "testnet", constant_transfer_trace(100, 10),
                      **kwargs)
        assert a.average_throughput == b.average_throughput
        assert a.average_latency == b.average_latency
