"""Engine-profiler tests: event counting, labels, hotspot ranking."""

from __future__ import annotations

from repro.obs.profiler import EngineProfiler, event_name
from repro.sim.engine import Engine


def test_profiler_counts_events_by_label():
    engine = Engine()
    engine.profiler = EngineProfiler()
    for t in (1.0, 2.0, 3.0):
        engine.schedule_at(t, lambda: None, label="tick")
    engine.schedule_at(4.0, lambda: None, label="other")
    engine.run(until=10.0)
    profiler = engine.profiler
    assert profiler.counts["tick"] == 3
    assert profiler.counts["other"] == 1
    assert profiler.total_events == 4
    assert profiler.seconds["tick"] >= 0.0


def test_unlabeled_events_fall_back_to_callback_name():
    engine = Engine()
    engine.profiler = EngineProfiler()

    def heartbeat():
        pass

    engine.schedule_at(1.0, heartbeat)
    engine.run(until=2.0)
    (label,) = engine.profiler.counts
    assert "heartbeat" in label


def test_event_name_prefers_label():
    assert event_name("x", lambda: None) == "x"
    assert "lambda" in event_name("", lambda: None)


def test_hotspots_ranked_and_bounded():
    profiler = EngineProfiler()
    engine = Engine()
    engine.profiler = profiler
    for i in range(5):
        engine.schedule_at(float(i + 1), lambda: None, label=f"ev-{i}")
    engine.run(until=10.0)
    top = profiler.hotspots(top=3)
    assert len(top) == 3
    seconds = [entry[2] for entry in top]
    assert seconds == sorted(seconds, reverse=True)


def test_profiler_exceptions_still_accounted():
    profiler = EngineProfiler()

    def boom():
        raise RuntimeError("boom")

    try:
        profiler.record("boom", boom)
    except RuntimeError:
        pass
    assert profiler.counts["boom"] == 1
    assert profiler.seconds["boom"] >= 0.0
