"""Engine-profiler tests: event counting, labels, hotspot ranking."""

from __future__ import annotations

from repro.obs.profiler import EngineProfiler, event_name
from repro.sim.engine import Engine


def test_profiler_counts_events_by_label():
    engine = Engine()
    engine.profiler = EngineProfiler()
    for t in (1.0, 2.0, 3.0):
        engine.schedule_at(t, lambda: None, label="tick")
    engine.schedule_at(4.0, lambda: None, label="other")
    engine.run(until=10.0)
    profiler = engine.profiler
    assert profiler.counts["tick"] == 3
    assert profiler.counts["other"] == 1
    assert profiler.total_events == 4
    assert profiler.seconds["tick"] >= 0.0


def test_unlabeled_events_fall_back_to_callback_name():
    engine = Engine()
    engine.profiler = EngineProfiler()

    def heartbeat():
        pass

    engine.schedule_at(1.0, heartbeat)
    engine.run(until=2.0)
    (label,) = engine.profiler.counts
    assert "heartbeat" in label


def test_event_name_prefers_label():
    assert event_name("x", lambda: None) == "x"
    assert "lambda" in event_name("", lambda: None)


def test_hotspots_ranked_and_bounded():
    profiler = EngineProfiler()
    engine = Engine()
    engine.profiler = profiler
    for i in range(5):
        engine.schedule_at(float(i + 1), lambda: None, label=f"ev-{i}")
    engine.run(until=10.0)
    top = profiler.hotspots(top=3)
    assert len(top) == 3
    seconds = [entry[2] for entry in top]
    assert seconds == sorted(seconds, reverse=True)


def test_profiler_exceptions_still_accounted():
    profiler = EngineProfiler()

    def boom():
        raise RuntimeError("boom")

    try:
        profiler.record("boom", boom)
    except RuntimeError:
        pass
    assert profiler.counts["boom"] == 1
    assert profiler.seconds["boom"] >= 0.0


def test_peak_rss_bytes_is_plausible():
    # normalized to bytes on every platform: a live CPython process is
    # bigger than 4 MiB (would fail if Linux KiB were mistaken for bytes)
    # and smaller than 1 TiB (would fail on a bytes->KiB double scaling)
    from repro.obs.profiler import peak_rss_bytes

    rss = peak_rss_bytes()
    assert rss > 4 * 1024 * 1024
    assert rss < 1 << 40


def test_profiler_peak_rss_property_matches_helper():
    from repro.obs.profiler import peak_rss_bytes

    profiler = EngineProfiler()
    # both read the same monotone high-water mark
    assert abs(profiler.peak_rss_bytes - peak_rss_bytes()) < 16 * 1024 * 1024


def test_subsystem_for_classifies_label_conventions():
    from repro.obs.profiler import SUBSYSTEMS, subsystem_for

    expected = {
        "network-delivery": "network",
        "msg-propose": "network",
        "self-deliver": "network",
        "degraded-link": "network",
        "secondary-ohio-0-emit": "clients",
        "transfer-retry": "clients",
        "dos-adversary": "adversary",
        "fault-crash-node-3": "faults",
        "metrics-sampler": "harness",
        "liveness-watchdog": "harness",
        "ethereum-block": "consensus",
        "hs-timeout": "consensus",
        "poh-tick": "consensus",
        "solana-idle": "consensus",
        "completely-unknown": "other",
    }
    for label, subsystem in expected.items():
        assert subsystem_for(label) == subsystem, label
        assert subsystem in SUBSYSTEMS


def test_subsystem_shares_sum_to_one_and_rank_hottest_first():
    import time

    profiler = EngineProfiler()
    profiler.record("network-delivery", lambda: time.sleep(0.002))
    profiler.record("ethereum-block", lambda: None)
    profiler.record("secondary-ohio-0-emit", lambda: None)
    shares = profiler.subsystem_shares()
    assert set(shares) == {"network", "consensus", "clients"}
    assert abs(sum(shares.values()) - 1.0) < 1e-9
    values = list(shares.values())
    assert values == sorted(values, reverse=True)
    assert next(iter(shares)) == "network"


def test_subsystem_shares_empty_without_events():
    assert EngineProfiler().subsystem_shares() == {}
