"""Lifecycle-tracer tests: span invariants, determinism, exporters."""

from __future__ import annotations

import json

import pytest

from repro.blockchains.registry import CHAIN_NAMES
from repro.core.primary import Primary
from repro.core.spec import (
    AccountSample,
    LoadSchedule,
    TransferSpec,
    simple_spec,
)
from repro.obs import (
    ObservabilityOptions,
    Span,
    chrome_trace,
    load_spans_jsonl,
    spans_to_jsonl,
)
from repro.obs.trace import TX_PHASES


def short_spec(duration=10.0, rate=100.0):
    return simple_spec(TransferSpec(AccountSample(200)),
                       LoadSchedule.constant(rate, duration))


def traced_run(chain, seed=3, observe=ObservabilityOptions(
        trace=True, profile=False, sample_period=1.0)):
    primary = Primary(chain, "testnet", scale=0.1, seed=seed,
                      observe=observe)
    result = primary.run(short_spec(), drain=120.0)
    return primary, result


@pytest.fixture(scope="module")
def ethereum_traced():
    return traced_run("ethereum")


class TestSpanInvariants:
    @pytest.mark.parametrize("chain", CHAIN_NAMES)
    def test_committed_tx_spans_contiguous_and_sum_to_latency(self, chain):
        primary, result = traced_run(chain)
        tracer = primary.tracer
        committed = [r for r in result.records if r.committed]
        assert committed, f"{chain}: nothing committed in the traced run"
        checked = 0
        for record in committed:
            spans = tracer.spans_for(record.uid)
            if not spans:
                continue  # committed during drain after an untraced requeue
            checked += 1
            assert [s.phase for s in spans] == list(TX_PHASES)
            for span in spans:
                assert span.duration >= 0.0
            for left, right in zip(spans, spans[1:]):
                assert left.end == pytest.approx(right.start)
            total = sum(s.duration for s in spans)
            assert total == pytest.approx(
                record.committed_at - record.submitted_at, abs=1e-6)
        assert checked > 0

    def test_aborted_tx_has_no_spans(self, ethereum_traced):
        primary, result = ethereum_traced
        tracer = primary.tracer
        spanned = {s.key for s in tracer.tx_spans()}
        for record in result.records:
            if record.aborted:
                assert record.uid not in spanned

    def test_traced_count_matches_receipt_spans(self, ethereum_traced):
        primary, _ = ethereum_traced
        tracer = primary.tracer
        receipts = [s for s in tracer.tx_spans() if s.phase == "receipt"]
        assert tracer.traced_transactions() == len(receipts)

    def test_phase_breakdown_covers_all_phases(self, ethereum_traced):
        primary, _ = ethereum_traced
        breakdown = primary.tracer.phase_breakdown()
        assert set(breakdown) == set(TX_PHASES)
        for stats in breakdown.values():
            assert stats["count"] > 0
            assert stats["p50"] <= stats["p95"] <= stats["p99"]


def record_shape(record):
    """Everything about a record except the process-global uid counter."""
    return (record.kind, record.client, record.submitted_at,
            record.committed_at, record.aborted, record.abort_reason,
            record.retries)


class TestDeterminism:
    def test_same_seed_same_result_without_observability(self):
        first = Primary("quorum", "testnet", scale=0.1, seed=7)
        second = Primary("quorum", "testnet", scale=0.1, seed=7)
        result_a = first.run(short_spec(), drain=120.0)
        result_b = second.run(short_spec(), drain=120.0)
        assert ([record_shape(r) for r in result_a.records]
                == [record_shape(r) for r in result_b.records])
        assert result_a.summary() == result_b.summary()

    def test_observability_does_not_change_the_outcome(self):
        plain = Primary("quorum", "testnet", scale=0.1, seed=7)
        result_plain = plain.run(short_spec(), drain=120.0)
        observed, result_observed = traced_run(
            "quorum", seed=7,
            observe=ObservabilityOptions(trace=True, profile=True,
                                         sample_period=1.0))
        assert ([record_shape(r) for r in result_plain.records]
                == [record_shape(r) for r in result_observed.records])
        summary_plain = result_plain.summary()
        summary_observed = result_observed.summary()
        summary_observed.pop("timeseries", None)
        assert summary_plain == summary_observed

    def test_disabled_run_has_no_tracer_and_no_timeseries(self):
        primary = Primary("quorum", "testnet", scale=0.1, seed=7)
        result = primary.run(short_spec(), drain=120.0)
        assert primary.tracer is None
        assert primary.network.tracer is None
        assert result.timeseries == []
        assert "timeseries" not in result.summary()


class TestExporters:
    def test_jsonl_round_trip(self, ethereum_traced):
        primary, _ = ethereum_traced
        tracer = primary.tracer
        text = spans_to_jsonl(tracer)
        spans, events = load_spans_jsonl(text)
        original = tracer.tx_spans() + tracer.block_spans()
        assert sorted(spans, key=lambda s: (s.scope, s.key, s.start)) == \
            sorted(original, key=lambda s: (s.scope, s.key, s.start))
        assert len(events) == len(tracer.events)

    def test_span_dict_round_trip(self):
        span = Span(scope="tx", key=42, phase="mempool",
                    start=1.25, end=3.5, meta=(("block", 7),))
        assert Span.from_dict(span.to_dict()) == span

    def test_chrome_trace_is_valid_and_complete(self, ethereum_traced):
        primary, _ = ethereum_traced
        payload = json.loads(json.dumps(chrome_trace(primary.tracer)))
        events = payload["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert complete
        for event in complete:
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            assert isinstance(event["pid"], int)
        tx_spans = primary.tracer.tx_spans()
        assert len([e for e in complete if e["pid"] == 1]) == len(tx_spans)

    def test_timeseries_lands_in_result(self, ethereum_traced):
        _, result = ethereum_traced
        assert result.timeseries
        first = result.timeseries[0]
        assert "t" in first
        assert any(key.startswith("mempool.") for key in first)
        assert "timeseries" in result.summary()
        round_tripped = type(result).from_json(result.to_json())
        assert round_tripped.timeseries == result.timeseries
