"""Tests for the metrics registry (counters, gauges, histograms, sampler)."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.obs.metrics import MetricsRegistry, MetricsSampler
from repro.sim.engine import Engine


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("chain.blocks")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4

    def test_negative_inc_rejected(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(SimulationError):
            counter.inc(-1)

    def test_get_or_create_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")


class TestGauge:
    def test_set_and_add(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.add(-3)
        assert gauge.value == 7

    def test_supplier_backed(self):
        backing = [1, 2, 3]
        gauge = MetricsRegistry().gauge("len", supplier=backing.__len__)
        assert gauge.value == 3
        backing.append(4)
        assert gauge.value == 4

    def test_supplier_backed_rejects_set(self):
        gauge = MetricsRegistry().gauge("len", supplier=lambda: 0)
        with pytest.raises(SimulationError):
            gauge.set(5)


class TestHistogram:
    def test_observe_and_stats(self):
        hist = MetricsRegistry().histogram("lat")
        for value in (1.0, 2.0, 3.0, 4.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(10.0)
        assert hist.mean == pytest.approx(2.5)
        assert hist.percentile(50) == pytest.approx(2.5)


class TestNamespace:
    def test_prefixes_names(self):
        registry = MetricsRegistry()
        ns = registry.namespace("mempool")
        ns.counter("admitted").inc()
        assert registry.value("mempool.admitted") == 1

    def test_counters_with_prefix(self):
        registry = MetricsRegistry()
        ns = registry.namespace("mempool")
        ns.counter("drops.capacity").inc(2)
        ns.counter("drops.quota").inc()
        assert ns.counters_with_prefix("drops") == {
            "capacity": 2, "quota": 1}


class TestSampleAndPrometheus:
    def test_sample_flat_dict(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(5)
        registry.gauge("b").set(2)
        sample = registry.sample()
        assert sample["a"] == 5
        assert sample["b"] == 2

    def test_prometheus_text(self):
        registry = MetricsRegistry()
        registry.counter("chain.blocks_failed").inc(2)
        text = registry.prometheus(labels={"chain": "quorum"})
        assert "repro_chain_blocks_failed" in text
        assert 'chain="quorum"' in text
        assert "# TYPE" in text


class TestSampler:
    def test_samples_on_sim_clock(self):
        engine = Engine()
        registry = MetricsRegistry()
        counter = registry.counter("events")
        engine.schedule_at(2.5, counter.inc, label="bump")
        sampler = MetricsSampler(engine, registry, period=1.0)
        engine.run(until=5.0)
        sampler.stop()
        assert len(sampler.samples) >= 4
        before = [s for s in sampler.samples if s["t"] < 2.5]
        after = [s for s in sampler.samples if s["t"] > 2.5]
        assert all(s["events"] == 0 for s in before)
        assert all(s["events"] == 1 for s in after)

    def test_rejects_non_positive_period(self):
        with pytest.raises(ConfigurationError):
            MetricsSampler(Engine(), MetricsRegistry(), period=0.0)
