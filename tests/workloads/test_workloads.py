"""Tests for the workload suite (§3, Table 2)."""

from __future__ import annotations

import pytest

from repro.core.spec import InvokeSpec, TransferSpec
from repro.workloads import (
    VISA_AVERAGE_TPS,
    constant_transfer_trace,
    dapp_suite,
    deployment_challenge_trace,
    derived_average_tps,
    derived_world_tps,
    dota_trace,
    expected_peak_tps,
    fifa_trace,
    gafam_trace,
    robustness_trace,
    stock_trace,
    uber_trace,
    youtube_trace,
)
from repro.workloads.traces import burst_then_decay, schedule_from_rates


class TestNasdaq:
    def test_per_stock_opening_peaks(self):
        # §3: 800 / 1300 / 3000 / 4000 / 10000 TPS opening demand
        assert stock_trace("google").peak_tps == pytest.approx(800, rel=0.01)
        assert stock_trace("amazon").peak_tps == pytest.approx(1300, rel=0.01)
        assert stock_trace("facebook").peak_tps == pytest.approx(3000, rel=0.01)
        assert stock_trace("microsoft").peak_tps == pytest.approx(4000, rel=0.01)
        assert stock_trace("apple").peak_tps == pytest.approx(10000, rel=0.01)

    def test_bursts_decay_to_the_floor(self):
        trace = stock_trace("apple")
        assert trace.schedule.rate_at(170) < 100  # "dropping to 10-60 TPS"

    def test_gafam_runs_three_minutes(self):
        assert gafam_trace().duration == pytest.approx(180, abs=1)

    def test_gafam_peak_near_19800(self):
        # §3: "experiences a peak of 19,800 TPS"
        assert gafam_trace().peak_tps == pytest.approx(
            expected_peak_tps(), rel=0.02)
        assert expected_peak_tps() == pytest.approx(19_100, rel=0.05)

    def test_each_stock_buys_its_own_function(self):
        assert stock_trace("google").function == "buyGoogle"
        assert stock_trace("apple").function == "buyApple"

    def test_exchange_dapp_is_used(self):
        assert gafam_trace().dapp == "exchange"


class TestDota:
    def test_duration_276_seconds(self):
        assert dota_trace().duration == pytest.approx(276)

    def test_rate_is_about_13k(self):
        trace = dota_trace()
        assert trace.average_tps == pytest.approx(13_300, rel=0.01)

    def test_paper_example_rates(self):
        # §4: 3 clients x 4432 TPS then 4438 TPS
        trace = dota_trace()
        assert trace.schedule.rate_at(10) == pytest.approx(3 * 4432)
        assert trace.schedule.rate_at(60) == pytest.approx(3 * 4438)

    def test_three_client_split(self):
        spec = dota_trace().spec(accounts=2000, clients=3)
        assert spec.workloads[0].number == 3
        per_client = spec.workloads[0].client.behaviors[0].load
        assert per_client.rate_at(10) == pytest.approx(4432)


class TestFifa:
    def test_duration_176_seconds(self):
        assert fifa_trace().duration == pytest.approx(176)

    def test_rate_range(self):
        # §3: "a rate varying from 1416 to 5305 requests per second"
        trace = fifa_trace()
        rates = [trace.schedule.rate_at(t) for t in range(176)]
        assert min(rates) == pytest.approx(1416, rel=0.02)
        assert max(rates) == pytest.approx(5305, rel=0.02)

    def test_average_about_3500(self):
        assert fifa_trace().average_tps == pytest.approx(3400, rel=0.05)

    def test_counter_dapp(self):
        assert fifa_trace().dapp == "counter"
        assert fifa_trace().function == "add"


class TestUber:
    def test_paper_derivation(self):
        # §3: "24 x 36 = 864 TPS"
        assert derived_world_tps() == pytest.approx(864, rel=0.02)

    def test_rate_band(self):
        # §6.4: "810 TPS to 900 TPS ... during 120 seconds"
        trace = uber_trace()
        rates = [trace.schedule.rate_at(t) for t in range(120)]
        assert min(rates) >= 805
        assert max(rates) <= 905
        assert trace.duration == pytest.approx(120)

    def test_invokes_check_distance(self):
        assert uber_trace().function == "checkDistance"


class TestYoutube:
    def test_paper_derivation(self):
        # §3: "467 x 83 = 38,761 TPS"
        assert derived_average_tps() == pytest.approx(38_740, rel=0.01)

    def test_is_the_most_demanding(self):
        suite = dapp_suite()
        assert suite["video"].average_tps == max(
            trace.average_tps for trace in suite.values())

    def test_upload_function(self):
        assert youtube_trace().function == "upload"


class TestSynthetic:
    def test_deployment_challenge_is_visa_scale(self):
        # §6.2: 1000 TPS is "the same order of magnitude as ... Visa"
        trace = deployment_challenge_trace()
        assert trace.average_tps == pytest.approx(1000)
        assert trace.duration == 120
        assert VISA_AVERAGE_TPS == 1736

    def test_robustness_is_10x(self):
        assert robustness_trace().average_tps == pytest.approx(10_000)

    def test_native_transfers_have_no_dapp(self):
        spec = constant_transfer_trace(10, 5).spec(accounts=10)
        interaction = spec.workloads[0].client.behaviors[0].interaction
        assert isinstance(interaction, TransferSpec)


class TestSuite:
    def test_five_dapps(self):
        suite = dapp_suite()
        assert sorted(suite) == ["exchange", "gaming", "mobility",
                                 "video", "web"]

    def test_summaries_are_serializable(self):
        import json
        for trace in dapp_suite().values():
            json.dumps(trace.summary())

    def test_specs_reference_their_dapps(self):
        for key, trace in dapp_suite().items():
            spec = trace.spec(accounts=100)
            interaction = spec.workloads[0].client.behaviors[0].interaction
            assert isinstance(interaction, InvokeSpec)


class TestHelpers:
    def test_schedule_from_rates_compresses_runs(self):
        schedule = schedule_from_rates([5, 5, 5, 2, 2])
        assert schedule.points == ((0.0, 5.0), (3.0, 2.0), (5.0, 0.0))

    def test_burst_then_decay_shape(self):
        schedule = burst_then_decay(1000, 10, 60, 5)
        assert schedule.rate_at(0) == pytest.approx(1000, rel=0.01)
        assert schedule.rate_at(59) < 20
