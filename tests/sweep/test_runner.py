"""Sweep execution: isolation, determinism, caching, edge cases."""

from __future__ import annotations

import pytest

from repro.core.spec import LoadSchedule
from repro.sweep import (
    CellOptions,
    ResultCache,
    SweepSpec,
    run_sweep,
)
from repro.workloads.traces import Trace

FAST = dict(configurations=("testnet",), workloads=("native-100",),
            scales=(0.05,))


def crashing_trace() -> Trace:
    """A trace whose run raises: it invokes a DApp that does not exist."""
    return Trace(name="crashes", dapp="no-such-dapp", function="f",
                 schedule=LoadSchedule.constant(10, 5))


class TestEdgeCases:
    def test_empty_sweep(self):
        spec = SweepSpec(chains=(), configurations=(), workloads=())
        sweep = run_sweep(spec)
        assert sweep.outcomes == []
        assert sweep.cache_hits == 0
        assert "cells: 0" in sweep.summary_line()

    def test_single_cell(self):
        spec = SweepSpec(chains=("quorum",), seeds=(1,), **FAST)
        sweep = run_sweep(spec)
        (outcome,) = sweep.outcomes
        assert outcome.status == "done"
        assert not outcome.cached
        assert outcome.result.commit_ratio > 0.9

    def test_invalid_worker_count(self):
        spec = SweepSpec(chains=("quorum",), **FAST)
        with pytest.raises(ValueError, match="workers"):
            run_sweep(spec, workers=0)


class TestFailureIsolation:
    def test_crashed_cell_does_not_kill_the_sweep(self):
        spec = SweepSpec(chains=("quorum",),
                         configurations=("testnet",),
                         workloads=(crashing_trace(), "native-100"),
                         seeds=(1,), scales=(0.05,))
        sweep = run_sweep(spec)
        crashed, healthy = sweep.outcomes
        assert crashed.status == "failed"
        assert crashed.failure.kind == "crash"
        assert crashed.result_json is None
        assert crashed.failure.traceback_text  # preserved for debugging
        assert healthy.status == "done"
        assert healthy.result.commit_ratio > 0.9

    def test_crashed_cell_in_worker_pool(self):
        spec = SweepSpec(chains=("quorum",),
                         configurations=("testnet",),
                         workloads=(crashing_trace(), "native-100"),
                         seeds=(1,), scales=(0.05,))
        sweep = run_sweep(spec, workers=2)
        crashed, healthy = sweep.outcomes
        assert crashed.failure.kind == "crash"
        assert healthy.status == "done"

    def test_deadline_failed_cell_is_typed_watchdog_failure(self):
        spec = SweepSpec(
            chains=("quorum",), seeds=(1,),
            options=CellOptions(max_sim_seconds=5.0), **FAST)
        (outcome,) = run_sweep(spec).outcomes
        assert outcome.status == "failed"
        assert outcome.failure.kind == "watchdog"
        assert outcome.result is not None          # data is preserved
        assert outcome.result.status == "failed"

    def test_crashes_are_never_cached(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_VERSION", "pinned")
        cache = ResultCache(tmp_path)
        spec = SweepSpec(chains=("quorum",), configurations=("testnet",),
                         workloads=(crashing_trace(),), scales=(0.05,))
        run_sweep(spec, cache=cache)
        assert cache.entries() == 0
        # a failed-status run, by contrast, is a deterministic outcome
        spec = SweepSpec(chains=("quorum",), seeds=(1,),
                         options=CellOptions(max_sim_seconds=5.0), **FAST)
        run_sweep(spec, cache=cache)
        assert cache.entries() == 1
        (replay,) = run_sweep(spec, cache=cache).outcomes
        assert replay.cached and replay.status == "failed"


class TestDeterminism:
    def test_workers_1_vs_4_byte_identical(self):
        spec = SweepSpec(chains=("quorum", "diem"), seeds=(1, 2), **FAST)
        serial = run_sweep(spec, workers=1)
        parallel = run_sweep(spec, workers=4)
        assert len(serial.outcomes) == 4
        for one, many in zip(serial.outcomes, parallel.outcomes):
            assert one.cell.label == many.cell.label
            assert one.result_json == many.result_json

    def test_fee_market_trace_workers_1_vs_4_byte_identical(self):
        """An attacked, fee-priced workload is as reproducible as a benign
        one: the adversary draws no randomness and fee arithmetic is all
        integers, so worker count cannot change a byte of the output."""
        from repro.econ.fees import FeeSpec
        from repro.sim.dos import AdversarySpec
        trace = Trace(name="dos-native", dapp=None, function="transfer",
                      schedule=LoadSchedule.constant(100, 10),
                      fees=FeeSpec(),
                      adversary=AdversarySpec(budget=5_000_000, rate=500))
        spec = SweepSpec(chains=("ethereum", "algorand"), seeds=(1,),
                         configurations=("testnet",), workloads=(trace,),
                         scales=(0.05,))
        serial = run_sweep(spec, workers=1)
        parallel = run_sweep(spec, workers=4)
        assert len(serial.outcomes) == 2
        for one, many in zip(serial.outcomes, parallel.outcomes):
            assert one.cell.label == many.cell.label
            assert one.result_json == many.result_json
            adversary = one.result.economics["adversary"]
            assert 0 < adversary["spend"] <= adversary["budget"]

    def test_outcome_order_is_cell_order_under_pool(self):
        spec = SweepSpec(chains=("solana", "quorum", "diem"), seeds=(1,),
                         **FAST)
        sweep = run_sweep(spec, workers=3)
        assert [o.cell.chain for o in sweep.outcomes] == \
            ["solana", "quorum", "diem"]
        assert [o.cell.index for o in sweep.outcomes] == [0, 1, 2]


class TestCaching:
    def test_second_run_hits_everything(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_VERSION", "pinned")
        cache = ResultCache(tmp_path)
        spec = SweepSpec(chains=("quorum", "solana"), seeds=(1,), **FAST)
        first = run_sweep(spec, cache=cache)
        assert (first.cache_hits, first.cache_misses) == (0, 2)
        second = run_sweep(spec, cache=cache)
        assert (second.cache_hits, second.cache_misses) == (2, 0)
        for fresh, replayed in zip(first.outcomes, second.outcomes):
            assert fresh.result_json == replayed.result_json
        assert second.metrics["sweep.cache.hits"] == 2

    def test_code_change_invalidates(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_VERSION", "v1")
        cache = ResultCache(tmp_path)
        spec = SweepSpec(chains=("quorum",), seeds=(1,), **FAST)
        run_sweep(spec, cache=cache)
        monkeypatch.setenv("REPRO_CODE_VERSION", "v2")
        sweep = run_sweep(spec, cache=cache)
        assert sweep.cache_misses == 1

    def test_progress_events_stream_in_lifecycle_order(self):
        spec = SweepSpec(chains=("quorum",), seeds=(1,), **FAST)
        kinds = []
        run_sweep(spec, progress=lambda e: kinds.append(e.kind))
        assert kinds == ["queued", "running", "done"]
