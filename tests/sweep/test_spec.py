"""Sweep specification parsing and deterministic cell expansion."""

from __future__ import annotations

import pytest

from repro.common.errors import SpecError
from repro.sweep import CellOptions, SweepSpec, load_sweep
from repro.workloads import constant_transfer_trace

MINIMAL = """
sweep:
  chains: [quorum, solana]
  configurations: [testnet]
  workloads: [native-100]
"""

FULL = """
sweep:
  chains: [quorum]
  configurations: [testnet, datacenter]
  workloads: [native-100, dapp-exchange]
  seeds: [1, 2, 3]
  scales: [0.05, 0.1]
options:
  accounts: 500
  clients: 2
  drain: 60
  max_sim_seconds: 900
  watchdog_window: 20
"""


class TestParsing:
    def test_minimal_defaults(self):
        spec = load_sweep(MINIMAL)
        assert spec.chains == ("quorum", "solana")
        assert spec.seeds == (0,)
        assert spec.scales == (None,)
        assert spec.options == CellOptions()

    def test_full_document(self):
        spec = load_sweep(FULL)
        assert spec.seeds == (1, 2, 3)
        assert spec.scales == (0.05, 0.1)
        assert spec.options.accounts == 500
        assert spec.options.clients == 2
        assert spec.options.max_sim_seconds == 900
        assert len(spec.cells()) == 1 * 2 * 2 * 3 * 2

    def test_empty_document_rejected(self):
        with pytest.raises(SpecError):
            load_sweep("")

    def test_missing_sweep_key_rejected(self):
        with pytest.raises(SpecError, match="top-level"):
            load_sweep("chains: [quorum]")

    def test_unknown_chain_rejected(self):
        with pytest.raises(SpecError, match="unknown chain"):
            load_sweep("sweep:\n  chains: [bitcoin]\n"
                       "  configurations: [testnet]\n"
                       "  workloads: [native-100]\n")

    def test_unknown_configuration_rejected(self):
        with pytest.raises(SpecError, match="unknown configuration"):
            load_sweep("sweep:\n  chains: [quorum]\n"
                       "  configurations: [mainnet]\n"
                       "  workloads: [native-100]\n")

    def test_unknown_workload_rejected(self):
        with pytest.raises(SpecError, match="unknown workload"):
            load_sweep("sweep:\n  chains: [quorum]\n"
                       "  configurations: [testnet]\n"
                       "  workloads: [no-such-trace]\n")

    def test_unknown_sweep_key_rejected(self):
        with pytest.raises(SpecError, match="unknown sweep keys"):
            load_sweep(MINIMAL + "  chans: [quorum]\n")

    def test_unknown_option_rejected(self):
        with pytest.raises(SpecError, match="unknown option"):
            load_sweep(MINIMAL + "options:\n  acounts: 5\n")

    def test_negative_scale_rejected(self):
        with pytest.raises(SpecError, match="positive"):
            load_sweep("sweep:\n  chains: [quorum]\n"
                       "  configurations: [testnet]\n"
                       "  workloads: [native-100]\n"
                       "  scales: [-1]\n")


class TestExpansion:
    def test_cell_order_is_spec_order(self):
        spec = load_sweep(FULL)
        cells = spec.cells()
        assert [c.index for c in cells] == list(range(len(cells)))
        # chains outermost, scales innermost
        assert cells[0].configuration.name == "testnet"
        assert cells[0].workload == "native-100"
        assert (cells[0].seed, cells[0].scale) == (1, 0.05)
        assert (cells[1].seed, cells[1].scale) == (1, 0.1)
        assert cells[2].seed == 2
        # the expansion is stable across calls
        assert [c.label for c in cells] == [c.label for c in spec.cells()]

    def test_none_scale_resolves_to_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.25")
        spec = load_sweep(MINIMAL)
        assert all(cell.scale == 0.25 for cell in spec.cells())

    def test_programmatic_trace_objects(self):
        trace = constant_transfer_trace(123)
        spec = SweepSpec(chains=("quorum",), configurations=("testnet",),
                         workloads=(trace,))
        (cell,) = spec.cells()
        assert cell.trace is trace
        assert cell.workload == trace.name

    def test_shape_string(self):
        assert load_sweep(FULL).shape() == "1x2x2x3x2 = 24 cells"
