"""Result-cache keys: what must hit and what must miss."""

from __future__ import annotations

import json

import pytest

from repro.sweep import (
    ResultCache,
    cell_key,
    cell_key_fields,
    load_sweep,
    spec_fingerprint,
)
from repro.core.spec import load_spec

SWEEP = """
sweep:
  chains: [quorum]
  configurations: [testnet]
  workloads: [native-100]
  seeds: [1]
  scales: [0.05]
"""

# identical parse, different text: extra blank lines, comments, indentation
SWEEP_WHITESPACE = """

# the same sweep, reformatted
sweep:
  chains:   [quorum]
  configurations: [testnet]

  workloads: [native-100]
  seeds: [ 1 ]
  scales: [0.05]
"""

WORKLOAD = """
let:
  - &loc { sample: !location [ ".*" ] }
  - &end { sample: !endpoint [ ".*" ] }
  - &acc { sample: !account { number: 100 } }
workloads:
  - number: 1
    client:
      location: *loc
      view: *end
      behavior:
        - interaction: !transfer
            from: *acc
          load: { 0: 100, 10: 0 }
"""


@pytest.fixture(autouse=True)
def pinned_code_version(monkeypatch):
    """Pin the source fingerprint so tests control invalidation."""
    monkeypatch.setenv("REPRO_CODE_VERSION", "test-version")


def _single_cell(text: str = SWEEP):
    (cell,) = load_sweep(text).cells()
    return cell


class TestKeys:
    def test_key_is_stable(self):
        assert cell_key(_single_cell()) == cell_key(_single_cell())

    def test_whitespace_only_sweep_edit_hits(self):
        """The hash is over the parsed spec, never the YAML text."""
        assert cell_key(_single_cell(SWEEP)) == \
            cell_key(_single_cell(SWEEP_WHITESPACE))

    def test_workload_spec_fingerprint_ignores_formatting(self):
        reformatted = WORKLOAD.replace("  - &", "  -    &")
        assert spec_fingerprint(load_spec(WORKLOAD)) == \
            spec_fingerprint(load_spec(reformatted))

    def test_workload_spec_fingerprint_sees_semantic_change(self):
        changed = WORKLOAD.replace("number: 100", "number: 101")
        assert spec_fingerprint(load_spec(WORKLOAD)) != \
            spec_fingerprint(load_spec(changed))

    @pytest.mark.parametrize("before,after", [
        ("chains: [quorum]", "chains: [solana]"),
        ("configurations: [testnet]", "configurations: [datacenter]"),
        ("workloads: [native-100]", "workloads: [native-1000]"),
        ("seeds: [1]", "seeds: [2]"),
        ("scales: [0.05]", "scales: [0.1]"),
    ])
    def test_every_matrix_axis_is_in_the_key(self, before, after):
        assert cell_key(_single_cell(SWEEP)) != \
            cell_key(_single_cell(SWEEP.replace(before, after)))

    def test_options_are_in_the_key(self):
        assert cell_key(_single_cell(SWEEP)) != \
            cell_key(_single_cell(SWEEP + "options:\n  accounts: 7\n"))

    def test_code_version_is_in_the_key(self, monkeypatch):
        key_before = cell_key(_single_cell())
        monkeypatch.setenv("REPRO_CODE_VERSION", "edited-sources")
        assert cell_key(_single_cell()) != key_before

    def test_key_fields_are_json_serializable(self):
        fields = cell_key_fields(_single_cell())
        parsed = json.loads(json.dumps(fields))
        assert parsed["chain"] == "quorum"
        assert parsed["seed"] == 1
        assert parsed["code_version"] == "test-version"


class TestStore:
    def test_roundtrip_is_verbatim(self, tmp_path):
        cache = ResultCache(tmp_path)
        payload = '{"summary": {"chain": "quorum"}, "transactions": []}'
        cache.put("ab" + "0" * 62, {"chain": "quorum"}, payload)
        assert cache.get("ab" + "0" * 62) == payload
        assert cache.entries() == 1

    def test_miss_returns_none(self, tmp_path):
        assert ResultCache(tmp_path).get("cd" + "0" * 62) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ef" + "0" * 62
        cache.put(key, {}, "{}")
        (tmp_path / key[:2] / f"{key}.json").write_text("not json {")
        assert cache.get(key) is None

    def test_entries_on_missing_directory(self, tmp_path):
        assert ResultCache(tmp_path / "nowhere").entries() == 0
