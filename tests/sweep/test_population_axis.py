"""The ``populations`` sweep axis: parsing, labels, caching, determinism."""

from __future__ import annotations

import pytest

from repro.common.errors import SpecError
from repro.sweep import (
    CellOptions,
    ResultCache,
    SweepSpec,
    load_sweep,
    run_sweep,
)
from repro.sweep.cache import cell_key, cell_key_fields

POPULATION_SWEEP_YAML = """
sweep:
  chains: [quorum]
  configurations: [testnet]
  workloads: [native-100]
  seeds: [1]
  scales: [0.05]
  populations: [10000, 100000]
options:
  rate_per_user: 0.002
  cohort: 50
  accounts: 200
"""

FAST = dict(chains=("quorum",), configurations=("testnet",),
            workloads=("native-100",), seeds=(1,), scales=(0.05,))


class TestParsing:
    def test_populations_axis_parses(self):
        spec = load_sweep(POPULATION_SWEEP_YAML)
        assert spec.populations == (10_000, 100_000)
        assert spec.options.rate_per_user == pytest.approx(0.002)
        assert spec.options.cohort == 50
        assert "2 cells" in spec.shape()

    def test_default_is_classic_path(self):
        spec = load_sweep("""
sweep:
  chains: [quorum]
  configurations: [testnet]
  workloads: [native-100]
""")
        assert spec.populations == (None,)
        # the shape omits the axis when it is not swept
        assert spec.shape() == "1x1x1x1x1 = 1 cells"
        (cell,) = spec.cells()
        assert cell.population is None
        assert "pop=" not in cell.label

    def test_population_must_be_positive(self):
        with pytest.raises(SpecError, match="populations must be positive"):
            SweepSpec(populations=(0,), **FAST)

    def test_bad_options_rejected(self):
        with pytest.raises(SpecError, match="cohort must be positive"):
            CellOptions(cohort=0)
        with pytest.raises(SpecError, match="rate_per_user must be"):
            CellOptions(rate_per_user=0.0)

    def test_cell_labels_carry_the_population(self):
        spec = load_sweep(POPULATION_SWEEP_YAML)
        labels = [cell.label for cell in spec.cells()]
        assert labels[0].endswith("pop=10000")
        assert labels[1].endswith("pop=100000")


class TestCacheKeys:
    def test_population_cells_key_differently(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_VERSION", "pinned")
        spec = load_sweep(POPULATION_SWEEP_YAML)
        small, large = spec.cells()
        assert cell_key(small) != cell_key(large)
        fields = cell_key_fields(small)
        assert fields["population"] == 10_000
        assert fields["options"]["cohort"] == 50
        assert fields["options"]["rate_per_user"] == pytest.approx(0.002)

    def test_classic_cells_keep_their_original_key_fields(self, monkeypatch):
        # adding the axis must not orphan pre-axis cache entries
        monkeypatch.setenv("REPRO_CODE_VERSION", "pinned")
        spec = SweepSpec(**FAST)
        (cell,) = spec.cells()
        fields = cell_key_fields(cell)
        assert "population" not in fields
        assert "cohort" not in fields["options"]
        assert "rate_per_user" not in fields["options"]


class TestExecution:
    def spec(self):
        return SweepSpec(populations=(20_000,),
                         options=CellOptions(accounts=200, cohort=50,
                                             rate_per_user=0.002),
                         **FAST)

    def test_population_cell_runs_and_caches(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_VERSION", "pinned")
        cache = ResultCache(tmp_path)
        first = run_sweep(self.spec(), cache=cache)
        (outcome,) = first.outcomes
        assert outcome.status == "done"
        result = outcome.result
        assert result.population["users"] == 20_000
        assert result.workload_name.endswith("-pop20000")
        second = run_sweep(self.spec(), cache=cache)
        assert second.cache_hits == 1
        assert second.outcomes[0].result_json == outcome.result_json

    def test_workers_1_vs_4_byte_identical(self):
        spec = SweepSpec(chains=("quorum", "ethereum"),
                         configurations=("testnet",),
                         workloads=("native-100",), seeds=(1,),
                         scales=(0.05,), populations=(20_000, 50_000),
                         options=CellOptions(accounts=200, cohort=50,
                                             rate_per_user=0.002))
        serial = run_sweep(spec, workers=1)
        parallel = run_sweep(spec, workers=4)
        assert [o.result_json for o in serial.outcomes] == \
            [o.result_json for o in parallel.outcomes]
