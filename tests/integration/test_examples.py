"""The shipped examples must stay runnable against the public API."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_all_examples_exist(self):
        names = {p.stem for p in EXAMPLES.glob("*.py")}
        assert {"quickstart", "exchange_nasdaq", "mobility_uber",
                "robustness_dos", "robustness_byzantine",
                "custom_blockchain"} <= names

    def test_examples_import_cleanly(self):
        for name in ("quickstart", "exchange_nasdaq", "mobility_uber",
                     "robustness_dos", "robustness_byzantine",
                     "custom_blockchain"):
            module = load_example(name)
            assert hasattr(module, "main")

    def test_custom_blockchain_runs_end_to_end(self):
        module = load_example("custom_blockchain")
        result = module.run_redwood(rate=200.0, configuration="testnet",
                                    scale=0.1)
        assert result.chain == "redwood"
        assert result.commit_ratio > 0.9

    def test_custom_chain_characteristics(self):
        module = load_example("custom_blockchain")
        params = module.redwood_params()
        assert params.vm_name == "geth-evm"
        assert params.consensus_name == "LeaderlessBFT"
