"""Integration tests for the §5.2 per-chain quirks the paper documents.

Each test pins one sentence of the paper to an observable behaviour of the
reproduction.
"""

from __future__ import annotations

import pytest

from repro.blockchains.base import ExperimentScale
from repro.blockchains.registry import build_network, chain_params
from repro.core.runner import run_trace
from repro.sim.deployment import CONSORTIUM, DATACENTER, TESTNET
from repro.sim.engine import Engine
from repro.workloads import constant_transfer_trace, uber_trace, youtube_trace

FAST = dict(accounts=100, scale=0.05, drain=120)


class TestAlgorandQuirks:
    def test_polling_commit_detection(self):
        # "we made DIABLO poll every appended block to detect transaction
        # commits"
        params = chain_params("algorand", TESTNET)
        assert params.commit_api == "poll"

    def test_no_confirmation_depth(self):
        # "It does not fork with high probability, so the transaction is
        # considered final as soon as it is included in a block"
        assert chain_params("algorand", TESTNET).confirmation_depth == 0

    def test_video_dapp_unimplementable(self):
        # "we could not implement the video sharing DApp in Teal"
        from repro.common.errors import DeploymentError, StateLimitError
        engine = Engine()
        net = build_network("algorand", TESTNET, engine,
                            scale=ExperimentScale(0.05))
        from repro.contracts import make_youtube_contract
        with pytest.raises(StateLimitError):
            net.deploy_contract(make_youtube_contract())


class TestDiemQuirks:
    def test_per_sender_mempool_quota(self):
        # "Diem nodes only accept a maximum of 100 transactions from the
        # same signer in their memory pool"
        params = chain_params("diem", TESTNET)
        assert params.mempool_policy.per_sender_quota == 100

    def test_130_account_limit_on_large_configs(self):
        assert chain_params("diem", CONSORTIUM).account_limits.max_accounts == 130
        assert chain_params("diem", TESTNET).account_limits.max_accounts is None

    def test_best_at_low_rtt(self):
        # §6.2: Diem posts the best numbers "only on configurations with a
        # local setup"
        local = run_trace("diem", "datacenter",
                          constant_transfer_trace(1000, 30), **FAST)
        geo = run_trace("diem", "devnet",
                        constant_transfer_trace(1000, 30), **FAST)
        assert local.average_throughput > 3 * geo.average_throughput
        assert local.average_latency < 2.0


class TestSolanaQuirks:
    def test_thirty_confirmations(self):
        # "set the number of confirmations to 30"
        assert chain_params("solana", TESTNET).confirmation_depth == 30

    def test_blockhash_window(self):
        # "Solana requires the hash to be created less than 120 seconds
        # before the transaction request is received"
        assert chain_params("solana", TESTNET).tx_expiry == 120.0

    def test_latency_floor_is_12_seconds(self):
        # 30 confirmations x 0.4 s slots = the observed 12 s average latency
        result = run_trace("solana", "testnet",
                           constant_transfer_trace(200, 20), **FAST)
        lats = result.latencies()
        assert lats.min() >= 12.0

    def test_transactions_carry_recent_blockhash(self):
        from repro.core.interface import SimConnector
        from repro.core.spec import AccountSample, TransferSpec
        engine = Engine()
        net = build_network("solana", TESTNET, engine,
                            scale=ExperimentScale(0.05))
        connector = SimConnector(net)
        connector.create_resource(AccountSample(5))
        tx = connector.encode(TransferSpec(AccountSample(5)), None, 0.0)
        assert tx.recent_block_hash == net.ledger.head.block_hash

    def test_hardware_scales_intake(self):
        # the Solana team "confirm[ed] that c5.xlarge instances have
        # insufficient resources": capacity grows with vCPUs
        small = run_trace("solana", "testnet",
                          constant_transfer_trace(8000, 20), **FAST)
        big = run_trace("solana", "datacenter",
                        constant_transfer_trace(8000, 20), **FAST)
        assert big.average_throughput > 3 * small.average_throughput


class TestQuorumQuirks:
    def test_unbounded_mempool(self):
        # IBFT was "historically designed to never drop a client request"
        assert chain_params("quorum", TESTNET).mempool_policy.capacity is None

    def test_immediate_finality(self):
        assert chain_params("quorum", TESTNET).confirmation_depth == 0

    def test_geth_vm(self):
        assert chain_params("quorum", TESTNET).vm_name == "geth-evm"


class TestEthereumQuirks:
    def test_clique_block_period_limits_throughput(self):
        # "proof-of-work ... inherently limits its throughput (to the amount
        # of gas allowed per block divided by the block period)" — and the
        # same quotient binds for Clique
        from repro.blockchains.ethereum import BLOCK_GAS_LIMIT, BLOCK_PERIOD
        cap = BLOCK_GAS_LIMIT / 21_000 / BLOCK_PERIOD
        result = run_trace("ethereum", "testnet",
                           constant_transfer_trace(1000, 60),
                           accounts=100, scale=0.05, drain=200)
        assert result.average_throughput <= cap * 1.6
        assert result.average_throughput > 0

    def test_confirmations_for_forkable_poa(self):
        assert chain_params("ethereum", TESTNET).confirmation_depth > 0


class TestAvalancheQuirks:
    def test_paper_block_parameters(self):
        # "Avalanche limits the gas per block to 8M gas and seems to require
        # a period between blocks of at least 1.9 seconds"
        from repro.blockchains.avalanche import BLOCK_GAS_LIMIT, BLOCK_PERIOD
        assert BLOCK_GAS_LIMIT == 8_000_000
        assert BLOCK_PERIOD == 1.9

    def test_ecdsa_not_rsa(self):
        # "we opted for using ECDSA instead" of RSA4096
        from repro.crypto.signing import ECDSA
        assert chain_params("avalanche", TESTNET).signature_scheme is ECDSA

    def test_throughput_is_throttled_regardless_of_hardware(self):
        # §6.2 conjecture: "Avalanche and Ethereum are designed to run at a
        # relatively low throughput regardless of the available
        # computational power"
        small = run_trace("avalanche", "testnet",
                          constant_transfer_trace(1000, 30), **FAST)
        big = run_trace("avalanche", "datacenter",
                        constant_transfer_trace(1000, 30), **FAST)
        assert small.average_throughput == pytest.approx(
            big.average_throughput, rel=0.25)
        assert big.average_throughput < 500
