"""End-to-end integration tests: full DIABLO runs on simulated chains.

These exercise the whole stack — spec -> Primary -> Secondaries ->
blockchain runtime -> VM -> consensus model -> results — at small scale.
"""

from __future__ import annotations

import pytest

from repro.core.runner import run_matrix, run_trace
from repro.workloads import (
    constant_transfer_trace,
    stock_trace,
    uber_trace,
)

FAST = dict(accounts=100, scale=0.05, drain=120)


class TestNativeTransfersAcrossChains:
    @pytest.mark.parametrize("chain", ["algorand", "avalanche", "diem",
                                       "ethereum", "quorum", "solana"])
    def test_every_chain_commits_native_transfers(self, chain):
        result = run_trace(chain, "testnet", constant_transfer_trace(200, 20),
                           **FAST)
        assert result.submitted > 0
        committed = sum(1 for r in result.records if r.committed)
        assert committed > 0, f"{chain} committed nothing"

    def test_fast_chain_beats_slow_chain(self):
        results = run_matrix(["quorum", "ethereum"], "testnet",
                             constant_transfer_trace(500, 30), **FAST)
        assert (results["quorum"].average_throughput
                > 5 * results["ethereum"].average_throughput)


class TestDAppRuns:
    def test_exchange_burst_on_quorum(self):
        result = run_trace("quorum", "testnet", stock_trace("google"),
                           accounts=100, scale=0.2, drain=180)
        assert result.commit_ratio > 0.95
        # supply counters moved on-chain
        primary_unused = result.chain_stats
        assert result.average_throughput > 0

    def test_uber_runs_on_geth_chains_only(self):
        geth = run_trace("quorum", "testnet", uber_trace(), **FAST)
        assert not geth.execution_failed()
        restricted = run_trace("diem", "testnet", uber_trace(), **FAST)
        assert restricted.execution_failed()
        assert restricted.abort_reasons().get("budget_exceeded", 0) > 0

    def test_commit_timestamps_are_causal(self):
        result = run_trace("solana", "testnet",
                           constant_transfer_trace(100, 10), **FAST)
        for record in result.records:
            if record.committed:
                assert record.committed_at > record.submitted_at


class TestLoadShapes:
    def test_burst_workload_queues_then_drains(self):
        result = run_trace("quorum", "testnet", stock_trace("microsoft"),
                           accounts=100, scale=0.05, drain=240)
        # the burst exceeds the instantaneous capacity: early transactions
        # see higher latency than the steady-state tail
        lats = result.latencies()
        assert lats.size > 0
        assert result.commit_ratio > 0.9

    def test_overload_reduces_commit_ratio(self):
        light = run_trace("diem", "testnet", constant_transfer_trace(500, 20),
                          **FAST)
        heavy = run_trace("diem", "testnet",
                          constant_transfer_trace(20_000, 20), **FAST)
        assert heavy.commit_ratio < light.commit_ratio

    def test_time_series_has_signal(self):
        result = run_trace("quorum", "testnet",
                           constant_transfer_trace(400, 20), **FAST)
        _, tput = result.throughput_series()
        assert tput.max() > 0


class TestDeterminism:
    def test_identical_runs_are_identical(self):
        a = run_trace("algorand", "devnet", constant_transfer_trace(300, 15),
                      seed=3, **FAST)
        b = run_trace("algorand", "devnet", constant_transfer_trace(300, 15),
                      seed=3, **FAST)
        # transaction uids are process-global, so compare behaviour:
        # timestamps and outcomes must match one-for-one
        def shape(result):
            return [(r.submitted_at, r.committed_at, r.aborted)
                    for r in result.records]

        assert shape(a) == shape(b)

    def test_different_seeds_differ_somewhere(self):
        a = run_trace("avalanche", "devnet", constant_transfer_trace(300, 15),
                      seed=3, **FAST)
        b = run_trace("avalanche", "devnet", constant_transfer_trace(300, 15),
                      seed=4, **FAST)
        # jitter differs; aggregate behaviour stays close
        assert a.average_throughput == pytest.approx(
            b.average_throughput, rel=0.25)
