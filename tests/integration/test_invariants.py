"""Cross-layer invariants checked through full benchmark runs.

These are the "does the whole machine conserve what it should" checks:
contract state must agree with receipts, the ledger must contain exactly
the transactions that were popped from the pool, and the bookkeeping that
the DIABLO Primary aggregates must be consistent with the chain's own
accounting.
"""

from __future__ import annotations

import pytest

from repro.blockchains.base import ExperimentScale
from repro.blockchains.registry import build_network
from repro.chain.receipt import ExecStatus
from repro.chain.transaction import invoke, transfer
from repro.core.primary import Primary
from repro.sim.engine import Engine
from repro.workloads import stock_trace


def run_network(chain="quorum", config="testnet", scale=0.2, seed=2):
    engine = Engine()
    net = build_network(chain, config, engine,
                        scale=ExperimentScale(scale), seed=seed)
    net.create_accounts(50)
    return engine, net


class TestStateReceiptAgreement:
    def test_exchange_supply_matches_successful_buys(self):
        """Every committed buyApple decrements the supply by exactly one."""
        from repro.contracts import make_exchange_contract
        engine, net = run_network()
        supply = 10_000
        net.deploy_contract(make_exchange_contract(supply=supply))
        accounts = net.accounts.addresses()
        txs = [invoke(accounts[i % 50], "ExchangeContractGafam", "buyApple",
                      gas_limit=100_000) for i in range(400)]
        net.submit_batch(txs)
        engine.run(until=120.0)
        storage = net.state.storage("contract:ExchangeContractGafam")
        successes = sum(
            1 for tx in txs
            if net.receipts.get(tx.uid) is not None
            and net.receipts[tx.uid].status is ExecStatus.SUCCESS)
        assert storage.get("supply:apple") == supply - successes
        assert successes > 0

    def test_counter_equals_committed_adds(self):
        from repro.contracts import make_counter_contract
        engine, net = run_network(chain="solana")
        net.active_until = 60.0
        net.deploy_contract(make_counter_contract())
        accounts = net.accounts.addresses()
        txs = [invoke(accounts[i % 50], "Counter", "add", gas_limit=100_000)
               for i in range(200)]
        net.submit_batch(txs)
        engine.run(until=120.0)
        storage = net.state.storage("contract:Counter")
        executed = sum(1 for tx in txs if tx.uid in net.receipts
                       and net.receipts[tx.uid].ok)
        assert storage.get("count") == executed

    def test_total_balance_is_conserved_by_transfers(self):
        engine, net = run_network()
        accounts = net.accounts.addresses()
        total_before = sum(net.state.balance(a) for a in accounts)
        txs = [transfer(accounts[i % 50], accounts[(i * 3 + 1) % 50], 5,
                        gas_limit=21_000) for i in range(300)]
        net.submit_batch(txs)
        engine.run(until=60.0)
        total_after = sum(net.state.balance(a) for a in accounts)
        assert total_after == total_before


class TestLedgerAccounting:
    def test_ledger_contains_every_non_dropped_transaction(self):
        engine, net = run_network()
        net.active_until = 30.0
        accounts = net.accounts.addresses()
        txs = [transfer(accounts[i % 50], accounts[(i + 1) % 50], 1,
                        gas_limit=21_000) for i in range(250)]
        net.submit_batch(txs)
        engine.run(until=120.0)
        on_chain = {tx.uid for tx in net.ledger.all_transactions()}
        dropped = {tx.uid for tx in net.dropped}
        for tx in txs:
            assert (tx.uid in on_chain) or (tx.uid in dropped) \
                or tx in net.mempool

    def test_no_transaction_is_included_twice(self):
        engine, net = run_network(chain="avalanche")
        net.active_until = 60.0
        accounts = net.accounts.addresses()
        txs = [transfer(accounts[i % 50], accounts[(i + 1) % 50], 1,
                        gas_limit=21_000) for i in range(200)]
        net.submit_batch(txs)
        engine.run(until=180.0)
        uids = [tx.uid for tx in net.ledger.all_transactions()]
        assert len(uids) == len(set(uids))

    def test_block_heights_are_dense(self):
        engine, net = run_network(chain="diem")
        accounts = net.accounts.addresses()
        net.submit_batch([transfer(accounts[0], accounts[1], 1,
                                   gas_limit=21_000) for _ in range(50)])
        engine.run(until=60.0)
        for height in range(net.ledger.height + 1):
            assert net.ledger.block_at(height).height == height

    def test_gas_used_recorded_per_block(self):
        engine, net = run_network()
        accounts = net.accounts.addresses()
        net.submit_batch([transfer(accounts[0], accounts[1], 1,
                                   gas_limit=21_000) for _ in range(30)])
        engine.run(until=60.0)
        total_gas = sum(net.ledger.block_at(h).gas_used
                        for h in range(1, net.ledger.height + 1))
        assert total_gas == 30 * 21_000


class TestPrimaryAccountingConsistency:
    def test_records_match_chain_counters(self):
        primary = Primary("quorum", "testnet", scale=0.2, seed=3)
        trace = stock_trace("google")
        result = primary.run(trace.spec(accounts=200), trace.name, drain=240)
        committed_records = sum(1 for r in result.records if r.committed)
        assert committed_records == len(primary.network.committed)
        aborted_records = sum(1 for r in result.records if r.aborted)
        assert aborted_records == len(primary.network.dropped)

    def test_every_sent_transaction_is_recorded_once(self):
        primary = Primary("algorand", "testnet", scale=0.2, seed=3)
        trace = stock_trace("google")
        result = primary.run(trace.spec(accounts=200), trace.name, drain=240)
        uids = [r.uid for r in result.records]
        assert len(uids) == len(set(uids))
        sent = sum(len(s.sent) for s in primary.secondaries)
        assert len(uids) == sent
