"""repro — a Python reproduction of DIABLO (EuroSys 2023).

DIABLO is a benchmark suite evaluating blockchains with realistic
decentralized applications. This package reimplements the full system as a
deterministic discrete-event simulation: the DIABLO framework itself
(Primary/Secondary load generation, the blockchain abstraction, the
workload specification language), the five DApp workloads, and simulated
versions of the six evaluated blockchains (Algorand, Avalanche, Diem,
Ethereum, Quorum, Solana) down to their consensus protocols, virtual
machines and mempool policies.

Quickstart::

    from repro import run_trace
    from repro.workloads import deployment_challenge_trace

    result = run_trace("quorum", "testnet", deployment_challenge_trace(),
                       scale=0.1, accounts=200)
    print(result.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.blockchains.base import ExperimentScale
from repro.core.population import PopulationSpec
from repro.core.primary import Primary
from repro.core.results import BenchmarkResult
from repro.core.runner import (
    run_benchmark,
    run_matrix,
    run_population,
    run_trace,
)
from repro.core.spec import LoadSchedule, WorkloadSpec, load_spec
from repro.sweep import ResultCache, SweepSpec, load_sweep, run_sweep

__version__ = "1.0.0"

__all__ = [
    "BenchmarkResult",
    "ExperimentScale",
    "LoadSchedule",
    "PopulationSpec",
    "Primary",
    "ResultCache",
    "SweepSpec",
    "WorkloadSpec",
    "__version__",
    "load_spec",
    "load_sweep",
    "run_benchmark",
    "run_matrix",
    "run_population",
    "run_sweep",
    "run_trace",
]
