"""Content-addressed on-disk cache for benchmark results.

A cell's result is fully determined by what went into it: the chain, the
resolved deployment configuration, the parsed workload specification, the
seed, the scale factor, the run options, and the simulator's source code.
The cache key is a SHA-256 over the canonical JSON of exactly those
fields, so

* re-running an unchanged sweep replays every cell from disk, instantly
  and byte-identically;
* whitespace/comment edits to the sweep or workload YAML still hit (the
  hash is over the *parsed* spec, never the text);
* any change to the inputs — a different seed, one more account, an
  edited source file under ``src/repro`` — misses and re-runs.

Layout: ``<cache_dir>/<key[:2]>/<key>.json``, one entry per cell, each a
JSON document carrying the human-readable key fields and the verbatim
``BenchmarkResult`` JSON produced by the run. Entries are written
atomically (temp file + rename), so concurrent sweeps sharing a cache
directory cannot corrupt each other.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.core.spec import WorkloadSpec
from repro.sweep.spec import SweepCell

#: cache format version; bump to orphan every existing entry
CACHE_VERSION = 1


def _canonical(value: Any) -> Any:
    """Reduce dataclass trees / tuples to plain JSON-able structures."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {"__type__": type(value).__name__,
                **{f.name: _canonical(getattr(value, f.name))
                   for f in dataclasses.fields(value)}}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _canonical(val) for key, val in value.items()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def canonical_json(value: Any) -> str:
    """Deterministic JSON serialization of a (nested) dataclass value."""
    return json.dumps(_canonical(value), sort_keys=True, separators=(",", ":"))


def spec_fingerprint(spec: WorkloadSpec) -> str:
    """Hash of a parsed workload specification.

    Two YAML texts that parse to the same :class:`WorkloadSpec` — e.g. a
    whitespace-only edit — produce the same fingerprint.
    """
    digest = hashlib.sha256(canonical_json(spec).encode())
    return digest.hexdigest()


def code_version() -> str:
    """Fingerprint of the simulator's source tree.

    Hashes every ``*.py`` file under ``src/repro`` (path + contents, in
    sorted order) so editing any simulator source invalidates cached
    results. Override with ``REPRO_CODE_VERSION`` to pin a version string
    (tests use this to exercise invalidation without editing files).
    """
    override = os.environ.get("REPRO_CODE_VERSION")
    if override:
        return override
    return _source_tree_version()


@lru_cache(maxsize=1)
def _source_tree_version() -> str:
    root = Path(__file__).resolve().parents[1]
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()[:16]


def cell_key_fields(cell: SweepCell) -> Dict[str, Any]:
    """The named inputs a cell's cache key is derived from.

    Population cells hash the *population* spec (users, cohort, per-user
    rate profile) plus the explicit ``population`` axis value and the
    population options; classic cells keep exactly their original field
    set, so existing cache entries stay valid.
    """
    if cell.population is not None:
        spec = cell.trace.population_spec(
            cell.population, rate_per_user=cell.options.rate_per_user,
            accounts=cell.options.accounts, cohort=cell.options.cohort)
    else:
        spec = cell.trace.spec(accounts=cell.options.accounts,
                               clients=cell.options.clients)
    options = {
        "drain": cell.options.drain,
        "max_sim_seconds": cell.options.max_sim_seconds,
        "watchdog_window": cell.options.watchdog_window,
        "observe": _canonical(cell.options.observe),
    }
    fields = {
        "cache_version": CACHE_VERSION,
        "chain": cell.chain,
        "deployment": _canonical(cell.configuration),
        "workload": cell.workload,
        "spec_hash": spec_fingerprint(spec),
        "seed": cell.seed,
        "scale": cell.scale,
        "options": options,
        "code_version": code_version(),
    }
    if cell.population is not None:
        fields["population"] = cell.population
        options["cohort"] = cell.options.cohort
        options["rate_per_user"] = cell.options.rate_per_user
    return fields


def cell_key(cell: SweepCell) -> str:
    """The content-addressed cache key of a cell."""
    payload = json.dumps(cell_key_fields(cell), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """On-disk store mapping cell keys to verbatim result JSON."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory).expanduser()

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[str]:
        """The cached result JSON for *key*, or None on a miss.

        An unreadable/corrupt entry counts as a miss (it will be
        overwritten by the re-run), never an error.
        """
        path = self._path(key)
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        result = entry.get("result_json")
        return result if isinstance(result, str) else None

    def put(self, key: str, fields: Dict[str, Any], result_json: str) -> None:
        """Store *result_json* under *key*, atomically."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = json.dumps({
            "key": key,
            "fields": fields,
            "result_json": result_json,
        }, indent=1)
        descriptor, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp")
        try:
            with os.fdopen(descriptor, "w") as handle:
                handle.write(entry)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def contains(self, key: str) -> bool:
        return self._path(key).is_file()

    def entries(self) -> int:
        """Number of cached results on disk."""
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("??/*.json"))
