"""Parallel sweep execution with per-cell failure isolation.

Each cell runs one :func:`repro.core.runner.run_trace` — or, on the
``populations`` axis, one :func:`repro.core.runner.run_benchmark` over
the trace's population spec (see docs/SCALE.md) — in its own process
(``--workers N``) or inline (``--workers 1``); either way a cell is an
independent simulation with its own engine and seed, so the per-cell
``BenchmarkResult`` JSON is byte-identical regardless of worker count. A crashed cell — an exception anywhere in the stack — or a
watchdog-failed run is captured as a typed :class:`CellFailure`; it never
takes the sweep down with it.

Cache discipline: the parent process resolves hits before dispatching
(hits are instant replays, no worker involved) and writes misses back
after they complete, so workers never touch the cache directory.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.results import BenchmarkResult
from repro.core.runner import run_benchmark, run_trace
from repro.obs import MetricsRegistry
from repro.sweep.cache import ResultCache, cell_key, cell_key_fields
from repro.sweep.spec import SweepCell, SweepSpec

#: progress-event kinds, in lifecycle order
EVENT_KINDS = ("queued", "running", "done", "failed")


@dataclass(frozen=True)
class CellFailure:
    """Why a cell did not produce a clean result.

    ``kind`` is ``"crash"`` (an exception escaped the run — the traceback
    is preserved) or ``"watchdog"`` (the run completed but the liveness
    watchdog / deadline marked it ``failed``; the failed run's result
    JSON is still available on the outcome).
    """

    kind: str
    error_type: str
    message: str
    traceback_text: str = ""

    def __str__(self) -> str:
        return f"{self.error_type}: {self.message}"


@dataclass
class CellOutcome:
    """What happened to one cell of the sweep."""

    cell: SweepCell
    status: str                       # "done" | "failed"
    cached: bool
    wall_seconds: float
    result_json: Optional[str] = None
    failure: Optional[CellFailure] = None
    _result: Optional[BenchmarkResult] = field(
        default=None, repr=False, compare=False)

    @property
    def result(self) -> Optional[BenchmarkResult]:
        """The parsed result (lazily deserialized), if the run produced one."""
        if self._result is None and self.result_json is not None:
            self._result = BenchmarkResult.from_json(self.result_json)
        return self._result


@dataclass(frozen=True)
class CellEvent:
    """One progress notification streamed while a sweep executes."""

    kind: str                         # queued | running | done | failed
    cell: SweepCell
    cached: Optional[bool] = None
    wall_seconds: Optional[float] = None
    detail: str = ""


ProgressCallback = Callable[[CellEvent], None]


@dataclass
class SweepResult:
    """Every cell outcome, in deterministic cell order, plus sweep metrics."""

    spec: SweepSpec
    outcomes: List[CellOutcome]
    wall_seconds: float
    workers: int
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def cache_misses(self) -> int:
        return len(self.outcomes) - self.cache_hits

    @property
    def failures(self) -> List[CellOutcome]:
        return [o for o in self.outcomes if o.status == "failed"]

    def results(self) -> Dict[str, BenchmarkResult]:
        """Label → result for every cell that produced one."""
        return {o.cell.label: o.result for o in self.outcomes
                if o.result_json is not None}

    def summary_line(self) -> str:
        """The one-line verdict the CLI (and CI) key off."""
        done = sum(1 for o in self.outcomes if o.status == "done")
        return (f"cells: {len(self.outcomes)}  done: {done}"
                f"  failed: {len(self.failures)}"
                f"  cache: {self.cache_hits} hits, {self.cache_misses} misses"
                f"  wall: {self.wall_seconds:.1f}s"
                f"  workers: {self.workers}")


def _execute_cell(cell: SweepCell) -> Tuple[int, Optional[str],
                                            Optional[CellFailure], float]:
    """Run one cell; never raises. Returns (index, json, failure, wall)."""
    start = time.perf_counter()
    options = cell.options
    try:
        if cell.population is not None:
            spec = cell.trace.population_spec(
                cell.population, rate_per_user=options.rate_per_user,
                accounts=options.accounts, cohort=options.cohort)
            result = run_benchmark(
                cell.chain, cell.configuration, spec,
                workload_name=f"{cell.trace.name}-pop{cell.population}",
                scale=cell.scale, seed=cell.seed, drain=options.drain,
                max_sim_seconds=options.max_sim_seconds,
                watchdog_window=options.watchdog_window,
                observe=options.observe)
        else:
            result = run_trace(
                cell.chain, cell.configuration, cell.trace,
                accounts=options.accounts, clients=options.clients,
                scale=cell.scale, seed=cell.seed, drain=options.drain,
                max_sim_seconds=options.max_sim_seconds,
                watchdog_window=options.watchdog_window,
                observe=options.observe)
    except Exception as exc:  # noqa: BLE001 — isolation is the whole point
        failure = CellFailure(
            kind="crash",
            error_type=type(exc).__name__,
            message=str(exc),
            traceback_text=traceback.format_exc())
        return cell.index, None, failure, time.perf_counter() - start
    wall = time.perf_counter() - start
    result_json = result.to_json()
    if result.status == "failed":
        failure = CellFailure(
            kind="watchdog",
            error_type="RunFailed",
            message=(f"run marked failed (liveness watchdog / deadline);"
                     f" commit_ratio={result.commit_ratio:.4f}"))
        return cell.index, result_json, failure, wall
    return cell.index, result_json, None, wall


def run_sweep(spec: SweepSpec, workers: int = 1,
              cache: Optional[ResultCache] = None,
              progress: Optional[ProgressCallback] = None) -> SweepResult:
    """Execute every cell of *spec*, streaming progress events.

    * ``workers=1`` runs cells inline, in cell order.
    * ``workers>1`` fans misses out over a ``multiprocessing`` pool; cells
      complete in any order but the returned outcomes are always in cell
      order, and each cell's result JSON is byte-identical to a
      single-worker run.
    * With a *cache*, cells whose key is already on disk are replayed
      instantly; fresh results (including watchdog-failed ones, which are
      deterministic outcomes) are written back. Crashed cells are never
      cached.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    start = time.perf_counter()
    cells = spec.cells()
    registry = MetricsRegistry()
    sweep_metrics = registry.namespace("sweep")
    sweep_metrics.gauge("workers").set(workers)
    cells_counter = sweep_metrics.counter("cells")
    hits_counter = sweep_metrics.counter("cache.hits")
    misses_counter = sweep_metrics.counter("cache.misses")
    failures_counter = sweep_metrics.counter("failures")
    cell_wall = sweep_metrics.histogram("cell_wall_seconds")

    def emit(event: CellEvent) -> None:
        if progress is not None:
            progress(event)

    for cell in cells:
        emit(CellEvent("queued", cell))

    outcomes: Dict[int, CellOutcome] = {}
    pending: List[SweepCell] = []
    keys: Dict[int, str] = {}
    for cell in cells:
        cells_counter.inc()
        if cache is not None:
            key = cell_key(cell)
            keys[cell.index] = key
            cached_json = cache.get(key)
            if cached_json is not None:
                hits_counter.inc()
                result = BenchmarkResult.from_json(cached_json)
                status = "failed" if result.status == "failed" else "done"
                failure = None
                if status == "failed":
                    failures_counter.inc()
                    failure = CellFailure(
                        kind="watchdog", error_type="RunFailed",
                        message="cached run was marked failed")
                outcomes[cell.index] = CellOutcome(
                    cell=cell, status=status, cached=True, wall_seconds=0.0,
                    result_json=cached_json, failure=failure, _result=result)
                emit(CellEvent(status, cell, cached=True, wall_seconds=0.0,
                               detail="cache hit"))
                continue
            misses_counter.inc()
        pending.append(cell)

    def finish(index: int, result_json: Optional[str],
               failure: Optional[CellFailure], wall: float) -> None:
        cell = cells[index]
        cell_wall.observe(wall)
        status = "done" if failure is None else "failed"
        if failure is not None:
            failures_counter.inc()
        if (cache is not None and result_json is not None):
            cache.put(keys[index], cell_key_fields(cell), result_json)
        outcomes[index] = CellOutcome(
            cell=cell, status=status, cached=False, wall_seconds=wall,
            result_json=result_json, failure=failure)
        detail = "cache miss" if cache is not None else ""
        if failure is not None:
            detail = (detail + "; " if detail else "") + str(failure)
        emit(CellEvent(status, cell, cached=False, wall_seconds=wall,
                       detail=detail))

    if workers == 1 or len(pending) <= 1:
        for cell in pending:
            emit(CellEvent("running", cell))
            finish(*_execute_cell(cell))
    else:
        pool_size = min(workers, len(pending))
        with multiprocessing.Pool(processes=pool_size) as pool:
            for completed in pool.imap_unordered(_execute_cell, pending):
                finish(*completed)

    ordered = [outcomes[i] for i in range(len(cells))]
    return SweepResult(
        spec=spec,
        outcomes=ordered,
        wall_seconds=time.perf_counter() - start,
        workers=workers,
        metrics=dict(registry.sample()))
