"""Declarative sweep specifications.

A *sweep* is the paper's experiment matrix as data: the cartesian product
of chains × deployment configurations × workload traces × seeds × scale
factors, plus the run options every cell shares. The YAML form::

    sweep:
      chains: [algorand, quorum]
      configurations: [testnet, datacenter]
      workloads: [native-1000, dapp-exchange]
      seeds: [1, 2]
      scales: [0.05]
    options:
      accounts: 2000
      clients: 1
      drain: 240
      watchdog_window: 30

An optional ``populations`` axis turns each workload into a population
run at each listed user count (see docs/SCALE.md): the trace's schedule
becomes the shape of a per-user rate profile whose mean is
``options.rate_per_user``, so offered load grows linearly along the axis
— the knee-finding sweep. ``populations: [null]`` (the default) keeps
the classic client path::

    sweep:
      chains: [ethereum, solana]
      configurations: [testnet]
      workloads: [native-1000]
      populations: [10000, 100000, 1000000]
    options:
      rate_per_user: 0.001
      cohort: 1000

Workload names come from :func:`repro.workloads.workload_registry` (the
same vocabulary as ``python -m repro suite --workload``); programmatic
sweeps may pass :class:`~repro.workloads.traces.Trace` objects directly.

Cell expansion is deterministic: cells are numbered by nesting
chains → configurations → workloads → seeds → scales in the order the
spec lists them, and that numbering is independent of how many workers
later execute the sweep.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

import yaml

from repro.blockchains.base import default_scale
from repro.blockchains.registry import CHAIN_NAMES
from repro.common.errors import SpecError
from repro.core.primary import DEFAULT_DRAIN
from repro.core.watchdog import DEFAULT_WINDOW
from repro.obs import ObservabilityOptions
from repro.sim.deployment import CONFIGURATIONS, DeploymentConfig, get_configuration
from repro.workloads import workload_registry
from repro.workloads.traces import Trace


@dataclass(frozen=True)
class CellOptions:
    """Run options shared by every cell of a sweep.

    These mirror the keyword arguments of
    :func:`repro.core.runner.run_trace`; anything that changes the
    benchmark outcome belongs here so it can take part in the cache key.
    """

    accounts: int = 2_000
    clients: int = 1
    drain: float = DEFAULT_DRAIN
    max_sim_seconds: Optional[float] = None
    watchdog_window: float = DEFAULT_WINDOW
    observe: Optional[ObservabilityOptions] = None
    #: population-axis knobs (only read by cells with a population):
    #: tracked-cohort size (None = the population default) and the mean
    #: per-user rate the trace shape is normalized to
    cohort: Optional[int] = None
    rate_per_user: float = 0.001

    def __post_init__(self) -> None:
        if self.accounts <= 0:
            raise SpecError("options.accounts must be positive")
        if self.clients <= 0:
            raise SpecError("options.clients must be positive")
        if self.drain < 0:
            raise SpecError("options.drain cannot be negative")
        if self.cohort is not None and self.cohort <= 0:
            raise SpecError("options.cohort must be positive")
        if self.rate_per_user <= 0:
            raise SpecError("options.rate_per_user must be positive")


@dataclass(frozen=True)
class SweepCell:
    """One (chain, deployment, trace, seed, scale[, population]) cell.

    ``population`` is ``None`` on the classic client path; a user count
    makes the cell a population run (the trace shape normalized to
    ``options.rate_per_user`` per user — see ``Trace.population_spec``).
    """

    index: int
    chain: str
    configuration: DeploymentConfig
    workload: str
    trace: Trace
    seed: int
    scale: float
    options: CellOptions
    population: Optional[int] = None

    @property
    def label(self) -> str:
        label = (f"{self.chain}/{self.configuration.name}/{self.workload}"
                 f" seed={self.seed} scale={self.scale:g}")
        if self.population is not None:
            label += f" pop={self.population}"
        return label


@dataclass(frozen=True)
class SweepSpec:
    """The full experiment matrix, pre-expansion."""

    chains: Tuple[str, ...]
    configurations: Tuple[Union[str, DeploymentConfig], ...]
    workloads: Tuple[Union[str, Trace], ...]
    seeds: Tuple[int, ...] = (0,)
    scales: Tuple[Optional[float], ...] = (None,)
    populations: Tuple[Optional[int], ...] = (None,)
    options: CellOptions = field(default_factory=CellOptions)

    def __post_init__(self) -> None:
        for chain in self.chains:
            if chain not in CHAIN_NAMES:
                raise SpecError(f"unknown chain {chain!r}"
                                f" (have: {', '.join(CHAIN_NAMES)})")
        for configuration in self.configurations:
            if (isinstance(configuration, str)
                    and configuration not in CONFIGURATIONS):
                raise SpecError(
                    f"unknown configuration {configuration!r}"
                    f" (have: {', '.join(sorted(CONFIGURATIONS))})")
        registry = None
        for workload in self.workloads:
            if isinstance(workload, str):
                registry = workload_registry() if registry is None else registry
                if workload not in registry:
                    raise SpecError(
                        f"unknown workload {workload!r}"
                        f" (have: {', '.join(sorted(registry))})")
        for seed in self.seeds:
            if not isinstance(seed, int):
                raise SpecError(f"seeds must be integers, got {seed!r}")
        for scale in self.scales:
            if scale is not None and scale <= 0:
                raise SpecError(f"scales must be positive, got {scale}")
        for population in self.populations:
            if population is not None and population <= 0:
                raise SpecError(
                    f"populations must be positive, got {population}")

    def cells(self) -> List[SweepCell]:
        """Expand the matrix into its deterministic cell ordering.

        ``None`` scales resolve to the process default
        (:func:`repro.blockchains.base.default_scale`) at expansion time so
        every cell — and hence every cache key — carries a concrete factor.
        """
        registry = (workload_registry()
                    if any(isinstance(w, str) for w in self.workloads)
                    else {})
        cells: List[SweepCell] = []
        product = itertools.product(self.chains, self.configurations,
                                    self.workloads, self.seeds, self.scales,
                                    self.populations)
        for index, (chain, configuration, workload, seed, scale,
                    population) in enumerate(product):
            if isinstance(configuration, str):
                configuration = get_configuration(configuration)
            if isinstance(workload, str):
                name, trace = workload, registry[workload]
            else:
                name, trace = workload.name, workload
            cells.append(SweepCell(
                index=index,
                chain=chain,
                configuration=configuration,
                workload=name,
                trace=trace,
                seed=seed,
                scale=default_scale() if scale is None else float(scale),
                options=self.options,
                population=(None if population is None
                            else int(population))))
        return cells

    def shape(self) -> str:
        """Human-readable matrix dimensions, e.g. ``2x1x1x2x1 = 4 cells``."""
        dims = [len(self.chains), len(self.configurations),
                len(self.workloads), len(self.seeds), len(self.scales)]
        if self.populations != (None,):
            dims.append(len(self.populations))
        total = 1
        for dim in dims:
            total *= dim
        return f"{'x'.join(str(d) for d in dims)} = {total} cells"


def _string_tuple(document: Dict[str, Any], key: str,
                  required: bool = True,
                  default: Tuple = ()) -> Tuple:
    value = document.get(key)
    if value is None:
        if required:
            raise SpecError(f"sweep needs a '{key}' list")
        return default
    if isinstance(value, (str, int, float)):
        value = [value]
    if not isinstance(value, (list, tuple)) or not value:
        raise SpecError(f"sweep '{key}' must be a non-empty list")
    return tuple(value)


def sweep_from_dict(document: Dict[str, Any]) -> SweepSpec:
    """Build a SweepSpec from a parsed sweep document."""
    if not isinstance(document, dict) or "sweep" not in document:
        raise SpecError("a sweep specification needs a top-level"
                        " 'sweep' mapping")
    matrix = document["sweep"]
    if not isinstance(matrix, dict):
        raise SpecError("'sweep' must be a mapping")
    unknown = set(matrix) - {"chains", "configurations", "workloads",
                             "seeds", "scales", "populations"}
    if unknown:
        raise SpecError(f"unknown sweep keys: {', '.join(sorted(unknown))}")
    raw_options = document.get("options", {})
    if not isinstance(raw_options, dict):
        raise SpecError("'options' must be a mapping")
    known_options = {"accounts", "clients", "drain", "max_sim_seconds",
                     "watchdog_window", "cohort", "rate_per_user"}
    unknown = set(raw_options) - known_options
    if unknown:
        raise SpecError(f"unknown option keys: {', '.join(sorted(unknown))}")
    try:
        options = CellOptions(**raw_options)
    except TypeError as exc:
        raise SpecError(f"bad sweep options: {exc}") from None
    seeds = tuple(int(s) for s in _string_tuple(
        matrix, "seeds", required=False, default=(0,)))
    scales = tuple(None if s is None else float(s) for s in _string_tuple(
        matrix, "scales", required=False, default=(None,)))
    populations = tuple(None if p is None else int(p) for p in _string_tuple(
        matrix, "populations", required=False, default=(None,)))
    return SweepSpec(
        chains=tuple(str(c) for c in _string_tuple(matrix, "chains")),
        configurations=tuple(str(c) for c in _string_tuple(
            matrix, "configurations")),
        workloads=tuple(str(w) for w in _string_tuple(matrix, "workloads")),
        seeds=seeds,
        scales=scales,
        populations=populations,
        options=options)


def load_sweep(text: str) -> SweepSpec:
    """Parse a YAML sweep specification.

    The hash that keys the result cache is computed over the *parsed*
    spec (see :mod:`repro.sweep.cache`), so edits that do not change the
    parsed document — whitespace, comments, key order — do not invalidate
    cached cells.
    """
    document = yaml.safe_load(text)
    if document is None:
        raise SpecError("empty sweep specification")
    return sweep_from_dict(document)
