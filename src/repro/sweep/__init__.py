"""Parallel sweep orchestration with result caching.

The paper's evaluation is a *matrix* — 6 blockchains × 5 deployment
configurations × 5 DApp traces — and this package executes such matrices
the way BLOCKBENCH and Gromit argue a benchmark harness must: scaled-out
and incremental. A :class:`SweepSpec` declares the cells, a
``multiprocessing`` pool executes them with per-cell failure isolation
(:class:`CellFailure`), and a content-addressed :class:`ResultCache`
replays unchanged cells instantly.

Quickstart::

    from repro.sweep import SweepSpec, ResultCache, run_sweep

    spec = SweepSpec(chains=("quorum", "solana"),
                     configurations=("testnet",),
                     workloads=("native-1000",),
                     scales=(0.05,))
    sweep = run_sweep(spec, workers=4,
                      cache=ResultCache("~/.cache/repro-sweeps"))
    for outcome in sweep.outcomes:
        print(outcome.cell.label, outcome.status, outcome.result.summary())

Or from YAML via the CLI: ``python -m repro sweep spec.yaml --workers 4``.
See docs/SWEEPS.md for the spec dialect and cache invalidation rules.
"""

from repro.sweep.cache import (
    CACHE_VERSION,
    ResultCache,
    cell_key,
    cell_key_fields,
    code_version,
    spec_fingerprint,
)
from repro.sweep.runner import (
    CellEvent,
    CellFailure,
    CellOutcome,
    SweepResult,
    run_sweep,
)
from repro.sweep.spec import (
    CellOptions,
    SweepCell,
    SweepSpec,
    load_sweep,
    sweep_from_dict,
)

__all__ = [
    "CACHE_VERSION",
    "CellEvent",
    "CellFailure",
    "CellOptions",
    "CellOutcome",
    "ResultCache",
    "SweepCell",
    "SweepResult",
    "SweepSpec",
    "cell_key",
    "cell_key_fields",
    "code_version",
    "load_sweep",
    "run_sweep",
    "spec_fingerprint",
    "sweep_from_dict",
]
