"""Human-readable output for ``python -m repro bench``.

Two renderers: the run summary (one row per scenario of the freshly
recorded payload) and the comparison table (markdown, one row per
scenario x metric, with the noise-aware verdict column) — the latter is
what lands in PR descriptions as the before/after evidence.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.bench.compare import (
    VERDICT_CHANGED,
    VERDICT_IMPROVED,
    VERDICT_OK,
    VERDICT_REGRESSED,
    BenchComparison,
)

_UNITS = {
    "wall_seconds": "s",
    "events_per_second": "ev/s",
    "wall_per_sim_second": "s/sim-s",
    "peak_rss_bytes": "B",
}


def _fmt(metric: str, value: Any) -> str:
    if value is None:
        return "-"
    if metric == "peak_rss_bytes":
        return f"{value / (1 << 20):.1f} MiB"
    if metric == "events_per_second":
        return f"{value:,.0f}"
    return f"{value:.4g}"


def bench_summary(payload: Dict[str, Any]) -> str:
    """Per-scenario summary of one recorded bench payload."""
    from repro.obs.report import format_table

    rows: List[Dict[str, Any]] = []
    for name, scenario in sorted(payload["scenarios"].items()):
        timed = scenario["timed"]
        top = ""
        if scenario.get("subsystems"):
            hottest = max(scenario["subsystems"].items(),
                          key=lambda item: item[1])
            top = f"{hottest[0]} {hottest[1]:.0%}"
        rows.append({
            "scenario": name,
            "wall_s": _fmt("wall_seconds", timed["wall_seconds"]),
            "events_per_s": _fmt("events_per_second",
                                 timed["events_per_second"]),
            "wall_per_sim_s": _fmt("wall_per_sim_second",
                                   timed["wall_per_sim_second"]),
            "peak_rss": _fmt("peak_rss_bytes", timed["peak_rss_bytes"]),
            "hottest": top or "-",
        })
    header = (f"bench {payload['date']} — suite={payload['suite']}"
              f" repeats={payload['repeats']}"
              + (f" — {payload['label']}" if payload.get("label") else ""))
    return header + "\n\n" + format_table(rows)


_VERDICT_MARK = {
    VERDICT_OK: "·",
    VERDICT_IMPROVED: "✓ improved",
    VERDICT_REGRESSED: "✗ REGRESSED",
    VERDICT_CHANGED: "! changed",
}


def comparison_table(comparison: BenchComparison,
                     only_interesting: bool = False) -> str:
    """Markdown comparison table: scenario x metric with verdicts.

    ``only_interesting`` drops rows whose verdict is plain noise-level
    ``ok``, keeping the table reviewable for large suites.
    """
    lines = [
        f"| scenario | metric | {comparison.baseline_date} (base) |"
        f" {comparison.current_date} | delta | verdict |",
        "|---|---|---|---|---|---|",
    ]
    for scenario in comparison.scenarios:
        for metric in scenario.metrics:
            if only_interesting and metric.verdict == VERDICT_OK:
                continue
            delta = ("-" if metric.delta is None
                     else f"{metric.delta:+.1%}")
            lines.append(
                f"| {scenario.name} | {metric.metric}"
                f" | {_fmt(metric.metric, metric.baseline)}"
                f" | {_fmt(metric.metric, metric.current)}"
                f" | {delta} | {_VERDICT_MARK[metric.verdict]} |")
        if scenario.counted_verdict == VERDICT_CHANGED:
            changed = ", ".join(scenario.counted_changes)
            lines.append(
                f"| {scenario.name} | counted | | | {changed}"
                f" | {_VERDICT_MARK[VERDICT_CHANGED]} |")
    return "\n".join(lines)


def comparison_report(comparison: BenchComparison,
                      strict_counted: bool = False) -> str:
    """Table plus the one-line verdict (the CLI's stdout)."""
    lines = [comparison_table(comparison)]
    if comparison.new_scenarios:
        lines.append("")
        lines.append("new scenarios (no baseline): "
                     + ", ".join(comparison.new_scenarios))
    if comparison.removed_scenarios:
        lines.append("")
        lines.append("removed scenarios (baseline only): "
                     + ", ".join(comparison.removed_scenarios))
    verdict = comparison.verdict(strict_counted)
    regressed = [s.name for s in comparison.regressions]
    improved = [s.name for s in comparison.improvements]
    changed = [s.name for s in comparison.counted_changes]
    lines.append("")
    summary = [f"verdict: {verdict}"]
    if regressed:
        summary.append(f"regressed: {', '.join(regressed)}")
    if improved:
        summary.append(f"improved: {', '.join(improved)}")
    if changed:
        summary.append(f"counted changed: {', '.join(changed)}")
    lines.append("; ".join(summary))
    return "\n".join(lines)
