"""Noise-aware comparison of two bench payloads.

Timed metrics are machine-dependent and jittery, so each comparison
carries a per-metric relative threshold: a change within the threshold
is ``ok`` (noise), beyond it is ``regressed`` or ``improved`` depending
on the metric's direction (throughput up is good, wall-clock and RSS up
are bad). Counted metrics are exactly deterministic, so *any* change is
flagged (``changed``) — it means behaviour, not performance, moved;
whether that fails the build is the caller's choice (``strict_counted``
in CI, where the same code runs twice and must agree exactly).

Scenario-set drift is reported, not failed: a scenario present only in
the current run is ``new`` (the suite grew), one present only in the
baseline is ``removed`` — neither produces a fake delta.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: metric name -> (relative threshold, direction); direction +1 means
#: "bigger is better" (events/sec), -1 means "bigger is worse"
DEFAULT_THRESHOLDS: Dict[str, Tuple[float, int]] = {
    "events_per_second": (0.20, +1),
    "wall_seconds": (0.20, -1),
    "wall_per_sim_second": (0.20, -1),
    "peak_rss_bytes": (0.30, -1),
}

VERDICT_OK = "ok"
VERDICT_IMPROVED = "improved"
VERDICT_REGRESSED = "regressed"
VERDICT_CHANGED = "changed"


@dataclass(frozen=True)
class MetricDelta:
    """One timed metric compared across two bench points."""

    metric: str
    baseline: Optional[float]
    current: Optional[float]
    delta: Optional[float]  # relative change, None when incomparable
    verdict: str


@dataclass(frozen=True)
class ScenarioDelta:
    """One scenario's full comparison."""

    name: str
    metrics: Tuple[MetricDelta, ...]
    counted_verdict: str
    counted_changes: Tuple[str, ...] = ()

    @property
    def regressed(self) -> bool:
        return any(m.verdict == VERDICT_REGRESSED for m in self.metrics)

    @property
    def improved(self) -> bool:
        return any(m.verdict == VERDICT_IMPROVED for m in self.metrics)


@dataclass
class BenchComparison:
    """The comparison of a current bench payload against a baseline."""

    baseline_date: str
    current_date: str
    scenarios: List[ScenarioDelta] = field(default_factory=list)
    new_scenarios: List[str] = field(default_factory=list)
    removed_scenarios: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[ScenarioDelta]:
        return [s for s in self.scenarios if s.regressed]

    @property
    def improvements(self) -> List[ScenarioDelta]:
        return [s for s in self.scenarios if s.improved]

    @property
    def counted_changes(self) -> List[ScenarioDelta]:
        return [s for s in self.scenarios
                if s.counted_verdict == VERDICT_CHANGED]

    def verdict(self, strict_counted: bool = False) -> str:
        """Overall verdict: ``regressed`` trumps ``improved`` trumps ok."""
        if self.regressions:
            return VERDICT_REGRESSED
        if strict_counted and self.counted_changes:
            return VERDICT_CHANGED
        if self.improvements:
            return VERDICT_IMPROVED
        return VERDICT_OK

    def exit_code(self, strict_counted: bool = False) -> int:
        return 0 if self.verdict(strict_counted) in (VERDICT_OK,
                                                     VERDICT_IMPROVED) else 1


def _compare_metric(metric: str, baseline: Optional[float],
                    current: Optional[float],
                    threshold: float, direction: int) -> MetricDelta:
    if baseline is None or current is None or baseline == 0:
        return MetricDelta(metric, baseline, current, None, VERDICT_OK)
    delta = (current - baseline) / baseline
    # positive score = better, negative = worse, in units of "relative
    # change in the good direction"
    score = delta * direction
    if score < -threshold:
        verdict = VERDICT_REGRESSED
    elif score > threshold:
        verdict = VERDICT_IMPROVED
    else:
        verdict = VERDICT_OK
    return MetricDelta(metric, baseline, current, delta, verdict)


def compare_scenario(name: str, baseline: Dict[str, Any],
                     current: Dict[str, Any],
                     thresholds: Optional[Dict[str, Tuple[float, int]]] = None
                     ) -> ScenarioDelta:
    thresholds = thresholds or DEFAULT_THRESHOLDS
    metrics = []
    for metric, (threshold, direction) in thresholds.items():
        metrics.append(_compare_metric(
            metric,
            baseline.get("timed", {}).get(metric),
            current.get("timed", {}).get(metric),
            threshold, direction))
    base_counted = baseline.get("counted", {})
    cur_counted = current.get("counted", {})
    changed = tuple(sorted(
        key for key in set(base_counted) | set(cur_counted)
        if base_counted.get(key) != cur_counted.get(key)))
    return ScenarioDelta(
        name=name,
        metrics=tuple(metrics),
        counted_verdict=VERDICT_CHANGED if changed else VERDICT_OK,
        counted_changes=changed)


def compare_benches(baseline: Dict[str, Any], current: Dict[str, Any],
                    thresholds: Optional[Dict[str, Tuple[float, int]]] = None
                    ) -> BenchComparison:
    """Compare two loaded bench payloads scenario by scenario."""
    base_scenarios = baseline.get("scenarios", {})
    cur_scenarios = current.get("scenarios", {})
    comparison = BenchComparison(
        baseline_date=str(baseline.get("date", "?")),
        current_date=str(current.get("date", "?")),
        new_scenarios=sorted(set(cur_scenarios) - set(base_scenarios)),
        removed_scenarios=sorted(set(base_scenarios) - set(cur_scenarios)))
    for name in sorted(set(base_scenarios) & set(cur_scenarios)):
        comparison.scenarios.append(compare_scenario(
            name, base_scenarios[name], cur_scenarios[name], thresholds))
    return comparison


def thresholds_scaled(factor: float) -> Dict[str, Tuple[float, int]]:
    """The default thresholds with every tolerance multiplied by *factor*.

    The CI gate widens tolerances on shared runners (``--threshold-scale
    2``) without touching the per-metric structure.
    """
    if factor <= 0:
        raise ValueError(f"threshold scale must be positive, got {factor}")
    return {metric: (threshold * factor, direction)
            for metric, (threshold, direction) in DEFAULT_THRESHOLDS.items()}
