"""The pinned performance scenario suite.

Two scenario kinds:

* **chain** cells run a full benchmark (Primary + Secondaries + chain
  runtime) with pinned workload knobs — one *small* and one *medium*
  cell per registered chain, so a hot-path change shows up per chain
  and per load level;
* **micro** cells exercise one subsystem in isolation (the event
  calendar, the network broadcast path, the mempool) so an engine
  optimization is measurable without the noise of a whole benchmark.

The suite is *pinned*: scenario parameters are part of the measurement
contract, and changing them invalidates comparison against older
``BENCH_*.json`` files (the compare step flags the scenario as
new/removed rather than producing a bogus delta).

``full`` is what a dated trajectory point records; ``mini`` is the CI
regression gate (micros + two chain cells, small enough to run twice
per build).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.common.errors import ConfigurationError

#: chains in the pinned suite, in run order (the registry's six)
SUITE_CHAINS = ("algorand", "avalanche", "diem", "ethereum", "quorum",
                "solana")


@dataclass(frozen=True)
class Scenario:
    """One pinned cell of the bench suite."""

    name: str
    kind: str  # "chain" | "micro"
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in ("chain", "micro"):
            raise ConfigurationError(f"bad scenario kind {self.kind!r}")

    def describe(self) -> Dict[str, Any]:
        """The ``params`` block recorded in the bench file."""
        return dict(sorted(self.params.items()))


def _chain_cell(chain: str, size: str, *, rate: float, duration: float,
                scale: float) -> Scenario:
    return Scenario(
        name=f"chain-{chain}-{size}",
        kind="chain",
        params={
            "chain": chain,
            "configuration": "testnet",
            "rate_tps": rate,
            "duration_s": duration,
            "scale": scale,
            "accounts": 2_000,
            "seed": 1,
        })


def _micro(name: str, **params: Any) -> Scenario:
    return Scenario(name=f"micro-{name}", kind="micro",
                    params={"micro": name, **params})


#: micro knobs are pinned here (suite identity), consumed by the runner
MICROS: Tuple[Scenario, ...] = (
    _micro("engine-calendar", chains=200, depth=1_000),
    _micro("engine-broadcast", endpoints=40, rounds=600),
    _micro("mempool-churn", transactions=40_000, capacity=5_000,
           batch=500),
    _micro("client-emission", chain="ethereum", rate_tps=2_000.0,
           duration_s=15.0, accounts=2_000, scale=1.0, seed=1),
    _micro("population", chain="ethereum", users=1_000_000, cohort=256,
           rate_per_user=0.002, duration_s=15.0, accounts=2_000,
           scale=1.0, seed=1, arrival="poisson"),
)

_SMALL = [_chain_cell(chain, "small", rate=500.0, duration=60.0, scale=0.5)
          for chain in SUITE_CHAINS]
_MEDIUM = [_chain_cell(chain, "medium", rate=1_000.0, duration=60.0,
                       scale=1.0) for chain in SUITE_CHAINS]

SUITES: Dict[str, Tuple[Scenario, ...]] = {
    "full": tuple(MICROS) + tuple(_SMALL) + tuple(_MEDIUM),
    "mini": tuple(MICROS) + (
        _chain_cell("quorum", "small", rate=500.0, duration=60.0, scale=0.5),
        _chain_cell("solana", "small", rate=500.0, duration=60.0, scale=0.5),
    ),
}


def get_suite(name: str) -> Tuple[Scenario, ...]:
    if name not in SUITES:
        raise ConfigurationError(
            f"unknown suite {name!r} (have: {', '.join(sorted(SUITES))})")
    return SUITES[name]


def scenario_by_name(name: str) -> Scenario:
    """Look a scenario up across all suites (they share definitions)."""
    for suite in SUITES.values():
        for scenario in suite:
            if scenario.name == name:
                return scenario
    raise ConfigurationError(f"unknown scenario {name!r}")


# -- micro scenario bodies ----------------------------------------------------
#
# Each body returns (engine_or_none, counted) where ``counted`` holds the
# deterministic integers the compare step checks exactly. The runner
# wraps the call with wall-clock and RSS measurement.


def _run_engine_calendar(params: Mapping[str, Any],
                         profiler: Optional[Any]) -> Tuple[Any, Dict[str, int]]:
    """Self-perpetuating event chains through the bare calendar.

    ``chains`` independent chains each schedule ``depth`` follow-up
    events at pseudo-random offsets; every tenth event also schedules
    and immediately cancels a decoy, so the cancelled-event pop path is
    part of the measurement.
    """
    from repro.common.rng import RngFactory
    from repro.sim.engine import Engine

    engine = Engine()
    engine.profiler = profiler
    rng = RngFactory(11).stream("bench", "calendar")
    chains = int(params["chains"])
    depth = int(params["depth"])
    remaining = [depth] * chains
    cancelled = [0]

    def tick(i: int) -> None:
        if remaining[i] <= 0:
            return
        remaining[i] -= 1
        handle = engine.schedule_after(
            float(rng.random()) * 0.1, lambda: tick(i), label="bench-tick")
        if remaining[i] % 10 == 0:
            decoy = engine.schedule_after(
                1.0, lambda: None, label="bench-decoy")
            decoy.cancel()
            cancelled[0] += 1
        _ = handle

    for i in range(chains):
        engine.schedule_after(float(rng.random()) * 0.1,
                              (lambda i=i: tick(i)), label="bench-tick")
    engine.run()
    return engine, {
        "events_executed": engine.events_executed,
        "decoys_cancelled": cancelled[0],
    }


def _run_engine_broadcast(params: Mapping[str, Any],
                          profiler: Optional[Any]
                          ) -> Tuple[Any, Dict[str, int]]:
    """The network broadcast path: one sender fanning out per round."""
    from repro.common.rng import RngFactory
    from repro.sim.engine import Engine
    from repro.sim.network import Network, spread_endpoints

    engine = Engine()
    engine.profiler = profiler
    endpoints = spread_endpoints(int(params["endpoints"]))
    network = Network(engine, rng_factory=RngFactory(5))
    rounds = int(params["rounds"])
    delivered = [0]

    def deliver(_endpoint: Any) -> None:
        delivered[0] += 1

    def fire(r: int) -> None:
        src = endpoints[r % len(endpoints)]
        dsts = [ep for ep in endpoints if ep is not src]
        # default label => "network-delivery", so the attribution pass
        # books the fan-out under the network subsystem
        network.broadcast(src, dsts, size=400, on_delivery=deliver)

    for r in range(rounds):
        engine.schedule_at(r * 0.01, (lambda r=r: fire(r)),
                           label="bench-round")
    engine.run()
    return engine, {
        "events_executed": engine.events_executed,
        "messages_sent": network.messages_sent,
        "messages_delivered": delivered[0],
    }


def _run_mempool_churn(params: Mapping[str, Any],
                       profiler: Optional[Any]) -> Tuple[Any, Dict[str, int]]:
    """Transaction allocation + pool admission/eviction/ordering churn."""
    from repro.chain.mempool import Mempool, MempoolPolicy
    from repro.chain.transaction import reset_tx_counter, transfer

    reset_tx_counter()
    total = int(params["transactions"])
    batch = int(params["batch"])
    pool = Mempool(MempoolPolicy(capacity=int(params["capacity"]),
                                 fee_ordered=True, evict_oldest=True))
    popped = 0
    for i in range(total):
        tx = transfer(sender=f"acct-{i % 997}", recipient=f"acct-{i % 991}",
                      amount=1, sequence=i, fee_per_gas=1 + (i * 7) % 64)
        tx.submitted_at = float(i) * 1e-3
        pool.try_add(tx)
        if i % 1_000 == 999:
            popped += len(pool.pop_batch(max_count=batch))
    popped += len(pool.pop_batch())
    return None, {
        "transactions_created": total,
        "admitted": pool.admitted,
        "popped": popped,
        "evicted": pool.evicted,
    }


def _run_client_emission(params: Mapping[str, Any],
                         profiler: Optional[Any]
                         ) -> Tuple[Any, Dict[str, int]]:
    """The Secondary emission path in isolation: encode + sign + trigger.

    A real chain runtime (Ethereum's params) receives the load, but
    block production is held off (``_producing`` pinned) and the pool is
    unbounded, so the measurement is pure client-side work: the tick
    loop, account round-robin, transaction construction, fee-less
    signing, and admission — the ``clients`` subsystem the chain cells
    attribute their wall-clock to, without consensus noise.
    """
    from dataclasses import replace

    from repro.blockchains.base import BlockchainNetwork, ExperimentScale
    from repro.blockchains.registry import chain_params
    from repro.chain.mempool import MempoolPolicy
    from repro.chain.transaction import reset_tx_counter
    from repro.core.interface import SimConnector
    from repro.core.secondary import Secondary
    from repro.core.spec import Behavior, LoadSchedule, TransferSpec, AccountSample
    from repro.sim.deployment import get_configuration
    from repro.sim.engine import Engine

    reset_tx_counter()
    engine = Engine()
    engine.profiler = profiler
    deployment = get_configuration("testnet")
    chain = replace(chain_params(str(params["chain"]), deployment),
                    mempool_policy=MempoolPolicy(capacity=None),
                    retry_policy=None)
    network = BlockchainNetwork(
        chain, deployment, engine,
        scale=ExperimentScale(float(params["scale"])),
        seed=int(params["seed"]))
    network._producing = True   # hold consensus off: emission only
    network.create_accounts(int(params["accounts"]))
    connector = SimConnector(network)
    endpoint = network.endpoints[0]
    client = connector.create_client("bench-client", endpoint.region,
                                     (endpoint.name,))
    secondary = Secondary("secondary-bench-0", endpoint.region, engine,
                          connector, network.scale)
    sample = AccountSample(int(params["accounts"]))
    schedule = LoadSchedule.constant(float(params["rate_tps"]),
                                     float(params["duration_s"]))
    secondary.assign([client], Behavior(TransferSpec(sample), schedule))
    secondary.start()
    engine.run()
    emitted = len(secondary.sent)
    return engine, {
        "events_executed": engine.events_executed,
        "transactions_emitted": emitted,
        "accepted": emitted - secondary.rejected,
        "pooled": len(network.mempool),
    }


def _run_population(params: Mapping[str, Any],
                    profiler: Optional[Any]) -> Tuple[Any, Dict[str, int]]:
    """The population layer's aggregate emission path in isolation.

    One million simulated users against Ethereum's runtime with block
    production held off and an unbounded pool (the `client-emission`
    harness), split between a Poisson aggregate arrival process and a
    256-user tracked cohort: the measurement is the cost of turning a
    population-scale rate into admitted transactions — arrival draws,
    batched encode/sign, lane-tagged submission — with no consensus
    noise. See docs/SCALE.md.
    """
    from dataclasses import replace

    from repro.blockchains.base import BlockchainNetwork, ExperimentScale
    from repro.blockchains.registry import chain_params
    from repro.chain.mempool import MempoolPolicy
    from repro.chain.transaction import reset_tx_counter
    from repro.core.interface import SimConnector
    from repro.core.population import AggregateArrivals, PopulationSpec
    from repro.core.secondary import Secondary
    from repro.core.spec import (AccountSample, Behavior, LoadSchedule,
                                 TransferSpec)
    from repro.sim.deployment import get_configuration
    from repro.sim.engine import Engine

    reset_tx_counter()
    engine = Engine()
    engine.profiler = profiler
    deployment = get_configuration("testnet")
    chain = replace(chain_params(str(params["chain"]), deployment),
                    mempool_policy=MempoolPolicy(capacity=None),
                    retry_policy=None)
    network = BlockchainNetwork(
        chain, deployment, engine,
        scale=ExperimentScale(float(params["scale"])),
        seed=int(params["seed"]))
    network._producing = True   # hold consensus off: emission only
    network.create_accounts(int(params["accounts"]))
    connector = SimConnector(network)
    endpoint = network.endpoints[0]
    secondary = Secondary("secondary-bench-0", endpoint.region, engine,
                          connector, network.scale)
    spec = PopulationSpec(
        users=int(params["users"]),
        interaction=TransferSpec(AccountSample(int(params["accounts"]))),
        load=LoadSchedule.constant(float(params["rate_per_user"]),
                                   float(params["duration_s"])),
        cohort=int(params["cohort"]),
        arrival=str(params["arrival"]))
    cohort_clients = [
        connector.create_client(f"bench-client-{i}", endpoint.region,
                                (endpoint.name,))
        for i in range(spec.cohort_size)]
    secondary.assign(cohort_clients, Behavior(spec.interaction, spec.load))
    process = AggregateArrivals(spec, network.scale.rate, secondary.tick,
                                network.rng.child("population"))
    secondary.assign_aggregate(process, spec.interaction)
    secondary.start()
    engine.run()
    cohort_emitted = len(secondary.sent)
    aggregate_emitted = len(secondary.aggregate_sent)
    return engine, {
        "events_executed": engine.events_executed,
        "transactions_emitted": cohort_emitted + aggregate_emitted,
        "aggregate_emitted": aggregate_emitted,
        "cohort_emitted": cohort_emitted,
        "pooled": len(network.mempool),
    }


MICRO_BODIES: Dict[str, Callable[[Mapping[str, Any], Optional[Any]],
                                 Tuple[Any, Dict[str, int]]]] = {
    "engine-calendar": _run_engine_calendar,
    "engine-broadcast": _run_engine_broadcast,
    "mempool-churn": _run_mempool_churn,
    "client-emission": _run_client_emission,
    "population": _run_population,
}
