"""Performance observability: the pinned bench suite and its trajectory.

``python -m repro bench`` runs a pinned scenario suite (six chains at
two load levels plus engine/mempool micro-benchmarks), records median
events/sec, wall-clock per simulated second and peak RSS into a
schema-versioned ``BENCH_<date>.json`` at the repo root, and compares
against a committed baseline with noise-aware thresholds. Every later
"faster" claim in this repo lands as a before/after delta between two
of these files; CI runs the ``mini`` suite twice per build and fails on
a regression beyond threshold.

Typical flows::

    # record a trajectory point
    python -m repro bench --suite full --repeats 3

    # prove a change against the committed baseline
    python -m repro bench --compare BENCH_2026-08-08.json

    # compare two recorded files without re-running anything
    python -m repro bench --replay BENCH_new.json --compare BENCH_old.json

See docs/BENCHMARKS.md for the suite contents and refresh procedure.
"""

from __future__ import annotations

from repro.bench.compare import (
    DEFAULT_THRESHOLDS,
    BenchComparison,
    MetricDelta,
    ScenarioDelta,
    compare_benches,
    compare_scenario,
    thresholds_scaled,
)
from repro.bench.report import bench_summary, comparison_report, comparison_table
from repro.bench.runner import (
    BenchDeterminismError,
    aggregate_scenario,
    run_scenario_once,
    run_suite,
)
from repro.bench.schema import (
    SCHEMA_TAG,
    SCHEMA_VERSION,
    BenchFormatError,
    bench_date,
    bench_filename,
    build_payload,
    dump_bench,
    latest_bench_file,
    load_bench,
    validate_payload,
    write_bench,
)
from repro.bench.suite import SUITES, Scenario, get_suite, scenario_by_name

__all__ = [
    "BenchComparison",
    "BenchDeterminismError",
    "BenchFormatError",
    "DEFAULT_THRESHOLDS",
    "MetricDelta",
    "SCHEMA_TAG",
    "SCHEMA_VERSION",
    "SUITES",
    "Scenario",
    "ScenarioDelta",
    "aggregate_scenario",
    "bench_date",
    "bench_filename",
    "bench_summary",
    "build_payload",
    "compare_benches",
    "compare_scenario",
    "comparison_report",
    "comparison_table",
    "dump_bench",
    "get_suite",
    "latest_bench_file",
    "load_bench",
    "run_scenario_once",
    "run_suite",
    "scenario_by_name",
    "thresholds_scaled",
    "validate_payload",
    "write_bench",
]
