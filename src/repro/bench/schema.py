"""Schema-versioned on-disk format of ``BENCH_<date>.json`` files.

One bench file is one point on the repo's performance trajectory: the
pinned suite run on one machine at one commit. Files live at the repo
root (``BENCH_2026-08-08.json``), are schema-versioned so older files
stay loadable when the format grows, and are written with sorted keys
and a trailing newline so reruns of identical measurements diff cleanly.

Top-level layout (``SCHEMA_VERSION`` 1)::

    {
      "schema": "repro-bench/1",
      "date": "2026-08-08",
      "label": "free-form description of this point",
      "suite": "full",
      "repeats": 3,
      "platform": {"python": ..., "system": ..., "machine": ...,
                   "rss_units": "bytes"},
      "scenarios": {
        "<name>": {
          "kind": "chain" | "micro",
          "params": {...},                  # pinned scenario knobs
          "counted": {"events_executed": N, ...},   # deterministic ints
          "timed": {"wall_seconds": s, "events_per_second": e,
                    "wall_per_sim_second": w | null,
                    "peak_rss_bytes": b},   # medians over repeats
          "spread": {"<timed metric>": [min, max], ...},
          "subsystems": {"network": 0.4, ...}       # wall-clock shares
        }, ...
      }
    }

``counted`` metrics are exactly reproducible on any machine (the
simulation is deterministic); ``timed`` metrics are machine-dependent
and only comparable against runs from the same host.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from datetime import date as _date
from pathlib import Path
from typing import Any, Dict, Iterable, Optional

SCHEMA_VERSION = 1
SCHEMA_TAG = f"repro-bench/{SCHEMA_VERSION}"

#: environment override for the date stamped into filename and payload
#: (pins output names in tests and when recording a historical point)
DATE_ENV = "REPRO_BENCH_DATE"


class BenchFormatError(ValueError):
    """A bench file failed schema validation."""


def bench_date() -> str:
    """Today's ISO date, unless ``REPRO_BENCH_DATE`` overrides it."""
    override = os.environ.get(DATE_ENV)
    if override:
        return override
    return _date.today().isoformat()


def bench_filename(date: Optional[str] = None) -> str:
    """Canonical repo-root filename for a bench point."""
    return f"BENCH_{date or bench_date()}.json"


def platform_info() -> Dict[str, str]:
    """The host fingerprint recorded next to machine-dependent metrics."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "system": platform.system(),
        "machine": platform.machine(),
        "rss_units": "bytes",
    }


def build_payload(scenarios: Dict[str, Dict[str, Any]], suite: str,
                  repeats: int, label: str = "",
                  date: Optional[str] = None) -> Dict[str, Any]:
    """Assemble the schema-versioned payload for one suite run."""
    return {
        "schema": SCHEMA_TAG,
        "date": date or bench_date(),
        "label": label,
        "suite": suite,
        "repeats": repeats,
        "platform": platform_info(),
        "scenarios": scenarios,
    }


_REQUIRED_TOP = ("schema", "date", "suite", "repeats", "scenarios")
_REQUIRED_SCENARIO = ("kind", "counted", "timed")


def validate_payload(payload: Dict[str, Any]) -> None:
    """Raise :class:`BenchFormatError` unless *payload* matches the schema."""
    for key in _REQUIRED_TOP:
        if key not in payload:
            raise BenchFormatError(f"bench payload missing {key!r}")
    schema = payload["schema"]
    if not isinstance(schema, str) or not schema.startswith("repro-bench/"):
        raise BenchFormatError(f"not a repro-bench file (schema={schema!r})")
    version = schema.split("/", 1)[1]
    if not version.isdigit() or int(version) > SCHEMA_VERSION:
        raise BenchFormatError(
            f"bench schema {schema!r} is newer than this tool"
            f" (understands up to repro-bench/{SCHEMA_VERSION})")
    scenarios = payload["scenarios"]
    if not isinstance(scenarios, dict):
        raise BenchFormatError("scenarios must be an object")
    for name, scenario in scenarios.items():
        for key in _REQUIRED_SCENARIO:
            if key not in scenario:
                raise BenchFormatError(
                    f"scenario {name!r} missing {key!r}")
        for metric, value in scenario["counted"].items():
            if not isinstance(value, int):
                raise BenchFormatError(
                    f"scenario {name!r} counted metric {metric!r} must be"
                    f" an integer, got {value!r}")


def dump_bench(payload: Dict[str, Any]) -> str:
    """Serialize a payload byte-stably (sorted keys, trailing newline)."""
    validate_payload(payload)
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_bench(payload: Dict[str, Any], path: Path) -> Path:
    path = Path(path)
    path.write_text(dump_bench(payload))
    return path


def load_bench(path: Path) -> Dict[str, Any]:
    """Load and validate a bench file."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise BenchFormatError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(payload, dict):
        raise BenchFormatError(f"{path}: top level must be an object")
    validate_payload(payload)
    return payload


def latest_bench_file(root: Path) -> Optional[Path]:
    """The newest ``BENCH_*.json`` under *root* by filename date order."""
    candidates: Iterable[Path] = sorted(Path(root).glob("BENCH_*.json"))
    newest = None
    for candidate in candidates:
        newest = candidate
    return newest
