"""Execute bench scenarios and aggregate repeat medians.

Each scenario runs ``repeats`` times; wall-clock, events/sec, wall per
simulated second and peak RSS are recorded per repeat and the *median*
lands in the bench file (with the min/max spread kept alongside, so a
noisy host is visible in the data). One extra *attribution* pass runs
with the :class:`~repro.obs.profiler.EngineProfiler` attached to
produce per-subsystem wall-clock shares — profiled runs are
outcome-identical, so the pass doubles as a determinism check against
the timed repeats.

By default every repeat executes in a fresh spawned subprocess
(``maxtasksperchild=1``): peak RSS is a process-wide high-water mark,
so sharing a process across cells would let a big cell inflate every
later cell's figure. ``isolate=False`` runs everything inline — faster,
used by the test suite, with the documented caveat that RSS figures
become cumulative.

Deterministic ("counted") metrics — event totals, transactions
submitted/committed, messages sent — must agree across every repeat and
the attribution pass, at any ``--workers`` value; a mismatch raises
:class:`BenchDeterminismError` because it means the simulation itself
went nondeterministic, which is a bug worth failing loudly for.
"""

from __future__ import annotations

import multiprocessing
import statistics
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.bench.schema import build_payload
from repro.bench.suite import MICRO_BODIES, Scenario, get_suite
from repro.common.errors import SimulationError
from repro.obs.profiler import EngineProfiler, peak_rss_bytes

#: sim-seconds of post-load drain pinned for chain cells (shorter than
#: the Primary default — the bench wants a tight, comparable horizon)
CHAIN_CELL_DRAIN = 60.0

ProgressFn = Callable[[str, str], None]


class BenchDeterminismError(SimulationError):
    """Counted metrics differed between repeats of one scenario."""


# -- one repeat ---------------------------------------------------------------


def _run_chain_cell(params: Dict[str, Any], profile: bool
                    ) -> Tuple[Dict[str, Any], Optional[Dict[str, float]]]:
    from repro.core.primary import Primary
    from repro.core.spec import (
        AccountSample,
        LoadSchedule,
        TransferSpec,
        simple_spec,
    )
    from repro.obs import ObservabilityOptions

    observe = (ObservabilityOptions(trace=False, profile=True,
                                    sample_period=0.0) if profile else None)
    spec = simple_spec(
        TransferSpec(AccountSample(int(params["accounts"]))),
        LoadSchedule.constant(float(params["rate_tps"]),
                              float(params["duration_s"])))
    primary = Primary(params["chain"], params["configuration"],
                      scale=float(params["scale"]),
                      seed=int(params["seed"]), observe=observe)
    result = primary.run(spec, workload_name="bench",
                         drain=CHAIN_CELL_DRAIN)
    counted = {
        "events_executed": primary.engine.events_executed,
        "submitted": len(result.records),
        "committed": sum(1 for r in result.records if r.committed),
        "height": int(result.chain_stats.get("height", 0)),
    }
    subsystems = (primary.profiler.subsystem_shares()
                  if primary.profiler is not None else None)
    return ({"sim_seconds": primary.engine.now,
             "events_executed": primary.engine.events_executed,
             "counted": counted}, subsystems)


def run_scenario_once(scenario: Scenario,
                      profile: bool = False) -> Dict[str, Any]:
    """One repeat of *scenario* in the current process.

    Returns wall/sim seconds, event totals, peak RSS (bytes, cumulative
    for this process) and the counted-metric dict; with ``profile``,
    also the per-subsystem wall-clock shares.
    """
    start = time.perf_counter()
    if scenario.kind == "chain":
        measured, subsystems = _run_chain_cell(dict(scenario.params), profile)
    else:
        body = MICRO_BODIES[scenario.params["micro"]]
        profiler = EngineProfiler() if profile else None
        engine, counted = body(scenario.params, profiler)
        subsystems = (profiler.subsystem_shares()
                      if profiler is not None else None)
        measured = {
            "sim_seconds": engine.now if engine is not None else 0.0,
            "events_executed": (engine.events_executed
                                if engine is not None else 0),
            "counted": counted,
        }
    wall = time.perf_counter() - start
    sim = measured["sim_seconds"]
    events = measured["events_executed"]
    return {
        "wall_seconds": wall,
        "sim_seconds": sim,
        "events_executed": events,
        "events_per_second": (events / wall) if events and wall > 0 else None,
        "wall_per_sim_second": (wall / sim) if sim > 0 else None,
        "peak_rss_bytes": peak_rss_bytes(),
        "counted": dict(measured["counted"]),
        "subsystems": subsystems,
    }


def _job(args: Tuple[str, bool]) -> Dict[str, Any]:
    """Pool entry point: (scenario name, profile flag) → repeat metrics."""
    from repro.bench.suite import scenario_by_name

    name, profile = args
    return run_scenario_once(scenario_by_name(name), profile=profile)


# -- aggregation --------------------------------------------------------------

_TIMED_METRICS = ("wall_seconds", "events_per_second",
                  "wall_per_sim_second", "peak_rss_bytes")


def _median(values: List[Optional[float]]) -> Optional[float]:
    present = [v for v in values if v is not None]
    if not present:
        return None
    return float(statistics.median(present))


def _check_counted(scenario: Scenario,
                   repeats: List[Dict[str, Any]]) -> Dict[str, int]:
    reference = repeats[0]["counted"]
    for index, repeat in enumerate(repeats[1:], start=2):
        if repeat["counted"] != reference:
            raise BenchDeterminismError(
                f"scenario {scenario.name}: counted metrics diverged"
                f" between repeat 1 and repeat {index}:"
                f" {reference} != {repeat['counted']}")
    return {key: int(value) for key, value in sorted(reference.items())}


def aggregate_scenario(scenario: Scenario,
                       repeats: List[Dict[str, Any]],
                       attribution: Optional[Dict[str, Any]] = None
                       ) -> Dict[str, Any]:
    """Fold per-repeat metrics into one bench-file scenario entry."""
    everything = repeats + ([attribution] if attribution is not None else [])
    counted = _check_counted(scenario, everything)
    timed: Dict[str, Any] = {}
    spread: Dict[str, Any] = {}
    for metric in _TIMED_METRICS:
        values = [repeat[metric] for repeat in repeats]
        median = _median(values)
        if metric == "peak_rss_bytes" and median is not None:
            median = int(median)
        timed[metric] = (round(median, 6)
                         if isinstance(median, float) else median)
        present = [v for v in values if v is not None]
        if len(present) > 1:
            spread[metric] = [round(float(min(present)), 6),
                              round(float(max(present)), 6)]
    subsystems: Dict[str, float] = {}
    if attribution is not None and attribution.get("subsystems"):
        subsystems = {name: round(share, 4)
                      for name, share in attribution["subsystems"].items()}
    return {
        "kind": scenario.kind,
        "params": scenario.describe(),
        "counted": counted,
        "timed": timed,
        "spread": spread,
        "subsystems": subsystems,
    }


# -- the suite ----------------------------------------------------------------


def run_suite(suite: str = "full", repeats: int = 3, workers: int = 1,
              isolate: bool = True, label: str = "",
              progress: Optional[ProgressFn] = None) -> Dict[str, Any]:
    """Run a pinned suite; return the schema-versioned payload.

    Jobs (every repeat of every scenario, plus one attribution pass per
    scenario) are independent; ``workers`` fans them over a spawn pool
    with ``maxtasksperchild=1``. Counted metrics are identical at any
    worker count — only the machine-dependent timed metrics may wobble
    under CPU contention, which is why ``workers=1`` is the default for
    recorded trajectory points.
    """
    scenarios = get_suite(suite)
    if repeats < 1:
        raise SimulationError(f"repeats must be >= 1, got {repeats}")
    jobs: List[Tuple[str, bool]] = []
    for scenario in scenarios:
        jobs.extend((scenario.name, False) for _ in range(repeats))
        jobs.append((scenario.name, True))  # attribution pass

    if progress is not None:
        progress("start", f"{suite}: {len(scenarios)} scenarios,"
                 f" {len(jobs)} runs")
    if isolate:
        context = multiprocessing.get_context("spawn")
        with context.Pool(processes=max(1, workers),
                          maxtasksperchild=1) as pool:
            outcomes = pool.map(_job, jobs)
    else:
        outcomes = [_job(job) for job in jobs]

    results: Dict[str, Dict[str, Any]] = {}
    cursor = 0
    for scenario in scenarios:
        timed_repeats = outcomes[cursor:cursor + repeats]
        attribution = outcomes[cursor + repeats]
        cursor += repeats + 1
        results[scenario.name] = aggregate_scenario(
            scenario, timed_repeats, attribution)
        if progress is not None:
            timed = results[scenario.name]["timed"]
            eps = timed["events_per_second"]
            progress("done", f"{scenario.name}: "
                     f"{timed['wall_seconds']:.3f}s wall"
                     + (f", {eps:,.0f} events/s" if eps else ""))
    return build_payload(results, suite=suite, repeats=repeats, label=label)
