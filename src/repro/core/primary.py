"""The DIABLO Primary: experiment coordinator (§4).

"The purpose of the Primary machine is to coordinate the experiment: it
generates the workload and dispatches it between Secondaries, launches the
benchmark, aggregates the results and reports them back." Before the run it
provisions the accounts and deploys the smart contracts the configuration
names; afterwards it collects every Secondary's per-transaction timestamps
into a :class:`BenchmarkResult` (the JSON output of the real tool).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Union

from repro.blockchains.base import (
    BlockchainNetwork,
    ExperimentScale,
    default_scale,
)
from repro.blockchains.registry import build_network
from repro.common.errors import ConfigurationError, DeploymentError
from repro.core.interface import Client, SimConnector
from repro.core.population import AggregateArrivals, population_block
from repro.core.results import BenchmarkResult, TransactionRecord
from repro.core.secondary import Secondary
from repro.core.spec import WorkloadSpec
from repro.core.watchdog import DEFAULT_WINDOW, LivenessWatchdog
from repro.econ.fees import FeeSpec
from repro.obs import (
    EngineProfiler,
    LifecycleTracer,
    MetricsSampler,
    ObservabilityOptions,
)
from repro.sim.deployment import DeploymentConfig, get_configuration
from repro.sim.dos import DoSAdversary
from repro.sim.engine import Engine
from repro.sim.faults import FaultInjector

DEFAULT_DRAIN = 240.0
#: granularity of the drain loop — how often the Primary re-checks the
#: watchdog before deciding whether simulating further is worthwhile
DRAIN_CHUNK = 20.0


class Primary:
    """Coordinates one benchmark run against one chain in one deployment."""

    def __init__(self, chain: str,
                 deployment: Union[str, DeploymentConfig],
                 scale: Optional[float] = None,
                 seed: int = 0,
                 secondaries_per_region: int = 1,
                 params: Optional["ChainParams"] = None,
                 observe: Optional[ObservabilityOptions] = None) -> None:
        """Coordinate benchmarks for *chain* in *deployment*.

        Pass ``params`` to benchmark a chain that is not in the registry —
        a custom :class:`~repro.blockchains.base.ChainParams` is all a new
        blockchain needs (the §4 extensibility path; see
        examples/custom_blockchain.py).

        Pass ``observe`` to turn on observability: a lifecycle tracer on
        the chain's transaction pipeline, a periodic metrics sampler
        (landing in ``BenchmarkResult.timeseries``) and optionally the
        engine profiler. The default (None) is the zero-overhead path —
        no tracer hooks fire and the result is identical to a run without
        any observability code.
        """
        self.chain_name = chain
        self.deployment = (get_configuration(deployment)
                           if isinstance(deployment, str) else deployment)
        self.scale = ExperimentScale(
            default_scale() if scale is None else scale)
        self.seed = seed
        self.secondaries_per_region = secondaries_per_region
        self.engine = Engine()
        if params is not None:
            from repro.blockchains.base import BlockchainNetwork
            self.network = BlockchainNetwork(
                params, self.deployment, self.engine,
                scale=self.scale, seed=seed)
        else:
            self.network = build_network(
                chain, self.deployment, self.engine,
                scale=self.scale, seed=seed)
        self.connector = SimConnector(self.network)
        self.secondaries: List[Secondary] = []
        self.adversary: Optional[DoSAdversary] = None
        self.observe = observe
        self.tracer: Optional[LifecycleTracer] = None
        self.profiler: Optional[EngineProfiler] = None
        self._sampler: Optional[MetricsSampler] = None
        if observe is not None:
            if observe.trace:
                self.tracer = LifecycleTracer(chain=chain)
                self.network.attach_tracer(self.tracer)
            if observe.profile:
                self.profiler = EngineProfiler()
                self.engine.profiler = self.profiler

    # -- setup helpers ---------------------------------------------------------------

    def _provision(self, spec: WorkloadSpec) -> None:
        population = spec.account_population()
        if population > 0:
            self.network.create_accounts(population)
        for dapp_name in spec.contracts_used():
            from repro.core.spec import ContractSample
            self.connector.create_resource(ContractSample(dapp_name))

    def _build_secondaries(self, spec: WorkloadSpec) -> None:
        """One Secondary per deployment region (collocated with nodes).

        "each Secondary submits its requests to its collocated blockchain
        node so as to mimic requests being routed from a client towards its
        closest blockchain node" (§5.3).
        """
        regions = sorted({ep.region for ep in self.network.endpoints})
        self.secondaries = []
        for region in regions:
            for i in range(self.secondaries_per_region):
                self.secondaries.append(Secondary(
                    name=f"secondary-{region}-{i}",
                    region=region,
                    engine=self.engine,
                    connector=self.connector,
                    scale=self.scale))

    def _dispatch(self, spec: WorkloadSpec) -> None:
        """Assign each workload group's clients to matching Secondaries.

        Population specs dispatch their synthesized cohort group here
        (``spec.client_groups()``) so the tracked sample gets ordinary
        ``client-{N}`` clients on the classic path; the aggregate lane is
        attached separately by :meth:`_attach_population`.
        """
        endpoint_names = [ep.name for ep in self.network.endpoints]
        endpoint_region = {ep.name: ep.region for ep in self.network.endpoints}
        client_counter = 0
        for group in spec.client_groups():
            matching = [s for s in self.secondaries
                        if group.client.location.matches(s.region)]
            if not matching:
                raise ConfigurationError(
                    f"no Secondary matches location sample"
                    f" {group.client.location.patterns}")
            # split the group's clients round-robin over the Secondaries
            per_secondary: Dict[int, List[Client]] = {
                i: [] for i in range(len(matching))}
            for n in range(group.number):
                sec_index = n % len(matching)
                secondary = matching[sec_index]
                view = [name for name in endpoint_names
                        if group.client.view.matches(name)
                        and endpoint_region[name] == secondary.region]
                if not view:
                    view = [name for name in endpoint_names
                            if group.client.view.matches(name)]
                if not view:
                    raise ConfigurationError(
                        f"no endpoint matches view sample"
                        f" {group.client.view.patterns}")
                client = self.connector.create_client(
                    f"client-{client_counter}", secondary.region, view)
                client_counter += 1
                per_secondary[sec_index].append(client)
            for index, clients in per_secondary.items():
                for behavior in group.client.behaviors:
                    matching[index].assign(clients, behavior)

    def _attach_population(self, spec: WorkloadSpec) -> None:
        """Attach the population's aggregate lane, if any.

        The untracked users become one :class:`AggregateArrivals` process
        hosted by the first location-matching Secondary (deterministic:
        regions sort identically every run). A population whose cohort
        covers every user attaches nothing — the run then exercises only
        the classic client path and stays byte-identical to an explicit
        spec with the same clients.
        """
        population = spec.population
        if population is None or population.aggregate_users <= 0:
            return
        matching = [s for s in self.secondaries
                    if re.fullmatch(population.location, s.region)]
        if not matching:
            raise ConfigurationError(
                f"no Secondary matches population location"
                f" {population.location!r}")
        host = matching[0]
        process = AggregateArrivals(
            population, self.scale.rate, host.tick,
            self.network.rng.child("population"))
        host.assign_aggregate(process, population.interaction)

    def _validate_schedules(self, schedule, byzantine) -> None:
        """Fail fast on fault/byzantine events naming unknown targets.

        Node keys the deployment answers for: endpoint indices, endpoint
        names and region tags (the injector is key-agnostic, so a spec
        may use any of them). Raises ``SpecError`` before anything runs.
        """
        endpoints = self.network.endpoints
        nodes = (set(range(len(endpoints)))
                 | {ep.name for ep in endpoints})
        regions = set(self.deployment.regions)
        schedule.validate(nodes | regions, regions)
        byzantine.validate(len(endpoints))

    # -- the run ------------------------------------------------------------------------

    def run(self, spec: WorkloadSpec, workload_name: str = "workload",
            drain: float = DEFAULT_DRAIN,
            max_sim_seconds: Optional[float] = None,
            watchdog_window: float = DEFAULT_WINDOW) -> BenchmarkResult:
        """Provision, dispatch, execute, aggregate.

        A :class:`~repro.core.watchdog.LivenessWatchdog` guards the run: a
        chain with pending demand that commits nothing for
        *watchdog_window* simulated seconds is declared stalled, and the
        Primary stops simulating (no point draining a dead chain) and marks
        the result ``failed``. ``max_sim_seconds`` (or the spec's
        ``deadline``) additionally caps total simulated time — the guard
        against runaway experiments.
        """
        from repro.chain.transaction import reset_tx_counter
        reset_tx_counter()
        duration = spec.duration
        deadlines = [d for d in (spec.deadline, max_sim_seconds)
                     if d is not None]
        deadline = min(deadlines) if deadlines else None
        self._provision(spec)
        self._build_secondaries(spec)
        self._dispatch(spec)
        self._attach_population(spec)
        schedule = spec.fault_schedule()
        byzantine = spec.byzantine_schedule()
        self._validate_schedules(schedule, byzantine)
        if len(schedule):
            self.network.attach_faults(FaultInjector(schedule))
        if len(byzantine):
            self.network.attach_byzantine(byzantine)
        fees = spec.fees
        if fees is None and spec.adversary is not None:
            # an adversary needs a fee market to bid into; a bare
            # `adversary:` section gets the chain's default dialect
            fees = FeeSpec()
        if fees is not None:
            self.network.attach_fees(fees)
        if spec.adversary is not None:
            self.adversary = DoSAdversary(
                self.network, spec.adversary, duration)
            self.adversary.start()
        self.network.active_until = duration
        watchdog = LivenessWatchdog(self.engine, self.network,
                                    window=watchdog_window)
        if self.observe is not None and self.observe.sample_period > 0:
            self._sampler = MetricsSampler(self.engine, self.network.metrics,
                                           period=self.observe.sample_period)
        for secondary in self.secondaries:
            secondary.start()
        target = duration + drain
        if deadline is not None:
            target = min(target, deadline)
        committed_before = len(self.network.committed)
        stalled_last_chunk = False
        while self.engine.now < target:
            self.engine.run(until=min(self.engine.now + DRAIN_CHUNK, target))
            committed_now = len(self.network.committed)
            stalled = watchdog.stalled and committed_now == committed_before
            if stalled and stalled_last_chunk:
                # dead for two consecutive chunks: abort the run instead of
                # simulating the rest of a flat line (a fault healing at a
                # chunk boundary still gets the next chunk to recover in)
                break
            stalled_last_chunk = stalled
            committed_before = committed_now
        watchdog.stop()
        if self._sampler is not None:
            self._sampler.stop()
        deadline_hit = (deadline is not None and deadline < duration + drain
                        and self.engine.now >= deadline)
        if deadline_hit:
            watchdog.events.append({
                "at": round(self.engine.now, 3),
                "kind": "deadline_hit",
                "deadline": deadline})
        status = watchdog.finalize()
        if deadline_hit:
            status = "failed"
        elif status == "ok" and self.network.overload_events:
            # the chain survived, but only by shedding/crashing its way
            # through overload — not a clean run
            status = "degraded"
        return self._aggregate(spec, workload_name, duration,
                               status=status,
                               liveness_events=watchdog.events)

    def _aggregate(self, spec: WorkloadSpec, workload_name: str,
                   duration: float, status: str = "ok",
                   liveness_events: Optional[List[Dict]] = None
                   ) -> BenchmarkResult:
        schedule = spec.fault_schedule()
        # byzantine windows merge into the fault-event record, so the
        # degradation metrics (fault_window, commit ratios, recovery
        # time) cover adversarial runs without a second code path
        fault_events = sorted(
            schedule.summaries() + spec.byzantine_schedule().summaries(),
            key=lambda e: e["at"])
        result = BenchmarkResult(
            chain=self.chain_name,
            configuration=self.deployment.name,
            workload_name=workload_name,
            duration=duration,
            scale=self.scale.factor,
            chain_stats=self.network.stats(),
            fault_events=fault_events,
            status=status,
            liveness_events=list(liveness_events or []),
            overload_events=list(self.network.overload_events))
        records_without_submit = 0
        for secondary in self.secondaries:
            for tx, client_name in secondary.sent:
                if tx.submitted_at is None:
                    # a transaction the Secondary generated but never
                    # actually handed to a node has no place in latency
                    # or throughput aggregates — count it instead
                    records_without_submit += 1
                    continue
                result.records.append(
                    TransactionRecord.from_transaction(tx, client_name))
        if records_without_submit:
            result.chain_stats["records_without_submit"] = (
                records_without_submit)
        if self._sampler is not None:
            result.timeseries = list(self._sampler.samples)
        if self.network.fee_market is not None:
            economics = self.network.fee_market.economics()
            if self.adversary is not None:
                economics["adversary"] = self.adversary.stats()
            result.economics = economics
        if spec.population is not None:
            # every TransactionRecord of a population run is a cohort
            # record; aggregate-lane txs never become records (they carry
            # no client identity) but are counted here
            aggregate_sent = [tx for secondary in self.secondaries
                              for tx in secondary.aggregate_sent]
            result.population = population_block(
                spec.population, result.records, aggregate_sent,
                duration, self.scale.factor)
        return result
