"""One-call benchmark pipeline.

``run_trace`` is the ``diablo primary ... setup.yaml workload.yaml``
command in one function: deploy the chain, provision resources, generate
the workload, run, aggregate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Union

from repro.core.primary import DEFAULT_DRAIN, Primary
from repro.core.results import BenchmarkResult
from repro.core.spec import WorkloadSpec, load_spec
from repro.core.watchdog import DEFAULT_WINDOW
from repro.obs import ObservabilityOptions
from repro.sim.deployment import DeploymentConfig
from repro.workloads.traces import Trace

if TYPE_CHECKING:
    from repro.sweep import ResultCache


def run_benchmark(chain: str, deployment: Union[str, DeploymentConfig],
                  spec: Union[WorkloadSpec, str],
                  workload_name: str = "workload",
                  scale: Optional[float] = None,
                  seed: int = 0,
                  drain: float = DEFAULT_DRAIN,
                  max_sim_seconds: Optional[float] = None,
                  watchdog_window: float = DEFAULT_WINDOW,
                  observe: Optional[ObservabilityOptions] = None
                  ) -> BenchmarkResult:
    """Run one benchmark from a WorkloadSpec (or its YAML text)."""
    if isinstance(spec, str):
        spec = load_spec(spec)
    primary = Primary(chain, deployment, scale=scale, seed=seed,
                      observe=observe)
    return primary.run(spec, workload_name=workload_name, drain=drain,
                       max_sim_seconds=max_sim_seconds,
                       watchdog_window=watchdog_window)


def run_population(chain: str, deployment: Union[str, DeploymentConfig],
                   users: int,
                   rate_per_user: float = 0.001,
                   duration: float = 120.0,
                   cohort: Optional[int] = None,
                   arrival: str = "poisson",
                   accounts: int = 2_000,
                   scale: Optional[float] = None,
                   seed: int = 0,
                   drain: float = DEFAULT_DRAIN,
                   max_sim_seconds: Optional[float] = None,
                   watchdog_window: float = DEFAULT_WINDOW,
                   observe: Optional[ObservabilityOptions] = None
                   ) -> BenchmarkResult:
    """Run a population workload: *users* simulated users transferring at
    a constant per-user rate, as aggregate arrival processes plus a
    tracked cohort (see :mod:`repro.core.population` and docs/SCALE.md).
    """
    from repro.core.spec import AccountSample, TransferSpec, \
        simple_population_spec
    spec = simple_population_spec(
        users=users, interaction=TransferSpec(AccountSample(accounts)),
        rate_per_user=rate_per_user, duration=duration,
        cohort=cohort, arrival=arrival)
    return run_benchmark(chain, deployment, spec,
                         workload_name=f"population-{users}",
                         scale=scale, seed=seed, drain=drain,
                         max_sim_seconds=max_sim_seconds,
                         watchdog_window=watchdog_window,
                         observe=observe)


def run_trace(chain: str, deployment: Union[str, DeploymentConfig],
              trace: Trace,
              accounts: int = 2_000,
              clients: int = 1,
              scale: Optional[float] = None,
              seed: int = 0,
              drain: float = DEFAULT_DRAIN,
              max_sim_seconds: Optional[float] = None,
              watchdog_window: float = DEFAULT_WINDOW,
              observe: Optional[ObservabilityOptions] = None
              ) -> BenchmarkResult:
    """Run one of the workload-suite traces against a chain."""
    spec = trace.spec(accounts=accounts, clients=clients)
    return run_benchmark(chain, deployment, spec,
                         workload_name=trace.name,
                         scale=scale, seed=seed, drain=drain,
                         max_sim_seconds=max_sim_seconds,
                         watchdog_window=watchdog_window,
                         observe=observe)


def run_matrix(chains: Iterable[str],
               deployment: Union[str, DeploymentConfig],
               trace: Trace,
               scale: Optional[float] = None,
               seed: int = 0,
               workers: int = 1,
               cache: Optional["ResultCache"] = None,
               accounts: int = 2_000,
               clients: int = 1,
               drain: float = DEFAULT_DRAIN,
               max_sim_seconds: Optional[float] = None,
               watchdog_window: float = DEFAULT_WINDOW,
               observe: Optional[ObservabilityOptions] = None
               ) -> Dict[str, BenchmarkResult]:
    """Run the same trace against several chains (a figure column).

    A thin wrapper over a one-row :class:`repro.sweep.SweepSpec`: pass
    ``workers=N`` to fan the chains out over a process pool and
    ``cache=ResultCache(...)`` to replay unchanged cells from disk —
    single-worker, uncached calls behave exactly as before. A cell that
    *crashes* re-raises here (matching the old serial behaviour);
    watchdog-failed cells return their ``failed`` result like any other.
    """
    # imported here: repro.sweep imports this module for run_trace
    from repro.sweep import CellOptions, SweepSpec, run_sweep

    spec = SweepSpec(
        chains=tuple(chains),
        configurations=(deployment,),
        workloads=(trace,),
        seeds=(seed,),
        scales=(scale,),
        options=CellOptions(accounts=accounts, clients=clients, drain=drain,
                            max_sim_seconds=max_sim_seconds,
                            watchdog_window=watchdog_window,
                            observe=observe))
    sweep = run_sweep(spec, workers=workers, cache=cache)
    results: Dict[str, BenchmarkResult] = {}
    for outcome in sweep.outcomes:
        if outcome.result_json is None:
            failure = outcome.failure
            raise RuntimeError(
                f"benchmark cell {outcome.cell.label} crashed:"
                f" {failure}\n{failure.traceback_text}")
        results[outcome.cell.chain] = outcome.result
    return results
