"""DIABLO core: workload spec, Primary/Secondary, results, runner."""

from repro.core.interface import (
    BlockchainConnector,
    Client,
    SimConnector,
)
from repro.core.primary import Primary
from repro.core.results import BenchmarkResult, TransactionRecord
from repro.core.runner import run_benchmark, run_matrix, run_trace
from repro.core.secondary import Secondary
from repro.core.spec import (
    AccountSample,
    Behavior,
    ClientSpec,
    ContractSample,
    EndpointSample,
    InvokeSpec,
    LoadSchedule,
    LocationSample,
    TransferSpec,
    WorkloadGroup,
    WorkloadSpec,
    load_spec,
    parse_function_call,
    simple_spec,
    spec_from_dict,
)

__all__ = [
    "AccountSample",
    "Behavior",
    "BenchmarkResult",
    "BlockchainConnector",
    "Client",
    "ClientSpec",
    "ContractSample",
    "EndpointSample",
    "InvokeSpec",
    "LoadSchedule",
    "LocationSample",
    "Primary",
    "Secondary",
    "SimConnector",
    "TransactionRecord",
    "TransferSpec",
    "WorkloadGroup",
    "WorkloadSpec",
    "load_spec",
    "parse_function_call",
    "run_benchmark",
    "run_matrix",
    "run_trace",
    "simple_spec",
    "spec_from_dict",
]
