"""DIABLO Secondaries: distributed load generators (§4).

"Secondaries are responsible for the pre-signing of the transactions and
the execution of the workload, interacting directly with blockchain nodes."
Each Secondary is tagged with a location and submits to its collocated
blockchain nodes; its explicit worker threads mimic individual clients.

In the simulation a Secondary schedules submission events on the engine at
the exact times the workload's load schedule dictates (virtual-time load
generation — the reproduction is never bottlenecked by the generator, see
DESIGN.md). It records the submission timestamp right before triggering,
like the real implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.blockchains.base import ExperimentScale
from repro.chain.transaction import Transaction
from repro.core.interface import BlockchainConnector, Client
from repro.core.spec import Behavior
from repro.sim.engine import Engine

DEFAULT_TICK = 0.1

#: default for :class:`Secondary`'s batched emission path. The fast path
#: emits each tick's transactions through ``encode_batch``/``trigger_batch``
#: and is byte-identical to the per-transaction reference path (tested in
#: tests/core/test_emission_fastpath.py); the toggle exists so those tests
#: can run both paths against each other.
USE_FAST_PATH = True


@dataclass(slots=True)
class Assignment:
    """A behaviour executed by a set of clients on one Secondary."""

    clients: List[Client]
    behavior: Behavior


class Secondary:
    """One load-generating machine."""

    def __init__(self, name: str, region: str, engine: Engine,
                 connector: BlockchainConnector,
                 scale: ExperimentScale, tick: float = DEFAULT_TICK,
                 fast_path: Optional[bool] = None) -> None:
        self.name = name
        self.region = region
        self.engine = engine
        self.connector = connector
        self.scale = scale
        self.tick = tick
        self.fast_path = USE_FAST_PATH if fast_path is None else fast_path
        self.assignments: List[Assignment] = []
        self.sent: List[Tuple[Transaction, str]] = []  # (tx, client name)
        self.rejected = 0
        self.late_warnings = 0

    def assign(self, clients: List[Client], behavior: Behavior) -> None:
        if clients:
            self.assignments.append(Assignment(list(clients), behavior))

    @property
    def worker_count(self) -> int:
        return sum(len(a.clients) for a in self.assignments)

    # -- execution -----------------------------------------------------------------

    def start(self) -> None:
        """Schedule this Secondary's whole workload on the engine."""
        for assignment in self.assignments:
            self._start_assignment(assignment)

    def _start_assignment(self, assignment: Assignment) -> None:
        behavior = assignment.behavior
        duration = behavior.load.duration
        state = {"t": 0.0, "carry": 0.0, "cursor": 0}
        emit_label = f"{self.name}-emit"
        # hoisted per-assignment invariants (the fast path reads these in
        # the tick loop; the reference path keeps its original body)
        clients = assignment.clients
        nclients = len(clients)
        interaction = behavior.interaction
        rate_at = behavior.load.rate_at
        connector = self.connector
        engine = self.engine
        tick = self.tick
        late_after = 5 * tick
        rate_scale = self.scale.rate

        def emit_fast() -> None:
            """One tick: one encode_batch + one trigger_batch call.

            Byte-identical to :func:`emit` (the per-transaction
            reference): the carry accumulator and the account/client
            round-robin cursors advance arithmetically through exactly
            the same sequence, and the connector's batch forms are
            contractually equal to ``count`` encode/trigger pairs.
            """
            t = state["t"]
            if t >= duration:
                return
            # per-client rate times client count, scaled for the experiment
            state["carry"] += rate_scale(rate_at(t) * nclients) * tick
            count = int(state["carry"])
            state["carry"] -= count
            now = engine.now
            if now - t > late_after:
                self.late_warnings += 1
            if count:
                cursor = state["cursor"]
                state["cursor"] = cursor + count
                batch_clients = [clients[(cursor + i) % nclients]
                                 for i in range(count)]
                txs = connector.encode_batch(interaction, None, now, count)
                accepted = connector.trigger_batch(batch_clients, txs)
                self.sent.extend(
                    zip(txs, (c.name for c in batch_clients)))
                self.rejected += count - accepted
            state["t"] = t + tick
            if state["t"] < duration:
                engine.schedule_after(tick, emit_fast, label=emit_label)

        def emit() -> None:
            t = state["t"]
            if t >= duration:
                return
            # per-client rate times client count, scaled for the experiment
            rate = behavior.load.rate_at(t) * len(assignment.clients)
            state["carry"] += self.scale.rate(rate) * self.tick
            count = int(state["carry"])
            state["carry"] -= count
            expected = t
            now = self.engine.now
            if now - expected > 5 * self.tick:
                # the real Secondary warns when it falls behind the Primary's
                # demanded schedule; virtual time cannot fall behind, but the
                # check is kept for interface parity
                self.late_warnings += 1
            for _ in range(count):
                client = assignment.clients[
                    state["cursor"] % len(assignment.clients)]
                state["cursor"] += 1
                encoded = self.connector.encode(
                    behavior.interaction, None, now)
                accepted = self.connector.trigger(client, encoded)
                self.sent.append((encoded, client.name))
                if not accepted:
                    self.rejected += 1
            state["t"] = t + self.tick
            if state["t"] < duration:
                self.engine.schedule_after(self.tick, emit,
                                           label=emit_label)

        tick_body = emit_fast if self.fast_path else emit
        self.engine.schedule_after(0.0, tick_body, label=f"{self.name}-start")
