"""DIABLO Secondaries: distributed load generators (§4).

"Secondaries are responsible for the pre-signing of the transactions and
the execution of the workload, interacting directly with blockchain nodes."
Each Secondary is tagged with a location and submits to its collocated
blockchain nodes; its explicit worker threads mimic individual clients.

In the simulation a Secondary schedules submission events on the engine at
the exact times the workload's load schedule dictates (virtual-time load
generation — the reproduction is never bottlenecked by the generator, see
DESIGN.md). It records the submission timestamp right before triggering,
like the real implementation.

Population workloads add an **aggregate lane** next to the classic client
assignments: an :class:`~repro.core.population.AggregateArrivals` process
decides how many of the population's untracked users transact each tick,
and the Secondary emits that count through the batched
``encode_batch``/``trigger_aggregate`` path — no per-client objects, so
millions of users cost one event per tick (see docs/SCALE.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.blockchains.base import ExperimentScale
from repro.chain.transaction import Transaction
from repro.core.interface import BlockchainConnector, Client
from repro.core.population import AggregateArrivals
from repro.core.spec import Behavior, Interaction
from repro.sim.engine import Engine

DEFAULT_TICK = 0.1

#: default for :class:`Secondary`'s batched emission path. The fast path
#: emits each tick's transactions through ``encode_batch``/``trigger_batch``
#: and is byte-identical to the per-transaction reference path (tested in
#: tests/core/test_emission_fastpath.py); the toggle exists so those tests
#: can run both paths against each other.
USE_FAST_PATH = True


@dataclass(slots=True)
class Assignment:
    """A behaviour executed by a set of clients on one Secondary."""

    clients: List[Client]
    behavior: Behavior


class Secondary:
    """One load-generating machine."""

    def __init__(self, name: str, region: str, engine: Engine,
                 connector: BlockchainConnector,
                 scale: ExperimentScale, tick: float = DEFAULT_TICK,
                 fast_path: Optional[bool] = None) -> None:
        self.name = name
        self.region = region
        self.engine = engine
        self.connector = connector
        self.scale = scale
        self.tick = tick
        self.fast_path = USE_FAST_PATH if fast_path is None else fast_path
        self.assignments: List[Assignment] = []
        self.sent: List[Tuple[Transaction, str]] = []  # (tx, client name)
        self.rejected = 0
        self.late_warnings = 0
        # the aggregate lane (population workloads): arrival processes
        # with no client objects behind them
        self.aggregates: List[Tuple[AggregateArrivals, Interaction]] = []
        self.aggregate_sent: List[Transaction] = []
        self.aggregate_rejected = 0

    def assign(self, clients: List[Client], behavior: Behavior) -> None:
        if clients:
            self.assignments.append(Assignment(list(clients), behavior))

    def assign_aggregate(self, process: AggregateArrivals,
                         interaction: Interaction) -> None:
        """Attach an aggregate arrival process (a population's untracked
        users) to this Secondary's emission schedule."""
        self.aggregates.append((process, interaction))

    @property
    def worker_count(self) -> int:
        return sum(len(a.clients) for a in self.assignments)

    # -- execution -----------------------------------------------------------------

    def start(self) -> None:
        """Schedule this Secondary's whole workload on the engine."""
        for assignment in self.assignments:
            self._start_assignment(assignment)
        for process, interaction in self.aggregates:
            self._start_aggregate(process, interaction)

    def _start_assignment(self, assignment: Assignment) -> None:
        behavior = assignment.behavior
        duration = behavior.load.duration
        state = {"t": 0.0, "carry": 0.0, "cursor": 0}
        emit_label = f"{self.name}-emit"
        # hoisted per-assignment invariants (the fast path reads these in
        # the tick loop; the reference path keeps its original body)
        clients = assignment.clients
        nclients = len(clients)
        interaction = behavior.interaction
        rate_at = behavior.load.rate_at
        connector = self.connector
        engine = self.engine
        tick = self.tick
        late_after = 5 * tick
        rate_scale = self.scale.rate

        def emit_fast() -> None:
            """One tick: one encode_batch + one trigger_batch call.

            Byte-identical to :func:`emit` (the per-transaction
            reference): the carry accumulator and the account/client
            round-robin cursors advance arithmetically through exactly
            the same sequence, and the connector's batch forms are
            contractually equal to ``count`` encode/trigger pairs.
            """
            t = state["t"]
            if t >= duration:
                return
            # per-client rate times client count, scaled for the experiment
            state["carry"] += rate_scale(rate_at(t) * nclients) * tick
            count = int(state["carry"])
            state["carry"] -= count
            now = engine.now
            if now - t > late_after:
                self.late_warnings += 1
            if count:
                cursor = state["cursor"]
                state["cursor"] = cursor + count
                batch_clients = [clients[(cursor + i) % nclients]
                                 for i in range(count)]
                txs = connector.encode_batch(interaction, None, now, count)
                accepted = connector.trigger_batch(batch_clients, txs)
                self.sent.extend(
                    zip(txs, (c.name for c in batch_clients)))
                self.rejected += count - accepted
            state["t"] = t + tick
            if state["t"] < duration:
                engine.schedule_after(tick, emit_fast, label=emit_label)

        def emit() -> None:
            t = state["t"]
            if t >= duration:
                return
            # per-client rate times client count, scaled for the experiment
            rate = behavior.load.rate_at(t) * len(assignment.clients)
            state["carry"] += self.scale.rate(rate) * self.tick
            count = int(state["carry"])
            state["carry"] -= count
            expected = t
            now = self.engine.now
            if now - expected > 5 * self.tick:
                # the real Secondary warns when it falls behind the Primary's
                # demanded schedule; virtual time cannot fall behind, but the
                # check is kept for interface parity
                self.late_warnings += 1
            for _ in range(count):
                client = assignment.clients[
                    state["cursor"] % len(assignment.clients)]
                state["cursor"] += 1
                encoded = self.connector.encode(
                    behavior.interaction, None, now)
                accepted = self.connector.trigger(client, encoded)
                self.sent.append((encoded, client.name))
                if not accepted:
                    self.rejected += 1
            state["t"] = t + self.tick
            if state["t"] < duration:
                self.engine.schedule_after(self.tick, emit,
                                           label=emit_label)

        tick_body = emit_fast if self.fast_path else emit
        self.engine.schedule_after(0.0, tick_body, label=f"{self.name}-start")

    def _start_aggregate(self, process: AggregateArrivals,
                         interaction: Interaction) -> None:
        """Tick loop for one aggregate arrival process.

        Each tick asks the process how many of its users transact
        (exactly one :meth:`AggregateArrivals.count_at` call per tick —
        the determinism contract), encodes that many transactions through
        the batched fast path and submits them on the aggregate lane.
        The transactions land in ``aggregate_sent``, not ``sent``: they
        carry no client identity and never become TransactionRecords.
        """
        duration = process.duration
        state = {"t": 0.0}
        emit_label = f"{self.name}-aggregate-emit"
        connector = self.connector
        engine = self.engine
        tick = self.tick

        def emit_aggregate() -> None:
            t = state["t"]
            if t >= duration:
                return
            count = process.count_at(t)
            if count:
                now = engine.now
                txs = connector.encode_batch(interaction, None, now, count)
                accepted = connector.trigger_aggregate(txs)
                self.aggregate_sent.extend(txs)
                self.aggregate_rejected += count - accepted
            state["t"] = t + tick
            if state["t"] < duration:
                engine.schedule_after(tick, emit_aggregate, label=emit_label)

        self.engine.schedule_after(0.0, emit_aggregate,
                                   label=f"{self.name}-aggregate-start")
