"""Aggregate client populations: millions of users as arrival processes.

The classic DIABLO client layer simulates every client as an individual
process-like object, which caps realistic population size around the
thousands. A workload can instead declare a ``population:`` — e.g. five
million users with a per-user rate profile — and the harness simulates it
as two lanes:

* an **aggregate lane**: the non-cohort users collapse into one arrival
  process per population section. Each Secondary tick draws how many of
  those users transact this tick (Poisson via its normal approximation,
  optionally modulated by a two-state burst envelope, or the exact
  deterministic carry accumulator) and emits that count through the
  batched ``encode_batch``/``submit_batch`` fast path. The transactions
  are real — they hit admission, the mempool, consensus and the VM — but
  no per-client object exists for them;
* a **cohort lane**: a deterministic sample of individually-tracked
  clients (default :data:`DEFAULT_COHORT`) runs through the unchanged
  classic client path, preserving per-transaction latency/retry/fee-bump
  fidelity and feeding the lifecycle tracer. Cohort members behave
  exactly like single users (they carry the *per-user* rate schedule), so
  a population whose cohort covers every user is byte-identical to the
  classic client path.

Determinism: all stochastic draws come from :class:`~repro.common.rng.
BlockSampler` blocks on named streams derived from the experiment seed
(streams ``("population", "arrivals")`` and ``("population", "burst")``),
so a run is a pure function of (chain, deployment, spec, seed, scale) at
any sweep worker count. docs/SCALE.md documents the model's math, which
metrics are cohort-exact versus population-scaled, and the knee-finding
sweep this layer unlocks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import SpecError
from repro.common.rng import BlockSampler, RngFactory

if TYPE_CHECKING:  # imported lazily at runtime (spec.py imports us)
    from repro.chain.transaction import Transaction
    from repro.core.results import TransactionRecord
    from repro.core.spec import Interaction, LoadSchedule

#: individually-tracked clients sampled from the population by default
DEFAULT_COHORT = 1_000

#: supported aggregate arrival processes
ARRIVAL_KINDS = ("poisson", "burst", "deterministic")


@dataclass(frozen=True)
class PopulationSpec:
    """A client population declared by a workload's ``population:`` section.

    ``load`` is the **per-user** rate schedule (tiny numbers — a user who
    transacts every 20 minutes has a rate of ~0.0008 TPS); the population
    offers ``users`` times that. ``cohort`` members are ordinary clients
    carrying exactly this per-user schedule, which is what makes a
    cohort-only population byte-identical to the classic client path.

    ``arrival`` picks the aggregate lane's count process per tick:

    * ``"poisson"`` (default) — the normal approximation to a Poisson
      with mean ``lambda = scaled_rate * tick`` (exact enough at
      population scale, where ``lambda`` is large);
    * ``"burst"`` — the same Poisson modulated by a two-state Markov
      envelope: a fraction ``burst_fraction`` of the time the rate runs
      at ``burst_factor`` times nominal, the rest at a compensating
      lower rate, so the mean offered load is unchanged;
    * ``"deterministic"`` — the classic carry accumulator (no variance),
      used by the identity tests.
    """

    users: int
    interaction: "Interaction"
    load: "LoadSchedule"                 # per-user rate schedule
    cohort: Optional[int] = None         # None -> min(DEFAULT_COHORT, users)
    arrival: str = "poisson"
    burst_factor: float = 4.0
    burst_fraction: float = 0.1
    burst_length: float = 2.0            # mean burst duration, seconds
    location: str = ".*"
    view: str = ".*"

    def __post_init__(self) -> None:
        if self.users <= 0:
            raise SpecError(f"population.users must be positive: {self.users}")
        if self.cohort is not None:
            if self.cohort <= 0:
                raise SpecError(
                    f"population.cohort must be positive: {self.cohort}")
            if self.cohort > self.users:
                raise SpecError(
                    f"population.cohort ({self.cohort}) cannot exceed"
                    f" population.users ({self.users})")
        if self.arrival not in ARRIVAL_KINDS:
            raise SpecError(
                f"unknown population.arrival {self.arrival!r}"
                f" (have: {', '.join(ARRIVAL_KINDS)})")
        if self.arrival == "burst":
            if self.burst_factor < 1.0:
                raise SpecError("population.burst_factor must be >= 1")
            if not 0.0 < self.burst_fraction < 1.0:
                raise SpecError(
                    "population.burst_fraction must be in (0, 1)")
            if self.burst_factor * self.burst_fraction >= 1.0:
                # the off-burst rate (1 - f*B)/(1 - f) must stay positive
                # for the envelope to preserve the nominal mean rate
                raise SpecError(
                    "population.burst_factor * burst_fraction must be < 1"
                    " so the off-burst rate stays positive")
            if self.burst_length <= 0:
                raise SpecError("population.burst_length must be positive")

    @property
    def cohort_size(self) -> int:
        """Resolved cohort size (the default caps at the population)."""
        if self.cohort is not None:
            return self.cohort
        return min(DEFAULT_COHORT, self.users)

    @property
    def aggregate_users(self) -> int:
        """Users carried by the aggregate lane (population minus cohort)."""
        return self.users - self.cohort_size

    @property
    def duration(self) -> float:
        return self.load.duration

    def offered_load(self) -> float:
        """Average population-wide offered rate in (unscaled) TPS."""
        duration = self.load.duration
        if duration <= 0:
            return 0.0
        return self.users * self.load.total_transactions() / duration


class AggregateArrivals:
    """Per-tick transaction counts for the aggregate lane's users.

    One instance owns the population's named RNG streams exclusively (the
    :class:`BlockSampler` contract), and is stepped exactly once per
    Secondary tick via :meth:`count_at` — the draw sequence is therefore
    a deterministic function of the spec, the seed and the scale, never
    of wall-clock or worker count.
    """

    __slots__ = ("spec", "users", "duration", "tick", "_rate_at",
                 "_rate_scale", "_carry", "_normal", "_uniform",
                 "_bursting", "_p_enter", "_p_exit", "_on_mult", "_off_mult")

    def __init__(self, spec: PopulationSpec, rate_scale, tick: float,
                 rng_factory: RngFactory) -> None:
        self.spec = spec
        self.users = spec.aggregate_users
        self.duration = spec.load.duration
        self.tick = tick
        self._rate_at = spec.load.rate_at
        self._rate_scale = rate_scale
        self._carry = 0.0
        self._normal = BlockSampler(
            rng_factory.stream("population", "arrivals"), "standard_normal")
        self._uniform = (BlockSampler(
            rng_factory.stream("population", "burst"), "random")
            if spec.arrival == "burst" else None)
        self._bursting = False
        if spec.arrival == "burst":
            # two-state Markov envelope: mean burst length burst_length,
            # stationary on-fraction burst_fraction, mean-preserving rates
            f = spec.burst_fraction
            self._p_exit = min(1.0, tick / spec.burst_length)
            self._p_enter = min(1.0, self._p_exit * f / (1.0 - f))
            self._on_mult = spec.burst_factor
            self._off_mult = (1.0 - f * spec.burst_factor) / (1.0 - f)
        else:
            self._p_exit = self._p_enter = 0.0
            self._on_mult = self._off_mult = 1.0

    def count_at(self, t: float) -> int:
        """Aggregate transactions arriving in the tick starting at *t*.

        Call exactly once per tick, in tick order — the burst envelope
        advances one step per call and the Poisson draw consumes one
        normal variate whenever the tick's mean is positive.
        """
        lam = self._rate_scale(self._rate_at(t) * self.users) * self.tick
        if self._uniform is not None:
            # one uniform per tick, drawn unconditionally so the stream
            # position depends only on the tick index
            u = self._uniform.next()
            if self._bursting:
                if u < self._p_exit:
                    self._bursting = False
            elif u < self._p_enter:
                self._bursting = True
            lam *= self._on_mult if self._bursting else self._off_mult
        if self.spec.arrival == "deterministic":
            # the classic Secondary carry accumulator, variance-free
            self._carry += lam
            count = int(self._carry)
            self._carry -= count
            return count
        if lam <= 0.0:
            return 0
        # normal approximation to Poisson(lam): exact enough at population
        # scale, O(1) draws per tick at any lambda (see docs/SCALE.md)
        count = int(round(lam + math.sqrt(lam) * self._normal.next()))
        return count if count > 0 else 0


# -- result aggregation -------------------------------------------------------


def _latency_stats(latencies: Sequence[float]) -> Dict[str, float]:
    if not latencies:
        return {}
    ordered = sorted(latencies)
    n = len(ordered)
    return {
        "latency_avg_s": round(sum(ordered) / n, 3),
        "latency_p50_s": round(ordered[n // 2], 3),
        "latency_p95_s": round(ordered[min(n - 1, (n * 95) // 100)], 3),
    }


def population_block(spec: PopulationSpec,
                     cohort_records: Sequence["TransactionRecord"],
                     aggregate_sent: Sequence["Transaction"],
                     duration: float,
                     scale_factor: float) -> Dict[str, object]:
    """The ``population`` block of a :class:`BenchmarkResult` summary.

    Three clearly-labelled sections:

    * ``cohort_exact`` — per-transaction metrics from the tracked cohort
      (exact for those users: full retry/fee-bump/latency fidelity);
    * ``aggregate_lane`` — totals from the aggregate arrival process
      (directly simulated load, but no per-client identity);
    * ``population_scaled`` — the full-population estimates: combined
      throughput/commit counts (both lanes are real simulated traffic)
      with latency quantiles borrowed from the cohort distribution.
    """
    unscale = (lambda rate: rate / scale_factor if scale_factor > 0
               else rate)
    cohort_committed = [r for r in cohort_records if r.committed]
    cohort_in_window = [r for r in cohort_committed
                        if r.committed_at <= duration]
    cohort: Dict[str, object] = {
        "submitted": len(cohort_records),
        "committed": len(cohort_committed),
        "commit_ratio": round(
            len(cohort_committed) / len(cohort_records), 4)
        if cohort_records else 0.0,
        "retries_per_tx": round(
            sum(r.retries for r in cohort_records) / len(cohort_records), 4)
        if cohort_records else 0.0,
    }
    cohort.update(_latency_stats([r.latency for r in cohort_committed]))
    agg_submitted = [tx for tx in aggregate_sent
                     if tx.submitted_at is not None]
    agg_committed = [tx for tx in agg_submitted
                     if tx.committed_at is not None and not tx.aborted]
    agg_in_window = [tx for tx in agg_committed
                     if tx.committed_at <= duration]
    aggregate: Dict[str, object] = {
        "submitted": len(agg_submitted),
        "committed": len(agg_committed),
        "dropped": sum(1 for tx in agg_submitted if tx.aborted),
        "commit_ratio": round(len(agg_committed) / len(agg_submitted), 4)
        if agg_submitted else 0.0,
    }
    aggregate.update(_latency_stats(
        [tx.committed_at - tx.submitted_at for tx in agg_committed]))
    combined_submitted = len(cohort_records) + len(agg_submitted)
    combined_committed = len(cohort_committed) + len(agg_committed)
    committed_in_window = len(cohort_in_window) + len(agg_in_window)
    scaled: Dict[str, object] = {
        "offered_load_tps": round(spec.offered_load(), 2),
        "submitted": combined_submitted,
        "committed": combined_committed,
        "commit_ratio": round(combined_committed / combined_submitted, 4)
        if combined_submitted else 0.0,
        "throughput_tps": round(
            unscale(committed_in_window / duration), 2)
        if duration > 0 else 0.0,
    }
    for key in ("latency_p50_s", "latency_p95_s"):
        if key in cohort:
            scaled[key] = cohort[key]
    return {
        "users": spec.users,
        "cohort_size": spec.cohort_size,
        "aggregate_users": spec.aggregate_users,
        "arrival": spec.arrival,
        "cohort_exact": cohort,
        "aggregate_lane": aggregate,
        "population_scaled": scaled,
    }
