"""The DIABLO blockchain abstraction (§4).

"To add a new blockchain, one has to implement at least one of these
interaction types as well as 4 functions that convert the benchmark
specification to an executable test program: (i) s.create_client(E),
(ii) create_resource(phi_r), (iii) encode(phi_i, r, t) to produce an opaque
encoded interaction e, and (iv) c.trigger(e)."

:class:`BlockchainConnector` is that interface; :class:`SimConnector` is
its implementation for the simulated chains of :mod:`repro.blockchains`.
Implementing a connector for a real chain (e.g. via web3.py) requires
exactly these four methods — the paper notes real implementations run
1,000-1,200 LOC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.blockchains.base import BlockchainNetwork
from repro.chain.account import Account
from repro.chain.transaction import Transaction, invoke, transfer
from repro.common.errors import ConfigurationError, SpecError
from repro.contracts import CONTRACT_FACTORIES, estimated_call_gas
from repro.core.spec import (
    AccountSample,
    ContractSample,
    Interaction,
    InvokeSpec,
    TransferSpec,
)

TRANSFER_GAS_LIMIT = 21_000
DEFAULT_INVOKE_GAS_LIMIT = 5_000_000


@dataclass
class Client:
    """A DIABLO client: one explicit worker thread on a Secondary (§4)."""

    name: str
    location: str
    endpoints: Tuple[str, ...]

    def trigger(self, connector: "BlockchainConnector",
                encoded: Transaction) -> bool:
        return connector.trigger(self, encoded)


class BlockchainConnector:
    """The 4-function abstraction DIABLO programs against."""

    def create_client(self, name: str, location: str,
                      endpoints: Sequence[str]) -> Client:
        raise NotImplementedError

    def create_resource(self, spec: Any) -> Any:
        raise NotImplementedError

    def encode(self, interaction: Interaction, resource: Any,
               t: float) -> Transaction:
        raise NotImplementedError

    def trigger(self, client: Client, encoded: Transaction) -> bool:
        raise NotImplementedError


class SimConnector(BlockchainConnector):
    """Connector for the simulated blockchains."""

    def __init__(self, network: BlockchainNetwork) -> None:
        self.network = network
        self._account_cursor = 0
        self._gas_estimates: dict[Tuple[str, str], int] = {}

    # -- clients -----------------------------------------------------------------

    def create_client(self, name: str, location: str,
                      endpoints: Sequence[str]) -> Client:
        known = {ep.name for ep in self.network.endpoints}
        for endpoint in endpoints:
            if endpoint not in known:
                raise ConfigurationError(
                    f"client {name}: unknown endpoint {endpoint!r}")
        return Client(name, location, tuple(endpoints))

    # -- resources -----------------------------------------------------------------

    def create_resource(self, spec: Any) -> Any:
        """Provision accounts or deploy a contract before the benchmark."""
        if isinstance(spec, AccountSample):
            self.network.create_accounts(spec.number)
            return self.network.accounts
        if isinstance(spec, ContractSample):
            try:
                factory = CONTRACT_FACTORIES[spec.name]
            except KeyError:
                raise SpecError(
                    f"unknown DApp {spec.name!r};"
                    f" available: {sorted(CONTRACT_FACTORIES)}") from None
            contract = factory()
            self.network.deploy_contract(contract)
            return contract
        raise SpecError(f"cannot provision resource {spec!r}")

    # -- encoding ----------------------------------------------------------------------

    def _next_account(self) -> Account:
        accounts = self.network.accounts
        if len(accounts) == 0:
            raise ConfigurationError("no accounts provisioned")
        account = list(accounts)[self._account_cursor % len(accounts)]
        self._account_cursor += 1
        return account

    def _contract_name(self, spec_name: str) -> str:
        """Map a DApp key ('dota') to its deployed contract name."""
        return CONTRACT_FACTORIES[spec_name]().name

    def _invoke_gas_limit(self, contract: str, function: str,
                          sample_tx: Transaction) -> int:
        """Estimate a gas limit for a DApp call (probe once, cache).

        Mirrors eth_estimateGas + safety margin. When the probe hits the
        VM's hard budget the client still submits with a generous limit —
        the paper's clients likewise submitted and received "budget
        exceeded" errors from the chain (§6.4).
        """
        key = (contract, function)
        cached = self._gas_estimates.get(key)
        if cached is not None:
            return cached
        status, gas_used = self.network.vm.probe_gas(
            self.network.state, sample_tx)
        if status.value == "success":
            limit = int(gas_used * 1.5)
        else:
            limit = max(DEFAULT_INVOKE_GAS_LIMIT, int(gas_used * 2))
        self._gas_estimates[key] = limit
        return limit

    def encode(self, interaction: Interaction, resource: Any,
               t: float) -> Transaction:
        """Build and pre-sign the transaction for one interaction event.

        Secondaries pre-sign transactions (§4); the signature uses the
        chain's scheme so the signing cost model applies.
        """
        account = self._next_account()
        if isinstance(interaction, TransferSpec):
            recipient = self._next_account()
            tx = transfer(account.address, recipient.address,
                          amount=interaction.amount,
                          sequence=account.next_sequence(),
                          gas_limit=TRANSFER_GAS_LIMIT)
        elif isinstance(interaction, InvokeSpec):
            contract_name = self._contract_name(interaction.contract.name)
            tx = invoke(account.address, contract_name,
                        interaction.function, interaction.args,
                        sequence=account.next_sequence(),
                        gas_limit=DEFAULT_INVOKE_GAS_LIMIT)
            tx.gas_limit = self._invoke_gas_limit(
                contract_name, interaction.function, tx)
        else:
            raise SpecError(f"unknown interaction {interaction!r}")
        market = self.network.fee_market
        if market is not None:
            # honest wallets price at the current suggestion (base fee
            # times headroom plus default tip); the signature below covers
            # the price fields, like a real signed envelope
            tx.fee_per_gas, tx.tip = market.suggest()
        scheme = self.network.params.signature_scheme
        tx.signature = scheme.sign(account.private_key, tx.signing_payload())
        if self.network.params.tx_expiry is not None:
            tx.recent_block_hash = self.network.ledger.head.block_hash
        return tx

    # -- triggering ----------------------------------------------------------------------

    def trigger(self, client: Client, encoded: Transaction) -> bool:
        """Send the encoded interaction to the client's blockchain node."""
        return self.network.submit(encoded).accepted
