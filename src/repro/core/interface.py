"""The DIABLO blockchain abstraction (§4).

"To add a new blockchain, one has to implement at least one of these
interaction types as well as 4 functions that convert the benchmark
specification to an executable test program: (i) s.create_client(E),
(ii) create_resource(phi_r), (iii) encode(phi_i, r, t) to produce an opaque
encoded interaction e, and (iv) c.trigger(e)."

:class:`BlockchainConnector` is that interface; :class:`SimConnector` is
its implementation for the simulated chains of :mod:`repro.blockchains`.
Implementing a connector for a real chain (e.g. via web3.py) requires
exactly these four methods — the paper notes real implementations run
1,000-1,200 LOC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.blockchains.base import BlockchainNetwork
from repro.chain.account import Account
from repro.chain.transaction import Transaction, TxKind, invoke, transfer
from repro.common.errors import ConfigurationError, SpecError
from repro.contracts import CONTRACT_FACTORIES, estimated_call_gas
from repro.core.spec import (
    AccountSample,
    ContractSample,
    Interaction,
    InvokeSpec,
    TransferSpec,
)

TRANSFER_GAS_LIMIT = 21_000
DEFAULT_INVOKE_GAS_LIMIT = 5_000_000


@dataclass(slots=True)
class Client:
    """A DIABLO client: one explicit worker thread on a Secondary (§4)."""

    name: str
    location: str
    endpoints: Tuple[str, ...]

    def trigger(self, connector: "BlockchainConnector",
                encoded: Transaction) -> bool:
        return connector.trigger(self, encoded)


class BlockchainConnector:
    """The 4-function abstraction DIABLO programs against."""

    def create_client(self, name: str, location: str,
                      endpoints: Sequence[str]) -> Client:
        raise NotImplementedError

    def create_resource(self, spec: Any) -> Any:
        raise NotImplementedError

    def encode(self, interaction: Interaction, resource: Any,
               t: float) -> Transaction:
        raise NotImplementedError

    def trigger(self, client: Client, encoded: Transaction) -> bool:
        raise NotImplementedError

    # -- batched emission ----------------------------------------------------------
    #
    # One Secondary tick emits `count` interactions at the same virtual
    # instant; the batch forms let a connector amortize per-transaction
    # plumbing. The defaults delegate to encode()/trigger() so any
    # connector is batch-capable, and the contract is that a batch is
    # observably identical to `count` sequential encode/trigger pairs.

    def encode_batch(self, interaction: Interaction, resource: Any,
                     t: float, count: int) -> List[Transaction]:
        return [self.encode(interaction, resource, t) for _ in range(count)]

    def trigger_batch(self, clients: Sequence[Client],
                      encoded: Sequence[Transaction]) -> int:
        """Trigger one encoded interaction per client; return #accepted."""
        accepted = 0
        for client, tx in zip(clients, encoded):
            if self.trigger(client, tx):
                accepted += 1
        return accepted

    def trigger_aggregate(self, encoded: Sequence[Transaction]) -> int:
        """Submit a population's aggregate-lane batch; return #accepted.

        Aggregate transactions have no client object behind them — they
        represent the untracked users of a ``population:`` workload
        (see :mod:`repro.core.population`). The default funnels them
        through :meth:`trigger` under one shared placeholder client so
        any connector is population-capable.
        """
        if not hasattr(self, "_population_client"):
            self._population_client = Client("population", "", ())
        accepted = 0
        for tx in encoded:
            if self.trigger(self._population_client, tx):
                accepted += 1
        return accepted


class SimConnector(BlockchainConnector):
    """Connector for the simulated blockchains."""

    def __init__(self, network: BlockchainNetwork) -> None:
        self.network = network
        self._account_cursor = 0
        self._gas_estimates: dict[Tuple[str, str], int] = {}
        # hot-path caches: the materialized account ring (the registry is
        # append-only, so a length check is a complete invalidation
        # signal), one precomputed signer per account, and the DApp-key ->
        # deployed-contract-name mapping
        self._ring: List[Account] = []
        self._signers: dict[str, Any] = {}
        self._contract_names: dict[str, str] = {}

    # -- clients -----------------------------------------------------------------

    def create_client(self, name: str, location: str,
                      endpoints: Sequence[str]) -> Client:
        known = {ep.name for ep in self.network.endpoints}
        for endpoint in endpoints:
            if endpoint not in known:
                raise ConfigurationError(
                    f"client {name}: unknown endpoint {endpoint!r}")
        return Client(name, location, tuple(endpoints))

    # -- resources -----------------------------------------------------------------

    def create_resource(self, spec: Any) -> Any:
        """Provision accounts or deploy a contract before the benchmark."""
        if isinstance(spec, AccountSample):
            self.network.create_accounts(spec.number)
            return self.network.accounts
        if isinstance(spec, ContractSample):
            try:
                factory = CONTRACT_FACTORIES[spec.name]
            except KeyError:
                raise SpecError(
                    f"unknown DApp {spec.name!r};"
                    f" available: {sorted(CONTRACT_FACTORIES)}") from None
            contract = factory()
            self.network.deploy_contract(contract)
            return contract
        raise SpecError(f"cannot provision resource {spec!r}")

    # -- encoding ----------------------------------------------------------------------

    def _account_ring(self) -> List[Account]:
        """The provisioned accounts, materialized once for O(1) indexing."""
        accounts = self.network.accounts
        n = len(accounts)
        if n == 0:
            raise ConfigurationError("no accounts provisioned")
        ring = self._ring
        if len(ring) != n:
            ring = self._ring = list(accounts)
        return ring

    def _next_account(self) -> Account:
        ring = self._account_ring()
        account = ring[self._account_cursor % len(ring)]
        self._account_cursor += 1
        return account

    def _signer_for(self, account: Account) -> Any:
        """A cached per-account fast signer (see crypto.signing)."""
        signer = self._signers.get(account.address)
        if signer is None:
            scheme = self.network.params.signature_scheme
            signer = self._signers[account.address] = scheme.signer(
                account.private_key)
        return signer

    def _contract_name(self, spec_name: str) -> str:
        """Map a DApp key ('dota') to its deployed contract name."""
        name = self._contract_names.get(spec_name)
        if name is None:
            name = self._contract_names[spec_name] = \
                CONTRACT_FACTORIES[spec_name]().name
        return name

    def _invoke_gas_limit(self, contract: str, function: str,
                          sample_tx: Transaction) -> int:
        """Estimate a gas limit for a DApp call (probe once, cache).

        Mirrors eth_estimateGas + safety margin. When the probe hits the
        VM's hard budget the client still submits with a generous limit —
        the paper's clients likewise submitted and received "budget
        exceeded" errors from the chain (§6.4).
        """
        key = (contract, function)
        cached = self._gas_estimates.get(key)
        if cached is not None:
            return cached
        status, gas_used = self.network.vm.probe_gas(
            self.network.state, sample_tx)
        if status.value == "success":
            limit = int(gas_used * 1.5)
        else:
            limit = max(DEFAULT_INVOKE_GAS_LIMIT, int(gas_used * 2))
        self._gas_estimates[key] = limit
        return limit

    def encode(self, interaction: Interaction, resource: Any,
               t: float) -> Transaction:
        """Build and pre-sign the transaction for one interaction event.

        Secondaries pre-sign transactions (§4); the signature uses the
        chain's scheme so the signing cost model applies.
        """
        account = self._next_account()
        if isinstance(interaction, TransferSpec):
            recipient = self._next_account()
            tx = transfer(account.address, recipient.address,
                          amount=interaction.amount,
                          sequence=account.next_sequence(),
                          gas_limit=TRANSFER_GAS_LIMIT)
        elif isinstance(interaction, InvokeSpec):
            contract_name = self._contract_name(interaction.contract.name)
            tx = invoke(account.address, contract_name,
                        interaction.function, interaction.args,
                        sequence=account.next_sequence(),
                        gas_limit=DEFAULT_INVOKE_GAS_LIMIT)
            tx.gas_limit = self._invoke_gas_limit(
                contract_name, interaction.function, tx)
        else:
            raise SpecError(f"unknown interaction {interaction!r}")
        market = self.network.fee_market
        if market is not None:
            # honest wallets price at the current suggestion (base fee
            # times headroom plus default tip); the signature below covers
            # the price fields, like a real signed envelope
            tx.fee_per_gas, tx.tip = market.suggest()
        tx.signature = self._signer_for(account)(tx.signing_payload())
        if self.network.params.tx_expiry is not None:
            tx.recent_block_hash = self.network.ledger.head.block_hash
        return tx

    def encode_batch(self, interaction: Interaction, resource: Any,
                     t: float, count: int) -> List[Transaction]:
        """Encode one tick's worth of interactions in a single pass.

        Byte-identical to ``count`` sequential :meth:`encode` calls
        (tested per chain in tests/core/test_emission_fastpath.py): the
        account cursor advances arithmetically over the materialized
        ring, per-transaction state (account sequence numbers, tx uids)
        is consumed in the same order, and the invariant lookups —
        fee-market suggestion callable, signature scheme, ledger head —
        are hoisted out of the loop. Hoisting the head hash is safe
        because the whole batch runs inside one engine callback and the
        head only moves in block-append events.
        """
        if count <= 0:
            return []
        network = self.network
        ring = self._account_ring()
        n = len(ring)
        cursor = self._account_cursor
        signers = self._signers
        signer_for = self._signer_for
        market = network.fee_market
        suggest = market.suggest if market is not None else None
        expiry = network.params.tx_expiry is not None
        head_hash = network.ledger.head.block_hash if expiry else None
        txs: List[Transaction] = []
        append = txs.append
        if isinstance(interaction, TransferSpec):
            amount = interaction.amount
            for _ in range(count):
                account = ring[cursor % n]
                recipient = ring[(cursor + 1) % n]
                cursor += 2
                tx = Transaction(sender=account.address, kind=TxKind.TRANSFER,
                                 amount=amount, recipient=recipient.address,
                                 sequence=account.next_sequence(),
                                 gas_limit=TRANSFER_GAS_LIMIT)
                if suggest is not None:
                    tx.fee_per_gas, tx.tip = suggest()
                signer = signers.get(account.address)
                if signer is None:
                    signer = signer_for(account)
                tx.signature = signer(tx.signing_payload())
                if expiry:
                    tx.recent_block_hash = head_hash
                append(tx)
        elif isinstance(interaction, InvokeSpec):
            contract_name = self._contract_name(interaction.contract.name)
            function = interaction.function
            args = tuple(interaction.args)
            for _ in range(count):
                account = ring[cursor % n]
                cursor += 1
                tx = Transaction(sender=account.address, kind=TxKind.INVOKE,
                                 contract=contract_name, function=function,
                                 args=args, sequence=account.next_sequence(),
                                 gas_limit=DEFAULT_INVOKE_GAS_LIMIT)
                tx.gas_limit = self._invoke_gas_limit(
                    contract_name, function, tx)
                if suggest is not None:
                    tx.fee_per_gas, tx.tip = suggest()
                signer = signers.get(account.address)
                if signer is None:
                    signer = signer_for(account)
                tx.signature = signer(tx.signing_payload())
                if expiry:
                    tx.recent_block_hash = head_hash
                append(tx)
        else:
            raise SpecError(f"unknown interaction {interaction!r}")
        self._account_cursor = cursor
        return txs

    # -- triggering ----------------------------------------------------------------------

    def trigger(self, client: Client, encoded: Transaction) -> bool:
        """Send the encoded interaction to the client's blockchain node."""
        return self.network.submit(encoded).accepted

    def trigger_batch(self, clients: Sequence[Client],
                      encoded: Sequence[Transaction]) -> int:
        """Submit a tick's batch through the network's batched fast lane.

        The simulated network ignores which client submits (clients share
        their region's endpoints), so the batch collapses to one
        :meth:`BlockchainNetwork.submit_batch` call.
        """
        return self.network.submit_batch(encoded)

    def trigger_aggregate(self, encoded: Sequence[Transaction]) -> int:
        """Submit an aggregate-lane batch, tagged for lane accounting.

        Same admission path as client traffic; the ``lane`` tag only
        adds per-lane arrival counters to the chain stats so population
        runs can attribute load (see docs/SCALE.md).
        """
        return self.network.submit_batch(encoded, lane="aggregate")
