"""The DIABLO workload specification language (§4).

A benchmark configuration names the resources of the test (accounts,
contracts), maps clients to Secondary locations and blockchain endpoints
(the paper's function ``M``), and gives each client a behaviour: an
interaction to perform at a rate schedule. The YAML form is the paper's,
custom tags included:

.. code-block:: yaml

    let:
      - &loc { sample: !location [ "us-east-2" ] }
      - &end { sample: !endpoint [ ".*" ] }
      - &acc { sample: !account { number: 2000 } }
      - &dapp { sample: !contract { name: "dota" } }
    workloads:
      - number: 3
        client:
          location: *loc
          view: *end
          behavior:
            - interaction: !invoke
                from: *acc
                contract: *dapp
                function: "update(1, 1)"
              load:
                0: 4432
                50: 4438
                120: 0

A configuration may instead declare a client **population** — millions of
users simulated as aggregate arrival processes plus a tracked cohort
(see :mod:`repro.core.population` and docs/SCALE.md):

.. code-block:: yaml

    population:
      users: 5_000_000
      rate_per_user: 0.001     # each user averages one tx per ~17 min
      duration: 120
      cohort: 1000             # individually-tracked sample (default)
      arrival: poisson         # or burst / deterministic
      interaction: !transfer
        from: { sample: !account { number: 2000 } }

``population`` and ``workloads`` are mutually exclusive: a population
already says how many users exist, so an explicit client list alongside
it is rejected at parse time.

Specs can equally be built programmatically from the dataclasses below.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import yaml

from repro.common.errors import SpecError
from repro.core.population import PopulationSpec
from repro.econ.fees import FeeSpec
from repro.sim.byzantine import (
    ByzantineEvent,
    ByzantineSchedule,
    byzantine_events_from_dicts,
)
from repro.sim.dos import AdversarySpec
from repro.sim.faults import FaultEvent, FaultSchedule, events_from_dicts

# -- samples (the `let:` bindings) --------------------------------------------


@dataclass(frozen=True)
class LocationSample:
    """Secondary locations, by region tag (``!location``)."""

    patterns: Tuple[str, ...]

    def matches(self, region: str) -> bool:
        return any(re.fullmatch(p, region) for p in self.patterns)


@dataclass(frozen=True)
class EndpointSample:
    """Blockchain endpoints, by name regex (``!endpoint``)."""

    patterns: Tuple[str, ...]

    def matches(self, endpoint_name: str) -> bool:
        return any(re.fullmatch(p, endpoint_name) for p in self.patterns)


@dataclass(frozen=True)
class AccountSample:
    """A population of funded accounts (``!account``)."""

    number: int

    def __post_init__(self) -> None:
        if self.number <= 0:
            raise SpecError("account sample needs a positive number")


@dataclass(frozen=True)
class ContractSample:
    """A deployed DApp instance (``!contract``)."""

    name: str


Sample = Union[LocationSample, EndpointSample, AccountSample, ContractSample]

# -- interactions ---------------------------------------------------------------


_CALL_RE = re.compile(r"^\s*(\w+)\s*(?:\((.*)\))?\s*$")


def parse_function_call(call: str) -> Tuple[str, Tuple[Any, ...]]:
    """Parse ``"update(1, 1)"`` into ``("update", (1, 1))``.

    Arguments are YAML scalars (ints, floats, strings).
    """
    match = _CALL_RE.match(call)
    if match is None:
        raise SpecError(f"cannot parse function call {call!r}")
    name, arg_text = match.group(1), match.group(2)
    if not arg_text:
        return name, ()
    args = []
    for chunk in arg_text.split(","):
        chunk = chunk.strip()
        args.append(yaml.safe_load(chunk))
    return name, tuple(args)


@dataclass(frozen=True)
class InvokeSpec:
    """``!invoke``: call a DApp function from a pool of accounts."""

    from_accounts: AccountSample
    contract: ContractSample
    function: str
    args: Tuple[Any, ...] = ()

    @staticmethod
    def from_call(from_accounts: AccountSample, contract: ContractSample,
                  call: str) -> "InvokeSpec":
        name, args = parse_function_call(call)
        return InvokeSpec(from_accounts, contract, name, args)


@dataclass(frozen=True)
class TransferSpec:
    """``!transfer``: native coin transfer between sampled accounts."""

    from_accounts: AccountSample
    amount: int = 1


Interaction = Union[InvokeSpec, TransferSpec]

# -- load schedules -----------------------------------------------------------------


@dataclass(frozen=True)
class LoadSchedule:
    """Piecewise-constant request rate over time.

    ``points`` maps a start time to a rate; the schedule ends at the last
    point (whose rate is conventionally 0, as in the paper's example).
    """

    points: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise SpecError("load schedule needs at least one point")
        times = [t for t, _ in self.points]
        if times != sorted(times):
            raise SpecError("load schedule times must be increasing")
        if any(rate < 0 for _, rate in self.points):
            raise SpecError("load rates cannot be negative")

    @staticmethod
    def from_mapping(mapping: Dict[float, float]) -> "LoadSchedule":
        return LoadSchedule(tuple(sorted(
            (float(t), float(r)) for t, r in mapping.items())))

    @staticmethod
    def constant(rate: float, duration: float) -> "LoadSchedule":
        return LoadSchedule(((0.0, float(rate)), (float(duration), 0.0)))

    @property
    def duration(self) -> float:
        return self.points[-1][0]

    def rate_at(self, t: float) -> float:
        if t < 0 or t >= self.duration and self.duration > 0:
            return 0.0
        current = 0.0
        for start, rate in self.points:
            if start <= t:
                current = rate
            else:
                break
        return current

    def total_transactions(self) -> float:
        """Integral of the rate over the schedule."""
        total = 0.0
        for (t0, rate), (t1, _) in zip(self.points, self.points[1:]):
            total += rate * (t1 - t0)
        return total

    def scaled(self, factor: float) -> "LoadSchedule":
        """Scale every rate (used by the experiment scale transform)."""
        return LoadSchedule(tuple((t, r * factor) for t, r in self.points))


# -- client behaviours and workloads ---------------------------------------------------


@dataclass(frozen=True)
class Behavior:
    """One interaction performed at a load schedule."""

    interaction: Interaction
    load: LoadSchedule


@dataclass(frozen=True)
class ClientSpec:
    """Where a client runs, which endpoints it sees, and what it does."""

    location: LocationSample
    view: EndpointSample
    behaviors: Tuple[Behavior, ...]


@dataclass(frozen=True)
class WorkloadGroup:
    """``number`` identical clients sharing a ClientSpec."""

    number: int
    client: ClientSpec

    def __post_init__(self) -> None:
        if self.number <= 0:
            raise SpecError("workload group needs a positive client count")


@dataclass(frozen=True)
class WorkloadSpec:
    """A complete benchmark configuration.

    ``faults`` is an optional schedule of timed fault events (node crashes
    and recoveries, partitions, region outages, link degradation) applied
    to the chain's validators while the workload runs — see
    :mod:`repro.sim.faults` for the event vocabulary and the YAML syntax.

    ``byzantine`` is an optional schedule of adversarial misbehaviour
    windows (equivocation, vote withholding, delay/reorder, leader
    censorship) declared per validator — see :mod:`repro.sim.byzantine`.
    It composes with ``faults``: both sections may appear in one spec.

    ``deadline`` is an optional cap on total simulated seconds (load plus
    drain): a run that would outlive it is cut short and marked ``failed``
    — the guard against overloaded chains that never drain.

    ``fees`` activates the chain's fee market (dialect and overrides —
    see :class:`repro.econ.fees.FeeSpec`); ``adversary`` adds a
    budget-constrained DoS attacker bidding for blockspace on top of it
    (see :class:`repro.sim.dos.AdversarySpec`; an adversary without a
    ``fees`` section gets the chain's default fee market). Both are None
    when their sections are absent, and a None stays entirely out of the
    pipeline — benign runs are byte-identical to a spec class without
    these fields.

    ``population`` replaces the explicit client list with an aggregate
    population (:class:`repro.core.population.PopulationSpec`): a user
    count with a per-user rate profile, simulated as arrival processes
    plus a tracked cohort. It is mutually exclusive with ``workloads`` —
    a population already determines how many users exist.
    """

    workloads: Tuple[WorkloadGroup, ...] = ()
    faults: Tuple[FaultEvent, ...] = ()
    byzantine: Tuple[ByzantineEvent, ...] = ()
    deadline: Optional[float] = None
    fees: Optional[FeeSpec] = None
    adversary: Optional[AdversarySpec] = None
    population: Optional[PopulationSpec] = None

    def __post_init__(self) -> None:
        if self.population is not None and self.workloads:
            raise SpecError(
                "a spec cannot declare both 'population' (aggregate users)"
                " and 'workloads' (explicit client lists) — the population's"
                " user count already determines the clients")
        if not self.workloads and self.population is None:
            raise SpecError("a workload spec needs at least one workload")
        if self.deadline is not None and self.deadline <= 0:
            raise SpecError(f"deadline must be positive: {self.deadline}")
        # validate eagerly so a bad schedule fails at parse time
        FaultSchedule(self.faults)
        ByzantineSchedule(self.byzantine)

    def fault_schedule(self) -> FaultSchedule:
        """The fault events as a validated, time-ordered schedule."""
        return FaultSchedule(self.faults)

    def byzantine_schedule(self) -> ByzantineSchedule:
        """The byzantine events as a validated, time-ordered schedule."""
        return ByzantineSchedule(self.byzantine)

    def client_groups(self) -> Tuple[WorkloadGroup, ...]:
        """The workload groups the Primary dispatches clients from.

        For an explicit spec this is ``workloads`` verbatim. For a
        population it is the synthesized **cohort** group: ``cohort_size``
        ordinary clients each carrying the population's per-user schedule,
        so the tracked sample runs through the classic client path
        unchanged (and a cohort covering every user is byte-identical to
        an equivalent explicit spec). The aggregate lane is attached by
        the Primary separately — it has no client objects.
        """
        if self.population is None:
            return self.workloads
        pop = self.population
        cohort = WorkloadGroup(
            number=pop.cohort_size,
            client=ClientSpec(
                location=LocationSample((pop.location,)),
                view=EndpointSample((pop.view,)),
                behaviors=(Behavior(pop.interaction, pop.load),)))
        return (cohort,)

    @property
    def duration(self) -> float:
        durations = [behavior.load.duration
                     for group in self.workloads
                     for behavior in group.client.behaviors]
        if self.population is not None:
            durations.append(self.population.duration)
        return max(durations)

    def account_population(self) -> int:
        """Largest account sample any behaviour draws from."""
        sizes = [0]
        for group in self.workloads:
            for behavior in group.client.behaviors:
                interaction = behavior.interaction
                sizes.append(interaction.from_accounts.number)
        if self.population is not None:
            sizes.append(self.population.interaction.from_accounts.number)
        return max(sizes)

    def contracts_used(self) -> List[str]:
        names = []
        interactions = [behavior.interaction
                        for group in self.workloads
                        for behavior in group.client.behaviors]
        if self.population is not None:
            interactions.append(self.population.interaction)
        for interaction in interactions:
            if isinstance(interaction, InvokeSpec):
                name = interaction.contract.name
                if name not in names:
                    names.append(name)
        return names

    def offered_load(self) -> float:
        """Aggregate average offered rate in TPS."""
        total_tx = sum(group.number * behavior.load.total_transactions()
                       for group in self.workloads
                       for behavior in group.client.behaviors)
        if self.population is not None:
            total_tx += (self.population.users
                         * self.population.load.total_transactions())
        duration = self.duration
        return total_tx / duration if duration > 0 else 0.0


# -- YAML loading -----------------------------------------------------------------------


class _SpecLoader(yaml.SafeLoader):
    """SafeLoader plus the DIABLO custom tags."""


def _location(loader: yaml.Loader, node: yaml.Node) -> LocationSample:
    return LocationSample(tuple(loader.construct_sequence(node)))


def _endpoint(loader: yaml.Loader, node: yaml.Node) -> EndpointSample:
    return EndpointSample(tuple(loader.construct_sequence(node)))


def _account(loader: yaml.Loader, node: yaml.Node) -> AccountSample:
    mapping = loader.construct_mapping(node)
    return AccountSample(int(mapping["number"]))


def _contract(loader: yaml.Loader, node: yaml.Node) -> ContractSample:
    mapping = loader.construct_mapping(node)
    return ContractSample(str(mapping["name"]))


def _invoke(loader: yaml.Loader, node: yaml.Node) -> Dict[str, Any]:
    mapping = loader.construct_mapping(node, deep=True)
    mapping["__kind__"] = "invoke"
    return mapping


def _transfer(loader: yaml.Loader, node: yaml.Node) -> Dict[str, Any]:
    mapping = loader.construct_mapping(node, deep=True)
    mapping["__kind__"] = "transfer"
    return mapping


_SpecLoader.add_constructor("!location", _location)
_SpecLoader.add_constructor("!endpoint", _endpoint)
_SpecLoader.add_constructor("!account", _account)
_SpecLoader.add_constructor("!contract", _contract)
_SpecLoader.add_constructor("!invoke", _invoke)
_SpecLoader.add_constructor("!transfer", _transfer)


def _resolve_sample(value: Any, expected: type, what: str) -> Any:
    """Unwrap a `{sample: <tag>}` binding or accept the sample directly."""
    if isinstance(value, dict) and "sample" in value:
        value = value["sample"]
    if not isinstance(value, expected):
        raise SpecError(f"{what}: expected {expected.__name__},"
                        f" got {type(value).__name__}")
    return value


def _build_interaction(raw: Any) -> Interaction:
    if not isinstance(raw, dict) or "__kind__" not in raw:
        raise SpecError(f"behavior interaction must be !invoke or !transfer,"
                        f" got {raw!r}")
    kind = raw["__kind__"]
    accounts = _resolve_sample(raw.get("from"), AccountSample, "from")
    if kind == "transfer":
        return TransferSpec(accounts, int(raw.get("amount", 1)))
    contract = _resolve_sample(raw.get("contract"), ContractSample, "contract")
    return InvokeSpec.from_call(accounts, contract, str(raw["function"]))


_POPULATION_KEYS = frozenset({
    "users", "cohort", "interaction", "load", "rate_per_user", "duration",
    "arrival", "burst_factor", "burst_fraction", "burst_length",
    "location", "view"})


def population_from_dict(raw: Any) -> PopulationSpec:
    """Build a PopulationSpec from a parsed ``population:`` section.

    The rate profile comes either from an explicit per-user ``load``
    schedule (same mapping form as client behaviours) or the
    ``rate_per_user`` + ``duration`` constant-rate shorthand — exactly
    one of the two.
    """
    if not isinstance(raw, dict):
        raise SpecError("'population' must be a mapping")
    unknown = set(raw) - _POPULATION_KEYS
    if unknown:
        raise SpecError(
            f"unknown population keys: {', '.join(sorted(unknown))}")
    if "users" not in raw:
        raise SpecError("'population' needs a 'users' count")
    if "interaction" not in raw:
        raise SpecError("'population' needs an 'interaction'"
                        " (!transfer or !invoke)")
    interaction = _build_interaction(raw["interaction"])
    has_load = "load" in raw
    has_shorthand = "rate_per_user" in raw or "duration" in raw
    if has_load and has_shorthand:
        raise SpecError("'population' takes either a 'load' schedule or"
                        " 'rate_per_user' + 'duration', not both")
    if has_load:
        load = LoadSchedule.from_mapping(raw["load"])
    elif "rate_per_user" in raw and "duration" in raw:
        load = LoadSchedule.constant(float(raw["rate_per_user"]),
                                     float(raw["duration"]))
    else:
        raise SpecError("'population' needs a per-user rate profile:"
                        " a 'load' schedule, or 'rate_per_user' and"
                        " 'duration' together")
    kwargs: Dict[str, Any] = {}
    if raw.get("cohort") is not None:
        kwargs["cohort"] = int(raw["cohort"])
    if "arrival" in raw:
        kwargs["arrival"] = str(raw["arrival"])
    for key in ("burst_factor", "burst_fraction", "burst_length"):
        if key in raw:
            kwargs[key] = float(raw[key])
    for key in ("location", "view"):
        if key in raw:
            kwargs[key] = str(raw[key])
    return PopulationSpec(users=int(raw["users"]), interaction=interaction,
                          load=load, **kwargs)


def spec_from_dict(document: Dict[str, Any]) -> WorkloadSpec:
    """Build a WorkloadSpec from a parsed configuration document."""
    if not isinstance(document, dict):
        raise SpecError("configuration needs a top-level 'workloads' list")
    raw_population = document.get("population")
    population = (population_from_dict(raw_population)
                  if raw_population is not None else None)
    raw_groups = document.get("workloads")
    if raw_groups is None:
        if population is None:
            raise SpecError(
                "configuration needs a top-level 'workloads' list")
        raw_groups = ()
    groups: List[WorkloadGroup] = []
    for raw_group in raw_groups:
        raw_client = raw_group["client"]
        location = _resolve_sample(raw_client.get("location"),
                                   LocationSample, "client.location")
        view = _resolve_sample(raw_client.get("view"),
                               EndpointSample, "client.view")
        behaviors = []
        for raw_behavior in raw_client["behavior"]:
            interaction = _build_interaction(raw_behavior["interaction"])
            load = LoadSchedule.from_mapping(raw_behavior["load"])
            behaviors.append(Behavior(interaction, load))
        groups.append(WorkloadGroup(
            number=int(raw_group.get("number", 1)),
            client=ClientSpec(location, view, tuple(behaviors))))
    raw_faults = document.get("faults", ())
    if raw_faults and not isinstance(raw_faults, (list, tuple)):
        raise SpecError("'faults' must be a list of fault events")
    faults = events_from_dicts(raw_faults) if raw_faults else ()
    raw_byzantine = document.get("byzantine", ())
    if raw_byzantine and not isinstance(raw_byzantine, (list, tuple)):
        raise SpecError("'byzantine' must be a list of byzantine events")
    byzantine = (byzantine_events_from_dicts(raw_byzantine)
                 if raw_byzantine else ())
    raw_deadline = document.get("deadline")
    if raw_deadline is not None:
        try:
            raw_deadline = float(raw_deadline)
        except (TypeError, ValueError):
            raise SpecError(
                f"'deadline' must be a number, got {raw_deadline!r}") from None
    raw_fees = document.get("fees")
    fees = FeeSpec.from_dict(raw_fees) if raw_fees is not None else None
    if fees is not None and not fees.enabled:
        # `enabled: false` normalizes to the same spec as an absent
        # section, preserving the byte-identity contract
        fees = None
    raw_adversary = document.get("adversary")
    adversary = (AdversarySpec.from_dict(raw_adversary)
                 if raw_adversary is not None else None)
    return WorkloadSpec(tuple(groups), faults=faults, byzantine=byzantine,
                        deadline=raw_deadline, fees=fees, adversary=adversary,
                        population=population)


def load_spec(text: str) -> WorkloadSpec:
    """Parse a YAML benchmark configuration into a WorkloadSpec."""
    document = yaml.load(text, Loader=_SpecLoader)
    if document is None:
        raise SpecError("empty specification document")
    return spec_from_dict(document)


def simple_spec(interaction: Interaction, load: LoadSchedule,
                clients: int = 1, location: str = ".*",
                view: str = ".*",
                faults: Tuple[FaultEvent, ...] = (),
                byzantine: Tuple[ByzantineEvent, ...] = (),
                deadline: Optional[float] = None,
                fees: Optional[FeeSpec] = None,
                adversary: Optional[AdversarySpec] = None) -> WorkloadSpec:
    """Programmatic shorthand: one workload group, one behaviour."""
    return WorkloadSpec((WorkloadGroup(
        number=clients,
        client=ClientSpec(
            location=LocationSample((location,)),
            view=EndpointSample((view,)),
            behaviors=(Behavior(interaction, load),))),),
        faults=faults, byzantine=byzantine, deadline=deadline,
        fees=fees, adversary=adversary)


def simple_population_spec(users: int, interaction: Interaction,
                           rate_per_user: float, duration: float,
                           cohort: Optional[int] = None,
                           arrival: str = "poisson",
                           location: str = ".*", view: str = ".*",
                           deadline: Optional[float] = None,
                           fees: Optional[FeeSpec] = None) -> WorkloadSpec:
    """Programmatic shorthand: one population at a constant per-user rate."""
    return WorkloadSpec((), deadline=deadline, fees=fees,
                        population=PopulationSpec(
                            users=users, interaction=interaction,
                            load=LoadSchedule.constant(rate_per_user,
                                                       duration),
                            cohort=cohort, arrival=arrival,
                            location=location, view=view))
