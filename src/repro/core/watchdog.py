"""Harness liveness watchdog: detect a chain that stopped committing.

A real DIABLO run against an overloaded chain does not fail cleanly — the
chain just stops answering, and the harness sits in its polling loop until
a human kills it. The :class:`LivenessWatchdog` gives the simulated harness
the missing guard rail: it watches commit progress on the discrete-event
clock and flags a run whose chain has pending demand but has not committed
anything for a configurable window (Solana after the validators OOM-crash,
Diem/Quorum once consensus stalls under memory pressure, §6.3).

The watchdog only *observes*; the Primary decides what to do with a
detected stall (stop draining early, mark the run ``failed``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.common.errors import ConfigurationError
from repro.sim.engine import Engine, PeriodicTask

DEFAULT_WINDOW = 30.0
DEFAULT_CHECK_INTERVAL = 5.0


class LivenessWatchdog:
    """Flags no-commit-progress windows for one chain under load.

    A stall is declared when, for longer than *window* simulated seconds,
    the chain had *demand* (a non-empty pool, or client arrivals within the
    window) but committed nothing. Idle gaps with no demand never count —
    a chain nobody submits to is quiet, not dead.
    """

    def __init__(self, engine: Engine, network: Any,
                 window: float = DEFAULT_WINDOW,
                 check_interval: float = DEFAULT_CHECK_INTERVAL) -> None:
        if window <= 0:
            raise ConfigurationError(f"window must be positive: {window}")
        if check_interval <= 0 or check_interval > window:
            raise ConfigurationError(
                f"need 0 < check_interval <= window,"
                f" got {check_interval}/{window}")
        self.engine = engine
        self.network = network
        self.window = window
        self._last_progress = engine.now
        self._stalled = False
        self.events: List[Dict[str, Any]] = []
        network.on_commit(self._on_commit)
        self._task = PeriodicTask(engine, check_interval, self._check,
                                  label="liveness-watchdog")

    # -- signals ---------------------------------------------------------------

    def _on_commit(self, tx: Any) -> None:
        self._last_progress = self.engine.now
        if self._stalled:
            self._stalled = False
            self.events.append({
                "at": round(self.engine.now, 3),
                "kind": "progress_resumed"})

    def _demand(self, now: float) -> bool:
        if len(self.network.mempool) > 0:
            return True
        last_arrival = getattr(self.network, "last_arrival_at", None)
        return last_arrival is not None and now - last_arrival <= self.window

    def _check(self) -> None:
        now = self.engine.now
        if not self._demand(now):
            # no pending work: quiet is not a stall
            self._last_progress = now
            return
        if self._stalled:
            return
        if now - self._last_progress > self.window:
            self._stalled = True
            self.events.append({
                "at": round(now, 3),
                "kind": "stall_detected",
                "stalled_since": round(self._last_progress, 3)})

    # -- results ---------------------------------------------------------------

    @property
    def stalled(self) -> bool:
        """True while a stall is in effect (no commit since detection)."""
        return self._stalled

    @property
    def stalled_since(self) -> Optional[float]:
        """Start of the current stall window, if one is in effect."""
        if not self._stalled:
            return None
        return self._last_progress

    def stop(self) -> None:
        self._task.stop()

    def finalize(self) -> str:
        """Run status verdict: ``failed`` / ``degraded`` / ``ok``.

        A run that *ends* stalled failed; one that stalled but recovered is
        degraded; one that never stalled is ok.
        """
        if self._stalled:
            return "failed"
        if self.events:
            return "degraded"
        return "ok"
