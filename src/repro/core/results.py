"""Benchmark results: per-transaction records and aggregates.

The DIABLO Primary aggregates, from every Secondary, "the start time and end
time of each transaction" into a JSON file (§4); summary statistics and time
series are computed post-mortem. :class:`BenchmarkResult` is that JSON
file's in-memory form, with the aggregations the paper reports: average
load, average throughput, average/median latency, the proportion of
committed transactions, per-second time series and latency CDFs.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.chain.transaction import Transaction


@dataclass(frozen=True, slots=True)
class TransactionRecord:
    """One transaction's benchmark-relevant timestamps and outcome."""

    uid: int
    kind: str
    contract: Optional[str]
    function: Optional[str]
    client: str
    submitted_at: float
    committed_at: Optional[float]
    aborted: bool
    abort_reason: Optional[str]
    retries: int = 0

    @property
    def committed(self) -> bool:
        return self.committed_at is not None and not self.aborted

    @property
    def latency(self) -> Optional[float]:
        if not self.committed:
            return None
        return self.committed_at - self.submitted_at

    @staticmethod
    def from_transaction(tx: Transaction, client: str = "") -> "TransactionRecord":
        if tx.submitted_at is None:
            # a record with no submission time cannot enter latency or
            # throughput aggregates; callers filter these out and count
            # them (chain_stats["records_without_submit"]) instead of
            # letting a sentinel -1.0 poison the statistics
            raise ValueError(
                f"transaction {tx.uid} was never submitted"
                " (submitted_at is None)")
        return TransactionRecord(
            uid=tx.uid,
            kind=tx.kind.value,
            contract=tx.contract,
            function=tx.function,
            client=client,
            submitted_at=tx.submitted_at,
            committed_at=None if tx.aborted else tx.committed_at,
            aborted=tx.aborted,
            abort_reason=tx.abort_reason,
            retries=tx.retries)


@dataclass
class BenchmarkResult:
    """Everything one benchmark run produced."""

    chain: str
    configuration: str
    workload_name: str
    duration: float
    scale: float
    records: List[TransactionRecord] = field(default_factory=list)
    chain_stats: Dict[str, float] = field(default_factory=dict)
    #: JSON summaries of the fault schedule applied during the run
    #: (see :func:`repro.sim.faults.event_summary`)
    fault_events: List[Dict[str, Any]] = field(default_factory=list)
    #: harness verdict: "ok", "degraded" (stalled but recovered, or
    #: overload responses fired), "failed" (ended stalled / deadline hit)
    status: str = "ok"
    #: watchdog stall/resume events on the simulated clock
    liveness_events: List[Dict[str, Any]] = field(default_factory=list)
    #: chain-side overload responses (oom_crash / commit_stall / shed_*)
    overload_events: List[Dict[str, Any]] = field(default_factory=list)
    #: periodic metrics-registry samples on the simulated clock (one row
    #: per sampler tick: {"t": ..., "<metric>": ...}); empty unless the run
    #: had observability enabled — untraced runs serialize identically to
    #: runs from before the registry existed
    timeseries: List[Dict[str, Any]] = field(default_factory=list)
    #: fee-market economics (dialect, closing floor, per-label spend, fee
    #: percentiles, adversary ledger) — empty unless the run had a
    #: ``fees:``/``adversary:`` section, so benign runs serialize
    #: identically to runs from before the fee market existed
    economics: Dict[str, Any] = field(default_factory=dict)
    #: population-run metrics (cohort-exact vs population-scaled, see
    #: :func:`repro.core.population.population_block`) — empty unless the
    #: spec had a ``population:`` section, so classic runs serialize
    #: identically to runs from before the population layer existed
    population: Dict[str, Any] = field(default_factory=dict)

    # -- core aggregates (unscaled back to real-experiment units) ----------------

    def _unscale(self, rate: float) -> float:
        return rate / self.scale if self.scale > 0 else rate

    @property
    def submitted(self) -> int:
        return len(self.records)

    def committed_records(self, window: Optional[float] = None
                          ) -> List[TransactionRecord]:
        """Records committed within the measurement window.

        The window defaults to the run duration — commits that land after
        the load generator stopped do not count toward throughput, matching
        the paper's average-throughput-over-the-run metric.
        """
        horizon = self.duration if window is None else window
        return [r for r in self.records
                if r.committed and r.committed_at <= horizon]

    @property
    def average_load(self) -> float:
        """Average submitted TPS (the paper's 'average workload')."""
        if self.duration <= 0:
            return 0.0
        return self._unscale(self.submitted / self.duration)

    @property
    def average_throughput(self) -> float:
        """Average committed TPS over the run window."""
        if self.duration <= 0:
            return 0.0
        return self._unscale(len(self.committed_records()) / self.duration)

    @property
    def commit_ratio(self) -> float:
        """Proportion of submitted transactions ever committed."""
        if not self.records:
            return 0.0
        committed = sum(1 for r in self.records if r.committed)
        return committed / len(self.records)

    def latencies(self, window: Optional[float] = None) -> np.ndarray:
        recs = (self.committed_records(window) if window is not None
                else [r for r in self.records if r.committed])
        return np.array([r.latency for r in recs], dtype=float)

    @property
    def average_latency(self) -> float:
        lats = self.latencies(self.duration)
        return float(lats.mean()) if lats.size else float("nan")

    @property
    def median_latency(self) -> float:
        lats = self.latencies(self.duration)
        return float(np.median(lats)) if lats.size else float("nan")

    def latency_percentile(self, q: float) -> float:
        lats = self.latencies()
        return float(np.percentile(lats, q)) if lats.size else float("nan")

    # -- time series -------------------------------------------------------------------

    def throughput_series(self, bin_size: float = 1.0) -> Tuple[np.ndarray, np.ndarray]:
        """(bin start times, committed TPS per bin), unscaled."""
        commits = np.array([r.committed_at for r in self.records
                            if r.committed], dtype=float)
        end = self.duration
        bins = np.arange(0.0, end + bin_size, bin_size)
        counts, edges = np.histogram(commits, bins=bins)
        return edges[:-1], self._unscale(counts / bin_size)

    def load_series(self, bin_size: float = 1.0) -> Tuple[np.ndarray, np.ndarray]:
        """(bin start times, submitted TPS per bin), unscaled."""
        submits = np.array([r.submitted_at for r in self.records], dtype=float)
        end = self.duration
        bins = np.arange(0.0, end + bin_size, bin_size)
        counts, edges = np.histogram(submits, bins=bins)
        return edges[:-1], self._unscale(counts / bin_size)

    def fraction_within(self, latency: float) -> float:
        """Fraction of *submitted* transactions committed within *latency*.

        The Fig. 6 statistic: "91% of the transactions are committed with
        a latency of 8 seconds or less".
        """
        if not self.records:
            return 0.0
        within = sum(1 for r in self.records
                     if r.committed and r.latency <= latency)
        return within / len(self.records)

    def latency_cdf(self) -> Tuple[np.ndarray, np.ndarray]:
        """(sorted latencies, cumulative fraction *of submitted*).

        The CDF is normalised by submissions, so dropped transactions show
        as the plateau below 1.0 — exactly the Fig. 6 presentation.
        """
        lats = np.sort(self.latencies())
        if not self.records:
            return lats, np.array([])
        fractions = np.arange(1, lats.size + 1) / len(self.records)
        return lats, fractions

    # -- fault degradation metrics -------------------------------------------------------

    def fault_window(self) -> Optional[Tuple[float, float]]:
        """(first disruption, last repair) from the recorded fault events.

        Only *disruptive* events open the window — a schedule of repairs
        alone (recover/heal/zero-zero link restores) yields ``None``.
        Byzantine misbehaviour windows count as disruptions (they carry a
        ``duration``) so the degradation metrics cover adversarial runs
        unchanged.
        """
        start: Optional[float] = None
        end = 0.0
        for event in self.fault_events:
            kind = event.get("kind")
            is_repair = kind in ("recover", "heal", "region_heal") or (
                kind == "link_degrade"
                and event.get("extra_latency", 0.0) <= 0
                and event.get("drop_rate", 0.0) <= 0)
            if is_repair:
                end = max(end, event["at"])
                continue
            if start is None or event["at"] < start:
                start = event["at"]
            end = max(end, event["at"] + event.get("duration", 0.0))
        if start is None:
            return None
        return start, max(start, end)

    def commit_ratio_between(self, t0: float, t1: float) -> float:
        """Commits landing in [t0, t1) per submission made in [t0, t1).

        The instantaneous availability metric: during a fault-induced stall
        clients keep submitting but nothing commits, so the ratio dips
        toward zero; after the repair the backlog lands and the ratio can
        transiently exceed one.
        """
        submitted = sum(1 for r in self.records
                        if t0 <= r.submitted_at < t1)
        if submitted == 0:
            return 0.0
        committed = sum(1 for r in self.records
                        if r.committed and t0 <= r.committed_at < t1)
        return committed / submitted

    def time_to_recover(self, fault_end: Optional[float] = None
                        ) -> Optional[float]:
        """Seconds from the last repair to the first commit after it.

        ``None`` when there is no fault window or nothing ever commits
        after the repair (the chain never recovered).
        """
        if fault_end is None:
            window = self.fault_window()
            if window is None:
                return None
            fault_end = window[1]
        after = [r.committed_at for r in self.records
                 if r.committed and r.committed_at >= fault_end]
        if not after:
            return None
        return min(after) - fault_end

    def retries_per_transaction(self) -> float:
        """Average client resubmissions per submitted transaction."""
        if not self.records:
            return 0.0
        return sum(r.retries for r in self.records) / len(self.records)

    def degradation(self) -> Optional[Dict[str, Any]]:
        """Before/during/after availability around the fault window.

        The robustness report for a faulted run: commit ratios in the three
        phases, the time from repair to the first post-repair commit, and
        the client retry burden. ``None`` when the run had no faults.
        """
        window = self.fault_window()
        if window is None:
            return None
        start, end = window
        ttr = self.time_to_recover(end)
        return {
            "fault_window": [start, end],
            "commit_ratio_before": round(
                self.commit_ratio_between(0.0, start), 4),
            "commit_ratio_during": round(
                self.commit_ratio_between(start, end), 4),
            "commit_ratio_after": round(
                self.commit_ratio_between(end, self.duration), 4),
            "time_to_recover_s": None if ttr is None else round(ttr, 3),
            "retries_per_tx": round(self.retries_per_transaction(), 4),
        }

    # -- overload accounting -------------------------------------------------------------

    def crash_events(self) -> List[Dict[str, Any]]:
        """OOM crashes the resource-exhaustion model fired during the run."""
        return [e for e in self.overload_events if e["kind"] == "oom_crash"]

    def stalled_at(self) -> Optional[float]:
        """Start of the stall the run ended in, or None if it kept going."""
        for event in reversed(self.liveness_events):
            if event["kind"] == "progress_resumed":
                return None
            if event["kind"] == "stall_detected":
                return event.get("stalled_since", event["at"])
        return None

    # -- abort accounting ----------------------------------------------------------------

    def abort_reasons(self) -> Dict[str, int]:
        reasons: Dict[str, int] = {}
        for record in self.records:
            if record.aborted and record.abort_reason:
                reasons[record.abort_reason] = reasons.get(
                    record.abort_reason, 0) + 1
        return reasons

    def execution_failed(self) -> bool:
        """True when the chain could not execute the DApp at all (Fig. 5's X).

        Matches the paper's criterion: the client only ever sees "budget
        exceeded" errors and no transaction of the workload commits.
        """
        budget_failures = self.abort_reasons().get("budget_exceeded", 0)
        return budget_failures > 0 and not any(
            r.committed for r in self.records)

    # -- serialization ------------------------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        summary: Dict[str, Any] = {
            "chain": self.chain,
            "configuration": self.configuration,
            "workload": self.workload_name,
            "duration": self.duration,
            "scale": self.scale,
            "submitted": self.submitted,
            "average_load_tps": round(self.average_load, 2),
            "average_throughput_tps": round(self.average_throughput, 2),
            "average_latency_s": round(self.average_latency, 3)
            if self.records else None,
            "median_latency_s": round(self.median_latency, 3)
            if self.records else None,
            "commit_ratio": round(self.commit_ratio, 4),
            "aborts": self.abort_reasons(),
            "chain_stats": self.chain_stats,
            "status": self.status,
        }
        if self.fault_events:
            summary["fault_events"] = self.fault_events
            summary["degradation"] = self.degradation()
        if self.liveness_events:
            summary["liveness_events"] = self.liveness_events
        if self.overload_events:
            summary["overload_events"] = self.overload_events
        if self.timeseries:
            summary["timeseries"] = self.timeseries
        if self.economics:
            summary["economics"] = self.economics
        if self.population:
            summary["population"] = self.population
        return summary

    def to_json(self, indent: Optional[int] = None) -> str:
        payload = {
            "summary": self.summary(),
            "transactions": [asdict(record) for record in self.records],
        }
        return json.dumps(payload, indent=indent)

    @staticmethod
    def from_json(text: str) -> "BenchmarkResult":
        payload = json.loads(text)
        summary = payload["summary"]
        result = BenchmarkResult(
            chain=summary["chain"],
            configuration=summary["configuration"],
            workload_name=summary["workload"],
            duration=summary["duration"],
            scale=summary["scale"],
            chain_stats=summary.get("chain_stats", {}),
            fault_events=summary.get("fault_events", []),
            status=summary.get("status", "ok"),
            liveness_events=summary.get("liveness_events", []),
            overload_events=summary.get("overload_events", []),
            timeseries=summary.get("timeseries", []),
            economics=summary.get("economics", {}),
            population=summary.get("population", {}))
        for raw in payload["transactions"]:
            result.records.append(TransactionRecord(**raw))
        return result
