"""Exchange DApp — ``ExchangeContractGafam`` (§3, NASDAQ workload).

A decentralised exchange trading the five GAFAM stocks. Each ``buy*``
function implements the paper's process exactly: "a fungible token available
in limited supply implemented by a single integer counter. Each transaction
buys 1 token by decrementing the counter after checking that this counter is
greater than 0", then emits a corresponding event.
"""

from __future__ import annotations

from typing import Dict

from repro.vm.program import Contract, ExecutionContext

STOCKS = ("google", "apple", "facebook", "amazon", "microsoft")

# Plenty of supply so benchmark runs are limited by the blockchain, not by
# the order book: the GAFAM workload peaks at 19,800 TPS for 3 minutes.
DEFAULT_SUPPLY = 50_000_000


def make_exchange_contract(supply: int = DEFAULT_SUPPLY) -> Contract:
    """Build the ExchangeContractGafam contract."""
    contract = Contract("ExchangeContractGafam")

    @contract.constructor
    def init(ctx: ExecutionContext) -> None:
        for stock in STOCKS:
            ctx.store(f"supply:{stock}", supply)

    def make_buy(stock: str):
        def buy(ctx: ExecutionContext) -> int:
            available = ctx.load(f"supply:{stock}")
            ctx.require(available > 0, f"no {stock} stock available")
            ctx.store(f"supply:{stock}", available - 1)
            ctx.emit(f"Bought{stock.capitalize()}", ctx.caller, 1)
            return available - 1
        return buy

    for stock in STOCKS:
        contract.function(f"buy{stock.capitalize()}")(make_buy(stock))

    @contract.function("checkStock")
    def check_stock(ctx: ExecutionContext) -> int:
        stock = ctx.arg(0, "google")
        return ctx.load(f"supply:{stock}")

    return contract


def remaining_supply(storage_view: Dict[str, int]) -> Dict[str, int]:
    """Convenience: supply counters from a raw storage dict (for tests)."""
    return {stock: storage_view.get(f"supply:{stock}", 0) for stock in STOCKS}
