"""Web service DApp — ``Counter`` (§3, FIFA '98 workload).

"We implemented the web service DApp as a simple Counter smart contract,
with an add function, that gets incremented at each request, hence its
workload is highly contended."
"""

from __future__ import annotations

from repro.vm.program import Contract, ExecutionContext


def make_counter_contract() -> Contract:
    """Build the Counter contract."""
    contract = Contract("Counter")

    @contract.constructor
    def init(ctx: ExecutionContext) -> None:
        ctx.store("count", 0)

    @contract.function("add")
    def add(ctx: ExecutionContext) -> int:
        value = ctx.load("count") + 1
        ctx.compute(1)
        ctx.store("count", value)
        return value

    @contract.function("get")
    def get(ctx: ExecutionContext) -> int:
        return ctx.load("count")

    return contract
