"""Gaming DApp — ``DecentralizedDota`` (§3, Dota 2 workload).

The contract's ``update`` function "moves the positions of 10 players along
the x-axis and y-axis of a 250-by-250 map so that they turn back whenever
they reach the limit of the map".

Positions are stored packed — one slot for the x coordinates and one for the
y coordinates — the way a gas-conscious Solidity implementation packs ten
uint8 pairs into a word. The packing keeps the per-call cost at two loads +
two stores + the movement arithmetic, which every evaluated VM's budget
accommodates (the paper shows all six chains executing this DApp, §6.1).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.vm.program import Contract, ExecutionContext

MAP_SIZE = 250
PLAYER_COUNT = 10

# One bounce-and-move update per player per axis: compare, add, compare,
# maybe negate. ~6 basic ops per coordinate.
_MOVE_OPS_PER_PLAYER = 12


def _advance(position: int, direction: int, step: int) -> Tuple[int, int]:
    """Move one coordinate, bouncing at the map borders."""
    nxt = position + direction * step
    if nxt < 0:
        return -nxt, -direction
    if nxt > MAP_SIZE:
        return 2 * MAP_SIZE - nxt, -direction
    return nxt, direction


def make_dota_contract() -> Contract:
    """Build the DecentralizedDota contract."""
    contract = Contract("DecentralizedDota")

    @contract.constructor
    def init(ctx: ExecutionContext) -> None:
        # players start spread along the diagonal, all moving "forward"
        xs = [(i * MAP_SIZE) // PLAYER_COUNT for i in range(PLAYER_COUNT)]
        ys = list(xs)
        ctx.store("xs", ",".join(map(str, xs)))
        ctx.store("ys", ",".join(map(str, ys)))
        ctx.store("dirs", ",".join(["1"] * (2 * PLAYER_COUNT)))

    @contract.function("update")
    def update(ctx: ExecutionContext) -> Tuple[int, ...]:
        step_x = int(ctx.arg(0, 1))
        step_y = int(ctx.arg(1, 1))
        xs = [int(v) for v in str(ctx.load("xs", "")).split(",")]
        ys = [int(v) for v in str(ctx.load("ys", "")).split(",")]
        dirs = [int(v) for v in str(ctx.load("dirs", "")).split(",")]
        ctx.compute(PLAYER_COUNT * _MOVE_OPS_PER_PLAYER)
        new_xs: List[int] = []
        new_ys: List[int] = []
        new_dirs: List[int] = []
        for i in range(PLAYER_COUNT):
            x, dx = _advance(xs[i], dirs[2 * i], step_x)
            y, dy = _advance(ys[i], dirs[2 * i + 1], step_y)
            new_xs.append(x)
            new_ys.append(y)
            new_dirs.extend((dx, dy))
        ctx.store("xs", ",".join(map(str, new_xs)))
        ctx.store("ys", ",".join(map(str, new_ys)))
        ctx.store("dirs", ",".join(map(str, new_dirs)))
        return tuple(new_xs + new_ys)

    @contract.function("positions")
    def positions(ctx: ExecutionContext) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        xs = tuple(int(v) for v in str(ctx.load("xs", "")).split(","))
        ys = tuple(int(v) for v in str(ctx.load("ys", "")).split(","))
        return xs, ys

    return contract
