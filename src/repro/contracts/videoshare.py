"""Video sharing DApp — ``DecentralizedYoutube`` (§3, YouTube workload).

"a smart contract called DecentralizedYoutube with an upload function that
gets some video data as a parameter and assigns the requester's address to
the data before emitting a corresponding event."

The uploaded metadata record is a few hundred bytes. On the AVM this DApp is
unimplementable: storing the record needs "data structures that were too
large to be stored in the state whose space is limited by a key-value store
with 128 bytes per key-value pair" (§5.2) — the store() below raises
:class:`StateLimitError` on any VM with a 128-byte entry limit.
"""

from __future__ import annotations

from repro.vm.program import Contract, ExecutionContext

# Size of the video metadata record each upload persists. Anything over the
# AVM's 128-byte entry limit reproduces the paper's TEAL failure.
VIDEO_RECORD_SIZE = 512


def make_youtube_contract(record_size: int = VIDEO_RECORD_SIZE) -> Contract:
    """Build the DecentralizedYoutube contract."""
    contract = Contract("DecentralizedYoutube")

    @contract.constructor
    def init(ctx: ExecutionContext) -> None:
        ctx.store("uploads", 0)
        # Allocating the record template at deployment reproduces the paper's
        # outcome: the TEAL port fails outright (DeploymentError at setup)
        # rather than committing transactions that each revert.
        ctx.store("video:template", ".".ljust(record_size, "."))

    @contract.function("upload")
    def upload(ctx: ExecutionContext) -> int:
        video_data = str(ctx.arg(0, "video"))
        ctx.charge_data(record_size)
        index = ctx.load("uploads") + 1
        ctx.compute(1)
        ctx.store("uploads", index)
        # assign the requester's address to the data — the record is the
        # oversized key-value pair that breaks the AVM implementation
        record = f"{ctx.caller}:{video_data}".ljust(record_size, ".")
        ctx.store(f"video:{index}", record)
        ctx.emit("Uploaded", ctx.caller, index)
        return index

    @contract.function("count")
    def count(ctx: ExecutionContext) -> int:
        return ctx.load("uploads")

    return contract
