"""Mobility service DApp — ``ContractUber`` (§3, Uber workload).

``checkDistance`` "computes the distance between the customer (the
requester) and 10,000 drivers in an area (a 2-dimension grid) of
10,000 x 10,000 in order to match the closest driver to the customer".
Since none of the contract languages support floating point or a square
root, distances use Newton's integer square root (§3). "As the function
executes a loop with 10,000 iterations computing the distance, the mobility
service DApp is computation intensive."

Two implementations, selected by VM capability exactly as the paper did:

* the Solidity/Move flavour keeps all driver positions (packed into two
  storage slots, mirroring calldata/memory-resident arrays) and scans them;
* the PyTeal flavour — because "Algorand DApps state is limited to
  key-value pairs" — "only stores the position of one driver and computes
  the Euclidean distance to this unique driver 10,000 times".

Either way the loop runs :data:`DRIVER_COUNT` iterations whose gas is
charged per iteration through ``bulk_loop`` (the effect itself is
vectorised with numpy; see DESIGN.md performance substitutions). The total
execution cost — roughly ``DRIVER_COUNT x DISTANCE_ITERATION_GAS`` compute
units — exceeds every hard VM budget (AVM, MoveVM, eBPF) while remaining
executable on the budget-free geth EVM, reproducing Fig. 5.
"""

from __future__ import annotations

import numpy as np

from repro.vm.program import Contract, ExecutionContext

GRID_SIZE = 10_000
DRIVER_COUNT = 10_000

# Compute units per loop iteration: two subtractions, two squarings, one
# addition, the Newton isqrt (amortised — a handful of iterations from a
# bit-length initial guess) and a running-minimum comparison. At 10,000
# iterations the call costs ~1.2M units: above every hard VM budget
# (AVM 500k, eBPF 600k, MoveVM 1M), executable only on the geth EVM.
DISTANCE_ITERATION_GAS = 120


def _driver_positions(count: int, seed: int = 7) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic driver placement on the grid."""
    rng = np.random.default_rng(seed)
    xs = rng.integers(0, GRID_SIZE, size=count)
    ys = rng.integers(0, GRID_SIZE, size=count)
    return xs, ys


def make_uber_contract(driver_count: int = DRIVER_COUNT) -> Contract:
    """Build the ContractUber contract."""
    contract = Contract("ContractUber")
    xs, ys = _driver_positions(driver_count)

    @contract.constructor
    def init(ctx: ExecutionContext) -> None:
        limited_state = (ctx.capabilities.max_state_entries is not None
                         or ctx.capabilities.kv_entry_limit is not None)
        if limited_state:
            # PyTeal flavour: a single driver position fits the KV limits
            ctx.store("driver_x", int(xs[0]))
            ctx.store("driver_y", int(ys[0]))
            ctx.store("mode", "single")
        else:
            ctx.store("xs", xs.tolist())
            ctx.store("ys", ys.tolist())
            ctx.store("mode", "all")
        ctx.store("matches", 0)

    @contract.function("checkDistance")
    def check_distance(ctx: ExecutionContext) -> int:
        customer_x = int(ctx.arg(0, 0))
        customer_y = int(ctx.arg(1, 0))
        mode = ctx.load("mode", "all")
        if mode == "single":
            driver_x = ctx.load("driver_x")
            driver_y = ctx.load("driver_y")

            def single_effect() -> int:
                dx = customer_x - driver_x
                dy = customer_y - driver_y
                return int(np.sqrt(dx * dx + dy * dy))

            # the unique distance is recomputed driver_count times (§3)
            distance = ctx.bulk_loop(driver_count, DISTANCE_ITERATION_GAS,
                                     single_effect)
            best_driver, best_distance = 0, distance
        else:
            driver_xs = np.asarray(ctx.load("xs"))
            driver_ys = np.asarray(ctx.load("ys"))

            def scan_effect() -> tuple[int, int]:
                dx = driver_xs - customer_x
                dy = driver_ys - customer_y
                distances = np.sqrt(dx * dx + dy * dy).astype(int)
                index = int(np.argmin(distances))
                return index, int(distances[index])

            best_driver, best_distance = ctx.bulk_loop(
                driver_count, DISTANCE_ITERATION_GAS, scan_effect)
        matches = ctx.load("matches") + 1
        ctx.compute(1)
        ctx.store("matches", matches)
        ctx.emit("Matched", ctx.caller, best_driver, best_distance)
        return best_distance

    @contract.function("matches")
    def matches(ctx: ExecutionContext) -> int:
        return ctx.load("matches")

    return contract


def estimated_call_gas(driver_count: int = DRIVER_COUNT) -> int:
    """Rough gas a checkDistance call needs (for workload gas limits)."""
    loop = driver_count * DISTANCE_ITERATION_GAS
    overhead = 5 * 200 + 2 * 5_000 + 2_000  # loads, stores, emit
    return loop + overhead
