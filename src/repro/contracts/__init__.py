"""The five DIABLO DApp contracts (paper §3, Table 2)."""

from repro.contracts.exchange import STOCKS, make_exchange_contract
from repro.contracts.gaming import MAP_SIZE, PLAYER_COUNT, make_dota_contract
from repro.contracts.mobility import (
    DISTANCE_ITERATION_GAS,
    DRIVER_COUNT,
    GRID_SIZE,
    estimated_call_gas,
    make_uber_contract,
)
from repro.contracts.videoshare import VIDEO_RECORD_SIZE, make_youtube_contract
from repro.contracts.webservice import make_counter_contract

CONTRACT_FACTORIES = {
    "exchange": make_exchange_contract,
    "dota": make_dota_contract,
    "counter": make_counter_contract,
    "uber": make_uber_contract,
    "youtube": make_youtube_contract,
}

__all__ = [
    "CONTRACT_FACTORIES",
    "DISTANCE_ITERATION_GAS",
    "DRIVER_COUNT",
    "GRID_SIZE",
    "MAP_SIZE",
    "PLAYER_COUNT",
    "STOCKS",
    "VIDEO_RECORD_SIZE",
    "estimated_call_gas",
    "make_counter_contract",
    "make_dota_contract",
    "make_exchange_contract",
    "make_uber_contract",
    "make_youtube_contract",
]
