"""The contract programming framework.

The paper writes each DApp three times — Solidity for the geth-EVM chains,
PyTeal for Algorand and Move for Diem — and reports language-level
portability problems: no floating point, no built-in square root, hard
execution budgets, and tiny key-value state on the AVM. We capture that with
a single portable contract representation: a :class:`Contract` exposes
functions written against an :class:`ExecutionContext` whose operations are
gas-metered and capability-checked, so the *same* contract source runs (or
deterministically fails) on every VM exactly the way the paper describes.

The context provides a ``bulk_loop`` primitive: gas for ``n`` iterations is
charged analytically while the loop's aggregate effect is computed directly.
This is the documented performance substitution that lets the 10,000-driver
Uber contract run per transaction without interpreting 10,000 Python
iterations (DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.errors import (
    ContractError,
    StateLimitError,
    UnsupportedOperationError,
)
from repro.chain.receipt import Event
from repro.chain.state import ContractStorage
from repro.vm.gas import GasMeter


@dataclass(frozen=True)
class VMCapabilities:
    """What a VM's contract language supports and enforces.

    ``hard_budget``      per-transaction compute cap (None = unbounded, geth)
    ``supports_float``   floating point arithmetic available
    ``has_builtin_sqrt`` a native sqrt (none of the paper's three languages)
    ``kv_entry_limit``   max bytes per key-value pair (AVM: 128)
    ``max_state_entries`` max number of KV pairs (AVM global state: 64)
    """

    language: str
    hard_budget: Optional[int] = None
    supports_float: bool = False
    has_builtin_sqrt: bool = False
    kv_entry_limit: Optional[int] = None
    max_state_entries: Optional[int] = None


ContractFunction = Callable[["ExecutionContext"], Any]


class Contract:
    """A deployable smart contract: named, with callable functions."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._functions: Dict[str, ContractFunction] = {}
        self._constructor: Optional[ContractFunction] = None

    def function(self, name: str) -> Callable[[ContractFunction], ContractFunction]:
        """Decorator registering a public contract function."""
        def register(fn: ContractFunction) -> ContractFunction:
            self._functions[name] = fn
            return fn
        return register

    def constructor(self, fn: ContractFunction) -> ContractFunction:
        """Decorator registering the deployment-time initializer."""
        self._constructor = fn
        return fn

    def functions(self) -> List[str]:
        return sorted(self._functions)

    def get_function(self, name: str) -> ContractFunction:
        try:
            return self._functions[name]
        except KeyError:
            raise ContractError(
                f"contract {self.name!r} has no function {name!r}") from None

    def initialize(self, ctx: "ExecutionContext") -> None:
        if self._constructor is not None:
            self._constructor(ctx)


class ExecutionContext:
    """Gas-metered, capability-checked execution environment.

    One context is created per transaction execution; it wraps the contract's
    storage, the gas meter and the VM capabilities, and collects emitted
    events.
    """

    def __init__(self, storage: ContractStorage, meter: GasMeter,
                 capabilities: VMCapabilities, caller: str,
                 args: Tuple[Any, ...] = (), contract_name: str = "",
                 block_height: int = 0) -> None:
        self.storage = storage
        self.meter = meter
        self.capabilities = capabilities
        self.caller = caller
        self.args = args
        self.contract_name = contract_name
        self.block_height = block_height
        self.events: List[Event] = []

    # -- arguments --------------------------------------------------------------

    def arg(self, index: int, default: Any = None) -> Any:
        if index < len(self.args):
            return self.args[index]
        if default is not None:
            return default
        raise ContractError(
            f"{self.contract_name}: missing argument {index}")

    # -- storage ------------------------------------------------------------------

    def load(self, key: str, default: Any = 0) -> Any:
        self.meter.charge(self.meter.schedule.load)
        return self.storage.get(key, default)

    def store(self, key: str, value: Any) -> None:
        schedule = self.meter.schedule
        is_new = key not in self.storage.data
        self.meter.charge(schedule.store_new if is_new else schedule.store)
        caps = self.capabilities
        if caps.max_state_entries is not None and is_new:
            if len(self.storage) >= caps.max_state_entries:
                raise StateLimitError(
                    f"{caps.language}: state limited to"
                    f" {caps.max_state_entries} key-value pairs")
        if caps.kv_entry_limit is not None:
            entry_size = len(str(key)) + len(str(value))
            if entry_size > caps.kv_entry_limit:
                raise StateLimitError(
                    f"{caps.language}: key-value pair of {entry_size} bytes"
                    f" exceeds the {caps.kv_entry_limit}-byte limit")
        self.storage.put(key, value)

    # -- arithmetic --------------------------------------------------------------

    def compute(self, units: int = 1) -> None:
        """Charge for *units* basic arithmetic operations."""
        self.meter.charge(self.meter.schedule.arith * units)

    def float_op(self) -> None:
        """Guard a floating point operation.

        Raises on every language of the paper's suite: "neither the PyTeal
        nor the Move languages support floating points" and Solidity has no
        native floats either (§3).
        """
        if not self.capabilities.supports_float:
            raise UnsupportedOperationError(
                f"{self.capabilities.language} does not support floating point")

    def isqrt(self, value: int) -> int:
        """Newton's integer square root, metered per iteration.

        This is the function the authors implemented "in Solidity, PyTeal and
        Move languages" to compute Euclidean distances without floats (§3).
        """
        if value < 0:
            raise ContractError("isqrt of negative value")
        schedule = self.meter.schedule
        if value < 2:
            self.meter.charge(schedule.arith)
            return value
        # Newton iteration count for 64-bit-ish integers is ~log2(log2(v)) + c;
        # run it for real so the metering matches the actual work.
        x = value
        y = (x + 1) // 2
        iterations = 0
        while y < x:
            x = y
            y = (x + value // x) // 2
            iterations += 1
        self.meter.charge(schedule.sqrt_newton_iter * iterations
                          + schedule.arith)
        return x

    # -- bulk loop (performance substitution, DESIGN.md) -----------------------------

    def bulk_loop(self, iterations: int, gas_per_iteration: int,
                  effect: Optional[Callable[[], Any]] = None) -> Any:
        """Charge for *iterations* loop rounds; compute the effect directly.

        Gas is identical to executing the loop iteration-by-iteration; the
        aggregate effect (if any) runs once, typically vectorised. The hard
        budget check happens on the total, so a 10,000-iteration loop trips
        a 700-unit AVM budget exactly as the real TEAL program would.
        """
        if iterations < 0:
            raise ContractError("negative loop count")
        self.meter.charge(iterations * gas_per_iteration)
        return effect() if effect is not None else None

    # -- control flow -----------------------------------------------------------------

    def require(self, condition: bool, message: str = "requirement failed") -> None:
        self.meter.charge(self.meter.schedule.arith)
        if not condition:
            raise ContractError(f"{self.contract_name}: {message}")

    def emit(self, name: str, *payload: Any) -> None:
        self.meter.charge(self.meter.schedule.emit
                          + self.meter.schedule.memory_byte * 32)
        self.events.append(Event(self.contract_name, name, payload))

    def charge_data(self, size_bytes: int) -> None:
        """Charge for carrying *size_bytes* of calldata (YouTube uploads)."""
        self.meter.charge(self.meter.schedule.memory_byte * max(0, size_bytes))
