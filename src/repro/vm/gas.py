"""Gas accounting.

All contract operations are metered in abstract *compute units*; each VM maps
units to its native notion of gas and imposes its own limits. The schedule
below is EVM-flavoured (storage writes dominate) — relative costs are what
matter for reproducing the paper, not absolute mainnet prices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import BudgetExceededError, OutOfGasError


@dataclass(frozen=True)
class GasSchedule:
    """Cost of each abstract operation in compute units."""

    base_tx: int = 21_000        # intrinsic cost of any transaction
    arith: int = 3               # add/sub/mul/cmp
    div: int = 5                 # div/mod
    load: int = 200              # read a storage slot (warm-ish SLOAD)
    store: int = 5_000           # write a storage slot
    store_new: int = 20_000      # write a fresh storage slot
    emit: int = 1_125            # LOG with one topic
    memory_byte: int = 3         # per byte of calldata/memory traffic
    call_overhead: int = 2_600   # entering a contract function
    sqrt_newton_iter: int = 60   # one Newton integer-sqrt iteration


DEFAULT_SCHEDULE = GasSchedule()


def scaled_schedule(execution_factor: float,
                    base: GasSchedule = DEFAULT_SCHEDULE) -> GasSchedule:
    """A schedule whose *execution* costs are scaled by *execution_factor*.

    The intrinsic transaction cost stays at the base — a native transfer
    costs the same everywhere — but every contract operation becomes
    proportionally more expensive. This models VMs whose high-level
    operations compile to many interpreted instructions: the AVM executes
    TEAL compiled from PyTeal, and Solana executes Solidity compiled to
    eBPF via Solang — both far less tuned than the geth EVM, which is why
    the paper observes DApp throughput collapsing on those chains while
    native transfers stay fast (§6.1 vs §6.2).
    """
    def scale(value: int) -> int:
        return max(1, int(round(value * execution_factor)))

    return GasSchedule(
        base_tx=base.base_tx,
        arith=scale(base.arith),
        div=scale(base.div),
        load=scale(base.load),
        store=scale(base.store),
        store_new=scale(base.store_new),
        emit=scale(base.emit),
        memory_byte=scale(base.memory_byte),
        call_overhead=scale(base.call_overhead),
        sqrt_newton_iter=scale(base.sqrt_newton_iter),
    )


def eip1559_base_fee_update(base_fee: int, gas_used: int, gas_target: int,
                            denominator: int = 8, floor: int = 1) -> int:
    """One EIP-1559 base-fee step, in pure integer arithmetic.

    The protocol adjusts the base fee by at most ``1/denominator`` per
    block, proportionally to how far ``gas_used`` landed from
    ``gas_target`` (the cap divided by the elasticity multiplier). Full
    blocks push the fee up by the maximum step, empty blocks pull it
    down; an exactly-on-target block leaves it unchanged. The result
    never drops below *floor* — integer throughout so the fee trajectory
    is bit-reproducible across platforms.
    """
    if gas_target <= 0:
        return max(base_fee, floor)
    if gas_used > gas_target:
        delta = base_fee * (gas_used - gas_target) // (gas_target * denominator)
        return base_fee + max(1, delta)
    if gas_used < gas_target:
        delta = base_fee * (gas_target - gas_used) // (gas_target * denominator)
        return max(floor, base_fee - max(1, delta))
    return max(floor, base_fee)


class GasMeter:
    """Tracks gas consumed by one transaction execution.

    Two independent ceilings apply:

    * ``limit`` — the gas the sender attached to the transaction; exceeding
      it raises :class:`OutOfGasError` (the tx could retry with more gas);
    * ``hard_budget`` — the VM's built-in computational cap; exceeding it
      raises :class:`BudgetExceededError`, the error that makes the Mobility
      DApp non-executable on Algorand, Diem and Solana (§6.4). This limit
      "is hard-coded and cannot be lifted by paying a higher gas fee".
    """

    __slots__ = ("limit", "hard_budget", "used", "schedule")

    def __init__(self, limit: int, hard_budget: int | None = None,
                 schedule: GasSchedule = DEFAULT_SCHEDULE) -> None:
        self.limit = limit
        self.hard_budget = hard_budget
        self.used = 0
        self.schedule = schedule

    def charge(self, amount: int) -> None:
        """Consume *amount* units, raising when a ceiling is crossed."""
        if amount < 0:
            raise ValueError(f"negative gas charge {amount}")
        self.used += amount
        if self.hard_budget is not None and self.used > self.hard_budget:
            raise BudgetExceededError(
                f"computational budget exceeded: {self.used} > hard budget"
                f" {self.hard_budget}")
        if self.used > self.limit:
            raise OutOfGasError(f"out of gas: {self.used} > limit {self.limit}")

    @property
    def remaining(self) -> int:
        ceilings = [self.limit]
        if self.hard_budget is not None:
            ceilings.append(self.hard_budget)
        return max(0, min(ceilings) - self.used)
