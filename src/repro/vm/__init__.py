"""Gas-metered virtual machines and the portable contract framework."""

from repro.vm.base import (
    DEFAULT_GAS_PER_CPU_SECOND,
    DeployedContract,
    VirtualMachine,
)
from repro.vm.gas import DEFAULT_SCHEDULE, GasMeter, GasSchedule
from repro.vm.machines import (
    AVM_CAPS,
    EBPF_CAPS,
    GETH_EVM_CAPS,
    MOVE_VM_CAPS,
    VM_FACTORIES,
    avm,
    ebpf_vm,
    geth_evm,
    move_vm,
)
from repro.vm.program import Contract, ExecutionContext, VMCapabilities

__all__ = [
    "AVM_CAPS",
    "Contract",
    "DEFAULT_GAS_PER_CPU_SECOND",
    "DEFAULT_SCHEDULE",
    "DeployedContract",
    "EBPF_CAPS",
    "ExecutionContext",
    "GETH_EVM_CAPS",
    "GasMeter",
    "GasSchedule",
    "MOVE_VM_CAPS",
    "VMCapabilities",
    "VM_FACTORIES",
    "VirtualMachine",
    "avm",
    "ebpf_vm",
    "geth_evm",
    "move_vm",
]
