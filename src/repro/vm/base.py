"""Virtual machine base: deploys contracts and executes transactions.

A :class:`VirtualMachine` owns the capability set of a contract language/VM
pair (Table 4: geth EVM + Solidity, AVM + PyTeal, MoveVM + Move, eBPF +
Solidity-compiled) and executes transactions against a :class:`WorldState`,
producing :class:`Receipt` objects.

The VM also maps consumed gas to simulated CPU seconds so contract-heavy
workloads load the validator machines (the universality experiment's CPU
intensity, §6.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.common.errors import (
    BudgetExceededError,
    ContractError,
    OutOfGasError,
    StateLimitError,
    UnsupportedOperationError,
)
from repro.chain.receipt import ExecStatus, Receipt
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction, TxKind
from repro.vm.gas import DEFAULT_SCHEDULE, GasMeter, GasSchedule
from repro.vm.program import Contract, ExecutionContext, VMCapabilities

# Gas units one c5-class core executes per second. Calibrated so a plain
# transfer (21k gas) costs ~0.4 ms of CPU, i.e. a few thousand TPS per core,
# in line with geth's execution throughput.
DEFAULT_GAS_PER_CPU_SECOND = 50e6

DEPLOY_GAS_LIMIT = 50_000_000


@dataclass
class DeployedContract:
    """A contract instance living at an address in the world state."""

    contract: Contract
    address: str


class VirtualMachine:
    """Executes transfers and contract invocations with gas metering."""

    def __init__(self, capabilities: VMCapabilities,
                 schedule: GasSchedule = DEFAULT_SCHEDULE,
                 gas_per_cpu_second: float = DEFAULT_GAS_PER_CPU_SECOND,
                 strict_nonce: bool = False) -> None:
        self.capabilities = capabilities
        self.schedule = schedule
        self.gas_per_cpu_second = gas_per_cpu_second
        self.strict_nonce = strict_nonce
        self._deployed: Dict[str, DeployedContract] = {}

    @property
    def language(self) -> str:
        return self.capabilities.language

    # -- deployment --------------------------------------------------------------

    def deploy(self, state: WorldState, contract: Contract,
               deployer: str = "deployer") -> DeployedContract:
        """Deploy *contract*, running its constructor against fresh storage.

        Deployment failures propagate: this is where the AVM's state limits
        reject the video sharing DApp (§5.2), before any benchmark runs.
        """
        address = f"contract:{contract.name}"
        storage = state.deploy_storage(address)
        meter = GasMeter(DEPLOY_GAS_LIMIT,
                         hard_budget=None,  # constructors run at genesis
                         schedule=self.schedule)
        ctx = ExecutionContext(storage, meter, self.capabilities,
                               caller=deployer, contract_name=contract.name)
        contract.initialize(ctx)
        deployed = DeployedContract(contract, address)
        self._deployed[contract.name] = deployed
        return deployed

    def deployed(self, name: str) -> DeployedContract:
        try:
            return self._deployed[name]
        except KeyError:
            raise ContractError(f"contract {name!r} is not deployed") from None

    def is_deployed(self, name: str) -> bool:
        return name in self._deployed

    # -- execution -----------------------------------------------------------------

    def execute(self, state: WorldState, tx: Transaction,
                block_height: int = 0) -> Receipt:
        """Execute one transaction, returning its receipt.

        Never raises for in-contract failures — they become receipt
        statuses, matching how blocks include failed transactions.
        """
        if self.strict_nonce and tx.sequence != state.nonce(tx.sender):
            return Receipt(tx.uid, ExecStatus.INVALID,
                           block_height=block_height,
                           error=f"bad sequence {tx.sequence},"
                                 f" expected {state.nonce(tx.sender)}")
        state.bump_nonce(tx.sender)
        if tx.kind is TxKind.TRANSFER:
            return self._execute_transfer(state, tx, block_height)
        return self._execute_invoke(state, tx, block_height)

    def _execute_transfer(self, state: WorldState, tx: Transaction,
                          block_height: int) -> Receipt:
        gas = self.schedule.base_tx
        if gas > tx.gas_limit:
            return Receipt(tx.uid, ExecStatus.OUT_OF_GAS, gas_used=tx.gas_limit,
                           block_height=block_height, error="intrinsic gas")
        if tx.recipient is None:
            return Receipt(tx.uid, ExecStatus.INVALID, gas_used=gas,
                           block_height=block_height, error="no recipient")
        if not state.debit(tx.sender, tx.amount):
            return Receipt(tx.uid, ExecStatus.REVERTED, gas_used=gas,
                           block_height=block_height,
                           error="insufficient balance")
        state.credit(tx.recipient, tx.amount)
        return Receipt(tx.uid, ExecStatus.SUCCESS, gas_used=gas,
                       block_height=block_height)

    def _execute_invoke(self, state: WorldState, tx: Transaction,
                        block_height: int) -> Receipt:
        if tx.contract is None or tx.function is None:
            return Receipt(tx.uid, ExecStatus.INVALID,
                           block_height=block_height,
                           error="invoke without contract/function")
        try:
            deployed = self.deployed(tx.contract)
        except ContractError as exc:
            return Receipt(tx.uid, ExecStatus.INVALID,
                           block_height=block_height, error=str(exc))
        storage = state.storage(deployed.address)
        intrinsic = self.schedule.base_tx + self.schedule.call_overhead
        # The hard budget caps *contract execution*, not the intrinsic
        # transaction cost, so the meter for the call excludes it.
        meter = GasMeter(max(0, tx.gas_limit - intrinsic),
                         hard_budget=self.capabilities.hard_budget,
                         schedule=self.schedule)
        ctx = ExecutionContext(storage, meter, self.capabilities,
                               caller=tx.sender, args=tx.args,
                               contract_name=tx.contract,
                               block_height=block_height)
        try:
            fn = deployed.contract.get_function(tx.function)
            value = fn(ctx)
        except BudgetExceededError as exc:
            return Receipt(tx.uid, ExecStatus.BUDGET_EXCEEDED,
                           gas_used=intrinsic + meter.used,
                           block_height=block_height, error=str(exc))
        except OutOfGasError as exc:
            return Receipt(tx.uid, ExecStatus.OUT_OF_GAS,
                           gas_used=tx.gas_limit,
                           block_height=block_height, error=str(exc))
        except (ContractError, StateLimitError,
                UnsupportedOperationError) as exc:
            return Receipt(tx.uid, ExecStatus.REVERTED,
                           gas_used=intrinsic + meter.used,
                           block_height=block_height, error=str(exc))
        return Receipt(tx.uid, ExecStatus.SUCCESS,
                       gas_used=intrinsic + meter.used,
                       block_height=block_height, return_value=value,
                       events=ctx.events)

    # -- cost model --------------------------------------------------------------------

    def cpu_cost(self, gas_used: int) -> float:
        """CPU seconds a validator spends executing *gas_used* units."""
        return gas_used / self.gas_per_cpu_second

    def probe_gas(self, state: WorldState, tx: Transaction) -> Tuple[ExecStatus, int]:
        """Dry-run a transaction on a copy-free probe.

        Used by chains (and tests) to estimate whether a DApp function fits
        the VM budget without mutating the canonical state. The probe runs on
        a scratch state seeded with a deployment of the same contract.
        """
        scratch = WorldState()
        probe_vm = VirtualMachine(self.capabilities, self.schedule,
                                  self.gas_per_cpu_second)
        if tx.contract is not None and self.is_deployed(tx.contract):
            original = self.deployed(tx.contract)
            probe_vm.deploy(scratch, original.contract)
        else:
            scratch.credit(tx.sender, 10**18)
        receipt = probe_vm.execute(scratch, tx)
        return receipt.status, receipt.gas_used
