"""Concrete virtual machines (Table 4's VM column).

Hard budgets are expressed in the abstract compute units of
:mod:`repro.vm.gas` and calibrated against the paper's observed outcomes
(§6.4, Fig. 5):

* every chain executes the Exchange, Gaming, Web-service and Video DApps
  (the Gaming ``update`` is the heaviest at roughly 1.1e5 units: 10 players
  x 2 coordinates, each a load + store + arithmetic);
* the Mobility DApp's 10,000-iteration distance loop costs roughly 3e6
  units, which must exceed the AVM, MoveVM and eBPF budgets ("budget
  exceeded") while the geth EVM, having *no* hard per-transaction budget,
  executes it;
* the AVM additionally limits state to 128-byte key-value pairs (and 64
  global pairs), which is what rejects the video sharing DApp on Algorand
  at deployment time (§5.2).
"""

from __future__ import annotations

from repro.vm.base import VirtualMachine
from repro.vm.gas import scaled_schedule
from repro.vm.program import VMCapabilities

GETH_EVM_CAPS = VMCapabilities(
    language="solidity/geth-evm",
    hard_budget=None,        # "no hard limit on gas budget of a transaction"
    supports_float=False,
    has_builtin_sqrt=False,
)

AVM_CAPS = VMCapabilities(
    language="pyteal/avm",
    hard_budget=500_000,     # TEAL AppCall opcode budget, in abstract units
    supports_float=False,
    has_builtin_sqrt=False,
    kv_entry_limit=128,      # 128 bytes per key-value pair (§5.2)
    max_state_entries=64,    # AVM global state pairs
)

MOVE_VM_CAPS = VMCapabilities(
    language="move/movevm",
    hard_budget=1_000_000,   # Diem max-gas-per-transaction
    supports_float=False,
    has_builtin_sqrt=False,
)

EBPF_CAPS = VMCapabilities(
    language="solidity/ebpf",
    hard_budget=600_000,     # Solana compute budget per transaction
    supports_float=False,
    has_builtin_sqrt=False,
)


def geth_evm(**kwargs: object) -> VirtualMachine:
    """The geth Ethereum Virtual Machine (Ethereum, Quorum, Avalanche).

    geth is the most mature of the evaluated VMs — the paper observes that
    "the blockchains based on the Go Ethereum (or geth) virtual machine
    seem to handle generic programs the best" — so its execution rate is an
    order of magnitude above the default.
    """
    kwargs.setdefault("gas_per_cpu_second", 1e9)
    return VirtualMachine(GETH_EVM_CAPS, **kwargs)


# Contract execution cost multipliers relative to the geth EVM (see
# repro.vm.gas.scaled_schedule): TEAL interpretation and Solang-compiled
# eBPF execute many low-level instructions per high-level operation.
AVM_EXECUTION_FACTOR = 8.0
EBPF_EXECUTION_FACTOR = 12.0


def avm(**kwargs: object) -> VirtualMachine:
    """Algorand's AVM executing TEAL compiled from PyTeal."""
    kwargs.setdefault("schedule", scaled_schedule(AVM_EXECUTION_FACTOR))
    return VirtualMachine(AVM_CAPS, **kwargs)


def move_vm(**kwargs: object) -> VirtualMachine:
    """Diem's MoveVM."""
    return VirtualMachine(MOVE_VM_CAPS, **kwargs)


def ebpf_vm(**kwargs: object) -> VirtualMachine:
    """Solana's eBPF runtime (Solidity via the Solang toolchain)."""
    kwargs.setdefault("schedule", scaled_schedule(EBPF_EXECUTION_FACTOR))
    return VirtualMachine(EBPF_CAPS, **kwargs)


VM_FACTORIES = {
    "geth-evm": geth_evm,
    "avm": avm,
    "move-vm": move_vm,
    "ebpf": ebpf_vm,
}
