"""Command-line interface mirroring the DIABLO artifact's entry points.

The real tool is invoked as::

    diablo primary -vvv --port=5000 --output=results.json --compress \
        --stat 10 setup.yaml workload.yaml

Here the "setup" is a chain + deployment-configuration pair and the
workload is the same YAML dialect::

    python -m repro run --chain quorum --configuration testnet \
        --output results.json workload.yaml

    python -m repro suite --chain solana --configuration consortium \
        --workload fifa

    python -m repro population --chain ethereum --users 1000000 \
        --rate-per-user 0.001 --duration 120

    python -m repro csv results.json > results.csv

    python -m repro trace ethereum --duration 30 --chrome-trace out.json

    python -m repro sweep experiments.yaml --workers 4

    python -m repro bench --suite mini --compare BENCH_2026-08-08.json

``run`` executes a YAML workload specification; ``suite`` runs one of the
built-in DApp/synthetic traces; ``population`` simulates an aggregate
client population (millions of users as batched arrival processes plus a
tracked cohort — see docs/SCALE.md); ``sweep`` executes a whole
experiment matrix (chains × configurations × workloads × seeds × scales
× populations) over a worker pool with result caching; ``csv`` converts
a results JSON file to
the artifact's per-transaction CSV format; ``trace`` runs a short
workload with full observability (lifecycle tracer + engine profiler)
and prints the per-phase latency breakdown; ``bench`` records a point on
the repo's performance trajectory (``BENCH_<date>.json``) and gates
regressions against a baseline; ``chains`` and ``workloads`` list what
is available.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.summary import (
    degradation_report,
    dos_report,
    overload_report,
    population_report,
    transactions_to_csv,
)
from repro.blockchains.registry import CHAIN_NAMES, characteristics_table
from repro.core.primary import Primary
from repro.core.results import BenchmarkResult
from repro.core.population import ARRIVAL_KINDS
from repro.core.runner import run_benchmark, run_population, run_trace
from repro.obs import (
    ObservabilityOptions,
    trace_report,
    write_chrome_trace,
    write_prometheus,
    write_spans_jsonl,
)
from repro.core.spec import (
    AccountSample,
    LoadSchedule,
    TransferSpec,
    simple_spec,
)
from repro.consensus.testbed import PROTOCOLS, protocol_for_chain
from repro.sim.deployment import CONFIGURATIONS, get_configuration
from repro.sim.faults import events_from_dicts
from repro.workloads import workload_registry


#: default on-disk result cache for ``python -m repro sweep``
DEFAULT_CACHE_DIR = "~/.cache/repro/sweeps"


def _available_workloads() -> dict:
    return workload_registry()


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--chain", required=True, choices=CHAIN_NAMES)
    parser.add_argument("--configuration", default="testnet",
                        choices=sorted(CONFIGURATIONS))
    parser.add_argument("--scale", type=float, default=None,
                        help="experiment scale factor (default: REPRO_SCALE)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--accounts", type=int, default=2_000)
    parser.add_argument("--output", type=Path, default=None,
                        help="write the full results JSON here")
    parser.add_argument("--compress", action="store_true",
                        help="gzip the JSON output (like diablo --compress)")
    parser.add_argument("--stat", action="store_true",
                        help="print summary statistics to stdout")
    parser.add_argument("--max-sim-seconds", type=float, default=None,
                        help="cap total simulated seconds; a run cut short"
                        " by the cap is marked failed")
    parser.add_argument("--watchdog-window", type=float, default=30.0,
                        help="no-commit-progress window (simulated seconds)"
                        " before the liveness watchdog declares a stall")


def _emit(result: BenchmarkResult, output: Optional[Path],
          stat: bool, compress: bool = False) -> None:
    if output is not None:
        if compress:
            import gzip
            target = (output if output.suffix == ".gz"
                      else output.with_suffix(output.suffix + ".gz"))
            with gzip.open(target, "wt") as handle:
                handle.write(result.to_json())
            print(f"wrote {target}", file=sys.stderr)
        else:
            output.write_text(result.to_json())
            print(f"wrote {output}", file=sys.stderr)
    if stat or output is None:
        print(json.dumps(result.summary(), indent=2))


def _run_byzantine_command(args: argparse.Namespace) -> int:
    """``python -m repro byzantine``: adversary demo + safety audit."""
    from repro.consensus.testbed import run_audited
    from repro.sim.byzantine import (
        ByzantineSchedule,
        CensorLeader,
        DelayReorder,
        Equivocate,
        Silence,
    )

    protocol = (args.byz_chain if args.byz_chain in PROTOCOLS
                else protocol_for_chain(args.byz_chain))
    recipe = PROTOCOLS[protocol]
    n = recipe.default_n if args.nodes is None else args.nodes
    until = recipe.until if args.until is None else args.until
    stop = until if args.stop is None else args.stop
    kinds = {"equivocate": Equivocate, "silence": Silence,
             "delay": DelayReorder, "censor": CensorLeader}
    kind = kinds[args.behavior]
    count = max(0, min(args.equivocators, n))
    schedule = ByzantineSchedule(tuple(
        kind(node=node, start=args.start, stop=stop)
        for node in range(count)))
    schedule.validate(n)
    f = recipe.byzantine_f(n)
    print(f"protocol: {protocol} (chain argument {args.byz_chain}),"
          f" n={n}, tolerates f={f}")
    print(f"adversary: {count} x {args.behavior} on replicas"
          f" {sorted(schedule.nodes())},"
          f" window [{args.start:g}, {stop:g})")
    harness, auditor = run_audited(protocol, schedule, n=n,
                                   seed=args.seed, until=until)
    byzantine = set(schedule.nodes())
    honest = [d for d in harness.decisions if d.node not in byzantine]
    stats = harness.stats()
    interventions = ", ".join(
        f"{name}={value}" for name, value in sorted(stats.items())
        if name.startswith("byzantine_")) or "none"
    print(f"interventions: {interventions}")
    print(f"decisions: total={len(harness.decisions)}"
          f" honest={len(honest)}")
    grade = auditor.liveness_grade(window=(args.start, stop), until=until)
    print(f"liveness: {grade}")
    print(f"safety: {auditor.verdict}")
    for line in auditor.forensic_lines():
        print(f"  {line}")
    if args.report is not None:
        args.report.write_text(json.dumps(auditor.report(), indent=2))
        print(f"wrote {args.report}", file=sys.stderr)
    return 0 if auditor.verdict == "ok" else 1


def _run_bench_command(args: argparse.Namespace) -> int:
    """``python -m repro bench``: record/compare performance points."""
    from repro.bench import (
        bench_date,
        bench_filename,
        bench_summary,
        compare_benches,
        comparison_report,
        load_bench,
        run_suite,
        thresholds_scaled,
        write_bench,
    )
    from repro.bench.schema import BenchFormatError

    if args.update_baseline and args.compare is None:
        print("--update-baseline requires --compare <baseline>",
              file=sys.stderr)
        return 2

    if args.replay is not None:
        try:
            payload = load_bench(args.replay)
        except (OSError, BenchFormatError) as exc:
            print(f"cannot load {args.replay}: {exc}", file=sys.stderr)
            return 2
    else:
        def progress(kind: str, detail: str) -> None:
            print(f"[{kind}] {detail}", file=sys.stderr)

        payload = run_suite(suite=args.bench_suite, repeats=args.repeats,
                            workers=args.workers,
                            isolate=not args.no_isolate,
                            label=args.label,
                            progress=progress)
        output = args.output or Path(bench_filename(bench_date()))
        write_bench(payload, output)
        print(f"wrote {output}", file=sys.stderr)
        print(bench_summary(payload))

    if args.compare is None:
        return 0
    try:
        baseline = load_bench(args.compare)
    except (OSError, BenchFormatError) as exc:
        print(f"cannot load baseline {args.compare}: {exc}", file=sys.stderr)
        return 2
    thresholds = thresholds_scaled(args.threshold_scale)
    comparison = compare_benches(baseline, payload, thresholds)
    print()
    print(comparison_report(comparison, strict_counted=args.strict_counted))
    code = comparison.exit_code(strict_counted=args.strict_counted)
    if args.update_baseline:
        if code != 0:
            print(f"refusing to update {args.compare}: verdict is"
                  f" {comparison.verdict(args.strict_counted)}",
                  file=sys.stderr)
        else:
            write_bench(payload, args.compare)
            print(f"updated baseline {args.compare}", file=sys.stderr)
    return code


def _run_sweep_command(args: argparse.Namespace) -> int:
    """``python -m repro sweep``: stream progress, print the table."""
    from repro.obs import sweep_report
    from repro.sweep import ResultCache, load_sweep, run_sweep

    spec = load_sweep(args.spec.read_text())
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    total = len(spec.cells())
    print(f"sweep {args.spec}: {spec.shape()}; workers={args.workers};"
          f" cache={'off' if cache is None else cache.directory}",
          file=sys.stderr)
    finished = 0

    def progress(event) -> None:
        nonlocal finished
        if args.quiet or event.kind in ("queued", "running"):
            return
        finished += 1
        wall = (f"{event.wall_seconds:6.1f}s"
                if event.wall_seconds is not None else "       ")
        detail = f"  ({event.detail})" if event.detail else ""
        print(f"[{finished:{len(str(total))}d}/{total}]"
              f" {event.kind:6s} {event.cell.label}  {wall}{detail}",
              file=sys.stderr)

    sweep = run_sweep(spec, workers=args.workers, cache=cache,
                      progress=progress)
    if args.output_dir is not None:
        args.output_dir.mkdir(parents=True, exist_ok=True)
        summary = []
        for outcome in sweep.outcomes:
            cell = outcome.cell
            name = (f"{cell.index:03d}-{cell.chain}-{cell.configuration.name}"
                    f"-{cell.workload}-seed{cell.seed}.json")
            if outcome.result_json is not None:
                (args.output_dir / name).write_text(outcome.result_json)
            summary.append({
                "index": cell.index,
                "label": cell.label,
                "status": outcome.status,
                "cached": outcome.cached,
                "wall_seconds": round(outcome.wall_seconds, 3),
                "file": name if outcome.result_json is not None else None,
                "failure": (None if outcome.failure is None
                            else str(outcome.failure)),
            })
        (args.output_dir / "sweep-summary.json").write_text(
            json.dumps({"shape": spec.shape(),
                        "metrics": sweep.metrics,
                        "cells": summary}, indent=2))
        print(f"wrote {args.output_dir}/sweep-summary.json", file=sys.stderr)
    print(sweep_report(sweep))
    crashed = [o for o in sweep.outcomes if o.result_json is None]
    return 1 if crashed else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="DIABLO blockchain benchmarks (simulated)")
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser(
        "run", help="run a YAML workload specification")
    _add_common(run_parser)
    run_parser.add_argument("workload", type=Path,
                            help="workload specification YAML file")

    suite_parser = commands.add_parser(
        "suite", help="run a built-in workload trace")
    _add_common(suite_parser)
    suite_parser.add_argument("--workload", required=True,
                              choices=sorted(_available_workloads()))

    population_parser = commands.add_parser(
        "population", help="simulate an aggregate client population:"
        " millions of users as batched arrival processes plus a tracked"
        " cohort with per-transaction fidelity (see docs/SCALE.md)")
    _add_common(population_parser)
    population_parser.add_argument("--users", required=True, type=int,
                                   help="simulated population size")
    population_parser.add_argument("--rate-per-user", type=float,
                                   default=0.001,
                                   help="transactions per second each user"
                                   " submits (population offered load ="
                                   " users x rate)")
    population_parser.add_argument("--duration", type=float, default=120.0,
                                   help="workload duration (seconds)")
    population_parser.add_argument("--cohort", type=int, default=None,
                                   help="tracked-cohort size (default:"
                                   " min(1000, users)); cohort members run"
                                   " as ordinary clients so their"
                                   " transactions keep full per-tx metrics")
    population_parser.add_argument("--arrival", default="poisson",
                                   choices=ARRIVAL_KINDS,
                                   help="aggregate-lane arrival process")

    sweep_parser = commands.add_parser(
        "sweep", help="execute an experiment matrix (chains x configurations"
        " x workloads x seeds x scales x populations) over a worker pool,"
        " replaying unchanged cells from the result cache")
    sweep_parser.add_argument("spec", type=Path,
                              help="sweep specification YAML file"
                              " (see docs/SWEEPS.md)")
    sweep_parser.add_argument("--workers", type=int, default=1,
                              help="worker processes (1 = run inline;"
                              " per-cell results are byte-identical either"
                              " way)")
    sweep_parser.add_argument("--cache-dir", type=Path,
                              default=Path(DEFAULT_CACHE_DIR),
                              help="result cache directory"
                              f" (default: {DEFAULT_CACHE_DIR})")
    sweep_parser.add_argument("--no-cache", action="store_true",
                              help="recompute every cell, touch no cache")
    sweep_parser.add_argument("--output-dir", type=Path, default=None,
                              help="write per-cell results JSON and the"
                              " sweep summary here")
    sweep_parser.add_argument("--quiet", action="store_true",
                              help="suppress per-cell progress lines")

    bench_parser = commands.add_parser(
        "bench", help="run the pinned performance suite, record a"
        " schema-versioned BENCH_<date>.json, and optionally compare"
        " against a baseline with noise-aware regression thresholds")
    bench_parser.add_argument("--suite", dest="bench_suite", default="full",
                              choices=("full", "mini"),
                              help="pinned scenario set (mini = the CI"
                              " regression gate)")
    bench_parser.add_argument("--repeats", type=int, default=3,
                              help="timed repeats per scenario; the median"
                              " is recorded")
    bench_parser.add_argument("--workers", type=int, default=1,
                              help="parallel worker processes (timed"
                              " metrics are least noisy at 1)")
    bench_parser.add_argument("--label", default="",
                              help="free-form description recorded in the"
                              " bench file")
    bench_parser.add_argument("--output", type=Path, default=None,
                              help="where to write the results"
                              " (default: ./BENCH_<date>.json)")
    bench_parser.add_argument("--compare", type=Path, default=None,
                              help="baseline BENCH_*.json to compare"
                              " against; exits 1 on a regression beyond"
                              " threshold")
    bench_parser.add_argument("--replay", type=Path, default=None,
                              help="compare this previously recorded file"
                              " instead of running the suite")
    bench_parser.add_argument("--update-baseline", action="store_true",
                              help="overwrite the --compare baseline with"
                              " the current results when the verdict is"
                              " clean")
    bench_parser.add_argument("--threshold-scale", type=float, default=1.0,
                              help="multiply every noise threshold (use"
                              " > 1 on shared/noisy machines)")
    bench_parser.add_argument("--strict-counted", action="store_true",
                              help="fail when deterministic counted"
                              " metrics changed (CI runs the same code"
                              " twice, so any drift is a bug)")
    bench_parser.add_argument("--no-isolate", action="store_true",
                              help="run repeats inline instead of in fresh"
                              " subprocesses (faster; peak-RSS figures"
                              " become cumulative)")

    csv_parser = commands.add_parser(
        "csv", help="convert a results JSON file to per-transaction CSV")
    csv_parser.add_argument("results", type=Path)

    faults_parser = commands.add_parser(
        "faults", help="crash-and-recover robustness demo with a fault"
        " schedule (crashes f+1 validators, then recovers them)")
    _add_common(faults_parser)
    faults_parser.add_argument("--crash-at", type=float, default=30.0,
                               help="when the validators fail (seconds)")
    faults_parser.add_argument("--recover-at", type=float, default=60.0,
                               help="when they rejoin (seconds)")
    faults_parser.add_argument("--rate", type=float, default=200.0,
                               help="offered load in TPS")
    faults_parser.add_argument("--runtime", type=float, default=90.0,
                               help="workload duration (seconds)")

    overload_parser = commands.add_parser(
        "overload", help="crash-under-load robustness demo: sustained"
        " saturation exhausts node memory (§6.3) — Solana-model validators"
        " OOM-crash, Diem-model consensus stalls, survivors shed load")
    _add_common(overload_parser)
    overload_parser.add_argument("--rate", type=float, default=10_000.0,
                                 help="offered load in TPS (§6.3 uses a"
                                 " constant 10,000 TPS)")
    overload_parser.add_argument("--runtime", type=float, default=90.0,
                                 help="workload duration (seconds)")
    overload_parser.add_argument("--drain", type=float, default=120.0,
                                 help="post-load drain budget (seconds)")

    dos_parser = commands.add_parser(
        "dos", help="economic DoS demo: a budget-constrained adversary"
        " bids for blockspace against honest traffic; reports what"
        " delaying honest transactions cost in fee units")
    dos_parser.add_argument("dos_chain", metavar="chain",
                            choices=CHAIN_NAMES)
    dos_parser.add_argument("--configuration", default="testnet",
                            choices=sorted(CONFIGURATIONS))
    dos_parser.add_argument("--scale", type=float, default=None,
                            help="experiment scale factor"
                            " (default: REPRO_SCALE)")
    dos_parser.add_argument("--seed", type=int, default=0)
    dos_parser.add_argument("--accounts", type=int, default=2_000)
    dos_parser.add_argument("--rate", type=float, default=200.0,
                            help="honest offered load in TPS")
    dos_parser.add_argument("--runtime", type=float, default=60.0,
                            help="workload duration (seconds)")
    dos_parser.add_argument("--budget", type=int, default=50_000_000,
                            help="attacker fee budget (fee units)")
    dos_parser.add_argument("--attack-rate", type=float, default=2_000.0,
                            help="attack transactions per second")
    dos_parser.add_argument("--bid-multiplier", type=float, default=3.0,
                            help="attack bid over the honest fee"
                            " suggestion")
    dos_parser.add_argument("--fee-bump", type=float, default=1.25,
                            help="honest clients multiply their price by"
                            " this on each retry")
    dos_parser.add_argument("--output", type=Path, default=None,
                            help="write the attacked run's results JSON"
                            " here")

    byz_parser = commands.add_parser(
        "byzantine", help="Byzantine adversary demo: runs the chain's"
        " message-level consensus protocol with adversarial replicas"
        " under a SafetyAuditor; exits nonzero on a safety violation")
    byz_parser.add_argument("byz_chain", metavar="chain",
                            choices=sorted(set(CHAIN_NAMES)
                                           | set(PROTOCOLS)),
                            help="benchmark chain (or a protocol name"
                            " directly: hotstuff, ibft, tower, ...)")
    byz_parser.add_argument("--equivocators", type=int, default=1,
                            help="how many replicas misbehave (indices"
                            " 0..k-1)")
    byz_parser.add_argument("--behavior", default="equivocate",
                            choices=("equivocate", "silence", "delay",
                                     "censor"),
                            help="what the adversarial replicas do")
    byz_parser.add_argument("--nodes", type=int, default=None,
                            help="cluster size (default: the protocol"
                            " recipe's)")
    byz_parser.add_argument("--start", type=float, default=0.0,
                            help="attack window start (seconds)")
    byz_parser.add_argument("--stop", type=float, default=None,
                            help="attack window end (default: whole run)")
    byz_parser.add_argument("--until", type=float, default=None,
                            help="simulated horizon (default: the"
                            " protocol recipe's)")
    byz_parser.add_argument("--seed", type=int, default=None)
    byz_parser.add_argument("--report", type=Path, default=None,
                            help="write the auditor's forensic report"
                            " JSON here")

    trace_parser = commands.add_parser(
        "trace", help="run a short workload with lifecycle tracing and"
        " engine profiling; print the per-phase latency breakdown")
    trace_parser.add_argument("trace_chain", metavar="chain",
                              choices=CHAIN_NAMES)
    trace_parser.add_argument("--configuration", default="datacenter",
                              choices=sorted(CONFIGURATIONS))
    trace_parser.add_argument("--duration", type=float, default=30.0,
                              help="workload duration (seconds)")
    trace_parser.add_argument("--rate", type=float, default=200.0,
                              help="offered load in TPS")
    trace_parser.add_argument("--accounts", type=int, default=2_000)
    trace_parser.add_argument("--scale", type=float, default=None,
                              help="experiment scale factor"
                              " (default: REPRO_SCALE)")
    trace_parser.add_argument("--seed", type=int, default=0)
    trace_parser.add_argument("--sample-period", type=float, default=1.0,
                              help="metrics sampling period on the simulated"
                              " clock (0 disables the sampler)")
    trace_parser.add_argument("--top", type=int, default=10,
                              help="engine hotspots to print")
    trace_parser.add_argument("--chrome-trace", type=Path, default=None,
                              help="write a Chrome trace_event JSON here"
                              " (open in chrome://tracing or Perfetto)")
    trace_parser.add_argument("--spans-jsonl", type=Path, default=None,
                              help="write raw span records as JSONL here")
    trace_parser.add_argument("--prometheus", type=Path, default=None,
                              help="write a Prometheus-style metrics dump"
                              " here")
    trace_parser.add_argument("--output", type=Path, default=None,
                              help="write the full results JSON here")

    commands.add_parser("chains", help="list the evaluated blockchains")
    commands.add_parser("workloads", help="list the built-in workloads")

    args = parser.parse_args(argv)

    if args.command == "run":
        result = run_benchmark(args.chain, args.configuration,
                               args.workload.read_text(),
                               workload_name=args.workload.stem,
                               scale=args.scale, seed=args.seed,
                               max_sim_seconds=args.max_sim_seconds,
                               watchdog_window=args.watchdog_window)
        _emit(result, args.output, args.stat, args.compress)
    elif args.command == "suite":
        trace = _available_workloads()[args.workload]
        result = run_trace(args.chain, args.configuration, trace,
                           accounts=args.accounts, scale=args.scale,
                           seed=args.seed,
                           max_sim_seconds=args.max_sim_seconds,
                           watchdog_window=args.watchdog_window)
        _emit(result, args.output, args.stat, args.compress)
    elif args.command == "population":
        result = run_population(args.chain, args.configuration,
                                users=args.users,
                                rate_per_user=args.rate_per_user,
                                duration=args.duration,
                                cohort=args.cohort,
                                arrival=args.arrival,
                                accounts=args.accounts,
                                scale=args.scale, seed=args.seed,
                                max_sim_seconds=args.max_sim_seconds,
                                watchdog_window=args.watchdog_window)
        _emit(result, args.output, args.stat, args.compress)
        print(population_report(result))
    elif args.command == "overload":
        spec = simple_spec(
            TransferSpec(AccountSample(args.accounts)),
            LoadSchedule.constant(args.rate, args.runtime))
        result = run_benchmark(args.chain, args.configuration, spec,
                               workload_name="overload",
                               scale=args.scale, seed=args.seed,
                               drain=args.drain,
                               max_sim_seconds=args.max_sim_seconds,
                               watchdog_window=args.watchdog_window)
        _emit(result, args.output, args.stat, args.compress)
        print(overload_report(result))
    elif args.command == "faults":
        config = get_configuration(args.configuration)
        # f+1 crashed validators deny the n-f commit quorum: the chain
        # stalls until they recover (the availability-dip demonstration)
        victims = list(range((config.node_count - 1) // 3 + 1))
        faults = events_from_dicts([
            {"at": args.crash_at, "kind": "crash", "nodes": victims},
            {"at": args.recover_at, "kind": "recover", "nodes": victims},
        ])
        spec = simple_spec(
            TransferSpec(AccountSample(args.accounts)),
            LoadSchedule.constant(args.rate, args.runtime),
            faults=faults)
        result = run_benchmark(args.chain, args.configuration, spec,
                               workload_name="crash-and-recover",
                               scale=args.scale, seed=args.seed,
                               max_sim_seconds=args.max_sim_seconds,
                               watchdog_window=args.watchdog_window)
        _emit(result, args.output, args.stat, args.compress)
        print(degradation_report(result))
    elif args.command == "dos":
        from repro.econ.fees import FeeSpec
        from repro.sim.dos import AdversarySpec

        fees = FeeSpec(fee_bump=args.fee_bump)
        adversary = AdversarySpec(budget=args.budget,
                                  rate=args.attack_rate,
                                  bid_multiplier=args.bid_multiplier)

        def dos_run(with_adversary: bool) -> BenchmarkResult:
            spec = simple_spec(
                TransferSpec(AccountSample(args.accounts)),
                LoadSchedule.constant(args.rate, args.runtime),
                fees=fees,
                adversary=adversary if with_adversary else None)
            primary = Primary(args.dos_chain, args.configuration,
                              scale=args.scale, seed=args.seed)
            return primary.run(spec, workload_name="dos")

        print(f"baseline: {args.dos_chain} at {args.rate:g} TPS honest"
              f" load, fee market on, no attack", file=sys.stderr)
        baseline = dos_run(with_adversary=False)
        print(f"attack:   +{args.attack_rate:g} TPS adversary, budget"
              f" {args.budget:,}, bidding x{args.bid_multiplier:g}",
              file=sys.stderr)
        attacked = dos_run(with_adversary=True)
        if args.output is not None:
            args.output.write_text(attacked.to_json())
            print(f"wrote {args.output}", file=sys.stderr)
        print(dos_report(baseline, attacked))
    elif args.command == "byzantine":
        return _run_byzantine_command(args)
    elif args.command == "bench":
        return _run_bench_command(args)
    elif args.command == "trace":
        spec = simple_spec(
            TransferSpec(AccountSample(args.accounts)),
            LoadSchedule.constant(args.rate, args.duration))
        observe = ObservabilityOptions(trace=True, profile=True,
                                       sample_period=args.sample_period)
        primary = Primary(args.trace_chain, args.configuration,
                          scale=args.scale, seed=args.seed, observe=observe)
        result = primary.run(spec, workload_name="trace")
        print(trace_report(primary.tracer, primary.profiler, top=args.top))
        if args.chrome_trace is not None:
            write_chrome_trace(primary.tracer, args.chrome_trace,
                               profiler=primary.profiler)
            print(f"wrote {args.chrome_trace}", file=sys.stderr)
        if args.spans_jsonl is not None:
            write_spans_jsonl(primary.tracer, args.spans_jsonl)
            print(f"wrote {args.spans_jsonl}", file=sys.stderr)
        if args.prometheus is not None:
            write_prometheus(primary.network.metrics, args.prometheus,
                             labels={"chain": args.trace_chain,
                                     "configuration": args.configuration})
            print(f"wrote {args.prometheus}", file=sys.stderr)
        if args.output is not None:
            args.output.write_text(result.to_json())
            print(f"wrote {args.output}", file=sys.stderr)
    elif args.command == "sweep":
        return _run_sweep_command(args)
    elif args.command == "csv":
        if args.results.suffix == ".gz":
            import gzip
            with gzip.open(args.results, "rt") as handle:
                text = handle.read()
        else:
            text = args.results.read_text()
        result = BenchmarkResult.from_json(text)
        sys.stdout.write(transactions_to_csv(result))
    elif args.command == "chains":
        for row in characteristics_table():
            print(row)
    elif args.command == "workloads":
        for name, trace in sorted(_available_workloads().items()):
            print(f"{name:18s} {trace.description}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
