"""Canonical small-cluster recipes for every message-level protocol.

The ``python -m repro byzantine`` demo, examples/robustness_byzantine.py
and the adversarial test-suites all need the same thing: a working
n-replica cluster of protocol X with compressed timeouts and a horizon
long enough to commit. The recipes here are the ones the per-protocol
test-suites settled on (tests/consensus/), packaged so adversarial
callers don't re-derive them: Snowball in particular never finalises
with its WAN defaults at n=8 — it needs the small-committee parameters
and a split initial preference to exercise metastability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.common.errors import SpecError
from repro.consensus.algorand import AlgorandReplica
from repro.consensus.avalanche import SnowballReplica
from repro.consensus.base import ConsensusHarness, Replica
from repro.consensus.clique import CliqueReplica
from repro.consensus.hotstuff import HotStuffReplica
from repro.consensus.ibft import IBFTReplica
from repro.consensus.raft import RaftReplica
from repro.consensus.towerbft import TowerReplica


@dataclass(frozen=True)
class ProtocolRecipe:
    """How to stand up one protocol's canonical test cluster."""

    name: str
    #: build replica ``index`` of ``n`` (seed offsets keep replicas with
    #: private RNGs — Raft timers, Snowball samplers — decorrelated)
    factory: Callable[[int, int, int], Replica]
    default_n: int = 4
    #: simulated horizon long enough for ~hundreds of commits
    until: float = 6.0
    payloads: int = 20
    seed: int = 1
    #: replicas a quorum protocol tolerates misbehaving; 0 for protocols
    #: with no Byzantine tolerance (CFT Raft, authority-list Clique) and
    #: for Snowball, whose tolerance is probabilistic, not a threshold
    byzantine_f: Callable[[int], int] = staticmethod(lambda n: (n - 1) // 3)
    #: how to feed the cluster work and run it to ``until``; None means
    #: the default submit-payloads-then-run loop
    driver: Optional[Callable[[ConsensusHarness, "ProtocolRecipe", float],
                              None]] = None


def _no_tolerance(n: int) -> int:
    return 0


def _drive_default(harness: ConsensusHarness, recipe: "ProtocolRecipe",
                   until: float) -> None:
    for i in range(recipe.payloads):
        harness.submit(f"tx-{i}")
    harness.run(until=until)


def _drive_raft(harness: ConsensusHarness, recipe: "ProtocolRecipe",
                until: float) -> None:
    """Raft commits only what a leader explicitly proposes.

    Run long enough to elect, hand the leader the payloads, then run
    out the horizon. No leader (the cluster failed to elect under the
    adversary) means nothing to propose — the liveness grade records it.
    """
    election_horizon = min(10.0, until / 2)
    harness.run(until=election_horizon)
    leaders = [r for r in harness.replicas
               if r.role == "leader" and r.node_id not in harness.crashed]
    if leaders:
        leader = max(leaders, key=lambda r: r.term)
        for i in range(recipe.payloads):
            leader.propose(f"tx-{i}")
    harness.engine.run(until=until)


PROTOCOLS: Dict[str, ProtocolRecipe] = {
    "hotstuff": ProtocolRecipe(
        "hotstuff",
        lambda i, n, seed: HotStuffReplica(base_timeout=0.25)),
    "ibft": ProtocolRecipe(
        "ibft",
        lambda i, n, seed: IBFTReplica(base_timeout=0.5),
        until=8.0),
    "tower": ProtocolRecipe(
        "tower",
        lambda i, n, seed: TowerReplica(root_depth=4),
        until=15.0, payloads=10),
    "algorand": ProtocolRecipe(
        "algorand",
        lambda i, n, seed: AlgorandReplica(committee_size=5.0,
                                           proposer_count=3.0),
        until=20.0, payloads=10),
    "raft": ProtocolRecipe(
        "raft",
        lambda i, n, seed: RaftReplica(seed=seed + i),
        default_n=5, until=18.0, payloads=10, seed=7,
        byzantine_f=_no_tolerance, driver=_drive_raft),
    "clique": ProtocolRecipe(
        "clique",
        lambda i, n, seed: CliqueReplica(period=1.0, confirmations=2,
                                         seed=seed + i),
        until=25.0, payloads=12, seed=3,
        byzantine_f=_no_tolerance),
    "snowball": ProtocolRecipe(
        "snowball",
        lambda i, n, seed: SnowballReplica(
            k=3, alpha=2, beta=5,
            initial_preference=("A" if i % 2 else "B"),
            seed=seed + i),
        default_n=8, until=30.0, payloads=0, seed=5,
        byzantine_f=_no_tolerance),
}

#: which message-level protocol backs each benchmark chain (§2 of the
#: paper: Diem runs DiemBFT/HotStuff, Quorum runs IBFT, Solana runs
#: Tower BFT, Avalanche runs Snowball, Ethereum's testnets seal with
#: Clique proof-of-authority)
CHAIN_PROTOCOLS: Dict[str, str] = {
    "algorand": "algorand",
    "avalanche": "snowball",
    "diem": "hotstuff",
    "ethereum": "clique",
    "quorum": "ibft",
    "solana": "tower",
}


def protocol_for_chain(chain: str) -> str:
    try:
        return CHAIN_PROTOCOLS[chain]
    except KeyError:
        raise SpecError(
            f"no message-level protocol mapped for chain {chain!r}"
            f" (known: {sorted(CHAIN_PROTOCOLS)})")


def build_harness(protocol: str, n: Optional[int] = None,
                  seed: Optional[int] = None,
                  adversary: Optional[object] = None,
                  auditor: Optional[object] = None) -> ConsensusHarness:
    """Build (but do not run) the canonical cluster for *protocol*."""
    try:
        recipe = PROTOCOLS[protocol]
    except KeyError:
        raise SpecError(f"unknown protocol {protocol!r}"
                        f" (known: {sorted(PROTOCOLS)})")
    n = recipe.default_n if n is None else n
    seed = recipe.seed if seed is None else seed
    replicas = [recipe.factory(i, n, seed) for i in range(n)]
    return ConsensusHarness(replicas, regions=("ohio",), seed=seed,
                            adversary=adversary, auditor=auditor)


def run_audited(protocol: str, schedule,
                n: Optional[int] = None,
                seed: Optional[int] = None,
                until: Optional[float] = None,
                tracer: Optional[object] = None
                ) -> Tuple[ConsensusHarness, "SafetyAuditor"]:
    """Run *protocol* under *schedule* with a :class:`SafetyAuditor`.

    Returns the finished harness and its auditor; callers read
    ``auditor.verdict`` / ``auditor.report()`` and the harness's
    ``byzantine`` metrics namespace for degradation counters.
    """
    from repro.consensus.auditor import SafetyAuditor
    from repro.sim.byzantine import ByzantineAdversary

    recipe = PROTOCOLS[protocol]  # build_harness re-validates the name
    seed = recipe.seed if seed is None else seed
    adversary = ByzantineAdversary(schedule, seed=seed, tracer=tracer)
    auditor = SafetyAuditor()
    harness = build_harness(protocol, n=n, seed=seed,
                            adversary=adversary, auditor=auditor)
    drive = recipe.driver or _drive_default
    drive(harness, recipe, recipe.until if until is None else until)
    return harness, auditor
