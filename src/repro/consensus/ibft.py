"""IBFT — Istanbul Byzantine Fault Tolerance (Quorum's consensus, §5.2).

A PBFT-style protocol with three phases per height: the proposer of the
current round broadcasts PRE-PREPARE with the block; validators broadcast
PREPARE; on 2f+1 PREPAREs they broadcast COMMIT; on 2f+1 COMMITs the block
is final (immediate finality — Quorum "provides immediate finality", §6.2).
A ROUND-CHANGE sub-protocol with exponentially growing timeouts replaces a
stalled proposer.

This is the message-level correctness reference for the analytic Quorum
model. The paper's §6.3 collapse under constant overload corresponds to
round-change cascades, which this implementation exhibits when proposal
delays exceed the round timeout (see tests/consensus/test_ibft.py).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.consensus.base import Message, Replica

PROPOSAL_BASE_SIZE = 600


@dataclass
class IBFTProposal:
    """A proposed block for (height, round)."""

    height: int
    round: int
    value: object
    digest: str


class IBFTReplica(Replica):
    """One IBFT validator."""

    def __init__(self, base_timeout: float = 4.0, max_timeout: float = 120.0,
                 proposal_delay: float = 0.0) -> None:
        super().__init__()
        self.base_timeout = base_timeout
        self.max_timeout = max_timeout
        # artificial time the proposer takes to build a block; tests use it
        # to provoke round-change cascades (the §6.3 overload behaviour)
        self.proposal_delay = proposal_delay
        self.height = 1
        self.round = 0
        self.decided_values: Dict[int, object] = {}
        self._prepares: Dict[Tuple[int, int, str], Set[int]] = {}
        self._commits: Dict[Tuple[int, int, str], Set[int]] = {}
        self._round_changes: Dict[Tuple[int, int], Set[int]] = {}
        self._proposal: Optional[IBFTProposal] = None
        self._sent_prepare: Set[Tuple[int, int]] = set()
        self._sent_commit: Set[Tuple[int, int]] = set()
        self._timer = None
        self.round_changes_seen = 0

    # -- helpers --------------------------------------------------------------

    def proposer_of(self, height: int, round_: int) -> int:
        return (height + round_) % self.n

    def _timeout_for(self, round_: int) -> float:
        return min(self.max_timeout, self.base_timeout * (2 ** min(8, round_)))

    def _arm_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
        height, round_ = self.height, self.round
        self._timer = self.schedule(
            self._timeout_for(round_),
            lambda: self._on_timeout(height, round_),
            label="ibft-timer")

    # -- lifecycle ---------------------------------------------------------------

    def on_start(self) -> None:
        self._start_round()

    def on_recover(self) -> None:
        """Rejoin after a crash: state-sync decided heights, restart rounds.

        IBFT instances are strictly sequential per height, so a node that
        slept through heights h..h+k can never re-run them — real deployments
        download the committed blocks from peers before rejoining consensus.
        The harness's decision log plays the role of that block store: the
        recovered node adopts every contiguous decided height it missed
        (recording its own commit for each, which keeps the agreement
        invariant checkable), then resumes the protocol at the next height.
        """
        decided: Dict[int, object] = {}
        for decision in self.harness.decisions:
            decided.setdefault(decision.height, decision.value)
        height = self.height
        while height in decided:
            self.decided_values[height] = decided[height]
            self.decide(height, decided[height])
            height += 1
        self.height = height
        self.round = 0
        self._start_round()

    def _start_round(self) -> None:
        self._proposal = None
        self._arm_timer()
        if self.proposer_of(self.height, self.round) == self.node_id:
            if self.proposal_delay > 0:
                height, round_ = self.height, self.round
                self.schedule(self.proposal_delay,
                              lambda: self._maybe_propose(height, round_),
                              label="ibft-build")
            else:
                self._maybe_propose(self.height, self.round)

    def _maybe_propose(self, height: int, round_: int) -> None:
        if (height, round_) != (self.height, self.round):
            return
        if height in self.decided_values:
            return
        value = self.next_payload()
        proposal = IBFTProposal(height, round_, value,
                                digest=f"h{height}r{round_}:{value}")
        self.count("proposals")
        self.broadcast(Message("pre-prepare", self.node_id,
                               {"proposal": proposal},
                               size=PROPOSAL_BASE_SIZE))

    def on_message(self, message: Message) -> None:
        handler = getattr(self, f"_on_{message.kind.replace('-', '_')}")
        handler(message)

    # -- three phases ----------------------------------------------------------------

    def _on_pre_prepare(self, message: Message) -> None:
        proposal: IBFTProposal = message.payload["proposal"]
        if proposal.height != self.height or proposal.round != self.round:
            return
        if message.sender != self.proposer_of(proposal.height, proposal.round):
            return
        self._proposal = proposal
        key = (proposal.height, proposal.round)
        if key in self._sent_prepare:
            return
        self._sent_prepare.add(key)
        self.count("prepares_cast")
        self.broadcast(Message("prepare", self.node_id, {
            "height": proposal.height, "round": proposal.round,
            "digest": proposal.digest}))

    def _on_prepare(self, message: Message) -> None:
        height = message.payload["height"]
        round_ = message.payload["round"]
        digest = message.payload["digest"]
        voters = self._prepares.setdefault((height, round_, digest), set())
        voters.add(message.sender)
        if (height, round_) != (self.height, self.round):
            return
        key = (height, round_)
        if (len(voters) >= self.quorum and self._proposal is not None
                and self._proposal.digest == digest
                and key not in self._sent_commit):
            self._sent_commit.add(key)
            self.broadcast(Message("commit", self.node_id, {
                "height": height, "round": round_, "digest": digest}))

    def _on_commit(self, message: Message) -> None:
        height = message.payload["height"]
        round_ = message.payload["round"]
        digest = message.payload["digest"]
        voters = self._commits.setdefault((height, round_, digest), set())
        voters.add(message.sender)
        if height != self.height or height in self.decided_values:
            return
        if (len(voters) >= self.quorum and self._proposal is not None
                and self._proposal.digest == digest):
            self._decide(self._proposal)

    def _decide(self, proposal: IBFTProposal) -> None:
        self.decided_values[proposal.height] = proposal.value
        self.decide(proposal.height, proposal.value)
        self.height += 1
        self.round = 0
        self._start_round()

    # -- round changes ------------------------------------------------------------------

    def _on_timeout(self, height: int, round_: int) -> None:
        if (height, round_) != (self.height, self.round):
            return
        self.round_changes_seen += 1
        self.count("round_changes")
        next_round = round_ + 1
        self.broadcast(Message("round-change", self.node_id, {
            "height": height, "round": next_round}))

    def _on_round_change(self, message: Message) -> None:
        height = message.payload["height"]
        round_ = message.payload["round"]
        voters = self._round_changes.setdefault((height, round_), set())
        voters.add(message.sender)
        if height != self.height or round_ <= self.round:
            return
        # f+1 round-changes: catch up even without having timed out
        if len(voters) >= self.f + 1 and self.node_id not in voters:
            voters.add(self.node_id)
            self.broadcast(Message("round-change", self.node_id, {
                "height": height, "round": round_}))
        if len(voters) >= self.quorum:
            self.round = round_
            self._start_round()
