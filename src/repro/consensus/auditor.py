"""Online safety and liveness auditing for message-level consensus runs.

The :class:`SafetyAuditor` watches every routed message and every commit
of a :class:`~repro.consensus.base.ConsensusHarness` and checks the three
classical safety invariants *while the run executes*:

- **agreement** — no two honest nodes commit different values at the
  same height;
- **total order** — an honest node commits each height at most once
  (decision logs are per-height, so no-duplicates + agreement give a
  common prefix);
- **certificate validity** — every committed value was actually carried
  by some protocol message; a value that never crossed the wire has no
  certificate behind it and marks a fabricated commit.

Replicas named Byzantine are exempt from the invariants (a lying node
may "commit" anything) but their messages still count as endorsements:
the adversary model forbids signature forgery, so whatever a Byzantine
node *sent* is a real, signed artifact.

Violations are recorded as forensic dictionaries — which check failed,
at which height, which nodes, which conflicting values, at what times —
and, in strict mode, raised immediately as
:class:`~repro.common.errors.SafetyViolationError`.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.common.errors import SafetyViolationError


def _leaf_values(obj: Any) -> Iterable[str]:
    """Every leaf string reachable in a message payload.

    Mirrors the adversary's structural walk: a committed value must show
    up somewhere in some payload (proposal value, digest suffix, log
    entry) to count as endorsed on the wire.
    """
    if isinstance(obj, str):
        yield obj
    elif isinstance(obj, dict):
        for value in obj.values():
            yield from _leaf_values(value)
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            yield from _leaf_values(item)
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        for field in dataclasses.fields(obj):
            yield from _leaf_values(getattr(obj, field.name))


class SafetyAuditor:
    """Invariant monitor attached to one consensus harness run."""

    def __init__(self, byzantine: Iterable[int] = (),
                 strict: bool = False,
                 check_certificates: bool = True) -> None:
        self.byzantine: Set[int] = set(byzantine)
        self.strict = strict
        self.check_certificates = check_certificates
        self.violations: List[Dict[str, Any]] = []
        self.checked_decisions = 0
        self._endorsed: Set[str] = set()
        self._observed_messages = 0
        #: height -> first honest decision (the canonical value)
        self._canonical: Dict[int, Any] = {}
        self._canonical_meta: Dict[int, Tuple[int, float]] = {}
        self._committed_once: Set[Tuple[int, int]] = set()
        self._harness: Optional[Any] = None

    # -- wiring --------------------------------------------------------------

    def bind(self, harness: Any, byzantine: Iterable[int] = ()) -> None:
        """Attach to a harness; extra Byzantine ids (e.g. the adversary's
        schedule) merge into the exemption set."""
        self._harness = harness
        self.byzantine.update(byzantine)

    # -- observation hooks ---------------------------------------------------

    def observe_message(self, sender: int, target: int,
                        message: Any) -> None:
        """Record wire endorsements (called by the harness on every route)."""
        self._observed_messages += 1
        if self.check_certificates:
            self._endorsed.update(_leaf_values(message.payload))

    def observe_decision(self, decision: Any) -> None:
        """Check one commit against the invariants as it happens."""
        self.checked_decisions += 1
        if decision.node in self.byzantine:
            return
        key = (decision.node, decision.height)
        if key in self._committed_once:
            self._record({
                "check": "total_order",
                "height": decision.height,
                "nodes": [decision.node],
                "values": [decision.value],
                "times": [decision.time],
                "detail": f"node {decision.node} committed height"
                          f" {decision.height} twice",
            })
        self._committed_once.add(key)
        canonical = self._canonical.get(decision.height)
        if decision.height not in self._canonical:
            self._canonical[decision.height] = decision.value
            self._canonical_meta[decision.height] = (decision.node,
                                                     decision.time)
        elif canonical != decision.value:
            first_node, first_time = self._canonical_meta[decision.height]
            self._record({
                "check": "agreement",
                "height": decision.height,
                "nodes": [first_node, decision.node],
                "values": [canonical, decision.value],
                "times": [first_time, decision.time],
                "detail": f"height {decision.height}: node {first_node}"
                          f" committed {canonical!r} but node"
                          f" {decision.node} committed {decision.value!r}",
            })
        if (self.check_certificates and self._observed_messages
                and isinstance(decision.value, str)
                and decision.value not in self._endorsed):
            self._record({
                "check": "certificate",
                "height": decision.height,
                "nodes": [decision.node],
                "values": [decision.value],
                "times": [decision.time],
                "detail": f"node {decision.node} committed"
                          f" {decision.value!r} at height {decision.height}"
                          " but no protocol message ever carried it",
            })

    def _record(self, violation: Dict[str, Any]) -> None:
        self.violations.append(violation)
        if self.strict:
            raise SafetyViolationError(
                f"safety violated ({violation['check']}):"
                f" {violation['detail']}", violation=violation)

    # -- verdicts ------------------------------------------------------------

    @property
    def verdict(self) -> str:
        return "violated" if self.violations else "ok"

    def report(self) -> Dict[str, Any]:
        """The forensic report for this run (JSON-friendly)."""
        return {
            "verdict": self.verdict,
            "checked_decisions": self.checked_decisions,
            "byzantine_nodes": sorted(self.byzantine),
            "violations": list(self.violations),
        }

    def forensic_lines(self) -> List[str]:
        """Human-readable one-liners, one per violation."""
        return [f"[{v['check']}] {v['detail']}" for v in self.violations]

    def liveness_grade(self, window: Optional[Tuple[float, float]] = None,
                       until: Optional[float] = None) -> str:
        """Grade honest progress: ``ok`` / ``degraded`` / ``failed``.

        Mirrors the ``LivenessWatchdog`` semantics on the decision log:
        ``failed`` when honest nodes never commit (or never commit again
        after the attack *window* closes, when the run extends past it),
        ``degraded`` when commits pause for the whole window but resume,
        ``ok`` otherwise.
        """
        times = [d.time for d in (self._harness.decisions if self._harness
                                  else []) if d.node not in self.byzantine]
        if not times:
            return "failed"
        if window is None:
            return "ok"
        start, stop = window
        if until is not None and until > stop:
            if not any(t >= stop for t in times):
                return "failed"
        if not any(start <= t < stop for t in times):
            return "degraded"
        return "ok"
