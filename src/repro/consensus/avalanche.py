"""Avalanche's Snowball metastable consensus (Team Rocket, 2018) — §5.2.

Snowball decides a binary-ish choice (here: which of the competing proposals
for a height to adopt) by repeated randomized polling: each round a node
samples ``k`` peers, and if at least ``alpha`` of them prefer a value, the
node increments that value's confidence counter, switching preference when
another value's counter overtakes. After ``beta`` consecutive successful
polls for the same value, the node finalizes it.

Avalanche-the-blockchain linearises blocks on the C-Chain through repeated
Snowball instances; this module implements one instance per height, which is
enough for the correctness tests (metastability: all nodes converge to one
value even when initial preferences are split) and for validating the
analytic model's latency shape: O(log n) polling rounds of one RTT each.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.common.rng import RngFactory
from repro.consensus.base import Message, Replica

POLL_SIZE = 150


class SnowballReplica(Replica):
    """One node running a single-decision Snowball instance."""

    def __init__(self, k: int = 5, alpha: int = 4, beta: int = 8,
                 initial_preference: object = None, seed: int = 0,
                 poll_period: float = 0.05) -> None:
        super().__init__()
        self.k = k
        self.alpha = alpha
        self.beta = beta
        self.poll_period = poll_period
        self.preference = initial_preference
        self._rng = None  # seeded with node_id at start
        self._seed = seed
        self.confidence: Dict[object, int] = {}
        self.consecutive = 0
        self.finalized = False
        self._poll_round = 0
        self._responses: Dict[int, List[object]] = {}
        self.polls_sent = 0

    # -- lifecycle ---------------------------------------------------------------

    def on_start(self) -> None:
        self._rng = RngFactory(self._seed).stream("snowball", str(self.node_id))
        if self.preference is None:
            self.preference = self.next_payload()
        self.schedule(self.poll_period, self._poll, label="snowball-poll")

    def _poll(self) -> None:
        if self.finalized:
            return
        self._poll_round += 1
        self.count("polls")
        round_ = self._poll_round
        self._responses[round_] = []
        k = min(self.k, self.n - 1)
        peers = self._rng.choice(
            [i for i in range(self.n) if i != self.node_id],
            size=k, replace=False)
        self.polls_sent += k
        for peer in peers:
            self.send(int(peer), Message("query", self.node_id,
                                         {"round": round_}, size=POLL_SIZE))
        # close the round after a generous response window
        self.schedule(self.poll_period * 40,
                      lambda: self._close_round(round_),
                      label="snowball-close")

    def on_message(self, message: Message) -> None:
        if message.kind == "query":
            self.send(message.sender, Message(
                "response", self.node_id,
                {"round": message.payload["round"],
                 "preference": self.preference}, size=POLL_SIZE))
        elif message.kind == "response":
            round_ = message.payload["round"]
            if round_ in self._responses:
                self._responses[round_].append(message.payload["preference"])
                k = min(self.k, self.n - 1)
                if len(self._responses[round_]) >= k:
                    self._close_round(round_)

    def _close_round(self, round_: int) -> None:
        responses = self._responses.pop(round_, None)
        if responses is None or self.finalized:
            return
        counts: Dict[object, int] = {}
        for pref in responses:
            counts[pref] = counts.get(pref, 0) + 1
        winner = None
        for value, count in counts.items():
            if count >= self.alpha:
                winner = value
                break
        if winner is not None:
            self.confidence[winner] = self.confidence.get(winner, 0) + 1
            best = max(self.confidence, key=self.confidence.get)
            if best != self.preference:
                self.preference = best
            if winner == self.preference:
                self.consecutive += 1
            else:
                self.consecutive = 1
                self.preference = winner
            if self.consecutive >= self.beta:
                self.finalized = True
                self.decide(1, self.preference)
                return
        else:
            self.consecutive = 0
        self.schedule(self.poll_period, self._poll, label="snowball-poll")
