"""Chained HotStuff (Yin et al., PODC'19) — Diem's consensus core (§5.2).

Message-level implementation of the three-chain variant: each view's leader
proposes a block justified by the highest known quorum certificate; replicas
vote to the *next* leader; a block commits once it heads a chain of three
blocks with consecutive views. A pacemaker with exponential timeouts rotates
leaders when views stall.

The implementation favours clarity over micro-optimisation — it is the
correctness reference the analytic Diem model is validated against, and it
runs in tests at n = 4..16.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.consensus.base import Message, Replica

PROPOSAL_BASE_SIZE = 600


@dataclass(frozen=True)
class QuorumCertificate:
    """Certificate that a quorum voted for *block_id* in *view*."""

    view: int
    block_id: str

    @staticmethod
    def genesis() -> "QuorumCertificate":
        return QuorumCertificate(view=0, block_id="genesis")


@dataclass
class HSBlock:
    """A HotStuff block: value + justification of its parent."""

    block_id: str
    view: int
    height: int
    parent_id: str
    justify: QuorumCertificate
    value: object = None


def _block_id(view: int, parent_id: str, value: object) -> str:
    return f"b{view}({parent_id})"


class HotStuffReplica(Replica):
    """One chained-HotStuff replica."""

    def __init__(self, base_timeout: float = 2.0,
                 max_timeout: float = 60.0) -> None:
        super().__init__()
        self.base_timeout = base_timeout
        self.max_timeout = max_timeout
        self.view = 1
        genesis = HSBlock("genesis", 0, 0, "", QuorumCertificate.genesis())
        self.blocks: Dict[str, HSBlock] = {"genesis": genesis}
        self.high_qc = QuorumCertificate.genesis()
        self.locked_qc = QuorumCertificate.genesis()
        self.last_committed_height = 0
        self.voted_views: Set[int] = set()
        self._votes: Dict[int, Set[int]] = {}        # view -> voters
        self._vote_block: Dict[int, str] = {}        # view -> block voted
        self._new_views: Dict[int, Set[int]] = {}    # view -> senders
        self._timer = None
        self._timeouts_fired = 0

    # -- helpers ------------------------------------------------------------------

    def leader_of(self, view: int) -> int:
        return view % self.n

    def _current_timeout(self) -> float:
        return min(self.max_timeout,
                   self.base_timeout * (2 ** min(10, self._timeouts_fired)))

    def _arm_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
        view_at_arm = self.view
        self._timer = self.schedule(
            self._current_timeout(),
            lambda: self._on_timeout(view_at_arm),
            label="hs-pacemaker")

    def _extends(self, block: HSBlock, ancestor_id: str) -> bool:
        cursor: Optional[HSBlock] = block
        while cursor is not None:
            if cursor.block_id == ancestor_id:
                return True
            cursor = self.blocks.get(cursor.parent_id)
        return False

    # -- protocol ----------------------------------------------------------------------

    def on_start(self) -> None:
        self._arm_timer()
        if self.leader_of(self.view) == self.node_id:
            self._propose()

    def on_recover(self) -> None:
        """Rejoin after a crash: re-arm the pacemaker and catch up naturally.

        Chained HotStuff needs no explicit state transfer for safety — the
        recovered replica's lock is stale but still safe, and incoming
        proposals carry the QCs it needs to advance its view and resume
        voting. Heights committed while it was down simply stay uncommitted
        locally (their parents never arrived), which agreement allows.
        """
        self._timeouts_fired = 0
        self._arm_timer()

    def _propose(self) -> None:
        parent = self.blocks.get(self.high_qc.block_id)
        if parent is None:
            # the QC'd block never reached this leader (lossy network);
            # without the parent it cannot extend the chain — let the
            # pacemaker rotate to a leader that has it
            return
        value = self.next_payload()
        block = HSBlock(
            block_id=_block_id(self.view, parent.block_id, value),
            view=self.view,
            height=parent.height + 1,
            parent_id=parent.block_id,
            justify=self.high_qc,
            value=value)
        self.blocks[block.block_id] = block
        self.count("proposals")
        self.broadcast(Message(
            "proposal", self.node_id,
            {"block": block}, size=PROPOSAL_BASE_SIZE))

    def on_message(self, message: Message) -> None:
        handler = getattr(self, f"_on_{message.kind.replace('-', '_')}")
        handler(message)

    # -- proposals -----------------------------------------------------------------------

    def _on_proposal(self, message: Message) -> None:
        block: HSBlock = message.payload["block"]
        self.blocks.setdefault(block.block_id, block)
        self._update_high_qc(block.justify)
        self._try_commit(block)
        if block.view < self.view or block.view in self.voted_views:
            return
        if not self._safe_to_vote(block):
            return
        self.voted_views.add(block.view)
        self._enter_view(block.view + 1)
        vote = Message("vote", self.node_id,
                       {"view": block.view, "block_id": block.block_id})
        self.count("votes_cast")
        self.send(self.leader_of(block.view + 1), vote)

    def _safe_to_vote(self, block: HSBlock) -> bool:
        locked_block = self.blocks.get(self.locked_qc.block_id)
        if locked_block is None:
            return True
        if self._extends(block, locked_block.block_id):
            return True
        return block.justify.view > self.locked_qc.view

    # -- votes ---------------------------------------------------------------------------

    def _on_vote(self, message: Message) -> None:
        view = message.payload["view"]
        block_id = message.payload["block_id"]
        if self.leader_of(view + 1) != self.node_id:
            return
        voters = self._votes.setdefault(view, set())
        voters.add(message.sender)
        self._vote_block[view] = block_id
        if len(voters) >= self.quorum and view + 1 == self.view:
            qc = QuorumCertificate(view=view, block_id=block_id)
            self._update_high_qc(qc)
            self._propose()

    # -- pacemaker --------------------------------------------------------------------------

    def _on_timeout(self, view_at_arm: int) -> None:
        if view_at_arm != self.view:
            return
        self._timeouts_fired += 1
        self.count("timeouts")
        self._enter_view(self.view + 1)
        self.send(self.leader_of(self.view),
                  Message("new-view", self.node_id,
                          {"view": self.view, "high_qc": self.high_qc}))

    def _on_new_view(self, message: Message) -> None:
        view = message.payload["view"]
        self._update_high_qc(message.payload["high_qc"])
        if self.leader_of(view) != self.node_id:
            return
        senders = self._new_views.setdefault(view, set())
        senders.add(message.sender)
        if len(senders) >= self.quorum and view == self.view:
            self._propose()

    def _enter_view(self, view: int) -> None:
        if view <= self.view:
            return
        self.view = view
        self._timeouts_fired = 0
        self._arm_timer()
        # a leader that already holds quorum votes for view-1 proposes now
        votes = self._votes.get(view - 1, set())
        if (self.leader_of(view) == self.node_id
                and len(votes) >= self.quorum):
            qc = QuorumCertificate(view - 1, self._vote_block[view - 1])
            self._update_high_qc(qc)
            self._propose()

    # -- commit rule ----------------------------------------------------------------------------

    def _update_high_qc(self, qc: QuorumCertificate) -> None:
        if qc.view > self.high_qc.view:
            self.high_qc = qc

    def _try_commit(self, block: HSBlock) -> None:
        """Three-chain rule: b0 <- b1 <- b2 with consecutive views commits b0.

        Also advances the lock to the two-chain head (b1's QC).
        """
        b2 = self.blocks.get(block.justify.block_id)
        if b2 is None:
            return
        b1 = self.blocks.get(b2.justify.block_id)
        if b1 is None:
            return
        if b1.justify.view > self.locked_qc.view:
            self.locked_qc = b1.justify
        b0 = self.blocks.get(b1.justify.block_id)
        if b0 is None:
            return
        if b2.view == b1.view + 1 and b1.view == b0.view + 1:
            self._commit_chain(b0)

    def _commit_chain(self, block: HSBlock) -> None:
        to_commit: List[HSBlock] = []
        cursor: Optional[HSBlock] = block
        while (cursor is not None and cursor.height > self.last_committed_height
               and cursor.block_id != "genesis"):
            to_commit.append(cursor)
            cursor = self.blocks.get(cursor.parent_id)
        for entry in reversed(to_commit):
            self.decide(entry.height, entry.value)
        if to_commit:
            self.last_committed_height = to_commit[0].height
