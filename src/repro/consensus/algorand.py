"""Algorand's BA* agreement with cryptographic sortition (Gilad et al.,
SOSP'17) — §5.2.

Each round, every node runs *sortition*: a private lottery (modeled with a
deterministic per-(round, step, node) hash in place of a VRF) that selects a
small committee proportional to stake. The round proceeds in steps:

1. **proposal** — sortition picks block proposers; each gossips a block with
   its priority; nodes keep the highest-priority proposal they see;
2. **soft vote** — a committee votes for the best proposal;
3. **cert vote** — a second committee certifies the winner; a node that
   collects a threshold of cert votes commits the block.

"It does not fork with high probability, so the transaction is considered
final as soon as it is included in a block" — commits here are immediate,
with no confirmation depth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.common.ids import short_hash
from repro.consensus.base import Message, Replica

PROPOSAL_SIZE = 600
SOFT_TIMEOUT = 1.0   # wait for proposals before soft-voting
STEP_TIMEOUT = 4.0   # per-step recovery timeout


def sortition(round_: int, step: str, node_id: int, n: int,
              expected: float) -> Tuple[bool, int]:
    """Deterministic stand-in for VRF sortition.

    Returns (selected, priority). Every node holds equal stake; the
    selection probability is ``expected / n`` and the priority is a hash,
    so the outcome is common knowledge once the "VRF proof" (the hash
    preimage inputs) is gossiped — just like Algorand.
    """
    draw = int(short_hash("sortition", round_, step, node_id), 16)
    space = 16 ** 16
    selected = draw < space * min(1.0, expected / max(1, n))
    return selected, draw


class AlgorandReplica(Replica):
    """One Algorand node running BA* rounds."""

    def __init__(self, committee_size: float = 4.0,
                 proposer_count: float = 2.0) -> None:
        super().__init__()
        self.committee_size = committee_size
        self.proposer_count = proposer_count
        self.round = 1
        self._best_proposal: Dict[int, Tuple[int, object]] = {}
        self._soft_votes: Dict[Tuple[int, str], Set[int]] = {}
        self._cert_votes: Dict[Tuple[int, str], Set[int]] = {}
        self._soft_sent: Set[int] = set()
        self._cert_sent: Set[int] = set()
        self._decided: Dict[int, object] = {}

    def committee_threshold(self) -> int:
        """Votes needed to conclude a step (majority of expected size)."""
        expected = min(self.n, self.committee_size)
        return max(1, int(expected * 0.5) + 1)

    # -- round flow -------------------------------------------------------------

    def on_start(self) -> None:
        self._start_round()

    def _start_round(self) -> None:
        round_ = self.round
        selected, priority = sortition(round_, "propose", self.node_id,
                                       self.n, self.proposer_count)
        if selected:
            value = self.next_payload()
            self.broadcast(Message("ba-proposal", self.node_id, {
                "round": round_, "priority": priority, "value": value},
                size=PROPOSAL_SIZE))
        self.schedule(SOFT_TIMEOUT, lambda: self._soft_vote(round_),
                      label="ba-soft")
        self.schedule(STEP_TIMEOUT,
                      lambda: self._recover(round_), label="ba-recover")

    def on_message(self, message: Message) -> None:
        handler = getattr(self, "_on_" + message.kind.replace("-", "_"))
        handler(message)

    def _on_ba_proposal(self, message: Message) -> None:
        round_ = message.payload["round"]
        priority = message.payload["priority"]
        value = message.payload["value"]
        best = self._best_proposal.get(round_)
        if best is None or priority > best[0]:
            self._best_proposal[round_] = (priority, value)

    # -- voting steps ---------------------------------------------------------------

    def _soft_vote(self, round_: int) -> None:
        if round_ != self.round or round_ in self._soft_sent:
            return
        self._soft_sent.add(round_)
        best = self._best_proposal.get(round_)
        if best is None:
            return  # recovery timeout will move the round forward
        selected, _ = sortition(round_, "soft", self.node_id, self.n,
                                self.committee_size)
        if not selected:
            return
        digest = short_hash("blk", round_, best[1])
        self.count("soft_votes")
        self.broadcast(Message("ba-soft", self.node_id, {
            "round": round_, "digest": digest, "value": best[1]}))

    def _on_ba_soft(self, message: Message) -> None:
        round_ = message.payload["round"]
        digest = message.payload["digest"]
        voters = self._soft_votes.setdefault((round_, digest), set())
        voters.add(message.sender)
        if round_ != self.round or round_ in self._cert_sent:
            return
        if len(voters) >= self.committee_threshold():
            self._cert_sent.add(round_)
            selected, _ = sortition(round_, "cert", self.node_id, self.n,
                                    self.committee_size)
            if selected:
                self.broadcast(Message("ba-cert", self.node_id, {
                    "round": round_, "digest": digest,
                    "value": message.payload["value"]}))

    def _on_ba_cert(self, message: Message) -> None:
        round_ = message.payload["round"]
        digest = message.payload["digest"]
        voters = self._cert_votes.setdefault((round_, digest), set())
        voters.add(message.sender)
        if round_ in self._decided:
            return
        if len(voters) >= self.committee_threshold():
            value = message.payload["value"]
            self._decided[round_] = value
            self.decide(round_, value)
            if round_ == self.round:
                self.round += 1
                self._start_round()

    # -- recovery ---------------------------------------------------------------------

    def _recover(self, round_: int) -> None:
        """Move on if a round stalls (empty committees at small n)."""
        if round_ != self.round or round_ in self._decided:
            return
        self.round += 1
        self._start_round()
