"""Analytic consensus performance models (fidelity level "analytic").

Message-level protocol simulation at 200 nodes and 10,000 TPS would need
billions of events; instead, the blockchain runtimes use per-protocol
latency/throughput models derived from the protocols' message patterns and
the Table 3 WAN matrix:

* **WAN profile** — given where the validators sit, the quantiles of the
  pairwise RTT distribution and a gossip-tree dissemination time for a block
  of a given size (cross-region hop to one peer per region at the pairwise
  bandwidth, then intra-region fan-out at datacenter speed).
* **Decision latency** — per protocol family: number of voting phases times
  an RTT quantile (leader-based BFT), polling rounds (Avalanche), committee
  vote steps (Algorand BA*), or slot cadence (Solana PoH).
* **Overload response** — how the achievable block payload degrades as the
  resident transaction backlog grows. The *shape* of each curve is the
  documented mechanism class from the paper's §6.3/§6.6 discussion
  (leader-based deterministic BFT collapses; probabilistic/eventually
  consistent chains degrade gracefully; Avalanche throttles below capacity
  and catches up under pressure); the exponents are calibrated against
  Fig. 4's measured ratios (see EXPERIMENTS.md).

Each model is validated against the message-level implementation at small
scale in ``tests/consensus/test_model_calibration.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.sim.network import (
    INTRA_REGION_BANDWIDTH,
    INTRA_REGION_RTT,
    bandwidth_matrix,
    rtt_matrix,
    REGIONS,
)


class WanProfile:
    """Latency/bandwidth statistics for a validator placement."""

    def __init__(self, node_regions: Sequence[str]) -> None:
        if not node_regions:
            raise ConfigurationError("WanProfile needs at least one node")
        self.node_regions = list(node_regions)
        index = {region: i for i, region in enumerate(REGIONS)}
        for region in self.node_regions:
            if region not in index:
                raise ConfigurationError(f"unknown region {region!r}")
        self._index = index
        self._rtt = rtt_matrix()
        self._bw = bandwidth_matrix()
        idx = np.array([index[r] for r in self.node_regions])
        pair_rtts = self._rtt[np.ix_(idx, idx)]
        # exclude self-pairs when more than one node
        n = len(idx)
        if n > 1:
            mask = ~np.eye(n, dtype=bool)
            self._pair_rtts = pair_rtts[mask]
        else:
            self._pair_rtts = np.array([INTRA_REGION_RTT])
        self.distinct_regions = sorted(set(self.node_regions))

    @property
    def n(self) -> int:
        return len(self.node_regions)

    def rtt_quantile(self, q: float) -> float:
        """The *q*-quantile of pairwise validator RTTs, in seconds.

        Quorum formation waits for the fastest 2/3 of the network, so BFT
        models use q ~= 0.66; gossip completion uses q ~= 0.9.
        """
        return float(np.quantile(self._pair_rtts, q))

    def mean_rtt(self) -> float:
        return float(np.mean(self._pair_rtts))

    def dissemination_time(self, payload_bytes: int, leader_region: str,
                           flat: bool = False, relay_cap: int = 4) -> float:
        """Block dissemination time from *leader_region*.

        ``flat=False`` models gossip relaying (a tree): the leader ships one
        copy per destination region over the pairwise link, then the block
        fans out inside each region over the 10 Gbps fabric. ``flat=True``
        models a leader that pushes copies to direct peers in every region
        (devp2p-style broadcast of leader-based chains); peers beyond
        ``relay_cap`` per region receive the block by intra-region relay.
        """
        i = self._index[leader_region]
        counts: Dict[str, int] = {}
        for region in self.node_regions:
            counts[region] = counts.get(region, 0) + 1
        worst = 0.0
        for region in self.distinct_regions:
            j = self._index[region]
            copies = min(counts[region], relay_cap) if flat else 1
            transfer = copies * payload_bytes / float(self._bw[i, j])
            propagation = float(self._rtt[i, j]) / 2.0
            worst = max(worst, transfer + propagation)
        intra = payload_bytes / INTRA_REGION_BANDWIDTH + INTRA_REGION_RTT / 2
        return worst + intra

    def client_delay(self, client_region: str, node_region: str) -> float:
        """One-way delay from a client to a blockchain node."""
        i = self._index[client_region]
        j = self._index[node_region]
        return float(self._rtt[i, j]) / 2.0


@dataclass
class BlockAttempt:
    """Inputs to a consensus decision for one block.

    ``backlog`` and ``arrival_rate`` are expressed in *unscaled* (real
    experiment) units — the runtime divides out its scale factor — so the
    models' calibrated constants are scale-independent.
    """

    tx_count: int
    payload_bytes: int
    exec_cpu_seconds: float
    backlog: int              # resident mempool size at proposal time
    leader_region: str
    arrival_rate: float = 0.0  # recent client submission rate (TPS)


@dataclass
class DecisionOutcome:
    """Result of one consensus attempt.

    ``breakdown`` optionally attributes the latency to protocol phases
    (``propose``/``vote``/``execute``/``view_change``); it is advisory
    observability data consumed by the lifecycle tracer and never feeds
    back into the simulation.
    """

    latency: float
    committed: bool
    view_changes: int = 0
    breakdown: Optional[Dict[str, float]] = None


class ConsensusPerfModel:
    """Base class: per-protocol latency/throughput/overload behaviour."""

    #: overload exponent: effective payload multiplier is
    #: ``(1 + backlog/block_capacity) ** -overload_gamma``. Zero disables it.
    overload_gamma: float = 0.0
    #: lower bound on the payload multiplier (0 = may collapse entirely)
    payload_floor: float = 0.0
    #: fraction of adversarial validators the protocol tolerates before
    #: quorum formation among honest replicas becomes impossible (BFT
    #: families: f/n < 1/3; proof-of-authority tolerates any minority of
    #: sealers for liveness and overrides this)
    byzantine_tolerance: float = 1.0 / 3.0

    def __init__(self, profile: WanProfile) -> None:
        self.profile = profile
        # declared adversarial fraction, driven per block by the runtime
        # from its ByzantineSchedule (repro.sim.byzantine); zero = benign
        self.byzantine_fraction = 0.0
        self._byz_view_change_acc = 0.0

    # -- byzantine degradation ---------------------------------------------------

    def set_byzantine_fraction(self, fraction: float) -> None:
        """Declare the adversarial validator fraction for upcoming blocks."""
        self.byzantine_fraction = max(0.0, float(fraction))

    def _byzantine_round_penalty(self) -> float:
        """Seconds one adversary-induced timeout/extra round costs."""
        return 4.0 * self.profile.rtt_quantile(0.9) + 1.0

    def apply_byzantine(self, outcome: DecisionOutcome) -> DecisionOutcome:
        """Degrade a benign decision for the declared Byzantine fraction.

        Below the tolerance threshold, quorum formation waits on honest
        replicas only — the vote phase stretches by ``1/(1 - b/tolerance)``
        (capped) — and adversarial leader slots surface as extra view
        changes at a deterministic rate of *b* per block. At or beyond the
        threshold the honest quorum cannot form at all: the attempt burns
        a timeout round and fails, leaving the block for a retry once the
        adversary stops.
        """
        b = self.byzantine_fraction
        if b <= 0.0:
            return outcome
        penalty = self._byzantine_round_penalty()
        if b >= self.byzantine_tolerance:
            return DecisionOutcome(
                penalty, committed=False,
                view_changes=outcome.view_changes + 1,
                breakdown={"byzantine": penalty})
        stretch = min(8.0, 1.0 / (1.0 - b / self.byzantine_tolerance))
        breakdown = dict(outcome.breakdown or {})
        vote_part = breakdown.get("vote", outcome.latency)
        extra = vote_part * (stretch - 1.0)
        # b of the leader slots belong to the adversary: accumulate them
        # into whole wasted rounds deterministically
        self._byz_view_change_acc += b
        extra_view_changes = int(self._byz_view_change_acc)
        self._byz_view_change_acc -= extra_view_changes
        extra += extra_view_changes * penalty
        breakdown["byzantine"] = extra
        return DecisionOutcome(
            outcome.latency + extra, committed=outcome.committed,
            view_changes=outcome.view_changes + extra_view_changes,
            breakdown=breakdown)

    # -- scheduling --------------------------------------------------------------

    def next_block_delay(self, last_round_latency: float) -> float:
        """Seconds between consecutive block proposals."""
        raise NotImplementedError

    # -- deciding ------------------------------------------------------------------

    def decide(self, attempt: BlockAttempt) -> DecisionOutcome:
        """Latency (and success) of consensus on one proposed block."""
        raise NotImplementedError

    # -- overload ---------------------------------------------------------------------

    def payload_factor(self, backlog: int, block_capacity: int) -> float:
        """Fraction of the nominal block payload achievable at *backlog*.

        Models the superlinear costs of large resident pools (tx-pool
        reorganisation, admission contention, gossip amplification). With
        gamma = 1 the service rate halves each time the backlog doubles
        past one block — the deterministic-BFT collapse; small gammas give
        the graceful degradation of the probabilistic chains (§6.3).
        """
        if self.overload_gamma == 0.0 or block_capacity <= 0:
            return 1.0
        # only the backlog *in excess* of one block is stress: a pool that
        # drains every block is healthy
        stress = max(0.0, backlog / block_capacity - 1.0)
        factor = float((1.0 + stress) ** (-self.overload_gamma))
        return max(self.payload_floor, factor)


class LeaderBFTPerf(ConsensusPerfModel):
    """Leader-based deterministic BFT: IBFT (Quorum) and HotStuff (Diem).

    Per block: the leader builds the block (cost grows with the resident
    pool), disseminates it, then ``phases`` quorum-forming round trips at
    the 2/3 RTT quantile. If a round exceeds the current timeout, a round
    change fires: the attempt fails, the timeout doubles and the next
    attempt pays the wasted round — the cascade that zeroes Quorum's
    throughput under constant 10 kTPS load (§6.3).
    """

    def __init__(self, profile: WanProfile, phases: int = 2,
                 base_overhead: float = 0.05,
                 pool_overhead_per_tx: float = 0.0,
                 admission_cpu_per_tx: float = 0.0,
                 verify_cpu_per_tx: float = 90e-6,
                 vote_verify_parallelism: int = 4,
                 round_timeout: float = 10.0,
                 max_timeout: float = 120.0,
                 overload_gamma: float = 1.0,
                 payload_floor: float = 0.0,
                 min_block_interval: float = 0.2,
                 pipeline_depth: float = 1.0,
                 relay_cap: int = 8,
                 per_node_overhead: float = 0.0) -> None:
        super().__init__(profile)
        self.phases = phases
        self.base_overhead = base_overhead
        self.pool_overhead_per_tx = pool_overhead_per_tx
        self.admission_cpu_per_tx = admission_cpu_per_tx
        self.verify_cpu_per_tx = verify_cpu_per_tx
        self.vote_verify_parallelism = vote_verify_parallelism
        self.base_round_timeout = round_timeout
        self.max_timeout = max_timeout
        self.overload_gamma = overload_gamma
        self.payload_floor = payload_floor
        self.min_block_interval = min_block_interval
        self.pipeline_depth = pipeline_depth
        self.relay_cap = relay_cap
        self.per_node_overhead = per_node_overhead
        self._current_timeout = round_timeout
        self._last_had_view_change = False

    def _byzantine_round_penalty(self) -> float:
        # a wasted adversarial leader round costs a full round timeout
        return self.base_round_timeout

    def next_block_delay(self, last_round_latency: float) -> float:
        # rounds serialize; chained HotStuff overlaps its phases, so the
        # proposal cadence is a fraction of the end-to-end round latency —
        # but a view change flushes the pipeline
        depth = 1.0 if self._last_had_view_change else self.pipeline_depth
        return max(self.min_block_interval, last_round_latency / depth)

    def round_components(self, attempt: BlockAttempt) -> Dict[str, float]:
        """Phase attribution of one round's latency (seconds per phase)."""
        # block building slows down with the resident pool (tx-pool
        # reorganisation) and with the incoming request stream (admission
        # processing competes with consensus on the same node)
        # leader-based BFT handles O(n) vote traffic per phase; at 200
        # validators this dominates the round (the scalability limitation
        # of leader-based consensus the paper cites [19])
        build = (self.base_overhead
                 + self.per_node_overhead * self.profile.n
                 + self.pool_overhead_per_tx * attempt.backlog
                 + self.admission_cpu_per_tx * attempt.arrival_rate)
        # leader-based chains unicast the proposal to every validator
        dissemination = self.profile.dissemination_time(
            attempt.payload_bytes, attempt.leader_region, flat=True,
            relay_cap=self.relay_cap)
        quorum_rtt = self.profile.rtt_quantile(0.66)
        verify = (attempt.tx_count * self.verify_cpu_per_tx
                  / self.vote_verify_parallelism)
        return {
            "propose": build + dissemination,
            "vote": self.phases * quorum_rtt + verify,
            "execute": attempt.exec_cpu_seconds,
        }

    def round_latency(self, attempt: BlockAttempt) -> float:
        return sum(self.round_components(attempt).values())

    def decide(self, attempt: BlockAttempt) -> DecisionOutcome:
        components = self.round_components(attempt)
        latency = sum(components.values())
        view_changes = 0
        total = 0.0
        self._last_had_view_change = False
        while latency > self._current_timeout:
            self._last_had_view_change = True
            # the round times out: everyone waits out the timer, the next
            # leader retries; after several doublings the timeout admits
            # the round (IBFT is live under partial synchrony), but the
            # wasted rounds dominate the run.
            total += self._current_timeout
            view_changes += 1
            self._current_timeout = min(self.max_timeout,
                                        self._current_timeout * 2)
            if view_changes >= 8:
                return DecisionOutcome(total, committed=False,
                                       view_changes=view_changes,
                                       breakdown={"view_change": total})
        total += latency
        self._current_timeout = self.base_round_timeout
        breakdown = dict(components)
        if total > latency:
            breakdown["view_change"] = total - latency
        return DecisionOutcome(total, committed=True,
                               view_changes=view_changes,
                               breakdown=breakdown)


class CommitteePerf(ConsensusPerfModel):
    """Algorand BA*: sortition, proposal gossip, two committee vote steps.

    The round duration is dominated by the fixed proposal-collection window
    plus two committee-vote gossip exchanges. Committees keep the message
    complexity flat in n, so the model scales to 200 nodes with only the
    RTT quantile growing.
    """

    def __init__(self, profile: WanProfile, proposal_window: float = 1.2,
                 vote_steps: int = 2, overload_gamma: float = 0.15,
                 min_round: float = 3.4) -> None:
        super().__init__(profile)
        self.proposal_window = proposal_window
        self.vote_steps = vote_steps
        self.overload_gamma = overload_gamma
        self.min_round = min_round

    def round_latency(self, attempt: BlockAttempt) -> float:
        dissemination = self.profile.dissemination_time(
            attempt.payload_bytes, attempt.leader_region)
        gossip_rtt = self.profile.rtt_quantile(0.9)
        return max(self.min_round,
                   self.proposal_window + dissemination
                   + self.vote_steps * gossip_rtt
                   + attempt.exec_cpu_seconds)

    def next_block_delay(self, last_round_latency: float) -> float:
        return last_round_latency

    def decide(self, attempt: BlockAttempt) -> DecisionOutcome:
        dissemination = self.profile.dissemination_time(
            attempt.payload_bytes, attempt.leader_region)
        gossip_rtt = self.profile.rtt_quantile(0.9)
        return DecisionOutcome(
            self.round_latency(attempt), committed=True,
            breakdown={
                "propose": self.proposal_window + dissemination,
                "vote": self.vote_steps * gossip_rtt,
                "execute": attempt.exec_cpu_seconds,
            })


class DAGPerf(ConsensusPerfModel):
    """Avalanche: repeated Snowball polling over the DAG, C-Chain blocks.

    Finality needs ``beta`` consecutive successful polls, each one gossip
    RTT. Block production is additionally throttled by the chain's minimum
    block period (>= 1.9 s observed on the C-Chain, §5.2); the negative
    overload exponent reflects that blocks pack closer to their gas limit
    when a backlog builds — the paper's ×1.38 throughput under 10x load.
    """

    def __init__(self, profile: WanProfile, beta: int = 12,
                 block_period: float = 1.9,
                 overload_gamma: float = -0.05,
                 packing_cap: float = 1.25) -> None:
        super().__init__(profile)
        self.beta = beta
        self.block_period = block_period
        self.overload_gamma = overload_gamma
        self.packing_cap = packing_cap

    def next_block_delay(self, last_round_latency: float) -> float:
        return self.block_period

    def payload_factor(self, backlog: int, block_capacity: int) -> float:
        factor = super().payload_factor(backlog, block_capacity)
        return min(self.packing_cap, factor)

    def decide(self, attempt: BlockAttempt) -> DecisionOutcome:
        dissemination = self.profile.dissemination_time(
            attempt.payload_bytes, attempt.leader_region)
        polls = self.beta * self.profile.rtt_quantile(0.5)
        return DecisionOutcome(
            dissemination + polls + attempt.exec_cpu_seconds, committed=True,
            breakdown={"propose": dissemination, "vote": polls,
                       "execute": attempt.exec_cpu_seconds})


class PoHPerf(ConsensusPerfModel):
    """Solana Tower BFT over Proof of History: fixed 400 ms slots.

    The verifiable delay function decouples block production from
    communication — a slot fires every 400 ms regardless of votes — so the
    decision latency is the slot time plus dissemination; *finality* (30
    confirmations) is applied by the runtime on top.
    """

    def __init__(self, profile: WanProfile, slot_duration: float = 0.4,
                 overload_gamma: float = 0.30) -> None:
        super().__init__(profile)
        self.slot_duration = slot_duration
        self.overload_gamma = overload_gamma

    def next_block_delay(self, last_round_latency: float) -> float:
        return self.slot_duration

    def decide(self, attempt: BlockAttempt) -> DecisionOutcome:
        dissemination = self.profile.dissemination_time(
            attempt.payload_bytes, attempt.leader_region)
        return DecisionOutcome(
            self.slot_duration / 2 + dissemination, committed=True,
            breakdown={"propose": dissemination,
                       "vote": self.slot_duration / 2})


class CliquePerf(ConsensusPerfModel):
    """Ethereum proof-of-authority: one sealer per period, heaviest chain.

    No votes at all: the block is final for the client only after the
    configured confirmation depth (applied by the runtime). The sealing
    cadence is the fixed block period (§5.2: "This version still requires a
    minimum period between consecutive blocks").
    """

    #: proof-of-authority has no quorum; liveness survives any minority of
    #: misbehaving sealers (safety does not — see the byzantine example)
    byzantine_tolerance: float = 0.5

    def __init__(self, profile: WanProfile, period: float = 5.0,
                 overload_gamma: float = 0.10) -> None:
        super().__init__(profile)
        self.period = period
        self.overload_gamma = overload_gamma

    def next_block_delay(self, last_round_latency: float) -> float:
        return self.period

    def decide(self, attempt: BlockAttempt) -> DecisionOutcome:
        dissemination = self.profile.dissemination_time(
            attempt.payload_bytes, attempt.leader_region)
        return DecisionOutcome(
            dissemination + attempt.exec_cpu_seconds, committed=True,
            breakdown={"propose": dissemination,
                       "execute": attempt.exec_cpu_seconds})
