"""Consensus protocol framework (message-level fidelity).

Protocols are implemented as per-node state machines exchanging messages
over the simulated network. A :class:`ConsensusHarness` wires ``n`` replicas
on the discrete-event engine, feeds them client payloads and collects their
commit sequences, so protocol-correctness tests can assert the fundamental
invariants — agreement (no two nodes commit different values at the same
height), total order, and liveness under partial synchrony.

The large-scale blockchain runtimes use the analytic models in
:mod:`repro.consensus.models` instead; the message-level implementations are
the ground truth those models are validated against (see
``tests/consensus/test_model_calibration.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.errors import SimulationError
from repro.common.rng import RngFactory
from repro.obs.metrics import MetricsRegistry
from repro.sim.engine import Engine
from repro.sim.faults import FaultInjector
from repro.sim.network import Endpoint, Network, spread_endpoints

VOTE_MESSAGE_SIZE = 200  # bytes: digest + signature + metadata


@dataclass(slots=True)
class Message:
    """A protocol message between replicas."""

    kind: str
    sender: int
    payload: Dict[str, Any] = field(default_factory=dict)
    size: int = VOTE_MESSAGE_SIZE


@dataclass(frozen=True, slots=True)
class Decision:
    """A committed value: (height/slot, value, deciding node, time)."""

    height: int
    value: Any
    node: int
    time: float


class Replica:
    """Base class for one consensus participant.

    Subclasses implement ``on_start`` and ``on_message``; they call
    ``self.send``/``self.broadcast`` to communicate and ``self.decide`` when
    a value commits locally.
    """

    def __init__(self) -> None:
        # wired by the harness
        self.node_id: int = -1
        self.harness: "ConsensusHarness" = None  # type: ignore[assignment]

    # -- harness plumbing ----------------------------------------------------------

    @property
    def n(self) -> int:
        return self.harness.n

    @property
    def f(self) -> int:
        """Maximum Byzantine faults tolerated: floor((n-1)/3)."""
        return (self.n - 1) // 3

    @property
    def quorum(self) -> int:
        """Quorum size 2f+1 for BFT protocols."""
        return 2 * self.f + 1

    @property
    def now(self) -> float:
        return self.harness.engine.now

    def send(self, target: int, message: Message) -> None:
        self.harness.route(self.node_id, target, message)

    def broadcast(self, message: Message, include_self: bool = True) -> None:
        for target in range(self.n):
            if target == self.node_id and not include_self:
                continue
            self.harness.route(self.node_id, target, message)

    def schedule(self, delay: float, callback: Callable[[], None],
                 label: str = "") -> Any:
        return self.harness.engine.schedule_after(delay, callback, label)

    def decide(self, height: int, value: Any) -> None:
        self.harness.record_decision(
            Decision(height, value, self.node_id, self.now))

    def count(self, name: str, amount: int = 1) -> None:
        """Bump a protocol counter (``replica.<protocol>.<name>``).

        Protocol subclasses use this for their per-protocol event totals
        (proposals, votes cast, view changes, polls...), which land in the
        harness's shared registry next to the routing counters.
        """
        protocol = type(self).__name__.lower()
        self.harness.metrics.counter(f"replica.{protocol}.{name}").inc(amount)

    def next_payload(self) -> Any:
        """Fetch the next client payload to propose (or a filler)."""
        return self.harness.next_payload(self.node_id)

    # -- protocol hooks -----------------------------------------------------------

    def on_start(self) -> None:
        """Called once when the harness starts."""

    def on_message(self, message: Message) -> None:
        """Called on each delivered message."""
        raise NotImplementedError

    def on_recover(self) -> None:
        """Called when this replica rejoins after a crash.

        Subclasses re-arm timers and run whatever state sync their protocol
        needs; the default is to rejoin with frozen state and catch up from
        incoming traffic.
        """


class ConsensusHarness:
    """Runs ``n`` replicas of a protocol over the simulated network."""

    def __init__(self, replicas: Sequence[Replica],
                 engine: Optional[Engine] = None,
                 regions: Optional[Iterable[str]] = None,
                 seed: int = 0,
                 drop_rate: float = 0.0,
                 injector: Optional[FaultInjector] = None,
                 adversary: Optional[Any] = None,
                 auditor: Optional[Any] = None) -> None:
        self.engine = engine or Engine()
        self.replicas = list(replicas)
        self.n = len(self.replicas)
        if self.n == 0:
            raise SimulationError("harness needs at least one replica")
        region_list = list(regions) if regions is not None else ["ohio"]
        self.endpoints: List[Endpoint] = spread_endpoints(
            self.n, region_list, prefix="replica")
        factory = RngFactory(seed)
        #: shared registry for routing counters, the network's traffic
        #: totals, and the replicas' per-protocol counters
        self.metrics = MetricsRegistry()
        self.network = Network(self.engine, factory,
                               metrics=self.metrics.namespace("network"))
        self._drop_rng = factory.stream("harness", "drops")
        self._fault_rng = factory.stream("harness", "fault-drops")
        self.drop_rate = drop_rate
        self.injector = injector or FaultInjector()
        self.injector.subscribe(self._on_fault_event)
        if injector is not None and len(injector.schedule):
            self.injector.register(self.engine)
        self.decisions: List[Decision] = []
        self._payload_queue: List[Any] = []
        self._filler_counter = 0
        harness_metrics = self.metrics.namespace("harness")
        self._messages_routed = harness_metrics.counter("messages_routed")
        # sender or target fail-stopped
        self._dropped_by_crash = harness_metrics.counter("dropped_by_crash")
        # partition / outage / link drop rate
        self._dropped_by_fault = harness_metrics.counter("dropped_by_fault")
        # baseline drop_rate losses
        self._dropped_by_loss = harness_metrics.counter("dropped_by_loss")
        for node_id, replica in enumerate(self.replicas):
            replica.node_id = node_id
            replica.harness = self
        # byzantine adversary + safety auditor (repro.sim.byzantine /
        # repro.consensus.auditor). An adversary with an empty schedule is
        # normalised to None so benign runs never consult it — the no-op
        # contract that keeps them byte-identical to pre-adversary runs.
        self.adversary = None
        if adversary is not None and len(adversary.schedule):
            self.adversary = adversary
            adversary.bind(self)
        self.auditor = auditor
        if auditor is not None:
            auditor.bind(self, self.adversary.nodes()
                         if self.adversary is not None else ())

    # -- registry views ---------------------------------------------------------------

    @property
    def messages_routed(self) -> int:
        return self._messages_routed.value

    @property
    def dropped_by_crash(self) -> int:
        return self._dropped_by_crash.value

    @property
    def dropped_by_fault(self) -> int:
        return self._dropped_by_fault.value

    @property
    def dropped_by_loss(self) -> int:
        return self._dropped_by_loss.value

    @property
    def crashed(self) -> set:
        """Currently crashed replica ids (a live view of injector state)."""
        return self.injector.crashed

    # -- payloads -------------------------------------------------------------------

    def submit(self, payload: Any) -> None:
        """Queue a client payload for proposal by whoever leads next."""
        self._payload_queue.append(payload)

    def next_payload(self, node_id: int) -> Any:
        if self._payload_queue:
            return self._payload_queue.pop(0)
        self._filler_counter += 1
        return f"filler-{self._filler_counter}"

    # -- routing --------------------------------------------------------------------

    def crash(self, node_id: int) -> None:
        """Crash a replica: it stops sending and receiving (fail-stop)."""
        self.injector.crash(node_id)

    def recover(self, node_id: int) -> None:
        """Recover a crashed replica: it rejoins and catches up."""
        self.injector.recover(node_id)

    def _on_fault_event(self, kind: str, payload: Any) -> None:
        """Injector listener: give rejoining replicas their recovery hook."""
        if kind != "recover":
            return
        if isinstance(payload, int) and 0 <= payload < self.n:
            self.replicas[payload].on_recover()

    def route(self, sender: int, target: int, message: Message) -> None:
        self._messages_routed.inc()
        sender_region = self.endpoints[sender].region
        target_region = self.endpoints[target].region
        injector = self.injector
        if injector.is_crashed(sender) or injector.is_crashed(target):
            self._dropped_by_crash.inc()
            return
        if not injector.reachable(sender, target,
                                  sender_region, target_region):
            self._dropped_by_fault.inc()
            return
        extra_latency = 0.0
        if self.adversary is not None:
            message, adversary_delay = self.adversary.intervene(
                sender, target, message, self.engine.now)
            if message is None:
                return
            extra_latency += adversary_delay
        # audited post-adversary: forked variants count as endorsements
        # (they are really signed and sent), withheld ones never do
        if self.auditor is not None:
            self.auditor.observe_message(sender, target, message)
        if sender != target:
            link_latency, fault_drop = self._link_faults(
                sender, target, sender_region, target_region)
            extra_latency += link_latency
            if fault_drop > 0 and float(self._fault_rng.random()) < fault_drop:
                self._dropped_by_fault.inc()
                return
            if self.drop_rate > 0:
                if float(self._drop_rng.random()) < self.drop_rate:
                    self._dropped_by_loss.inc()
                    return
        replica = self.replicas[target]
        deliver: Callable[[], None] = lambda: replica.on_message(message)
        if extra_latency > 0:
            deliver = (lambda d=deliver, lat=extra_latency:
                       self.engine.schedule_after(
                           lat, d, label=f"degraded-{message.kind}"))
        if sender == target:
            # local delivery: next event, no network transit
            self.engine.schedule_after(
                0.0, deliver, label=f"self-{message.kind}")
            return
        self.network.send(
            self.endpoints[sender], self.endpoints[target], message.size,
            deliver, label=f"msg-{message.kind}")

    def _link_faults(self, sender: int, target: int,
                     sender_region: str, target_region: str
                     ) -> Tuple[float, float]:
        """LinkDegrade state for a replica pair, by id and by region."""
        extra, drop = self.injector.link_state(sender, target)
        if sender_region != target_region:
            region_extra, region_drop = self.injector.link_state(
                sender_region, target_region)
            extra += region_extra
            drop = 1.0 - (1.0 - drop) * (1.0 - region_drop)
        return extra, drop

    def stats(self) -> Dict[str, int]:
        """Routing statistics, fault losses accounted separately."""
        stats = {
            "messages_routed": self.messages_routed,
            "dropped_by_crash": self.dropped_by_crash,
            "dropped_by_fault": self.dropped_by_fault,
            "dropped_by_loss": self.dropped_by_loss,
        }
        if self.adversary is not None:
            for name, value in self.adversary.counters().items():
                stats[f"byzantine_{name}"] = value
        return stats

    # -- decisions -------------------------------------------------------------------

    def record_decision(self, decision: Decision) -> None:
        self.decisions.append(decision)
        if self.auditor is not None:
            self.auditor.observe_decision(decision)

    def decisions_by_node(self) -> Dict[int, List[Decision]]:
        result: Dict[int, List[Decision]] = {i: [] for i in range(self.n)}
        for decision in self.decisions:
            result[decision.node].append(decision)
        for entries in result.values():
            entries.sort(key=lambda d: d.height)
        return result

    def committed_chain(self, node: int) -> List[Tuple[int, Any]]:
        return [(d.height, d.value) for d in self.decisions_by_node()[node]]

    # -- execution --------------------------------------------------------------------

    def run(self, until: float) -> None:
        for replica in self.replicas:
            replica.on_start()
        self.engine.run(until=until)

    # -- invariant checks (used by tests) ---------------------------------------------

    def check_agreement(self) -> None:
        """No two nodes commit different values at the same height."""
        by_height: Dict[int, Any] = {}
        for decision in self.decisions:
            if decision.height in by_height:
                if by_height[decision.height] != decision.value:
                    raise SimulationError(
                        f"agreement violated at height {decision.height}:"
                        f" {by_height[decision.height]!r} vs"
                        f" {decision.value!r} (node {decision.node})")
            else:
                by_height[decision.height] = decision.value

    def check_no_duplicate_commits(self) -> None:
        """A node commits at each height at most once."""
        seen = set()
        for decision in self.decisions:
            key = (decision.node, decision.height)
            if key in seen:
                raise SimulationError(
                    f"node {decision.node} committed height"
                    f" {decision.height} twice")
            seen.add(key)
