"""Clique — Ethereum's proof-of-authority consensus (geth, §5.2).

Sealers take turns producing a block every ``period`` seconds. The in-turn
sealer (height mod n) seals immediately at its slot; out-of-turn sealers
back off by a random delay and only seal if the in-turn block has not
arrived — this "wiggle" is what keeps the chain from forking constantly,
but as Ekparinya et al. showed (the paper cites [16]), message delays can
still fork it. Clients therefore wait ``confirmations`` extra blocks.

This implementation follows geth's simplified rules: blocks carry a
difficulty of 2 when in-turn and 1 otherwise, and replicas adopt the
heaviest chain. Decisions are reported at a configurable confirmation
depth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.rng import RngFactory
from repro.consensus.base import Message, Replica

BLOCK_BASE_SIZE = 600
WIGGLE_MAX = 0.5  # geth: rand(signers/2+1) * 500ms


@dataclass
class CliqueBlock:
    block_id: str
    height: int
    parent_id: str
    sealer: int
    difficulty: int
    value: object = None
    total_difficulty: int = 0


class CliqueReplica(Replica):
    """One Clique sealer."""

    def __init__(self, period: float = 5.0, confirmations: int = 2,
                 seed: int = 0) -> None:
        super().__init__()
        self.period = period
        self.confirmations = confirmations
        self._seed = seed
        self._rng = None  # seeded with node_id in on_start
        genesis = CliqueBlock("genesis", 0, "", -1, 0)
        self.blocks: Dict[str, CliqueBlock] = {"genesis": genesis}
        self.head: CliqueBlock = genesis
        self._decided_up_to = 0
        self._recently_sealed: Dict[int, int] = {}  # sealer -> last height
        self._slot_timer = None  # single pending seal attempt

    # -- helpers --------------------------------------------------------------

    def in_turn(self, height: int) -> int:
        return height % self.n

    def _can_seal(self, height: int) -> bool:
        # a sealer must wait n//2 + 1 blocks between its own seals
        last = self._recently_sealed.get(self.node_id)
        if last is None:
            return True
        return height - last > self.n // 2

    # -- lifecycle ----------------------------------------------------------------

    def on_start(self) -> None:
        self._rng = RngFactory(self._seed).stream("clique", str(self.node_id))
        self._schedule_slot()

    def _schedule_slot(self, backoff: float = 0.0) -> None:
        if self._slot_timer is not None:
            self._slot_timer.cancel()
        next_height = self.head.height + 1
        slot_time = next_height * self.period
        delay = max(backoff, slot_time - self.now)
        if self.in_turn(next_height) != self.node_id:
            delay += float(self._rng.uniform(0.1, WIGGLE_MAX + 0.1))
        self._slot_timer = self.schedule(
            delay, lambda: self._try_seal(next_height), label="clique-slot")

    def _retry_later(self) -> None:
        """Back off after a blocked seal attempt.

        A sealer that is behind schedule but not allowed to seal (not its
        turn, or it sealed too recently) must wait a positive delay —
        retrying at the same instant would livelock the simulation.
        """
        self._schedule_slot(backoff=self.period * 0.25)

    def _try_seal(self, height: int) -> None:
        if self.head.height + 1 != height:
            self._schedule_slot()
            return
        in_turn = self.in_turn(height) == self.node_id
        if not in_turn and any(
                b.height == height and b.difficulty == 2
                for b in self.blocks.values()):
            self._retry_later()
            return
        if not self._can_seal(height):
            self._retry_later()
            return
        value = self.next_payload()
        block = CliqueBlock(
            block_id=f"c{height}s{self.node_id}({self.head.block_id})",
            height=height,
            parent_id=self.head.block_id,
            sealer=self.node_id,
            difficulty=2 if in_turn else 1,
            value=value,
            total_difficulty=self.head.total_difficulty + (2 if in_turn else 1))
        self._recently_sealed[self.node_id] = height
        self.count("blocks_sealed")
        self.blocks[block.block_id] = block
        self._adopt(block)
        self.broadcast(Message("block", self.node_id, {"block": block},
                               size=BLOCK_BASE_SIZE), include_self=False)
        self._schedule_slot()

    def on_message(self, message: Message) -> None:
        if message.kind != "block":
            return
        block: CliqueBlock = message.payload["block"]
        if block.block_id in self.blocks:
            return
        if block.parent_id not in self.blocks:
            # orphan: keep it; the parent may arrive later (rare in tests)
            self.blocks[block.block_id] = block
            return
        self._recently_sealed[block.sealer] = max(
            self._recently_sealed.get(block.sealer, 0), block.height)
        self.blocks[block.block_id] = block
        self._adopt(block)
        self._schedule_slot()

    # -- chain selection -------------------------------------------------------------

    def _adopt(self, block: CliqueBlock) -> None:
        if block.total_difficulty <= self.head.total_difficulty:
            return
        self.head = block
        self._decide_confirmed()

    def _decide_confirmed(self) -> None:
        """Report blocks buried under ``confirmations`` descendants."""
        confirmed_height = self.head.height - self.confirmations
        if confirmed_height <= self._decided_up_to:
            return
        # walk back from head to collect the confirmed prefix
        chain: List[CliqueBlock] = []
        cursor: Optional[CliqueBlock] = self.head
        while cursor is not None and cursor.height > self._decided_up_to:
            if cursor.height <= confirmed_height:
                chain.append(cursor)
            cursor = self.blocks.get(cursor.parent_id)
        for entry in reversed(chain):
            self.decide(entry.height, entry.value)
        self._decided_up_to = confirmed_height
