"""Raft — Quorum's crash-fault-tolerant consensus option (§5.2).

"Quorum ... features different consensus algorithms: Raft, which only
tolerates crash failures, and IBFT and QBFT, which both tolerate Byzantine
failures." The paper runs IBFT exclusively (Raft's weaker fault model);
this implementation exists so the trade-off is testable: Raft commits in a
single majority round trip (fast), IBFT needs two all-to-all phases but
survives Byzantine replicas.

The implementation follows the Raft paper's core: randomized election
timeouts, terms, heartbeats/AppendEntries with log matching, commit on
majority replication. Good enough for the safety/liveness tests and the
latency comparison; no snapshotting or membership changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.common.rng import RngFactory
from repro.consensus.base import Message, Replica

HEARTBEAT_INTERVAL = 0.3
APPEND_SIZE = 400


@dataclass
class LogEntry:
    term: int
    value: object


class RaftReplica(Replica):
    """One Raft server."""

    def __init__(self, election_timeout: float = 1.5, seed: int = 0) -> None:
        super().__init__()
        self.base_election_timeout = election_timeout
        self._seed = seed
        self._rng = None
        self.term = 0
        self.voted_for: Optional[int] = None
        self.role = "follower"
        self.log: List[LogEntry] = []
        self.commit_index = 0      # number of committed entries
        self._votes: Set[int] = set()
        self._match_index: Dict[int, int] = {}
        self._election_timer = None
        self._heartbeat_task = None
        self.leader_terms_won = 0

    # -- timers --------------------------------------------------------------

    def _election_delay(self) -> float:
        return self.base_election_timeout * float(self._rng.uniform(1.0, 2.0))

    def _arm_election_timer(self) -> None:
        if self._election_timer is not None:
            self._election_timer.cancel()
        term_at_arm = self.term
        self._election_timer = self.schedule(
            self._election_delay(),
            lambda: self._on_election_timeout(term_at_arm),
            label="raft-election")

    def on_start(self) -> None:
        self._rng = RngFactory(self._seed).stream("raft", str(self.node_id))
        self._arm_election_timer()

    # -- elections -------------------------------------------------------------

    def _on_election_timeout(self, term_at_arm: int) -> None:
        if self.role == "leader" or self.term != term_at_arm:
            return
        self.term += 1
        self.role = "candidate"
        self.voted_for = self.node_id
        self._votes = {self.node_id}
        self._arm_election_timer()
        self.count("elections_started")
        last_term = self.log[-1].term if self.log else 0
        self.broadcast(Message("request-vote", self.node_id, {
            "term": self.term, "last_index": len(self.log),
            "last_term": last_term}), include_self=False)

    def _on_request_vote(self, message: Message) -> None:
        term = message.payload["term"]
        if term > self.term:
            self._step_down(term)
        up_to_date = (
            message.payload["last_term"],
            message.payload["last_index"],
        ) >= (self.log[-1].term if self.log else 0, len(self.log))
        grant = (term == self.term and up_to_date
                 and self.voted_for in (None, message.sender))
        if grant:
            self.voted_for = message.sender
            self._arm_election_timer()
        self.send(message.sender, Message("vote-reply", self.node_id, {
            "term": self.term, "granted": grant}))

    def _on_vote_reply(self, message: Message) -> None:
        if message.payload["term"] > self.term:
            self._step_down(message.payload["term"])
            return
        if self.role != "candidate" or message.payload["term"] != self.term:
            return
        if message.payload["granted"]:
            self._votes.add(message.sender)
            if len(self._votes) > self.n // 2:
                self._become_leader()

    def _become_leader(self) -> None:
        self.role = "leader"
        self.leader_terms_won += 1
        self.count("terms_won")
        self._match_index = {i: 0 for i in range(self.n)}
        self._match_index[self.node_id] = len(self.log)
        self._send_heartbeats()

    def _step_down(self, term: int) -> None:
        self.term = term
        self.role = "follower"
        self.voted_for = None
        self._arm_election_timer()

    # -- replication -------------------------------------------------------------

    def propose(self, value: object) -> bool:
        """Leader-side client request; returns False when not the leader."""
        if self.role != "leader":
            return False
        self.log.append(LogEntry(self.term, value))
        self._match_index[self.node_id] = len(self.log)
        self._send_heartbeats()
        return True

    def _send_heartbeats(self) -> None:
        if self.role != "leader":
            return
        for peer in range(self.n):
            if peer == self.node_id:
                continue
            sent = self._match_index.get(peer, 0)
            entries = self.log[sent:]
            self.send(peer, Message("append", self.node_id, {
                "term": self.term,
                "prev_index": sent,
                "prev_term": self.log[sent - 1].term if sent else 0,
                "entries": list(entries),
                "leader_commit": self.commit_index,
            }, size=APPEND_SIZE + 64 * len(entries)))
        self.schedule(HEARTBEAT_INTERVAL, self._send_heartbeats,
                      label="raft-heartbeat")

    def _on_append(self, message: Message) -> None:
        term = message.payload["term"]
        if term < self.term:
            self.send(message.sender, Message("append-reply", self.node_id, {
                "term": self.term, "success": False, "match": 0}))
            return
        if term > self.term or self.role != "follower":
            self._step_down(term)
        self._arm_election_timer()
        prev_index = message.payload["prev_index"]
        prev_term = message.payload["prev_term"]
        if prev_index > len(self.log) or (
                prev_index > 0 and self.log[prev_index - 1].term != prev_term):
            self.send(message.sender, Message("append-reply", self.node_id, {
                "term": self.term, "success": False, "match": 0}))
            return
        entries = message.payload["entries"]
        self.log = self.log[:prev_index] + list(entries)
        leader_commit = message.payload["leader_commit"]
        self._advance_commit(min(leader_commit, len(self.log)))
        self.send(message.sender, Message("append-reply", self.node_id, {
            "term": self.term, "success": True, "match": len(self.log)}))

    def _on_append_reply(self, message: Message) -> None:
        if message.payload["term"] > self.term:
            self._step_down(message.payload["term"])
            return
        if self.role != "leader":
            return
        if message.payload["success"]:
            self._match_index[message.sender] = message.payload["match"]
            self._try_commit()
        else:
            # back off one entry and retry on the next heartbeat
            current = self._match_index.get(message.sender, 0)
            self._match_index[message.sender] = max(0, current - 1)

    def _try_commit(self) -> None:
        for index in range(len(self.log), self.commit_index, -1):
            replicated = sum(1 for match in self._match_index.values()
                             if match >= index)
            if (replicated > self.n // 2
                    and self.log[index - 1].term == self.term):
                self._advance_commit(index)
                break

    def _advance_commit(self, new_commit: int) -> None:
        while self.commit_index < new_commit:
            self.commit_index += 1
            self.decide(self.commit_index,
                        self.log[self.commit_index - 1].value)

    def on_message(self, message: Message) -> None:
        handler = getattr(self, "_on_" + message.kind.replace("-", "_"))
        handler(message)
