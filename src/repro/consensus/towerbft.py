"""Solana's Tower BFT over a Proof-of-History stream (Yakovenko) — §5.2.

Proof of History is a verifiable delay function: the leader hashes
continuously, and the hash count is a cryptographic clock. Slots last 400 ms
("To append a block every 400 milliseconds..."); the slot leader streams its
block, and validators vote on forks with exponentially growing lockouts
(Tower BFT): a vote at lockout level ``d`` forbids voting for a conflicting
fork for ``2^d`` slots, so once a block gathers votes from a supermajority
it becomes increasingly irreversible. Clients wait a configurable number of
confirmations (the paper uses 30) before treating a transaction as final.

The implementation models the leader schedule, the PoH slot clock, vote
aggregation and the rooting rule (a block with ``MAX_LOCKOUT_DEPTH``
descendant votes is *rooted* = final). Forks are modeled by slots whose
leader's block misses the slot deadline at some validators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.consensus.base import Message, Replica

SLOT_DURATION = 0.4
BLOCK_BASE_SIZE = 800
ROOT_DEPTH = 8  # votes this deep in a row root the block (scaled-down tower)


@dataclass
class PoHBlock:
    slot: int
    parent_slot: int
    leader: int
    value: object = None
    poh_count: int = 0


class TowerReplica(Replica):
    """One Solana validator."""

    def __init__(self, confirmations: int = 30, slot_duration: float = SLOT_DURATION,
                 root_depth: int = ROOT_DEPTH) -> None:
        super().__init__()
        self.confirmations = confirmations
        self.slot_duration = slot_duration
        self.root_depth = root_depth
        self.blocks: Dict[int, PoHBlock] = {
            0: PoHBlock(0, -1, -1, value=None)}
        # slot -> bank hash -> voters. Votes name the hash of the bank they
        # lock on (as real Tower votes do), so votes for conflicting forks of
        # one slot never pool into a single supermajority.
        self.votes: Dict[int, Dict[str, Set[int]]] = {}
        self.tower: List[int] = []            # own vote stack (slots)
        self.rooted_up_to = 0
        self._decided: Set[int] = set()
        self.current_slot = 0

    def leader_of(self, slot: int) -> int:
        return slot % self.n

    @staticmethod
    def bank_hash(block: PoHBlock) -> str:
        """Stand-in for the bank hash a Solana vote signs over."""
        return f"s{block.slot}:{block.value}"

    # -- lifecycle ------------------------------------------------------------------

    def on_start(self) -> None:
        self._schedule_slot(1)

    def _schedule_slot(self, slot: int) -> None:
        fire_at = slot * self.slot_duration
        self.schedule(max(0.0, fire_at - self.now),
                      lambda: self._on_slot(slot), label="poh-slot")

    def _on_slot(self, slot: int) -> None:
        self.current_slot = slot
        if self.leader_of(slot) == self.node_id:
            parent_slot = self._heaviest_slot(slot)
            block = PoHBlock(slot, parent_slot, self.node_id,
                             value=self.next_payload(),
                             poh_count=slot * 1000)
            self.blocks[slot] = block
            self.broadcast(Message("shred", self.node_id, {"block": block},
                                   size=BLOCK_BASE_SIZE), include_self=False)
            self._vote(slot)
        self._schedule_slot(slot + 1)

    def _heaviest_slot(self, before: int) -> int:
        known = [s for s in self.blocks if s < before]
        return max(known) if known else 0

    # -- voting -----------------------------------------------------------------------

    def on_message(self, message: Message) -> None:
        if message.kind == "shred":
            block: PoHBlock = message.payload["block"]
            if block.slot not in self.blocks:
                self.blocks[block.slot] = block
                # vote if the block arrived within its slot window (or the
                # next one) — late blocks are skipped, creating skipped slots
                if self.current_slot - block.slot <= 1:
                    self._vote(block.slot)
        elif message.kind == "vote":
            slot = message.payload["slot"]
            bank = message.payload["hash"]
            voters = self.votes.setdefault(slot, {}).setdefault(bank, set())
            voters.add(message.sender)
            self._try_root()

    def _vote(self, slot: int) -> None:
        # Tower lockout check: never vote for a slot older than the lockout
        # of a previous vote allows (simplified: strictly increasing slots).
        if self.tower and slot <= self.tower[-1]:
            return
        self.tower.append(slot)
        if len(self.tower) > 32:
            self.tower.pop(0)
        bank = self.bank_hash(self.blocks[slot])
        self.votes.setdefault(slot, {}).setdefault(bank, set()).add(
            self.node_id)
        self.count("votes_cast")
        self.broadcast(Message("vote", self.node_id,
                               {"slot": slot, "hash": bank}),
                       include_self=False)
        self._try_root()

    # -- rooting / finality ------------------------------------------------------------

    def _supermajority(self) -> int:
        return (2 * self.n) // 3 + 1

    def _try_root(self) -> None:
        """Root every slot that has a supermajority-voted descendant chain
        at least ``root_depth`` slots deeper.

        A slot only counts when the supermajority formed on the bank hash
        of the block *this* validator holds — votes on a conflicting fork
        of the slot are tallied separately and cannot root our copy.
        """
        threshold = self._supermajority()
        voted_slots = sorted(
            s for s, by_hash in self.votes.items() if s in self.blocks
            and len(by_hash.get(self.bank_hash(self.blocks[s]), ()))
            >= threshold)
        if not voted_slots:
            return
        deepest = voted_slots[-1]
        root_cutoff = deepest - self.root_depth
        for slot in voted_slots:
            if slot <= self.rooted_up_to or slot > root_cutoff:
                continue
            if slot in self._decided:
                continue
            self._decided.add(slot)
            self.decide(slot, self.blocks[slot].value)
            self.rooted_up_to = slot
