"""Consensus protocols: message-level implementations and analytic models."""

from repro.consensus.algorand import AlgorandReplica, sortition
from repro.consensus.auditor import SafetyAuditor
from repro.consensus.avalanche import SnowballReplica
from repro.consensus.base import (
    ConsensusHarness,
    Decision,
    Message,
    Replica,
)
from repro.consensus.clique import CliqueReplica
from repro.consensus.hotstuff import HotStuffReplica, QuorumCertificate
from repro.consensus.ibft import IBFTReplica
from repro.consensus.models import (
    BlockAttempt,
    CliquePerf,
    CommitteePerf,
    ConsensusPerfModel,
    DAGPerf,
    DecisionOutcome,
    LeaderBFTPerf,
    PoHPerf,
    WanProfile,
)
from repro.consensus.raft import RaftReplica
from repro.consensus.towerbft import TowerReplica

__all__ = [
    "AlgorandReplica",
    "BlockAttempt",
    "CliquePerf",
    "CliqueReplica",
    "CommitteePerf",
    "ConsensusHarness",
    "ConsensusPerfModel",
    "DAGPerf",
    "Decision",
    "DecisionOutcome",
    "HotStuffReplica",
    "IBFTReplica",
    "LeaderBFTPerf",
    "Message",
    "PoHPerf",
    "QuorumCertificate",
    "RaftReplica",
    "Replica",
    "SafetyAuditor",
    "SnowballReplica",
    "TowerReplica",
    "WanProfile",
    "sortition",
]
