"""Text reports for ``python -m repro trace``: phase table + hotspots."""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

from repro.obs.profiler import EngineProfiler
from repro.obs.trace import LifecycleTracer, TX_PHASES


def format_table(rows: List[Dict[str, Any]]) -> str:
    """Re-export of :func:`repro.analysis.summary.format_table`.

    Imported lazily: ``analysis`` imports ``core`` which imports the chain
    runtimes, and those import :mod:`repro.obs` — a module-level import
    here would close that cycle.
    """
    from repro.analysis.summary import format_table as _format_table
    return _format_table(rows)


def _cell(value: float) -> str:
    if isinstance(value, float) and math.isnan(value):
        return "-"
    return f"{value:.4f}"


def phase_table(tracer: LifecycleTracer) -> str:
    """Per-phase latency breakdown table (seconds, committed transactions)."""
    breakdown = tracer.phase_breakdown()
    rows = []
    for phase in TX_PHASES:
        stats = breakdown[phase]
        rows.append({
            "phase": phase,
            "count": stats["count"],
            "mean_s": _cell(stats["mean"]),
            "p50_s": _cell(stats["p50"]),
            "p95_s": _cell(stats["p95"]),
            "p99_s": _cell(stats["p99"]),
        })
    return format_table(rows)


def consensus_table(tracer: LifecycleTracer) -> Optional[str]:
    """Block-level consensus sub-phase table, or None without block spans."""
    breakdown = tracer.consensus_round_breakdown()
    if not breakdown:
        return None
    rows = []
    for phase, stats in breakdown.items():
        rows.append({
            "round_phase": phase,
            "blocks": stats["count"],
            "mean_s": _cell(stats["mean"]),
            "p50_s": _cell(stats["p50"]),
            "p95_s": _cell(stats["p95"]),
            "p99_s": _cell(stats["p99"]),
        })
    return format_table(rows)


def hotspot_table(profiler: EngineProfiler, top: int = 10) -> str:
    """Top engine event labels by accumulated wall-clock time."""
    rows = []
    total = profiler.total_seconds
    for label, count, seconds in profiler.hotspots(top):
        share = seconds / total if total > 0 else 0.0
        rows.append({
            "event": label,
            "count": count,
            "wall_s": f"{seconds:.4f}",
            "share": f"{share:.1%}",
        })
    if not rows:
        return "(no events profiled)"
    return format_table(rows)


def subsystem_table(profiler: EngineProfiler) -> str:
    """Per-subsystem wall-clock attribution table (hottest first)."""
    shares = profiler.subsystem_shares()
    if not shares:
        return "(no events profiled)"
    seconds = profiler.subsystem_seconds()
    rows = [{
        "subsystem": name,
        "wall_s": f"{seconds[name]:.4f}",
        "share": f"{share:.1%}",
    } for name, share in shares.items()]
    return format_table(rows)


def trace_report(tracer: LifecycleTracer,
                 profiler: Optional[EngineProfiler] = None,
                 top: int = 10) -> str:
    """The full ``python -m repro trace`` stdout report."""
    lines: List[str] = [
        f"transaction lifecycle — {tracer.chain}"
        f" ({tracer.traced_transactions()} committed traced)",
        "",
        phase_table(tracer),
    ]
    consensus = consensus_table(tracer)
    if consensus is not None:
        lines += ["", "consensus rounds (per block)", "", consensus]
    if profiler is not None:
        lines += [
            "",
            f"engine hotspots — {profiler.total_events} events,"
            f" {profiler.total_seconds:.3f}s wall clock,"
            f" peak RSS {profiler.peak_rss_bytes / (1 << 20):.1f} MiB",
            "",
            hotspot_table(profiler, top=top),
            "",
            "wall clock by subsystem",
            "",
            subsystem_table(profiler),
        ]
    return "\n".join(lines)


def sweep_table(sweep_result: Any) -> str:
    """Aggregated comparison table of a sweep's cells, in cell order.

    Takes a :class:`repro.sweep.runner.SweepResult` (duck-typed — this
    module cannot import :mod:`repro.sweep`, which imports :mod:`repro.obs`
    for its metrics registry). Crashed cells render their error in place
    of the aggregates.
    """
    rows: List[Dict[str, Any]] = []
    for outcome in sweep_result.outcomes:
        cell = outcome.cell
        row: Dict[str, Any] = {
            "chain": cell.chain,
            "configuration": cell.configuration.name,
            "workload": cell.workload,
            "seed": cell.seed,
            "scale": f"{cell.scale:g}",
        }
        result = outcome.result
        if result is not None:
            row.update({
                "status": result.status,
                "tput_tps": round(result.average_throughput, 2),
                "latency_s": _cell(result.average_latency),
                "commit": round(result.commit_ratio, 4),
            })
        else:
            row.update({
                "status": f"crashed ({outcome.failure.error_type})",
                "tput_tps": "-", "latency_s": "-", "commit": "-",
            })
        row["cache"] = "hit" if outcome.cached else "miss"
        rows.append(row)
    return format_table(rows)


def sweep_report(sweep_result: Any) -> str:
    """The ``python -m repro sweep`` stdout report: table, metrics, verdict."""
    lines = [sweep_table(sweep_result), ""]
    simulated = sweep_result.metrics.get("sweep.cell_wall_seconds")
    total = len(sweep_result.outcomes)
    if simulated and simulated < total:
        lines.append(f"simulated cells: {simulated} of {total}"
                     f" (the rest replayed from the result cache)")
    for outcome in sweep_result.failures:
        failure = outcome.failure
        lines.append(f"failed: {outcome.cell.label} — {failure}")
    lines.append(sweep_result.summary_line())
    return "\n".join(lines)
