"""Trace/metrics exporters: JSONL spans, Chrome ``trace_event``, Prometheus.

Three interchange formats, all derived from the same tracer state:

* **JSONL spans** — one JSON object per line, one line per span, followed
  by the tracer's point events. Loads back losslessly
  (:func:`load_spans_jsonl`), which the round-trip tests assert.
* **Chrome trace JSON** — the ``trace_event`` format Chrome's
  ``chrome://tracing`` and Perfetto load: complete (``"ph": "X"``) events
  with microsecond timestamps. Transactions render as one track per
  lifecycle phase; blocks render as consensus rounds with their
  propose/vote/execute sub-spans.
* **Prometheus text** — :meth:`MetricsRegistry.prometheus` wrapped with a
  file writer, for scraping-style post-mortems.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import EngineProfiler
from repro.obs.trace import LifecycleTracer, NullTracer, Span, TX_PHASES

PathLike = Union[str, Path]

#: synthetic process ids for the Chrome trace's two tracks
_TX_PID = 1
_BLOCK_PID = 2


# -- JSONL spans --------------------------------------------------------------------


def spans_to_jsonl(tracer: NullTracer) -> str:
    """Serialize a tracer's spans and events, one JSON object per line."""
    lines: List[str] = []
    for span in getattr(tracer, "spans", []):
        lines.append(json.dumps({"type": "span", **span.to_dict()},
                                sort_keys=True))
    for event in getattr(tracer, "events", []):
        lines.append(json.dumps({"type": "event", **event}, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def write_spans_jsonl(tracer: NullTracer, path: PathLike) -> Path:
    path = Path(path)
    path.write_text(spans_to_jsonl(tracer))
    return path


def load_spans_jsonl(source: Union[PathLike, str]
                     ) -> Tuple[List[Span], List[Dict[str, Any]]]:
    """Parse a JSONL export back into (spans, events).

    Accepts a path or the raw text itself (text containing a newline is
    never a valid path, so the dispatch is unambiguous).
    """
    text = source if isinstance(source, str) and "\n" in source else None
    if text is None:
        text = Path(source).read_text()
    spans: List[Span] = []
    events: List[Dict[str, Any]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        row = json.loads(line)
        kind = row.pop("type", "span")
        if kind == "span":
            spans.append(Span.from_dict(row))
        else:
            events.append(row)
    return spans, events


# -- Chrome trace_event ---------------------------------------------------------------


def _us(seconds: float) -> float:
    return round(seconds * 1e6, 3)


def chrome_trace(tracer: NullTracer,
                 profiler: Optional[EngineProfiler] = None) -> Dict[str, Any]:
    """Build a ``chrome://tracing``-loadable trace document.

    Transaction spans land in one process ("transactions") with one thread
    per lifecycle phase, so the timeline reads as stacked phase lanes;
    block spans land in a "consensus rounds" process with one thread per
    block height modulo a small window (heights reuse lanes, keeping the
    view compact). Profiler totals, when given, are attached as metadata.
    """
    events: List[Dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": _TX_PID, "tid": 0,
         "args": {"name": "transactions"}},
        {"name": "process_name", "ph": "M", "pid": _BLOCK_PID, "tid": 0,
         "args": {"name": "consensus rounds"}},
    ]
    phase_tid = {phase: i + 1 for i, phase in enumerate(TX_PHASES)}
    for phase, tid in phase_tid.items():
        events.append({"name": "thread_name", "ph": "M", "pid": _TX_PID,
                       "tid": tid, "args": {"name": phase}})
    for span in getattr(tracer, "spans", []):
        meta = dict(span.meta)
        if span.scope == "tx":
            pid = _TX_PID
            tid = phase_tid.get(span.phase, len(TX_PHASES) + 1)
            name = f"tx-{span.key}"
        else:
            pid = _BLOCK_PID
            tid = int(meta.get("height", span.key)) % 8 + 1
            name = span.phase
        events.append({
            "name": name,
            "cat": span.scope,
            "ph": "X",
            "pid": pid,
            "tid": tid,
            "ts": _us(span.start),
            "dur": _us(span.duration),
            "args": {"phase": span.phase, "key": span.key, **meta},
        })
    document: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"chain": getattr(tracer, "chain", "")},
    }
    if profiler is not None:
        document["otherData"]["engine"] = {
            "events": profiler.total_events,
            "wall_seconds": round(profiler.total_seconds, 6),
        }
    return document


def write_chrome_trace(tracer: NullTracer, path: PathLike,
                       profiler: Optional[EngineProfiler] = None) -> Path:
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(tracer, profiler)))
    return path


# -- Prometheus text --------------------------------------------------------------------


def write_prometheus(registry: MetricsRegistry, path: PathLike,
                     labels: Optional[Dict[str, str]] = None) -> Path:
    path = Path(path)
    path.write_text(registry.prometheus(labels=labels))
    return path
