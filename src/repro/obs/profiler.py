"""Engine profiler: where does the *simulation* spend its wall-clock time?

Attached to an :class:`~repro.sim.engine.Engine` (``engine.profiler = ...``),
the profiler wraps every event callback, counting executions and
accumulating host wall-clock time per event label. Event labels are the
strings call sites pass to ``schedule_at``/``schedule_after``
(``"ethereum-block"``, ``"secondary-ohio-0-emit"``, ...); unlabeled events
fall back to the callback's qualified name so every event is attributable.

This is the *only* place in the reproduction allowed to read the wall
clock: the profiler observes host time without feeding anything back into
the simulation, so a profiled run is outcome-identical to an unprofiled
one (the event count and order do not change — only who is looking).
"""

from __future__ import annotations

import resource
import sys
import time
from typing import Callable, Dict, List, Tuple


def event_name(label: str, callback: Callable[[], None]) -> str:
    """The attribution key for one event: its label, else the callback."""
    if label:
        return label
    name = getattr(callback, "__qualname__", "")
    return name or type(callback).__name__


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, normalized to bytes.

    ``getrusage`` reports ``ru_maxrss`` in platform-dependent units:
    kibibytes on Linux (``man 2 getrusage``), bytes on macOS. Every
    consumer in the repo (the profiler, ``repro.bench``) goes through
    this helper so recorded RSS figures are always bytes.
    """
    raw = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(raw)
    return int(raw) * 1024


#: Attribution buckets for :func:`subsystem_for`, in report order.
SUBSYSTEMS = ("network", "consensus", "clients", "adversary", "faults",
              "harness", "other")

#: Consensus message-level protocol label prefixes (repro.consensus.*).
_PROTOCOL_PREFIXES = ("poh-", "snowball-", "ba-", "hs-", "clique-",
                      "raft-", "ibft-")

#: Chain-runtime block pipeline label suffixes (repro.blockchains.base).
_CHAIN_SUFFIXES = ("-block", "-append", "-stalled", "-memstall", "-idle")


def subsystem_for(label: str) -> str:
    """Map one engine event label to the subsystem that scheduled it.

    Labels follow the conventions of the call sites: the network tags
    deliveries ``network-delivery`` / ``msg-*`` / ``self-*`` /
    ``degraded-*``, chain runtimes tag their block pipeline
    ``<chain>-block`` etc., Secondaries tag client emission
    ``secondary-*``, and so on. Unrecognized labels (including bare
    callback names from unlabeled events) land in ``other``.
    """
    if (label.startswith(("network", "msg-", "self-", "degraded-"))):
        return "network"
    if label.startswith("secondary-") or label.endswith("-retry"):
        return "clients"
    if label.endswith("-adversary"):
        return "adversary"
    if label.startswith("fault-"):
        return "faults"
    if label in ("metrics-sampler", "liveness-watchdog"):
        return "harness"
    if label.endswith(_CHAIN_SUFFIXES) or label.startswith(_PROTOCOL_PREFIXES):
        return "consensus"
    return "other"


class EngineProfiler:
    """Per-label event counts and wall-clock accumulation."""

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}
        self.seconds: Dict[str, float] = {}

    def record(self, label: str, callback: Callable[[], None]) -> None:
        """Run *callback*, charging its wall-clock time to *label*."""
        name = event_name(label, callback)
        start = time.perf_counter()
        try:
            callback()
        finally:
            elapsed = time.perf_counter() - start
            self.counts[name] = self.counts.get(name, 0) + 1
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed

    @property
    def total_events(self) -> int:
        return sum(self.counts.values())

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def hotspots(self, top: int = 10) -> List[Tuple[str, int, float]]:
        """(label, events, wall seconds) rows, hottest first."""
        rows = [(name, self.counts[name], self.seconds[name])
                for name in self.counts]
        rows.sort(key=lambda row: (-row[2], -row[1], row[0]))
        return rows[:max(0, top)]

    # -- aggregate views ------------------------------------------------------

    @property
    def peak_rss_bytes(self) -> int:
        """Peak RSS of the hosting process in bytes (see module helper)."""
        return peak_rss_bytes()

    def subsystem_seconds(self) -> Dict[str, float]:
        """Accumulated wall-clock per subsystem (see :func:`subsystem_for`)."""
        totals: Dict[str, float] = {}
        for name, seconds in self.seconds.items():
            subsystem = subsystem_for(name)
            totals[subsystem] = totals.get(subsystem, 0.0) + seconds
        return totals

    def subsystem_shares(self) -> Dict[str, float]:
        """Each subsystem's fraction of total profiled wall-clock time.

        Empty when nothing was profiled; otherwise the values sum to 1
        (up to float rounding), sorted hottest first.
        """
        total = self.total_seconds
        if total <= 0:
            return {}
        seconds = self.subsystem_seconds()
        return {name: seconds[name] / total
                for name in sorted(seconds, key=lambda n: -seconds[n])}
