"""Engine profiler: where does the *simulation* spend its wall-clock time?

Attached to an :class:`~repro.sim.engine.Engine` (``engine.profiler = ...``),
the profiler wraps every event callback, counting executions and
accumulating host wall-clock time per event label. Event labels are the
strings call sites pass to ``schedule_at``/``schedule_after``
(``"ethereum-block"``, ``"secondary-ohio-0-emit"``, ...); unlabeled events
fall back to the callback's qualified name so every event is attributable.

This is the *only* place in the reproduction allowed to read the wall
clock: the profiler observes host time without feeding anything back into
the simulation, so a profiled run is outcome-identical to an unprofiled
one (the event count and order do not change — only who is looking).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Tuple


def event_name(label: str, callback: Callable[[], None]) -> str:
    """The attribution key for one event: its label, else the callback."""
    if label:
        return label
    name = getattr(callback, "__qualname__", "")
    return name or type(callback).__name__


class EngineProfiler:
    """Per-label event counts and wall-clock accumulation."""

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}
        self.seconds: Dict[str, float] = {}

    def record(self, label: str, callback: Callable[[], None]) -> None:
        """Run *callback*, charging its wall-clock time to *label*."""
        name = event_name(label, callback)
        start = time.perf_counter()
        try:
            callback()
        finally:
            elapsed = time.perf_counter() - start
            self.counts[name] = self.counts.get(name, 0) + 1
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed

    @property
    def total_events(self) -> int:
        return sum(self.counts.values())

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def hotspots(self, top: int = 10) -> List[Tuple[str, int, float]]:
        """(label, events, wall seconds) rows, hottest first."""
        rows = [(name, self.counts[name], self.seconds[name])
                for name in self.counts]
        rows.sort(key=lambda row: (-row[2], -row[1], row[0]))
        return rows[:max(0, top)]
