"""Observability: lifecycle tracing, metrics registry, engine profiling.

The package behind ``python -m repro trace``:

* :mod:`repro.obs.trace` — per-transaction phase spans on the sim clock;
* :mod:`repro.obs.metrics` — namespaced counters/gauges/histograms with
  periodic sim-clock sampling;
* :mod:`repro.obs.profiler` — wall-clock attribution per engine event;
* :mod:`repro.obs.exporters` — JSONL, Chrome ``trace_event``, Prometheus;
* :mod:`repro.obs.report` — the phase-breakdown and hotspot text tables.

Everything is off by default: tracing/profiling attach explicitly via
:class:`ObservabilityOptions` and a disabled run is outcome-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.obs.exporters import (
    chrome_trace,
    load_spans_jsonl,
    spans_to_jsonl,
    write_chrome_trace,
    write_prometheus,
    write_spans_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsNamespace,
    MetricsRegistry,
    MetricsSampler,
)
from repro.obs.profiler import (
    SUBSYSTEMS,
    EngineProfiler,
    peak_rss_bytes,
    subsystem_for,
)
from repro.obs.report import (
    consensus_table,
    hotspot_table,
    phase_table,
    subsystem_table,
    sweep_report,
    sweep_table,
    trace_report,
)
from repro.obs.trace import TX_PHASES, LifecycleTracer, NullTracer, Span


@dataclass(frozen=True)
class ObservabilityOptions:
    """What to observe during a run (all observation, zero perturbation).

    ``trace``          attach a :class:`LifecycleTracer` to the chain
    ``profile``        attach an :class:`EngineProfiler` to the engine
                       (the one consumer of wall-clock time)
    ``sample_period``  sim-clock seconds between metrics snapshots;
                       ``0`` disables the sampler (no timeseries rows)
    """

    trace: bool = True
    profile: bool = False
    sample_period: float = 1.0

    def __post_init__(self) -> None:
        if self.sample_period < 0:
            raise ConfigurationError(
                f"sample_period cannot be negative: {self.sample_period}")


__all__ = [
    "Counter",
    "EngineProfiler",
    "Gauge",
    "Histogram",
    "LifecycleTracer",
    "MetricsNamespace",
    "MetricsRegistry",
    "MetricsSampler",
    "NullTracer",
    "ObservabilityOptions",
    "SUBSYSTEMS",
    "Span",
    "TX_PHASES",
    "chrome_trace",
    "consensus_table",
    "hotspot_table",
    "load_spans_jsonl",
    "peak_rss_bytes",
    "phase_table",
    "spans_to_jsonl",
    "subsystem_for",
    "subsystem_table",
    "sweep_report",
    "sweep_table",
    "trace_report",
    "write_chrome_trace",
    "write_prometheus",
    "write_spans_jsonl",
]
