"""Transaction-lifecycle tracing on the simulated clock.

The paper explains *why* chains miss their claimed performance — mempool
saturation, leader stalls, consensus backlog (§5/§6) — but an end-to-end
``submitted_at``/``committed_at`` pair cannot attribute a slow run to a
layer. The :class:`LifecycleTracer` stamps every transaction with per-phase
spans, all on the simulated clock:

========== ==================================================================
phase      interval
========== ==================================================================
admission  client submit (first attempt) → entry into the mempool; covers
           retry/backoff loops and admission-queue waiting
mempool    pool residency: admission → inclusion in a sealed block
execution  the block's VM execution slice attributed to its transactions
consensus  end of execution → the block reaching finality (propose/vote
           rounds, view changes, confirmation depth)
receipt    finality → the client observing the commit (§5.2 commit APIs)
========== ==================================================================

Phases are contiguous by construction, so for every committed transaction
they sum exactly to its end-to-end latency — the invariant the test suite
asserts per chain. Aborted transactions get a drop *event* and no spans.

Blocks are traced too: each sealed block carries the consensus model's
propose/vote/execute breakdown (:class:`DecisionOutcome.breakdown`),
normalised to the block's actual decision latency, which is what the Chrome
``trace_event`` export renders as nested consensus rounds.

A :class:`NullTracer` is the default everywhere: a run without tracing
performs no per-transaction bookkeeping and is outcome-identical (the
runtimes guard every hook behind ``if self.tracer is not None``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Canonical transaction phases, in lifecycle order.
TX_PHASES: Tuple[str, ...] = (
    "admission", "mempool", "execution", "consensus", "receipt")


@dataclass(frozen=True, slots=True)
class Span:
    """One closed interval of a traced entity's lifecycle."""

    scope: str              # "tx" | "block" | "byzantine"
    key: int                # transaction uid or block trace id
    phase: str              # one of TX_PHASES, or a consensus sub-phase
    start: float
    end: float
    meta: Tuple[Tuple[str, Any], ...] = ()

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        row: Dict[str, Any] = {
            "scope": self.scope, "key": self.key, "phase": self.phase,
            "start": self.start, "end": self.end}
        if self.meta:
            row["meta"] = dict(self.meta)
        return row

    @staticmethod
    def from_dict(row: Dict[str, Any]) -> "Span":
        meta = tuple(sorted(row.get("meta", {}).items()))
        return Span(scope=row["scope"], key=row["key"], phase=row["phase"],
                    start=row["start"], end=row["end"], meta=meta)


class NullTracer:
    """Tracing disabled: every hook is a no-op.

    The runtimes never call hooks when no tracer is attached, so this class
    exists for call sites that want an unconditional tracer object (tests,
    reports); ``enabled`` is the flag the attach paths check.
    """

    enabled = False

    def tx_submit(self, tx: Any, t: float, attempt: int) -> None:
        pass

    def tx_rejected(self, tx: Any, t: float, reason: str,
                    will_retry: bool) -> None:
        pass

    def tx_queued(self, tx: Any, t: float) -> None:
        pass

    def tx_admitted(self, tx: Any, t: float) -> None:
        pass

    def tx_dropped(self, tx: Any, t: float, reason: str) -> None:
        pass

    def tx_committed(self, tx: Any, final_time: float,
                     committed_at: float) -> None:
        pass

    def block_sealed(self, t: float, height: int, leader: str,
                     txs: Sequence[Any], exec_time: float,
                     outcome: Any) -> int:
        return -1

    def block_appended(self, block_id: int, t: float) -> None:
        pass

    def block_requeued(self, block_id: int, t: float) -> None:
        pass

    def adversary_window(self, index: int, kind: str, start: float,
                         stop: float, node: Any) -> None:
        pass

    def adversary_action(self, t: float, action: str, **info: Any) -> None:
        pass


class LifecycleTracer(NullTracer):
    """Collects per-transaction and per-block spans for one chain run."""

    enabled = True

    def __init__(self, chain: str = "") -> None:
        self.chain = chain
        self.spans: List[Span] = []
        self.events: List[Dict[str, Any]] = []
        # open per-transaction marks: uid -> {submitted, admitted, included,
        # exec_end, block}
        self._marks: Dict[int, Dict[str, float]] = {}
        # open per-block records: id -> {start, height, leader, exec_time,
        # breakdown, txs}
        self._blocks: Dict[int, Dict[str, Any]] = {}
        self._next_block_id = 0

    # -- transaction hooks ---------------------------------------------------------

    def tx_submit(self, tx: Any, t: float, attempt: int) -> None:
        marks = self._marks.get(tx.uid)
        if marks is None:
            self._marks[tx.uid] = {"submitted": t}
        self.events.append({"t": t, "kind": "submit", "uid": tx.uid,
                            "attempt": attempt})

    def tx_rejected(self, tx: Any, t: float, reason: str,
                    will_retry: bool) -> None:
        self.events.append({"t": t, "kind": "rejected", "uid": tx.uid,
                            "reason": reason, "will_retry": will_retry})

    def tx_queued(self, tx: Any, t: float) -> None:
        self.events.append({"t": t, "kind": "queued", "uid": tx.uid})

    def tx_admitted(self, tx: Any, t: float) -> None:
        marks = self._marks.setdefault(tx.uid, {"submitted": t})
        # a requeued/resubmitted transaction keeps its first admission: the
        # pool residency span covers the whole stay
        marks.setdefault("admitted", t)
        self.events.append({"t": t, "kind": "admitted", "uid": tx.uid})

    def tx_dropped(self, tx: Any, t: float, reason: str) -> None:
        # aborted transactions leave an event and no spans — the span set is
        # the record of a *successful* lifecycle
        self._marks.pop(tx.uid, None)
        self.events.append({"t": t, "kind": "dropped", "uid": tx.uid,
                            "reason": reason})

    def tx_committed(self, tx: Any, final_time: float,
                     committed_at: float) -> None:
        """Close the lifecycle: emit the five contiguous phase spans."""
        marks = self._marks.pop(tx.uid, None)
        if marks is None or "included" not in marks:
            # committed without a traced inclusion (tracer attached
            # mid-run); nothing trustworthy to emit
            self.events.append({"t": committed_at, "kind": "committed",
                                "uid": tx.uid, "untraced": True})
            return
        submitted = marks["submitted"]
        admitted = min(max(marks.get("admitted", submitted), submitted),
                       marks["included"])
        included = marks["included"]
        # some models (PoH slots) decide faster than the execution slice;
        # clamp so the phases stay contiguous and non-negative
        exec_end = min(max(marks.get("exec_end", included), included),
                       final_time)
        meta = (("chain", self.chain),)
        uid = tx.uid
        self.spans.append(Span("tx", uid, "admission", submitted, admitted,
                               meta))
        self.spans.append(Span("tx", uid, "mempool", admitted, included,
                               meta))
        self.spans.append(Span("tx", uid, "execution", included, exec_end,
                               meta))
        self.spans.append(Span("tx", uid, "consensus", exec_end,
                               max(final_time, exec_end), meta))
        self.spans.append(Span("tx", uid, "receipt", max(final_time, exec_end),
                               max(committed_at, final_time), meta))
        self.events.append({"t": committed_at, "kind": "committed",
                            "uid": uid})

    # -- block hooks ----------------------------------------------------------------

    def block_sealed(self, t: float, height: int, leader: str,
                     txs: Sequence[Any], exec_time: float,
                     outcome: Any) -> int:
        block_id = self._next_block_id
        self._next_block_id += 1
        for tx in txs:
            marks = self._marks.get(tx.uid)
            if marks is None:
                continue
            marks["included"] = t
            marks["exec_end"] = t + exec_time
            marks["block"] = block_id
        self._blocks[block_id] = {
            "start": t, "height": height, "leader": leader,
            "tx_count": len(txs),
            "breakdown": dict(getattr(outcome, "breakdown", None) or {}),
            "view_changes": getattr(outcome, "view_changes", 0)}
        return block_id

    def block_appended(self, block_id: int, t: float) -> None:
        """The block landed: emit its consensus-round sub-spans.

        The model's propose/vote/execute breakdown is normalised to the
        actual seal→append latency (view-change waits and leader-skip
        penalties stretch it), then laid out contiguously.
        """
        record = self._blocks.pop(block_id, None)
        if record is None:
            return
        start = record["start"]
        actual = max(0.0, t - start)
        breakdown = record["breakdown"]
        meta = (("chain", self.chain), ("height", record["height"]),
                ("leader", record["leader"]),
                ("tx_count", record["tx_count"]),
                ("view_changes", record["view_changes"]))
        modelled = sum(breakdown.values())
        if breakdown and modelled > 0:
            ratio = actual / modelled
            cursor = start
            for phase, seconds in breakdown.items():
                end = cursor + seconds * ratio
                self.spans.append(Span("block", block_id, phase, cursor, end,
                                       meta))
                cursor = end
        else:
            self.spans.append(Span("block", block_id, "decide", start, t,
                                   meta))

    def block_requeued(self, block_id: int, t: float) -> None:
        """Consensus gave up on the block: its batch returned to the pool.

        The transactions' inclusion marks are rolled back so their mempool
        span extends to the next (successful) inclusion; the failed rounds
        show up inside the eventual consensus span.
        """
        record = self._blocks.pop(block_id, None)
        for marks in self._marks.values():
            if marks.get("block") == block_id:
                marks.pop("included", None)
                marks.pop("exec_end", None)
                marks.pop("block", None)
        self.events.append({"t": t, "kind": "block_requeued",
                            "block": block_id,
                            "height": record["height"] if record else None})

    # -- byzantine adversary hooks ---------------------------------------------------

    def adversary_window(self, index: int, kind: str, start: float,
                         stop: float, node: Any) -> None:
        """One scheduled misbehaviour window as a span on the sim clock,
        so the attack interval renders next to the blocks it degrades."""
        self.spans.append(Span(
            "byzantine", index, kind, start, stop,
            meta=(("chain", self.chain), ("height", index),
                  ("node", node))))

    def adversary_action(self, t: float, action: str, **info: Any) -> None:
        """One adversarial intervention (a forked/withheld/delayed send)."""
        self.events.append({"t": t, "kind": f"byzantine_{action}", **info})

    def byzantine_spans(self) -> List[Span]:
        return [s for s in self.spans if s.scope == "byzantine"]

    # -- aggregation -----------------------------------------------------------------

    def tx_spans(self) -> List[Span]:
        return [s for s in self.spans if s.scope == "tx"]

    def block_spans(self) -> List[Span]:
        return [s for s in self.spans if s.scope == "block"]

    def spans_for(self, uid: int) -> List[Span]:
        """The phase spans of one transaction, in lifecycle order."""
        order = {phase: i for i, phase in enumerate(TX_PHASES)}
        found = [s for s in self.spans if s.scope == "tx" and s.key == uid]
        return sorted(found, key=lambda s: order.get(s.phase, len(order)))

    def phase_breakdown(self) -> Dict[str, Dict[str, float]]:
        """Per-phase latency statistics: count, mean, p50/p95/p99 seconds."""
        by_phase: Dict[str, List[float]] = {phase: [] for phase in TX_PHASES}
        for span in self.spans:
            if span.scope == "tx" and span.phase in by_phase:
                by_phase[span.phase].append(span.duration)
        breakdown: Dict[str, Dict[str, float]] = {}
        for phase in TX_PHASES:
            values = by_phase[phase]
            if not values:
                breakdown[phase] = {"count": 0, "mean": float("nan"),
                                    "p50": float("nan"), "p95": float("nan"),
                                    "p99": float("nan")}
                continue
            arr = np.asarray(values)
            breakdown[phase] = {
                "count": len(values),
                "mean": float(arr.mean()),
                "p50": float(np.percentile(arr, 50)),
                "p95": float(np.percentile(arr, 95)),
                "p99": float(np.percentile(arr, 99)),
            }
        return breakdown

    def consensus_round_breakdown(self) -> Dict[str, Dict[str, float]]:
        """Mean/percentile statistics of block-level consensus sub-phases."""
        by_phase: Dict[str, List[float]] = {}
        for span in self.spans:
            if span.scope == "block":
                by_phase.setdefault(span.phase, []).append(span.duration)
        out: Dict[str, Dict[str, float]] = {}
        for phase in sorted(by_phase):
            arr = np.asarray(by_phase[phase])
            out[phase] = {
                "count": int(arr.size),
                "mean": float(arr.mean()),
                "p50": float(np.percentile(arr, 50)),
                "p95": float(np.percentile(arr, 95)),
                "p99": float(np.percentile(arr, 99)),
            }
        return out

    def traced_transactions(self) -> int:
        """Transactions with a complete (committed) lifecycle."""
        return sum(1 for s in self.spans
                   if s.scope == "tx" and s.phase == "receipt")
