"""Namespaced metrics registry sampled on the simulated clock.

One :class:`MetricsRegistry` per experiment replaces the ad-hoc stat dicts
that used to be scattered over the mempool, the admission controller, the
machines, the network and the blockchain runtime. Components register
**counters** (monotonic totals), **gauges** (instantaneous levels, either
set explicitly or read through a supplier callable) and **histograms**
(distributions with percentile queries) under dotted namespaces such as
``mempool.admitted`` or ``chain.dropped.expired``.

The registry is deterministic: it never reads the wall clock, and sampling
it is a pure read (gauge suppliers must be side-effect free). A
:class:`MetricsSampler` snapshots every counter and gauge periodically on
the *simulated* clock, producing the ``timeseries`` rows that land in
:class:`~repro.core.results.BenchmarkResult`.

BLOCKBENCH makes per-layer metrics a first-class benchmark output; this
module is the same layer for the reproduction — see also
:func:`MetricsRegistry.prometheus` for the text exposition format.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Union

import numpy as np

from repro.common.errors import ConfigurationError, SimulationError

if TYPE_CHECKING:  # sim.machine imports this module; avoid the cycle
    from repro.sim.engine import Engine

Number = Union[int, float]


class Counter:
    """A monotonically increasing total (events, bytes, drops...)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise SimulationError(
                f"counter {self.name} cannot decrease (inc {amount})")
        self._value += amount

    @property
    def value(self) -> Number:
        return self._value


class Gauge:
    """An instantaneous level: set explicitly or read via a supplier."""

    __slots__ = ("name", "_value", "_supplier")

    def __init__(self, name: str,
                 supplier: Optional[Callable[[], Number]] = None) -> None:
        self.name = name
        self._value: Number = 0
        self._supplier = supplier

    def set(self, value: Number) -> None:
        if self._supplier is not None:
            raise SimulationError(
                f"gauge {self.name} is supplier-backed; cannot set()")
        self._value = value

    def add(self, delta: Number) -> None:
        if self._supplier is not None:
            raise SimulationError(
                f"gauge {self.name} is supplier-backed; cannot add()")
        self._value += delta

    @property
    def value(self) -> Number:
        if self._supplier is not None:
            return self._supplier()
        return self._value


class Histogram:
    """A distribution of observations with percentile queries.

    Observations are kept in full (simulation scale keeps them small); the
    Prometheus dump exposes count/sum and the usual latency quantiles.
    """

    __slots__ = ("name", "_values")

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        self._values.append(float(value))

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def sum(self) -> float:
        return float(sum(self._values))

    @property
    def mean(self) -> float:
        return self.sum / self.count if self._values else float("nan")

    def percentile(self, q: float) -> float:
        if not self._values:
            return float("nan")
        return float(np.percentile(np.asarray(self._values), q))

    def values(self) -> List[float]:
        return list(self._values)


class MetricsRegistry:
    """One flat, namespaced home for every metric of an experiment."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Union[Counter, Gauge, Histogram]] = {}

    # -- registration --------------------------------------------------------------

    def _get(self, name: str, kind: type, factory) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, kind):
            raise ConfigurationError(
                f"metric {name!r} is a {type(metric).__name__},"
                f" not a {kind.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        """Get or create the counter *name*."""
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str,
              supplier: Optional[Callable[[], Number]] = None) -> Gauge:
        """Get or create the gauge *name* (idempotent per name)."""
        gauge = self._get(name, Gauge, lambda: Gauge(name, supplier))
        return gauge

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram *name*."""
        return self._get(name, Histogram, lambda: Histogram(name))

    def namespace(self, prefix: str) -> "MetricsNamespace":
        """A view of this registry with every name prefixed ``prefix.``."""
        return MetricsNamespace(self, prefix)

    # -- reading -------------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> Optional[Union[Counter, Gauge, Histogram]]:
        return self._metrics.get(name)

    def value(self, name: str) -> Number:
        metric = self._metrics[name]
        if isinstance(metric, Histogram):
            return metric.count
        return metric.value

    def sample(self) -> Dict[str, Number]:
        """Snapshot every counter and gauge (histograms as their count)."""
        row: Dict[str, Number] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                row[name] = metric.count
            else:
                row[name] = metric.value
        return row

    # -- exposition ----------------------------------------------------------------

    def prometheus(self, prefix: str = "repro",
                   labels: Optional[Dict[str, str]] = None) -> str:
        """Prometheus text exposition of every metric.

        Dots in metric names become underscores; *labels* are attached to
        every sample (e.g. ``{chain="ethereum"}``). Histograms export as
        summaries with count, sum and p50/p95/p99 quantiles.
        """
        label_text = ""
        if labels:
            inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
            label_text = "{" + inner + "}"

        def fmt(value: Number) -> str:
            if isinstance(value, float):
                return repr(value)
            return str(value)

        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            flat = f"{prefix}_{name}".replace(".", "_").replace("-", "_")
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {flat} counter")
                lines.append(f"{flat}{label_text} {fmt(metric.value)}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {flat} gauge")
                lines.append(f"{flat}{label_text} {fmt(metric.value)}")
            else:
                lines.append(f"# TYPE {flat} summary")
                for q in (50, 95, 99):
                    quantile = q / 100.0
                    joiner = "," if labels else ""
                    inner = (label_text[1:-1] + joiner if labels else "")
                    value = metric.percentile(q)
                    lines.append(
                        f'{flat}{{{inner}quantile="{quantile}"}} {value!r}')
                lines.append(f"{flat}_count{label_text} {metric.count}")
                lines.append(f"{flat}_sum{label_text} {metric.sum!r}")
        return "\n".join(lines) + "\n"


class MetricsNamespace:
    """Prefix view over a :class:`MetricsRegistry` (``prefix.name``)."""

    __slots__ = ("registry", "prefix")

    def __init__(self, registry: MetricsRegistry, prefix: str) -> None:
        self.registry = registry
        self.prefix = prefix

    def _full(self, name: str) -> str:
        return f"{self.prefix}.{name}"

    def counter(self, name: str) -> Counter:
        return self.registry.counter(self._full(name))

    def gauge(self, name: str,
              supplier: Optional[Callable[[], Number]] = None) -> Gauge:
        return self.registry.gauge(self._full(name), supplier)

    def histogram(self, name: str) -> Histogram:
        return self.registry.histogram(self._full(name))

    def namespace(self, prefix: str) -> "MetricsNamespace":
        return MetricsNamespace(self.registry, self._full(prefix))

    def counters_with_prefix(self, prefix: str) -> Dict[str, Number]:
        """``{suffix: value}`` for counters under ``<namespace>.<prefix>.``."""
        base = self._full(prefix) + "."
        out: Dict[str, Number] = {}
        for name in self.registry.names():
            metric = self.registry.get(name)
            if name.startswith(base) and isinstance(metric, Counter):
                out[name[len(base):]] = metric.value
        return out


class MetricsSampler:
    """Snapshot a registry periodically on the simulated clock.

    Sampling is an observation only: it schedules its own tick events (so
    the engine's event count grows) but reads no RNG and never perturbs
    simulation state, keeping traced runs outcome-identical to untraced
    ones.
    """

    def __init__(self, engine: Engine, registry: MetricsRegistry,
                 period: float = 1.0) -> None:
        if period <= 0:
            raise ConfigurationError(
                f"sample period must be positive: {period}")
        self.engine = engine
        self.registry = registry
        self.period = period
        self.samples: List[Dict[str, Any]] = []
        from repro.sim.engine import PeriodicTask  # deferred: import cycle
        self._task = PeriodicTask(engine, period, self._tick,
                                  label="metrics-sampler")

    def _tick(self) -> None:
        row: Dict[str, Any] = {"t": round(self.engine.now, 6)}
        row.update(self.registry.sample())
        self.samples.append(row)

    def stop(self) -> None:
        self._task.stop()
