"""Economic layer: per-chain fee markets and attacker economics.

The benchmark's robustness story (§6.3/§6.5) is incomplete without the
defense every production chain actually relies on under hostile load:
fees. This package models the three fee dialects the registered chains
use — EIP-1559 base-fee dynamics, priority-fee auctions and flat
minimum fees — plus the :class:`~repro.econ.market.FeeMarket` runtime
that charges committed transactions and attributes spend to honest and
adversarial senders.

Everything here is opt-in: a workload without a ``fees:`` section never
constructs a market and the benign pipeline is byte-identical to a tree
without this package.
"""

from repro.econ.fees import (
    DIALECTS,
    AuctionFeeModel,
    Eip1559FeeModel,
    FeeModel,
    FeePolicy,
    FeeSpec,
    FlatFeeModel,
    build_fee_model,
)
from repro.econ.market import FeeMarket

__all__ = [
    "DIALECTS",
    "AuctionFeeModel",
    "Eip1559FeeModel",
    "FeeModel",
    "FeeMarket",
    "FeePolicy",
    "FeeSpec",
    "FlatFeeModel",
    "build_fee_model",
]
