"""The live fee market attached to a running blockchain network.

Wraps a :class:`~repro.econ.fees.FeeModel` with the bookkeeping the
benchmark needs: charging committed transactions, attributing spend to
labelled sender groups (``honest`` vs ``attacker``), and publishing
everything through the chain's :class:`MetricsRegistry` namespace
(``fees.*``) so fee percentiles and attacker spend land in timeseries
samples and ``BenchmarkResult.economics``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, Tuple

from repro.econ.fees import FeeModel

HONEST = "honest"


class FeeMarket:
    """Charges committed transactions and attributes the spend."""

    def __init__(self, model: FeeModel, metrics: Any) -> None:
        self.model = model
        self._metrics = metrics
        self._collected = metrics.counter("collected")
        self._charged = metrics.counter("charged_txs")
        metrics.gauge("floor", supplier=model.floor)
        self._paid_per_gas = metrics.histogram("paid_per_gas")
        self._labels: Dict[str, str] = {}
        self._spend: Dict[str, Any] = {}

    # -- sender attribution ----------------------------------------------------------

    def track(self, addresses: Iterable[str], label: str) -> None:
        """Attribute future fees paid by *addresses* to *label*."""
        for address in addresses:
            self._labels[address] = label

    def label_for(self, sender: str) -> str:
        return self._labels.get(sender, HONEST)

    def _spend_counter(self, label: str) -> Any:
        counter = self._spend.get(label)
        if counter is None:
            counter = self._metrics.counter(f"spend.{label}")
            self._spend[label] = counter
        return counter

    # -- model passthrough -----------------------------------------------------------

    @property
    def dialect(self) -> str:
        return self.model.dialect

    def floor(self) -> int:
        return self.model.floor()

    def effective_price(self, tx: Any) -> int:
        return self.model.effective_price(tx)

    def suggest(self) -> Tuple[int, int]:
        return self.model.suggest()

    def attack_bid(self, multiplier: float) -> Tuple[int, int]:
        return self.model.attack_bid(multiplier)

    def on_block(self, gas_used: int) -> None:
        self.model.on_block(gas_used)

    # -- charging --------------------------------------------------------------------

    def charge(self, tx: Any, gas_used: int) -> int:
        """Charge *tx* for *gas_used* and return the fee units paid."""
        fee = self.model.fee_paid(tx, gas_used)
        self._collected.inc(fee)
        self._charged.inc()
        self._paid_per_gas.observe(self.model.effective_price(tx))
        self._spend_counter(self.label_for(tx.sender)).inc(fee)
        return fee

    def spend(self, label: str) -> int:
        counter = self._spend.get(label)
        return int(counter.value) if counter is not None else 0

    # -- reporting -------------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """Flat numeric stats merged into ``chain_stats`` (fees_ prefix)."""
        out: Dict[str, float] = {
            "floor": self.model.floor(),
            "collected": self._collected.value,
            "charged_txs": self._charged.value,
        }
        for label in sorted(self._spend):
            out[f"spend_{label}"] = self._spend[label].value
        return out

    def economics(self) -> Dict[str, Any]:
        """The structured block for ``BenchmarkResult.economics``."""
        econ: Dict[str, Any] = {
            "dialect": self.model.dialect,
            "floor": self.model.floor(),
            "fees_collected": int(self._collected.value),
            "txs_charged": int(self._charged.value),
            "spend": {label: int(counter.value)
                      for label, counter in sorted(self._spend.items())},
        }
        if self._paid_per_gas.count:
            p50 = self._paid_per_gas.percentile(50)
            p95 = self._paid_per_gas.percentile(95)
            econ["price_p50"] = round(p50, 3) if math.isfinite(p50) else None
            econ["price_p95"] = round(p95, 3) if math.isfinite(p95) else None
        return econ
