"""Per-chain fee models: the three dialects the registered chains speak.

* ``eip1559`` — Ethereum, Quorum and Diem: a protocol-controlled *base
  fee* per gas that rises when blocks run above target and decays when
  they run below, plus a priority tip. A transaction carries a fee cap
  (``fee_per_gas``); its effective price is ``min(cap, base + tip)`` and
  anything capped below the current base fee is underpriced.
* ``auction`` — Solana: a flat minimum signature fee plus a first-price
  priority-fee auction. The floor never moves; bidding happens entirely
  in the tip.
* ``flat`` — Algorand and Avalanche (as deployed by the paper's runs): a
  fixed minimum fee and no prioritization, so an attacker cannot outbid
  honest traffic — flooding at the minimum fee is the only lever.

A :class:`FeePolicy` is the chain's static declaration (attached to
``ChainParams``); a :class:`FeeSpec` is the workload's ``fees:`` section
layering overrides on top; :func:`build_fee_model` combines them with the
chain's (scaled) per-block gas budget into a live model. All arithmetic
is integer so fee trajectories are byte-reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Optional, Tuple

from repro.common.errors import ConfigurationError, SpecError
from repro.vm.gas import eip1559_base_fee_update

DIALECTS = ("eip1559", "auction", "flat")


@dataclass(frozen=True)
class FeePolicy:
    """A chain's static fee-market declaration.

    ``base_fee`` is the launch base fee (eip1559) and is unused by the
    other dialects; ``min_fee`` is the hard per-gas floor every dialect
    respects. ``elasticity`` and ``max_change_denominator`` are the
    EIP-1559 constants (target = cap / elasticity, max step = base /
    denominator). ``headroom`` is the client-side fee-cap multiplier a
    wallet applies over the current base fee, and ``default_tip`` the
    tip it attaches.
    """

    dialect: str = "eip1559"
    base_fee: int = 10
    min_fee: int = 1
    elasticity: int = 2
    max_change_denominator: int = 8
    default_tip: int = 1
    headroom: int = 2

    def __post_init__(self) -> None:
        if self.dialect not in DIALECTS:
            raise ConfigurationError(
                f"unknown fee dialect {self.dialect!r};"
                f" expected one of {DIALECTS}")
        for name in ("base_fee", "min_fee", "elasticity",
                     "max_change_denominator", "default_tip", "headroom"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ConfigurationError(
                    f"fee policy field {name} must be an integer,"
                    f" got {value!r}")
        if self.min_fee < 1:
            raise ConfigurationError("min_fee must be >= 1")
        if self.dialect == "eip1559" and self.base_fee < self.min_fee:
            # base_fee only exists in the eip1559 dialect; the others
            # price purely off min_fee and may leave the default alone
            raise ConfigurationError(
                f"base_fee {self.base_fee} below min_fee {self.min_fee}")
        if self.elasticity < 1:
            raise ConfigurationError("elasticity must be >= 1")
        if self.max_change_denominator < 1:
            raise ConfigurationError("max_change_denominator must be >= 1")
        if self.default_tip < 0:
            raise ConfigurationError("default_tip must be >= 0")
        if self.headroom < 1:
            raise ConfigurationError("headroom must be >= 1")


#: FeeSpec keys that override the same-named FeePolicy field when set
_POLICY_OVERRIDES = ("dialect", "base_fee", "min_fee", "elasticity",
                     "max_change_denominator", "default_tip", "headroom")


@dataclass(frozen=True)
class FeeSpec:
    """The workload's ``fees:`` section.

    Turning the section on activates the chain's declared
    :class:`FeePolicy`; every optional field here overrides the
    same-named policy field. The three client-side knobs control the
    fee-bumping retry behavior of honest clients: each resubmission
    multiplies the transaction's price by ``fee_bump``, never exceeding
    ``fee_bump_cap`` times the original price, for up to
    ``retry_attempts`` total submission attempts.
    """

    enabled: bool = True
    dialect: Optional[str] = None
    base_fee: Optional[int] = None
    min_fee: Optional[int] = None
    elasticity: Optional[int] = None
    max_change_denominator: Optional[int] = None
    default_tip: Optional[int] = None
    headroom: Optional[int] = None
    fee_bump: float = 1.25
    fee_bump_cap: float = 10.0
    retry_attempts: Optional[int] = None

    def __post_init__(self) -> None:
        if self.fee_bump < 1.0:
            raise SpecError(f"fees.fee_bump must be >= 1.0, got {self.fee_bump}")
        if self.fee_bump_cap < 1.0:
            raise SpecError(
                f"fees.fee_bump_cap must be >= 1.0, got {self.fee_bump_cap}")
        if self.retry_attempts is not None and self.retry_attempts < 1:
            raise SpecError("fees.retry_attempts must be >= 1")
        if self.dialect is not None and self.dialect not in DIALECTS:
            raise SpecError(
                f"unknown fee dialect {self.dialect!r};"
                f" expected one of {DIALECTS}")

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "FeeSpec":
        if not isinstance(raw, dict):
            raise SpecError(f"'fees' must be a mapping, got {type(raw).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(raw) - known)
        if unknown:
            raise SpecError(
                f"unknown key(s) in fees section: {', '.join(unknown)}")
        return cls(**raw)

    def applied_to(self, policy: Optional[FeePolicy]) -> FeePolicy:
        """The chain policy with this spec's overrides layered on top."""
        base = policy if policy is not None else FeePolicy()
        overrides = {name: getattr(self, name) for name in _POLICY_OVERRIDES
                     if getattr(self, name) is not None}
        try:
            return replace(base, **overrides)
        except ConfigurationError as exc:
            raise SpecError(f"invalid fees section: {exc}") from exc


def _bid(amount: int, multiplier: float) -> int:
    """An attack bid: *multiplier* times *amount*, rounded up, >= 1."""
    return max(1, int(math.ceil(amount * multiplier)))


class FeeModel:
    """Common protocol for the three dialects.

    ``effective_price`` is duck-typed over anything carrying
    ``fee_per_gas``/``tip`` integer attributes (the simulator's
    :class:`~repro.chain.transaction.Transaction` does).
    """

    dialect = "?"

    def __init__(self, policy: FeePolicy, gas_target: int) -> None:
        self.policy = policy
        self.gas_target = max(1, gas_target)

    def floor(self) -> int:
        """Minimum effective per-gas price admitted right now."""
        raise NotImplementedError

    def effective_price(self, tx: Any) -> int:
        """Per-gas price *tx* would actually pay at the current floor."""
        raise NotImplementedError

    def suggest(self) -> Tuple[int, int]:
        """(fee_per_gas, tip) an honest wallet would attach right now."""
        raise NotImplementedError

    def attack_bid(self, multiplier: float) -> Tuple[int, int]:
        """(fee_per_gas, tip) outbidding the honest suggestion."""
        raise NotImplementedError

    def fee_paid(self, tx: Any, gas_used: int) -> int:
        """Fee units charged for *tx* consuming *gas_used*."""
        return self.effective_price(tx) * gas_used

    def on_block(self, gas_used: int) -> None:
        """Observe a sealed block's gas usage (moves eip1559 fees)."""


class Eip1559FeeModel(FeeModel):
    """London-style dynamic base fee plus priority tip."""

    dialect = "eip1559"

    def __init__(self, policy: FeePolicy, gas_target: int) -> None:
        super().__init__(policy, gas_target)
        self.base_fee = policy.base_fee

    def floor(self) -> int:
        return self.base_fee

    def effective_price(self, tx: Any) -> int:
        return min(tx.fee_per_gas, self.base_fee + tx.tip)

    def suggest(self) -> Tuple[int, int]:
        return (self.base_fee * self.policy.headroom, self.policy.default_tip)

    def attack_bid(self, multiplier: float) -> Tuple[int, int]:
        fee, tip = self.suggest()
        return (_bid(fee, multiplier), _bid(tip + 1, multiplier))

    def on_block(self, gas_used: int) -> None:
        self.base_fee = eip1559_base_fee_update(
            self.base_fee, gas_used, self.gas_target,
            denominator=self.policy.max_change_denominator,
            floor=self.policy.min_fee)


class AuctionFeeModel(FeeModel):
    """Flat signature fee plus a first-price priority-fee auction."""

    dialect = "auction"

    def floor(self) -> int:
        return self.policy.min_fee

    def effective_price(self, tx: Any) -> int:
        return self.policy.min_fee + tx.tip

    def suggest(self) -> Tuple[int, int]:
        return (self.policy.min_fee, self.policy.default_tip)

    def attack_bid(self, multiplier: float) -> Tuple[int, int]:
        fee, tip = self.suggest()
        return (fee, _bid(tip + 1, multiplier))


class FlatFeeModel(FeeModel):
    """Fixed minimum fee, no prioritization: bids cannot jump the queue."""

    dialect = "flat"

    def floor(self) -> int:
        return self.policy.min_fee

    def effective_price(self, tx: Any) -> int:
        return self.policy.min_fee

    def suggest(self) -> Tuple[int, int]:
        return (self.policy.min_fee, 0)

    def attack_bid(self, multiplier: float) -> Tuple[int, int]:
        # paying more buys nothing on a flat-fee chain; the only attack
        # is flooding at the minimum fee
        return (self.policy.min_fee, 0)


_MODELS = {
    "eip1559": Eip1559FeeModel,
    "auction": AuctionFeeModel,
    "flat": FlatFeeModel,
}


def build_fee_model(policy: FeePolicy, gas_target: int) -> FeeModel:
    """Instantiate the model *policy* names, targeting *gas_target*."""
    return _MODELS[policy.dialect](policy, gas_target)
