"""Simulated wide-area network.

The topology is the 10-region AWS deployment the paper measures with iperf3
(Table 3, right side): the round-trip time between each pair of regions and
the available bandwidth. Machines in the same region communicate over the
datacenter fabric (1 ms RTT, 10 Gbps — the c5 instance network in §5.1).

Message delivery time = propagation (RTT/2) + serialization (size/bandwidth)
+ lognormal jitter. Each directed region pair has a bandwidth pipe shared by
its messages, so saturating a link queues traffic, which is how overload
experiments (Fig. 4) develop growing latency.

Aggregate admission accounting: population runs (docs/SCALE.md) submit
their aggregate-lane transactions through the same batched
``submit_batch`` entry point the classic clients use, but tagged
``lane="aggregate"`` — submission is collocated with the node the
emitting Secondary views, so the batch pays the same regional admission
and gossip costs a per-client submission would. Per-lane arrival counts
surface as ``arrivals_<lane>`` keys in the chain stats (a run without
an aggregate lane emits no such key, keeping classic result JSON
byte-identical).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.common.errors import NetworkError
from repro.common.rng import BlockSampler, RngFactory
from repro.common.units import gbps, mbps, ms
from repro.obs.metrics import MetricsNamespace, MetricsRegistry
from repro.sim.engine import Engine

if TYPE_CHECKING:
    from repro.sim.faults import FaultInjector

REGIONS: Tuple[str, ...] = (
    "cape-town",
    "tokyo",
    "mumbai",
    "sydney",
    "stockholm",
    "milan",
    "bahrain",
    "sao-paulo",
    "ohio",
    "oregon",
)

# Round-trip time in milliseconds between regions (Table 3, bottom-left, red).
# Key order matches REGIONS; matrix[i][j] for i > j holds the measured value
# and the matrix is symmetrised below.
_RTT_MS_LOWER: Dict[Tuple[str, str], float] = {
    ("tokyo", "cape-town"): 354.0,
    ("mumbai", "cape-town"): 272.0,
    ("mumbai", "tokyo"): 127.2,
    ("sydney", "cape-town"): 410.4,
    ("sydney", "tokyo"): 102.3,
    ("sydney", "mumbai"): 146.8,
    ("stockholm", "cape-town"): 179.7,
    ("stockholm", "tokyo"): 241.2,
    ("stockholm", "mumbai"): 138.9,
    ("stockholm", "sydney"): 295.7,
    ("milan", "cape-town"): 162.4,
    ("milan", "tokyo"): 214.8,
    ("milan", "mumbai"): 110.8,
    ("milan", "sydney"): 238.8,
    ("milan", "stockholm"): 30.2,
    ("bahrain", "cape-town"): 287.0,
    ("bahrain", "tokyo"): 164.3,
    ("bahrain", "mumbai"): 36.4,
    ("bahrain", "sydney"): 179.2,
    ("bahrain", "stockholm"): 137.9,
    ("bahrain", "milan"): 108.2,
    ("sao-paulo", "cape-town"): 340.5,
    ("sao-paulo", "tokyo"): 256.6,
    ("sao-paulo", "mumbai"): 305.6,
    ("sao-paulo", "sydney"): 310.5,
    ("sao-paulo", "stockholm"): 214.9,
    ("sao-paulo", "milan"): 211.9,
    ("sao-paulo", "bahrain"): 320.0,
    ("ohio", "cape-town"): 237.0,
    ("ohio", "tokyo"): 131.8,
    ("ohio", "mumbai"): 197.3,
    ("ohio", "sydney"): 187.9,
    ("ohio", "stockholm"): 120.0,
    ("ohio", "milan"): 109.2,
    ("ohio", "bahrain"): 212.7,
    ("ohio", "sao-paulo"): 121.9,
    ("oregon", "cape-town"): 276.6,
    ("oregon", "tokyo"): 96.7,
    ("oregon", "mumbai"): 215.8,
    ("oregon", "sydney"): 139.7,
    ("oregon", "stockholm"): 162.0,
    ("oregon", "milan"): 157.8,
    ("oregon", "bahrain"): 251.4,
    ("oregon", "sao-paulo"): 178.3,
    ("oregon", "ohio"): 55.2,
}

# Bandwidth in Mbps between regions (Table 3, top-right, green).
_BW_MBPS_UPPER: Dict[Tuple[str, str], float] = {
    ("cape-town", "tokyo"): 26.1,
    ("cape-town", "mumbai"): 36.0,
    ("cape-town", "sydney"): 20.8,
    ("cape-town", "stockholm"): 59.8,
    ("cape-town", "milan"): 67.1,
    ("cape-town", "bahrain"): 33.6,
    ("cape-town", "sao-paulo"): 27.1,
    ("cape-town", "ohio"): 43.6,
    ("cape-town", "oregon"): 35.9,
    ("tokyo", "mumbai"): 89.3,
    ("tokyo", "sydney"): 112.1,
    ("tokyo", "stockholm"): 42.1,
    ("tokyo", "milan"): 48.1,
    ("tokyo", "bahrain"): 66.8,
    ("tokyo", "sao-paulo"): 39.3,
    ("tokyo", "ohio"): 85.8,
    ("tokyo", "oregon"): 108.8,
    ("mumbai", "sydney"): 75.9,
    ("mumbai", "stockholm"): 81.3,
    ("mumbai", "milan"): 103.2,
    ("mumbai", "bahrain"): 336.3,
    ("mumbai", "sao-paulo"): 30.8,
    ("mumbai", "ohio"): 53.3,
    ("mumbai", "oregon"): 48.5,
    ("sydney", "stockholm"): 32.0,
    ("sydney", "milan"): 42.4,
    ("sydney", "bahrain"): 59.6,
    ("sydney", "sao-paulo"): 31.2,
    ("sydney", "ohio"): 57.0,
    ("sydney", "oregon"): 80.8,
    ("stockholm", "milan"): 404.6,
    ("stockholm", "bahrain"): 81.8,
    ("stockholm", "sao-paulo"): 48.2,
    ("stockholm", "ohio"): 94.7,
    ("stockholm", "oregon"): 67.6,
    ("milan", "bahrain"): 105.7,
    ("milan", "sao-paulo"): 49.4,
    ("milan", "ohio"): 104.9,
    ("milan", "oregon"): 70.1,
    ("bahrain", "sao-paulo"): 29.9,
    ("bahrain", "ohio"): 49.4,
    ("bahrain", "oregon"): 38.7,
    ("sao-paulo", "ohio"): 92.3,
    ("sao-paulo", "oregon"): 60.5,
    ("ohio", "oregon"): 105.0,
}

INTRA_REGION_RTT = ms(1.0)
INTRA_REGION_BANDWIDTH = gbps(10.0)


_REGION_INDEX: Dict[str, int] = {region: i for i, region in enumerate(REGIONS)}


def _region_index() -> Dict[str, int]:
    return _REGION_INDEX


def _build_rtt_matrix() -> np.ndarray:
    matrix = np.full((len(REGIONS), len(REGIONS)), INTRA_REGION_RTT)
    for (a, b), value in _RTT_MS_LOWER.items():
        matrix[_REGION_INDEX[a], _REGION_INDEX[b]] = ms(value)
        matrix[_REGION_INDEX[b], _REGION_INDEX[a]] = ms(value)
    return matrix


def _build_bandwidth_matrix() -> np.ndarray:
    matrix = np.full((len(REGIONS), len(REGIONS)), INTRA_REGION_BANDWIDTH)
    for (a, b), value in _BW_MBPS_UPPER.items():
        matrix[_REGION_INDEX[a], _REGION_INDEX[b]] = mbps(value)
        matrix[_REGION_INDEX[b], _REGION_INDEX[a]] = mbps(value)
    return matrix


# The topology is static, so the matrices are built once at import time.
# Public accessors hand out copies (callers are free to mutate for
# what-if experiments); hot paths index the exact-Python-float views
# below, which avoid a numpy-scalar box-and-convert per message.
_RTT_MATRIX = _build_rtt_matrix()
_BW_MATRIX = _build_bandwidth_matrix()
_HALF_RTT: List[List[float]] = (_RTT_MATRIX / 2.0).tolist()
_BANDWIDTH: List[List[float]] = _BW_MATRIX.tolist()


def rtt_matrix() -> np.ndarray:
    """Symmetric matrix of RTTs in seconds, intra-region on the diagonal."""
    return _RTT_MATRIX.copy()


def bandwidth_matrix() -> np.ndarray:
    """Symmetric matrix of bandwidths in bytes/s, intra-region diagonal."""
    return _BW_MATRIX.copy()


def rtt_between(a: str, b: str) -> float:
    """RTT in seconds between two regions (1 ms within a region)."""
    index = _REGION_INDEX
    if a not in index or b not in index:
        raise NetworkError(f"unknown region in pair ({a!r}, {b!r})")
    return 2.0 * _HALF_RTT[index[a]][index[b]]


def bandwidth_between(a: str, b: str) -> float:
    """Bandwidth in bytes/s between two regions."""
    index = _REGION_INDEX
    if a not in index or b not in index:
        raise NetworkError(f"unknown region in pair ({a!r}, {b!r})")
    return _BANDWIDTH[index[a]][index[b]]


@dataclass(frozen=True)
class Endpoint:
    """A network endpoint: a named machine living in a region."""

    name: str
    region: str

    def __post_init__(self) -> None:
        if self.region not in REGIONS:
            raise NetworkError(f"unknown region {self.region!r}")


class _LinkPipe:
    """Serialization queue for a directed region pair.

    Models the shared bandwidth of the inter-region path: each message
    occupies the pipe for size/bandwidth seconds, and messages queue behind
    each other FIFO. ``free_at`` tracks when the pipe next becomes idle.
    """

    __slots__ = ("bandwidth", "free_at")

    def __init__(self, bandwidth: float) -> None:
        self.bandwidth = bandwidth
        self.free_at = 0.0

    def reserve(self, now: float, size: int) -> Tuple[float, float]:
        """Reserve the pipe for a message; return (start, transfer_time)."""
        start = max(now, self.free_at)
        transfer = size / self.bandwidth
        self.free_at = start + transfer
        return start, transfer


class Network:
    """Point-to-point message delivery over the Table 3 topology.

    Delivery time for a message of ``size`` bytes from region A to region B:

        queueing-on-pipe + size/bandwidth(A,B) + RTT(A,B)/2 + jitter

    Jitter is lognormal with a 5 % coefficient of variation, seeded from the
    experiment seed so runs are reproducible.
    """

    def __init__(self, engine: Engine, rng_factory: Optional[RngFactory] = None,
                 jitter_cv: float = 0.05, model_bandwidth: bool = True,
                 metrics: Optional[MetricsNamespace] = None) -> None:
        self.engine = engine
        factory = rng_factory or RngFactory(0)
        self._rng = factory.stream("network", "jitter")
        self._fault_rng = factory.stream("network", "fault-drops")
        self._jitter_cv = jitter_cv
        # block-drawn samplers over the two named streams (byte-identical
        # to scalar draws — see BlockSampler); each stream is owned by
        # exactly one sampler, so draw order matches the scalar path
        if jitter_cv > 0:
            self._jitter_sampler = BlockSampler(
                self._rng, "lognormal", -jitter_cv * jitter_cv / 2, jitter_cv)
        else:
            self._jitter_sampler = None
        self._fault_sampler = BlockSampler(self._fault_rng, "random")
        self._model_bandwidth = model_bandwidth
        self._index = _region_index()
        self._rtt = rtt_matrix()
        self._bw = bandwidth_matrix()
        # hot-path views: exact Python floats, no numpy scalar boxing
        self._half_rtt = _HALF_RTT
        self._bandwidth = _BANDWIDTH
        self._pipes: Dict[Tuple[int, int], _LinkPipe] = {}
        self.injector: Optional["FaultInjector"] = None
        self._metrics = (metrics if metrics is not None
                         else MetricsRegistry().namespace("network"))
        self._messages_sent = self._metrics.counter("messages_sent")
        self._bytes_sent = self._metrics.counter("bytes_sent")
        # unreachable: crash/partition/outage
        self._messages_blocked = self._metrics.counter("messages_blocked")
        # lost to LinkDegrade drop rates
        self._messages_fault_dropped = self._metrics.counter(
            "messages_fault_dropped")

    # -- registry views ---------------------------------------------------------

    @property
    def messages_sent(self) -> int:
        return self._messages_sent.value

    @property
    def bytes_sent(self) -> int:
        return self._bytes_sent.value

    @property
    def messages_blocked(self) -> int:
        return self._messages_blocked.value

    @property
    def messages_fault_dropped(self) -> int:
        return self._messages_fault_dropped.value

    def attach_faults(self, injector: "FaultInjector") -> None:
        """Consult *injector* on every send (reachability + degradation)."""
        self.injector = injector

    # -- queries -------------------------------------------------------------

    def one_way_delay(self, src_region: str, dst_region: str) -> float:
        """Base propagation delay (RTT/2) between two regions, no jitter."""
        return self._half_rtt[self._index[src_region]][self._index[dst_region]]

    def _pipe(self, i: int, j: int) -> _LinkPipe:
        pipe = self._pipes.get((i, j))
        if pipe is None:
            pipe = _LinkPipe(self._bandwidth[i][j])
            self._pipes[(i, j)] = pipe
        return pipe

    def _jitter(self, base: float) -> float:
        if self._jitter_sampler is None:
            return 0.0
        # lognormal with mean ~1, scaled to a fraction of the base delay
        factor = self._jitter_sampler.next()
        return base * (factor - 1.0) if factor > 1.0 else 0.0

    # -- sending ---------------------------------------------------------------

    def _prepare(self, src: Endpoint, dst: Endpoint,
                 size: int) -> Optional[float]:
        """Fault checks, pipe reservation, jitter — everything but the
        calendar insertion and the sent-message counters (callers
        increment those, so :meth:`broadcast` can batch them). Returns
        the delivery delay, or None when the message is blocked or
        fault-dropped. RNG streams are consumed in exactly the order
        messages are prepared, which is what keeps :meth:`broadcast`'s
        batched scheduling byte-identical to a loop of :meth:`send`
        calls."""
        if size < 0:
            raise NetworkError(f"negative message size {size}")
        fault_latency = 0.0
        if self.injector is not None:
            if not self.injector.reachable(src.name, dst.name,
                                           src.region, dst.region):
                self._messages_blocked.inc()
                return None
            extra, drop = self._link_faults(src, dst)
            if drop > 0 and self._fault_sampler.next() < drop:
                self._messages_fault_dropped.inc()
                return None
            fault_latency = extra
        index = self._index
        i, j = index[src.region], index[dst.region]
        now = self.engine.now
        propagation = self._half_rtt[i][j]
        if self._model_bandwidth:
            # inlined _LinkPipe.reserve with an idle-pipe short circuit:
            # an uncontended link (the common case for client traffic)
            # skips the queueing arithmetic entirely
            pipe = self._pipes.get((i, j))
            if pipe is None:
                pipe = _LinkPipe(self._bandwidth[i][j])
                self._pipes[(i, j)] = pipe
            transfer = size / pipe.bandwidth
            free_at = pipe.free_at
            if free_at <= now:
                pipe.free_at = now + transfer
                queueing = 0.0
            else:
                pipe.free_at = free_at + transfer
                queueing = free_at - now
        else:
            transfer = size / self._bandwidth[i][j]
            queueing = 0.0
        return (queueing + transfer + propagation
                + self._jitter(propagation) + fault_latency)

    def send(self, src: Endpoint, dst: Endpoint, size: int,
             on_delivery: Callable[[], None], label: str = "") -> float:
        """Schedule delivery of a message; return the delivery time.

        With a fault injector attached, messages over unreachable links
        (crashed endpoint, partition, region outage) are silently blocked
        and ``inf`` is returned; degraded links add latency and may drop
        the message with their configured probability.
        """
        delay = self._prepare(src, dst, size)
        if delay is None:
            return float("inf")
        self._messages_sent.inc()
        self._bytes_sent.inc(size)
        self.engine.schedule_after(delay, on_delivery,
                                   label=label or "network-delivery")
        return self.engine.now + delay

    def _link_faults(self, src: Endpoint, dst: Endpoint) -> Tuple[float, float]:
        """Combined degradation for a link, by endpoint name and by region."""
        extra, drop = self.injector.link_state(src.name, dst.name)
        if src.region != dst.region:
            region_extra, region_drop = self.injector.link_state(
                src.region, dst.region)
            extra += region_extra
            drop = 1.0 - (1.0 - drop) * (1.0 - region_drop)
        return extra, drop

    def broadcast(self, src: Endpoint, dsts: Iterable[Endpoint], size: int,
                  on_delivery: Callable[[Endpoint], None],
                  label: str = "") -> List[float]:
        """Send the same message to many endpoints; return delivery times.

        Equivalent to calling :meth:`send` per destination in order, but
        the calendar insertions go through :meth:`Engine.schedule_batch`
        so a wide fan-out costs one heap rebuild instead of one sift per
        destination, and the sent-message counters are incremented once
        for the whole fan-out. Preparation (and therefore RNG
        consumption and pipe reservation) still happens strictly in
        destination order, and batch sequence numbers are assigned in
        that same order, so results are identical to the one-by-one
        path.
        """
        label = label or "network-delivery"
        now = self.engine.now
        times: List[float] = []
        entries: List[Tuple[float, Callable[[], None], str]] = []
        for dst in dsts:
            delay = self._prepare(src, dst, size)
            if delay is None:
                times.append(float("inf"))
                continue
            entries.append((now + delay, (lambda d=dst: on_delivery(d)),
                            label))
            times.append(now + delay)
        sent = len(entries)
        if sent:
            self._messages_sent.inc(sent)
            self._bytes_sent.inc(size * sent)
        self.engine.schedule_batch(entries)
        return times


def spread_endpoints(count: int, regions: Iterable[str] = REGIONS,
                     prefix: str = "node") -> List[Endpoint]:
    """Spread *count* endpoints equally among *regions* (paper §5.1)."""
    region_list = list(regions)
    if not region_list:
        raise NetworkError("at least one region required")
    return [Endpoint(f"{prefix}-{i}", region_list[i % len(region_list)])
            for i in range(count)]
