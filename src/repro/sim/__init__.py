"""Discrete-event simulation substrate: engine, network and machines."""

from repro.sim.engine import Engine, EventHandle, PeriodicTask, run_simulation
from repro.sim.faults import (
    FaultInjector,
    FaultSchedule,
    Heal,
    LinkDegrade,
    NodeCrash,
    NodeRecover,
    Partition,
    RegionOutage,
)
from repro.sim.machine import (
    C5_2XLARGE,
    C5_9XLARGE,
    C5_XLARGE,
    INSTANCE_TYPES,
    InstanceType,
    Machine,
)
from repro.sim.network import (
    REGIONS,
    Endpoint,
    Network,
    bandwidth_between,
    bandwidth_matrix,
    rtt_between,
    rtt_matrix,
    spread_endpoints,
)

__all__ = [
    "C5_2XLARGE",
    "C5_9XLARGE",
    "C5_XLARGE",
    "Endpoint",
    "Engine",
    "EventHandle",
    "FaultInjector",
    "FaultSchedule",
    "Heal",
    "INSTANCE_TYPES",
    "LinkDegrade",
    "NodeCrash",
    "NodeRecover",
    "Partition",
    "RegionOutage",
    "InstanceType",
    "Machine",
    "Network",
    "PeriodicTask",
    "REGIONS",
    "bandwidth_between",
    "bandwidth_matrix",
    "rtt_between",
    "rtt_matrix",
    "run_simulation",
    "spread_endpoints",
]
