"""Simulated machines (AWS c5 instance types from §5.1).

A :class:`Machine` models a virtual machine with a number of vCPUs and an
amount of memory. CPU work is modeled as a processor-sharing queue: callers
submit jobs measured in CPU-seconds and the machine tells them when the work
completes given its parallelism. This is what makes the datacenter
configuration (36 vCPUs) execute signature checks and contract code faster
than the testnet configuration (4 vCPUs), reproducing the §6.2 effects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.common.errors import ConfigurationError, SimulationError
from repro.common.units import GIB
from repro.sim.engine import Engine
from repro.sim.network import Endpoint


@dataclass(frozen=True)
class InstanceType:
    """An AWS instance type: name, vCPU count and memory in bytes.

    ``speed_factor`` captures per-core speed relative to the c5 baseline
    (all c5 sizes share the same cores, so it is 1.0 for all of them, but
    the knob exists for what-if experiments).
    """

    name: str
    vcpus: int
    memory: int
    speed_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.vcpus <= 0:
            raise ConfigurationError(f"vcpus must be positive: {self}")
        if self.memory <= 0:
            raise ConfigurationError(f"memory must be positive: {self}")


C5_XLARGE = InstanceType("c5.xlarge", vcpus=4, memory=8 * GIB)
C5_2XLARGE = InstanceType("c5.2xlarge", vcpus=8, memory=16 * GIB)
C5_9XLARGE = InstanceType("c5.9xlarge", vcpus=36, memory=72 * GIB)

INSTANCE_TYPES: Dict[str, InstanceType] = {
    t.name: t for t in (C5_XLARGE, C5_2XLARGE, C5_9XLARGE)
}


class Machine:
    """A machine running in a region, executing CPU jobs.

    CPU execution uses a simple M/G/k-style approximation: the machine keeps
    a per-core "busy until" horizon; each job is assigned the earliest-free
    core. This preserves ordering effects (a 4-vCPU node saturates at lower
    request rates than a 36-vCPU node) while staying O(1) per job.
    """

    def __init__(self, engine: Engine, endpoint: Endpoint,
                 instance_type: InstanceType) -> None:
        self.engine = engine
        self.endpoint = endpoint
        self.instance_type = instance_type
        self._core_free_at = [0.0] * instance_type.vcpus
        self._memory_used = 0
        self.cpu_seconds_total = 0.0
        self.jobs_executed = 0

    @property
    def name(self) -> str:
        return self.endpoint.name

    @property
    def region(self) -> str:
        return self.endpoint.region

    # -- memory ---------------------------------------------------------------

    @property
    def memory_used(self) -> int:
        return self._memory_used

    @property
    def memory_available(self) -> int:
        return self.instance_type.memory - self._memory_used

    def allocate(self, size: int) -> bool:
        """Reserve memory; return False when it does not fit."""
        if size < 0:
            raise SimulationError(f"negative allocation {size}")
        if self._memory_used + size > self.instance_type.memory:
            return False
        self._memory_used += size
        return True

    def release(self, size: int) -> None:
        self._memory_used = max(0, self._memory_used - size)

    # -- CPU ----------------------------------------------------------------------

    def execute(self, cpu_seconds: float,
                on_done: Optional[Callable[[], None]] = None,
                label: str = "") -> float:
        """Run a job costing *cpu_seconds*; return its completion time.

        The job runs on the earliest-available core; the completion callback
        (if any) fires at the completion time.
        """
        if cpu_seconds < 0:
            raise SimulationError(f"negative cpu time {cpu_seconds}")
        now = self.engine.now
        scaled = cpu_seconds / self.instance_type.speed_factor
        core = min(range(len(self._core_free_at)),
                   key=self._core_free_at.__getitem__)
        start = max(now, self._core_free_at[core])
        finish = start + scaled
        self._core_free_at[core] = finish
        self.cpu_seconds_total += scaled
        self.jobs_executed += 1
        if on_done is not None:
            self.engine.schedule_at(finish, on_done, label=label)
        return finish

    def utilization(self, window: float) -> float:
        """Fraction of CPU capacity used over the last *window* seconds.

        A coarse diagnostic: busy core-time remaining relative to now,
        normalised by capacity.
        """
        if window <= 0:
            raise SimulationError("window must be positive")
        now = self.engine.now
        busy = sum(max(0.0, t - now) for t in self._core_free_at)
        return min(1.0, busy / (window * self.instance_type.vcpus))

    def backlog(self) -> float:
        """Seconds until all currently queued CPU work drains."""
        return max(0.0, max(self._core_free_at) - self.engine.now)
