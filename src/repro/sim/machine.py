"""Simulated machines (AWS c5 instance types from §5.1).

A :class:`Machine` models a virtual machine with a number of vCPUs and an
amount of memory. CPU work is modeled as a processor-sharing queue: callers
submit jobs measured in CPU-seconds and the machine tells them when the work
completes given its parallelism. This is what makes the datacenter
configuration (36 vCPUs) execute signature checks and contract code faster
than the testnet configuration (4 vCPUs), reproducing the §6.2 effects.

Memory is tracked by a per-machine :class:`MemoryLedger` with named
categories (mempool bytes, undecayed consensus backlog, ledger/state
growth). The ledger reports memory *pressure* against the instance type's
RAM with high/low-water hysteresis — the signal the blockchain runtimes
turn into the §6 overload responses (Solana validators OOM-crashing under
the NASDAQ peak, Diem ceasing to commit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.common.errors import ConfigurationError, SimulationError
from repro.common.units import GIB
from repro.obs.metrics import MetricsNamespace, MetricsRegistry
from repro.sim.engine import Engine
from repro.sim.network import Endpoint


@dataclass(frozen=True)
class InstanceType:
    """An AWS instance type: name, vCPU count and memory in bytes.

    ``speed_factor`` captures per-core speed relative to the c5 baseline
    (all c5 sizes share the same cores, so it is 1.0 for all of them, but
    the knob exists for what-if experiments).
    """

    name: str
    vcpus: int
    memory: int
    speed_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.vcpus <= 0:
            raise ConfigurationError(f"vcpus must be positive: {self}")
        if self.memory <= 0:
            raise ConfigurationError(f"memory must be positive: {self}")


C5_XLARGE = InstanceType("c5.xlarge", vcpus=4, memory=8 * GIB)
C5_2XLARGE = InstanceType("c5.2xlarge", vcpus=8, memory=16 * GIB)
C5_9XLARGE = InstanceType("c5.9xlarge", vcpus=36, memory=72 * GIB)

INSTANCE_TYPES: Dict[str, InstanceType] = {
    t.name: t for t in (C5_XLARGE, C5_2XLARGE, C5_9XLARGE)
}


class MemoryLedger:
    """Categorised memory accounting for one machine, with hysteresis.

    Consumers charge bytes against named categories (``mempool``,
    ``consensus``, ``state``, ...) either incrementally (:meth:`charge` /
    :meth:`release`) or absolutely (:meth:`set_level`, what the blockchain
    runtimes do each production round). :attr:`pressure` is total usage
    over capacity; :attr:`state` is ``"ok"`` until pressure crosses
    ``high_water`` and returns to ``"ok"`` only below ``low_water`` — the
    hysteresis keeps overload responses from flapping at the threshold.
    """

    def __init__(self, capacity: int, high_water: float = 0.9,
                 low_water: float = 0.75) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive: {capacity}")
        if not 0 < low_water <= high_water <= 1.0:
            raise ConfigurationError(
                f"need 0 < low_water <= high_water <= 1,"
                f" got {low_water}/{high_water}")
        self.capacity = capacity
        self.high_water = high_water
        self.low_water = low_water
        self._categories: Dict[str, int] = {}
        self._high = False
        self.peak_pressure = 0.0
        self.high_water_crossings = 0

    def charge(self, category: str, nbytes: int) -> None:
        """Add *nbytes* to *category* (negative amounts are an error)."""
        if nbytes < 0:
            raise SimulationError(f"negative charge {nbytes} ({category})")
        self.set_level(category, self._categories.get(category, 0) + nbytes)

    def release(self, category: str, nbytes: int) -> None:
        """Subtract *nbytes* from *category*, clamping at zero."""
        if nbytes < 0:
            raise SimulationError(f"negative release {nbytes} ({category})")
        current = self._categories.get(category, 0)
        self.set_level(category, max(0, current - nbytes))

    def set_level(self, category: str, nbytes: int) -> None:
        """Set *category*'s resident bytes to an absolute level."""
        if nbytes < 0:
            raise SimulationError(f"negative level {nbytes} ({category})")
        self._categories[category] = nbytes
        self._update_state()

    def level(self, category: str) -> int:
        return self._categories.get(category, 0)

    @property
    def total(self) -> int:
        return sum(self._categories.values())

    @property
    def pressure(self) -> float:
        """Resident bytes over capacity (can exceed 1.0: overcommit)."""
        return self.total / self.capacity

    @property
    def state(self) -> str:
        """``"high"`` once past the high-water mark, until below low water."""
        return "high" if self._high else "ok"

    def _update_state(self) -> None:
        pressure = self.pressure
        self.peak_pressure = max(self.peak_pressure, pressure)
        if not self._high and pressure >= self.high_water:
            self._high = True
            self.high_water_crossings += 1
        elif self._high and pressure < self.low_water:
            self._high = False

    def breakdown(self) -> Dict[str, int]:
        """Resident bytes per category (non-zero categories only)."""
        return {name: size for name, size in sorted(self._categories.items())
                if size > 0}


class Machine:
    """A machine running in a region, executing CPU jobs.

    CPU execution uses a simple M/G/k-style approximation: the machine keeps
    a per-core "busy until" horizon; each job is assigned the earliest-free
    core. This preserves ordering effects (a 4-vCPU node saturates at lower
    request rates than a 36-vCPU node) while staying O(1) per job.
    """

    def __init__(self, engine: Engine, endpoint: Endpoint,
                 instance_type: InstanceType,
                 memory_margin: float = 1.0,
                 metrics: Optional[MetricsNamespace] = None) -> None:
        """*memory_margin* scales the usable RAM (per-node OOM jitter)."""
        if memory_margin <= 0:
            raise ConfigurationError(
                f"memory_margin must be positive: {memory_margin}")
        self.engine = engine
        self.endpoint = endpoint
        self.instance_type = instance_type
        self._core_free_at = [0.0] * instance_type.vcpus
        self.memory = MemoryLedger(
            max(1, int(instance_type.memory * memory_margin)))
        # pass a unique per-machine namespace (e.g. machine.<name>) when
        # several machines share one experiment registry — counters are
        # get-or-create by name, so a shared namespace would alias them
        self._metrics = (metrics if metrics is not None
                         else MetricsRegistry().namespace("machine"))
        self._cpu_seconds = self._metrics.counter("cpu_seconds")
        self._jobs = self._metrics.counter("jobs_executed")
        self._metrics.gauge("memory_pressure",
                            supplier=lambda: self.memory.pressure)

    # -- registry views ---------------------------------------------------------

    @property
    def cpu_seconds_total(self) -> float:
        return self._cpu_seconds.value

    @property
    def jobs_executed(self) -> int:
        return self._jobs.value

    @property
    def name(self) -> str:
        return self.endpoint.name

    @property
    def region(self) -> str:
        return self.endpoint.region

    # -- memory ---------------------------------------------------------------

    @property
    def memory_used(self) -> int:
        return self.memory.total

    @property
    def memory_available(self) -> int:
        return self.memory.capacity - self.memory.total

    def allocate(self, size: int) -> bool:
        """Reserve general-purpose memory; return False when it does not fit."""
        if size < 0:
            raise SimulationError(f"negative allocation {size}")
        if self.memory.total + size > self.memory.capacity:
            return False
        self.memory.charge("general", size)
        return True

    def release(self, size: int) -> None:
        if size < 0:
            raise SimulationError(f"negative release {size}")
        self.memory.release("general", size)

    # -- CPU ----------------------------------------------------------------------

    def execute(self, cpu_seconds: float,
                on_done: Optional[Callable[[], None]] = None,
                label: str = "") -> float:
        """Run a job costing *cpu_seconds*; return its completion time.

        The job runs on the earliest-available core; the completion callback
        (if any) fires at the completion time.
        """
        if cpu_seconds < 0:
            raise SimulationError(f"negative cpu time {cpu_seconds}")
        now = self.engine.now
        scaled = cpu_seconds / self.instance_type.speed_factor
        core = min(range(len(self._core_free_at)),
                   key=self._core_free_at.__getitem__)
        start = max(now, self._core_free_at[core])
        finish = start + scaled
        self._core_free_at[core] = finish
        self._cpu_seconds.inc(scaled)
        self._jobs.inc()
        if on_done is not None:
            self.engine.schedule_at(finish, on_done,
                                    label=label or f"{self.name}-cpu-done")
        return finish

    def utilization(self, window: float) -> float:
        """Fraction of CPU capacity used over the last *window* seconds.

        A coarse diagnostic: busy core-time remaining relative to now,
        normalised by capacity.
        """
        if window <= 0:
            raise SimulationError("window must be positive")
        now = self.engine.now
        busy = sum(max(0.0, t - now) for t in self._core_free_at)
        return min(1.0, busy / (window * self.instance_type.vcpus))

    def backlog(self) -> float:
        """Seconds until all currently queued CPU work drains."""
        return max(0.0, max(self._core_free_at) - self.engine.now)
