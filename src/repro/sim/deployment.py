"""Deployment configurations (Table 3, left side).

Five configurations, from the idealised datacenter to the 200-machine
geo-distributed consortium. Machines are "spread equally among different
geo-distributed regions in five continents" (§5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.common.errors import ConfigurationError
from repro.sim.machine import C5_2XLARGE, C5_9XLARGE, C5_XLARGE, InstanceType
from repro.sim.network import REGIONS, Endpoint, spread_endpoints


@dataclass(frozen=True)
class DeploymentConfig:
    """Where and on what hardware the blockchain nodes run."""

    name: str
    node_count: int
    instance_type: InstanceType
    regions: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.node_count <= 0:
            raise ConfigurationError("node_count must be positive")
        if not self.regions:
            raise ConfigurationError("at least one region required")
        for region in self.regions:
            if region not in REGIONS:
                raise ConfigurationError(f"unknown region {region!r}")

    def endpoints(self, prefix: str = "node") -> List[Endpoint]:
        """Node endpoints spread equally across the regions."""
        return spread_endpoints(self.node_count, self.regions, prefix)

    def node_regions(self) -> List[str]:
        return [e.region for e in self.endpoints()]


DATACENTER = DeploymentConfig("datacenter", 10, C5_9XLARGE, ("ohio",))
TESTNET = DeploymentConfig("testnet", 10, C5_XLARGE, ("ohio",))
DEVNET = DeploymentConfig("devnet", 10, C5_XLARGE, REGIONS)
COMMUNITY = DeploymentConfig("community", 200, C5_XLARGE, REGIONS)
CONSORTIUM = DeploymentConfig("consortium", 200, C5_2XLARGE, REGIONS)

CONFIGURATIONS: Dict[str, DeploymentConfig] = {
    c.name: c for c in (DATACENTER, TESTNET, DEVNET, COMMUNITY, CONSORTIUM)
}


def get_configuration(name: str) -> DeploymentConfig:
    try:
        return CONFIGURATIONS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown deployment configuration {name!r};"
            f" available: {sorted(CONFIGURATIONS)}") from None
