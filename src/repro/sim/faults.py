"""Declarative fault injection driven by the discrete-event clock.

The paper's headline robustness results (Fig. 4's overload collapse, §6.5's
availability trade-offs) are about behaviour *under adverse conditions*. This
module makes those conditions first-class benchmark inputs, in the spirit of
BLOCKBENCH's fault-injection dimension: a :class:`FaultSchedule` is a list of
timed events — node crashes and recoveries, network partitions and heals,
whole-region outages, per-link degradation — and a :class:`FaultInjector`
applies them at their scheduled virtual times.

The injector is deliberately agnostic about what a "node" is: consensus
harnesses key nodes by replica index, blockchain runtimes by endpoint index,
and the network layer by endpoint name or region. All queries accept any
hashable key, so one injector can serve every layer of one experiment.

Link degradation is undirected: degrading (a, b) also degrades (b, a), and
re-degrading a link with zero extra latency and zero drop rate restores it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.common.errors import SimulationError, SpecError
from repro.sim.engine import Engine

NodeKey = Hashable

# -- fault events ------------------------------------------------------------


@dataclass(frozen=True)
class NodeCrash:
    """Fail-stop a node at *time*: it neither sends nor receives."""

    time: float
    node: NodeKey


@dataclass(frozen=True)
class NodeRecover:
    """A crashed node rejoins at *time* and catches up from its peers."""

    time: float
    node: NodeKey


@dataclass(frozen=True)
class Partition:
    """Split the network into *groups* at *time*.

    Nodes in different groups cannot exchange messages. Nodes not named in
    any group form one implicit extra group ("the rest").
    """

    time: float
    groups: Tuple[Tuple[NodeKey, ...], ...]

    def __post_init__(self) -> None:
        if len(self.groups) < 2:
            raise SimulationError("a partition needs at least two groups")
        seen: Set[NodeKey] = set()
        for group in self.groups:
            for node in group:
                if node in seen:
                    raise SimulationError(
                        f"node {node!r} appears in two partition groups")
                seen.add(node)


@dataclass(frozen=True)
class Heal:
    """Remove the active partition at *time*."""

    time: float


@dataclass(frozen=True)
class RegionOutage:
    """Take a whole region offline at *time* for *duration* seconds."""

    time: float
    region: str
    duration: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise SimulationError(
                f"region outage needs a positive duration, got {self.duration}")


@dataclass(frozen=True)
class LinkDegrade:
    """Degrade the (undirected) link between *src* and *dst* at *time*.

    ``extra_latency`` seconds are added to every delivery; ``drop_rate`` is
    an i.i.d. loss probability on top of any baseline loss. Zero for both
    restores the link.
    """

    time: float
    src: NodeKey
    dst: NodeKey
    extra_latency: float = 0.0
    drop_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.extra_latency < 0:
            raise SimulationError(
                f"extra_latency cannot be negative: {self.extra_latency}")
        if not 0.0 <= self.drop_rate <= 1.0:
            raise SimulationError(
                f"drop_rate must be in [0, 1], got {self.drop_rate}")


FaultEvent = Any  # Union of the dataclasses above

_EVENT_KINDS = {
    NodeCrash: "crash",
    NodeRecover: "recover",
    Partition: "partition",
    Heal: "heal",
    RegionOutage: "region_outage",
    LinkDegrade: "link_degrade",
}


def event_kind(event: FaultEvent) -> str:
    """Short string tag for an event ('crash', 'heal', ...)."""
    try:
        return _EVENT_KINDS[type(event)]
    except KeyError:
        raise SimulationError(f"unknown fault event {event!r}") from None


def event_summary(event: FaultEvent) -> Dict[str, Any]:
    """JSON-friendly description of one event (for benchmark results)."""
    summary: Dict[str, Any] = {"at": event.time, "kind": event_kind(event)}
    if isinstance(event, (NodeCrash, NodeRecover)):
        summary["node"] = event.node
    elif isinstance(event, Partition):
        summary["groups"] = [list(g) for g in event.groups]
    elif isinstance(event, RegionOutage):
        summary["region"] = event.region
        summary["duration"] = event.duration
    elif isinstance(event, LinkDegrade):
        summary.update(src=event.src, dst=event.dst,
                       extra_latency=event.extra_latency,
                       drop_rate=event.drop_rate)
    return summary


def events_from_dicts(raw: Sequence[Dict[str, Any]]) -> Tuple[FaultEvent, ...]:
    """Parse the ``faults:`` section of a workload spec.

    Each entry is a mapping with ``at`` (seconds) and ``kind``::

        faults:
          - { at: 30, kind: crash, nodes: [0, 1, 2] }
          - { at: 60, kind: recover, nodes: [0, 1, 2] }
          - { at: 30, kind: partition, groups: [[0, 1], [2, 3]] }
          - { at: 60, kind: heal }
          - { at: 10, kind: region_outage, region: tokyo, duration: 20 }
          - { at: 5,  kind: link_degrade, src: ohio, dst: tokyo,
              extra_latency: 0.2, drop_rate: 0.1 }

    ``crash``/``recover`` accept either ``node: k`` or ``nodes: [...]`` and
    expand to one event per node.
    """
    events: List[FaultEvent] = []
    for entry in raw:
        if not isinstance(entry, dict):
            raise SimulationError(f"fault entry must be a mapping: {entry!r}")
        try:
            at = float(entry["at"])
            kind = str(entry["kind"])
        except (KeyError, TypeError, ValueError):
            raise SimulationError(
                f"fault entry needs 'at' and 'kind': {entry!r}") from None
        if kind in ("crash", "recover"):
            nodes = entry.get("nodes", entry.get("node"))
            if nodes is None:
                raise SimulationError(f"{kind} fault needs 'node' or 'nodes'")
            if not isinstance(nodes, (list, tuple)):
                nodes = [nodes]
            cls = NodeCrash if kind == "crash" else NodeRecover
            events.extend(cls(at, node) for node in nodes)
        elif kind == "partition":
            groups = tuple(tuple(group) for group in entry["groups"])
            events.append(Partition(at, groups))
        elif kind == "heal":
            events.append(Heal(at))
        elif kind == "region_outage":
            events.append(RegionOutage(at, str(entry["region"]),
                                       float(entry["duration"])))
        elif kind == "link_degrade":
            events.append(LinkDegrade(
                at, entry["src"], entry["dst"],
                extra_latency=float(entry.get("extra_latency", 0.0)),
                drop_rate=float(entry.get("drop_rate", 0.0))))
        else:
            raise SimulationError(f"unknown fault kind {kind!r}")
    return tuple(events)


# -- the schedule ------------------------------------------------------------


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered list of fault events applied over one run."""

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        for event in self.events:
            event_kind(event)  # validates the type
            if event.time < 0:
                raise SimulationError(
                    f"fault events cannot be scheduled before t=0: {event!r}")
        ordered = tuple(sorted(self.events, key=lambda e: e.time))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @staticmethod
    def from_dicts(raw: Sequence[Dict[str, Any]]) -> "FaultSchedule":
        return FaultSchedule(events_from_dicts(raw))

    def summaries(self) -> List[Dict[str, Any]]:
        return [event_summary(event) for event in self.events]

    def fault_window(self) -> Optional[Tuple[float, float]]:
        """(first disruption, last repair) — the degraded interval.

        The window opens at the first *disruptive* event — crash,
        partition, region outage, or a link_degrade that actually
        degrades — and closes at the latest recovery/heal time (region
        outages close at ``time + duration``). Schedules that never
        repair close at their last event time. A schedule containing
        only repairs (recover/heal/zero-zero link restores) never
        degraded anything and has **no** window (``None``) — it is not
        an instantaneous disruption at its first event's time.
        """
        start: Optional[float] = None
        end = 0.0
        for event in self.events:
            if isinstance(event, (NodeRecover, Heal)):
                end = max(end, event.time)
                continue
            if isinstance(event, LinkDegrade) and (
                    event.extra_latency <= 0 and event.drop_rate <= 0):
                end = max(end, event.time)  # a link restore is a repair
                continue
            if start is None:
                start = event.time
            if isinstance(event, RegionOutage):
                end = max(end, event.time + event.duration)
            else:
                end = max(end, event.time)
        if start is None:
            return None
        return start, max(start, end)

    def validate(self, nodes: Iterable[NodeKey],
                 regions: Iterable[str] = ()) -> None:
        """Fail fast if an event references an unknown node or region.

        *nodes* is every key the deployment can answer for (replica or
        endpoint indices, endpoint names, region tags); link endpoints
        may additionally be regions. Raises
        :class:`~repro.common.errors.SpecError` naming the offending
        event instead of a ``KeyError`` mid-run.
        """
        known = set(nodes)
        known_regions = set(regions)
        link_keys = known | known_regions

        def fail(what: str, value: Any, event: FaultEvent) -> None:
            raise SpecError(
                f"fault event references unknown {what} {value!r}:"
                f" {event_summary(event)}")

        for event in self.events:
            if isinstance(event, (NodeCrash, NodeRecover)):
                if event.node not in known:
                    fail("node", event.node, event)
            elif isinstance(event, Partition):
                for group in event.groups:
                    for node in group:
                        if node not in known and node not in known_regions:
                            fail("node", node, event)
            elif isinstance(event, RegionOutage):
                if event.region not in known_regions:
                    fail("region", event.region, event)
            elif isinstance(event, LinkDegrade):
                if event.src not in link_keys:
                    fail("link endpoint", event.src, event)
                if event.dst not in link_keys:
                    fail("link endpoint", event.dst, event)


# -- the injector -------------------------------------------------------------


@dataclass
class _LinkState:
    extra_latency: float = 0.0
    drop_rate: float = 0.0


class FaultInjector:
    """Applies a :class:`FaultSchedule` and answers reachability queries.

    One injector serves all layers of one experiment: the network consults
    it on every send, consensus harnesses on every route, and the analytic
    blockchain runtimes when sealing blocks. Layers may also drive it
    manually (``crash``/``recover``/``partition``/...), which is how the
    pre-existing ad-hoc crash tests are expressed now.
    """

    def __init__(self, schedule: Optional[FaultSchedule] = None) -> None:
        self.schedule = schedule or FaultSchedule()
        self.crashed: Set[NodeKey] = set()
        self._groups: Optional[Tuple[frozenset, ...]] = None
        self._regions_down: Set[str] = set()
        self._links: Dict[Tuple[NodeKey, NodeKey], _LinkState] = {}
        self._listeners: List[Callable[[str, Any], None]] = []
        self._registered = False
        self.events_applied: List[Tuple[float, str]] = []

    # -- wiring ----------------------------------------------------------------

    def subscribe(self, listener: Callable[[str, Any], None]) -> None:
        """Register a callback invoked as ``listener(kind, payload)``."""
        self._listeners.append(listener)

    def register(self, engine: Engine) -> None:
        """Schedule every event of the schedule on *engine* (idempotent)."""
        if self._registered:
            return
        self._registered = True
        for event in self.schedule:
            if event.time <= engine.now:
                self.apply(event, engine)
            else:
                engine.schedule_at(
                    event.time,
                    lambda e=event: self.apply(e, engine),
                    label=f"fault-{event_kind(event)}")

    def apply(self, event: FaultEvent, engine: Optional[Engine] = None) -> None:
        """Apply one fault event now."""
        kind = event_kind(event)
        if isinstance(event, NodeCrash):
            self.crash(event.node)
        elif isinstance(event, NodeRecover):
            self.recover(event.node)
        elif isinstance(event, Partition):
            self.partition(event.groups)
        elif isinstance(event, Heal):
            self.heal()
        elif isinstance(event, RegionOutage):
            self.region_outage(event.region)
            if engine is not None:
                engine.schedule_after(
                    event.duration,
                    lambda: self.region_heal(event.region),
                    label="fault-region-heal")
        elif isinstance(event, LinkDegrade):
            self.degrade_link(event.src, event.dst,
                              event.extra_latency, event.drop_rate)
        time = engine.now if engine is not None else event.time
        self.events_applied.append((time, kind))

    def _notify(self, kind: str, payload: Any) -> None:
        for listener in self._listeners:
            listener(kind, payload)

    # -- state transitions ------------------------------------------------------

    def crash(self, node: NodeKey) -> None:
        self.crashed.add(node)
        self._notify("crash", node)

    def recover(self, node: NodeKey) -> None:
        self.crashed.discard(node)
        self._notify("recover", node)

    def partition(self, groups: Iterable[Iterable[NodeKey]]) -> None:
        self._groups = tuple(frozenset(group) for group in groups)
        self._notify("partition", self._groups)

    def heal(self) -> None:
        self._groups = None
        self._notify("heal", None)

    def region_outage(self, region: str) -> None:
        self._regions_down.add(region)
        self._notify("region_outage", region)

    def region_heal(self, region: str) -> None:
        self._regions_down.discard(region)
        self._notify("region_heal", region)

    def degrade_link(self, a: NodeKey, b: NodeKey,
                     extra_latency: float, drop_rate: float) -> None:
        key = self._link_key(a, b)
        if extra_latency <= 0 and drop_rate <= 0:
            self._links.pop(key, None)
        else:
            self._links[key] = _LinkState(extra_latency, drop_rate)
        self._notify("link_degrade", key)

    # -- queries ------------------------------------------------------------------

    @property
    def partitioned(self) -> bool:
        return self._groups is not None

    def is_crashed(self, node: NodeKey) -> bool:
        return node in self.crashed

    def region_down(self, region: Optional[str]) -> bool:
        return region is not None and region in self._regions_down

    def node_available(self, node: NodeKey,
                       region: Optional[str] = None) -> bool:
        """A node participates iff it is not crashed and its region is up."""
        return not self.is_crashed(node) and not self.region_down(region)

    def _group_of(self, node: NodeKey) -> int:
        """Group index of *node*; unlisted nodes share the implicit rest (-1)."""
        assert self._groups is not None
        for index, group in enumerate(self._groups):
            if node in group:
                return index
        return -1

    def same_side(self, a: NodeKey, b: NodeKey) -> bool:
        """True unless an active partition separates *a* and *b*."""
        if self._groups is None or a == b:
            return True
        return self._group_of(a) == self._group_of(b)

    def reachable(self, a: NodeKey, b: NodeKey,
                  a_region: Optional[str] = None,
                  b_region: Optional[str] = None) -> bool:
        """Can a message flow between *a* and *b* right now?

        Combines crash state, region outages and the active partition. The
        partition is checked on the node keys and, when regions are given,
        on the regions too, so region-granular partitions work at every
        layer.
        """
        if not self.node_available(a, a_region):
            return False
        if not self.node_available(b, b_region):
            return False
        if not self.same_side(a, b):
            return False
        if (a_region is not None and b_region is not None
                and not self.same_side(a_region, b_region)):
            return False
        return True

    @staticmethod
    def _link_key(a: NodeKey, b: NodeKey) -> Tuple[NodeKey, NodeKey]:
        return (a, b) if repr(a) <= repr(b) else (b, a)

    def link_state(self, a: NodeKey, b: NodeKey) -> Tuple[float, float]:
        """(extra latency, extra drop rate) for the undirected link a—b."""
        state = self._links.get(self._link_key(a, b))
        if state is None:
            return 0.0, 0.0
        return state.extra_latency, state.drop_rate

    def largest_side_available(self, nodes: Sequence[NodeKey],
                               regions: Optional[Sequence[Optional[str]]] = None
                               ) -> int:
        """Size of the largest mutually-connected set of available nodes.

        The analytic blockchain runtimes use this as their quorum check: a
        protocol needing ``q`` live, connected validators makes progress iff
        ``largest_side_available(...) >= q``.
        """
        if regions is None:
            regions = [None] * len(nodes)
        by_side: Dict[Any, int] = {}
        for node, region in zip(nodes, regions):
            if not self.node_available(node, region):
                continue
            if self._groups is None:
                side: Any = 0
            else:
                side = self._group_of(node)
                region_side = (self._group_of(region)
                               if region is not None else -1)
                side = (side, region_side)
            by_side[side] = by_side.get(side, 0) + 1
        return max(by_side.values(), default=0)

    def stats(self) -> Dict[str, Any]:
        return {
            "events_applied": len(self.events_applied),
            "crashed": sorted(self.crashed, key=repr),
            "partitioned": self.partitioned,
            "regions_down": sorted(self._regions_down),
            "links_degraded": len(self._links),
        }
