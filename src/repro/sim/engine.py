"""Discrete-event simulation engine.

The engine is a classic event-calendar simulator: callbacks are scheduled at
virtual timestamps and executed in timestamp order. Everything in the
reproduction — blockchain nodes, consensus message exchanges, DIABLO
secondaries injecting load — runs on top of one :class:`Engine` per
experiment, so an entire geo-distributed 200-node benchmark executes
deterministically in a single OS process.

Events scheduled at the same virtual time are ordered by insertion order,
which keeps runs reproducible regardless of dict/set iteration details.

The calendar is the hottest data structure in the repo — every message
delivery, block, client emission and timer passes through it — so its
representation is chosen from bench evidence (``python -m repro bench``,
see docs/BENCHMARKS.md): the heap holds bare ``(time, sequence, event)``
tuples (C-level comparisons instead of dataclass ``__lt__``), event
records carry ``__slots__``, and :meth:`Engine.schedule_batch` amortizes
fan-out insertions (broadcasts) into a single heap rebuild when that is
cheaper than pushing one by one.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro.common.errors import SimulationError

EventCallback = Callable[[], None]


class _ScheduledEvent:
    """One calendar entry. Heap ordering lives in the queue tuple."""

    __slots__ = ("time", "callback", "cancelled", "label")

    def __init__(self, time: float, callback: EventCallback,
                 label: str = "") -> None:
        self.time = time
        self.callback = callback
        self.cancelled = False
        self.label = label


class EventHandle:
    """Handle to a scheduled event, allowing cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Cancel the event; a cancelled event's callback never runs."""
        self._event.cancelled = True


class Engine:
    """Deterministic discrete-event scheduler with a virtual clock."""

    def __init__(self) -> None:
        # heap of (time, sequence, event) — bare tuples compare at C speed,
        # and the monotone sequence keeps same-time ordering insertion-stable
        self._queue: List[Tuple[float, int, _ScheduledEvent]] = []
        self._now = 0.0
        self._sequence = 0
        self._running = False
        self._events_executed = 0
        #: optional :class:`repro.obs.profiler.EngineProfiler`; when set,
        #: every event callback runs through it (wall-clock attribution
        #: per event label — observation only, event order is unchanged)
        self.profiler: Optional[Any] = None

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of callbacks executed so far (for tests/diagnostics)."""
        return self._events_executed

    @property
    def pending(self) -> int:
        """Number of events still in the calendar (including cancelled)."""
        return len(self._queue)

    # -- scheduling ------------------------------------------------------------

    def schedule_at(self, time: float, callback: EventCallback,
                    label: str = "") -> EventHandle:
        """Schedule *callback* to run at absolute virtual time *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time:.6f} before now={self._now:.6f}"
                f" (label={label!r})")
        event = _ScheduledEvent(time, callback, label)
        heapq.heappush(self._queue, (time, self._sequence, event))
        self._sequence += 1
        return EventHandle(event)

    def schedule_after(self, delay: float, callback: EventCallback,
                       label: str = "") -> EventHandle:
        """Schedule *callback* to run *delay* seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} (label={label!r})")
        return self.schedule_at(self._now + delay, callback, label)

    def schedule_batch(self, items: Iterable[Tuple[float, EventCallback, str]],
                       ) -> List[EventHandle]:
        """Schedule many ``(time, callback, label)`` entries at once.

        Semantically identical to calling :meth:`schedule_at` per item in
        iteration order (sequence numbers are assigned in that order, so
        same-time ties break exactly the same way). The win is mechanical:
        for a large batch landing in a small calendar it is cheaper to
        extend the list and re-heapify (O(n+k)) than to sift k pushes
        (O(k log n)) — the broadcast fan-out path hits this constantly.
        """
        queue = self._queue
        now = self._now
        sequence = self._sequence
        entries: List[Tuple[float, int, _ScheduledEvent]] = []
        handles: List[EventHandle] = []
        for time, callback, label in items:
            if time < now:
                raise SimulationError(
                    f"cannot schedule event at {time:.6f} before"
                    f" now={now:.6f} (label={label!r})")
            event = _ScheduledEvent(time, callback, label)
            entries.append((time, sequence, event))
            sequence += 1
            handles.append(EventHandle(event))
        self._sequence = sequence
        k = len(entries)
        n = len(queue)
        total = n + k
        if k > 1 and k * max(1.0, (total).bit_length() - 1) >= total:
            queue.extend(entries)
            heapq.heapify(queue)
        else:
            for entry in entries:
                heapq.heappush(queue, entry)
        return handles

    # -- execution ---------------------------------------------------------------

    def step(self) -> bool:
        """Execute the next non-cancelled event. Return False if none left."""
        while self._queue:
            _, _, event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_executed += 1
            if self.profiler is not None:
                self.profiler.record(event.label, event.callback)
            else:
                event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run until the calendar drains, *until* is reached, or *max_events*.

        When *until* is given, the clock is advanced to exactly *until* even
        if the last event fires earlier, so subsequent scheduling is relative
        to the requested horizon.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        executed = 0
        queue = self._queue
        heappop = heapq.heappop
        try:
            while queue:
                head_time, _, head = queue[0]
                if head.cancelled:
                    heappop(queue)
                    continue
                if until is not None and head_time > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                heappop(queue)
                self._now = head_time
                self._events_executed += 1
                executed += 1
                if self.profiler is not None:
                    self.profiler.record(head.label, head.callback)
                else:
                    head.callback()
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False


class PeriodicTask:
    """Helper running a callback at a fixed period until stopped.

    The callback receives no arguments; use closures to capture state. The
    task tolerates the callback raising StopIteration to stop itself.
    """

    def __init__(self, engine: Engine, period: float,
                 callback: EventCallback, start_at: Optional[float] = None,
                 label: str = "") -> None:
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        self._engine = engine
        self._period = period
        self._callback = callback
        self._label = label
        self._stopped = False
        self._handle: Optional[EventHandle] = None
        first = engine.now if start_at is None else start_at
        self._handle = engine.schedule_at(first, self._tick, label=label)

    @property
    def stopped(self) -> bool:
        return self._stopped

    def stop(self) -> None:
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()

    def _tick(self) -> None:
        if self._stopped:
            return
        try:
            self._callback()
        except StopIteration:
            self._stopped = True
            return
        if not self._stopped:
            self._handle = self._engine.schedule_after(
                self._period, self._tick, label=self._label)


def run_simulation(setup: Callable[[Engine], Any],
                   until: Optional[float] = None) -> Engine:
    """Convenience: build an engine, call *setup*, run it, return the engine."""
    engine = Engine()
    setup(engine)
    engine.run(until=until)
    return engine
