"""Budget-constrained economic DoS adversary (the ``adversary:`` section).

The attacker is a client like any other — it signs transfers, pays gossip
delays and rides the retry path — but it bids above the honest fee
suggestion (``bid_multiplier`` times the wallet default) to buy blockspace
ahead of honest traffic, and it stops when its fee budget runs out. That
budget is the whole point: the robustness question is not *whether* a
flood degrades the chain (§6.3 already shows it does) but *what delaying
honest transactions costs* under each chain's fee dialect, and for how
long a fixed war chest sustains the attack.

The budget is enforced as a hard invariant through worst-case
reservations: before a transaction is submitted the adversary reserves
the most it could ever be charged for it (its capped bid times its gas
limit — covering client-side fee bumps on retries), and only releases the
reservation when the submission is rejected outright. Actual spend is
whatever the :class:`~repro.econ.market.FeeMarket` charges at commit
time, so ``spend <= reserved <= budget`` holds at every instant.

Determinism: the adversary draws no randomness at all — emission uses the
same fractional-carry accumulator as the Secondaries and every bid is a
pure function of the current fee floor.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.chain.transaction import Transaction, transfer
from repro.common.errors import SpecError

if TYPE_CHECKING:
    from repro.blockchains.base import BlockchainNetwork

#: emission granularity, matching the Secondary load generators
TICK = 0.1

#: balance credited to each attacker account — large enough that transfers
#: never fail for funds (the budget ledger, not the balance, limits spend)
WAR_CHEST = 10 ** 12


@dataclass(frozen=True)
class AdversarySpec:
    """The workload's ``adversary:`` section.

    ``budget``          total fee units the attacker may spend (>= 1)
    ``rate``            attack transactions per second, unscaled TPS
    ``start`` / ``stop`` attack window in benchmark seconds (stop ``None``
                        = the whole run)
    ``bid_multiplier``  how far above the honest fee suggestion each
                        attack transaction bids
    ``senders``         distinct attacker accounts (spreads per-sender
                        mempool quotas, as a real attacker would)
    ``gas_limit``       gas attached to each attack transfer
    """

    budget: int = 1_000_000
    rate: float = 1_000.0
    start: float = 0.0
    stop: Optional[float] = None
    bid_multiplier: float = 2.0
    senders: int = 8
    gas_limit: int = 21_000

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise SpecError(f"adversary.budget must be >= 1, got {self.budget}")
        if self.rate <= 0:
            raise SpecError(f"adversary.rate must be positive, got {self.rate}")
        if self.start < 0:
            raise SpecError("adversary.start cannot be negative")
        if self.stop is not None and self.stop <= self.start:
            raise SpecError(
                f"adversary.stop ({self.stop}) must be after start"
                f" ({self.start})")
        if self.bid_multiplier < 1.0:
            raise SpecError("adversary.bid_multiplier must be >= 1.0")
        if self.senders < 1:
            raise SpecError("adversary.senders must be >= 1")
        if self.gas_limit < 21_000:
            raise SpecError("adversary.gas_limit must be >= 21000")

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "AdversarySpec":
        if not isinstance(raw, dict):
            raise SpecError(
                f"'adversary' must be a mapping, got {type(raw).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(raw) - known)
        if unknown:
            raise SpecError(
                f"unknown key(s) in adversary section: {', '.join(unknown)}")
        return cls(**raw)


class DoSAdversary:
    """Submits fee-bidding transfers against one network until broke."""

    def __init__(self, network: "BlockchainNetwork", spec: AdversarySpec,
                 duration: float) -> None:
        if network.fee_market is None:
            raise SpecError(
                "an adversary needs a fee market; attach_fees() first")
        self.network = network
        self.spec = spec
        self.duration = duration
        self._senders = [f"{network.params.name}-attacker-{i}"
                         for i in range(spec.senders)]
        self._sender_set = frozenset(self._senders)
        self._sequences: Dict[str, int] = {s: 0 for s in self._senders}
        self._cursor = 0
        self._carry = 0.0
        self._reserved = 0
        self._reservations: Dict[int, int] = {}
        self.exhausted_at: Optional[float] = None
        metrics = network.metrics.namespace("adversary")
        self._submitted = metrics.counter("submitted")
        self._accepted = metrics.counter("accepted")
        self._rejected = metrics.counter("rejected")
        self._committed = metrics.counter("committed")
        self._dropped = metrics.counter("dropped")
        self._skipped_broke = metrics.counter("skipped_budget")
        metrics.gauge("reserved", supplier=lambda: self._reserved)
        metrics.gauge("budget_left", supplier=self._budget_left)

    # -- lifecycle -------------------------------------------------------------------

    def start(self) -> None:
        """Fund the attacker accounts and schedule the attack window."""
        for address in self._senders:
            self.network.state.credit(address, WAR_CHEST)
        self.network.fee_market.track(self._senders, "attacker")
        # the adversary prices its own bids; exempting it from the honest
        # fee-bump keeps each reservation an exact worst case
        self.network.fee_bump_exempt = self._sender_set
        self.network.on_commit(self._on_commit)
        self.network.on_drop(self._on_drop)
        self.network.engine.schedule_after(
            self.spec.start, self._tick,
            label=f"{self.network.params.name}-adversary")

    def _stop_at(self) -> float:
        stop = self.duration if self.spec.stop is None else self.spec.stop
        return min(stop, self.duration)

    # -- emission --------------------------------------------------------------------

    def _tick(self) -> None:
        now = self.network.engine.now
        if now >= self._stop_at():
            return
        self._carry += self.network.scale.rate(self.spec.rate) * TICK
        count = int(self._carry)
        self._carry -= count
        for _ in range(count):
            self._fire()
        self.network.engine.schedule_after(
            TICK, self._tick, label=f"{self.network.params.name}-adversary")

    def _worst_case_fee(self, fee_per_gas: int, tip: int) -> int:
        """Most this transaction can ever be charged.

        In every dialect the effective per-gas price is bounded by the
        fee cap plus the tip (eip1559: ``min(cap, base + tip) <= cap``;
        auction: exactly ``min_fee + tip``; flat: ``min_fee``), and
        attacker senders are exempt from the client fee bump, so the bid
        itself is the bound.
        """
        return (fee_per_gas + tip) * self.spec.gas_limit

    def _budget_left(self) -> int:
        """Budget not yet spent or reserved against in-flight submissions.

        ``spend() + _reserved`` only ever counts a transaction once at
        its worst case (reservations release when the charge lands in
        spend), so gating new submissions on this keeps ``spend <=
        budget`` a hard invariant.
        """
        return max(0, self.spec.budget - self.spend() - self._reserved)

    def _fire(self) -> None:
        market = self.network.fee_market
        fee_per_gas, tip = market.attack_bid(self.spec.bid_multiplier)
        reservation = self._worst_case_fee(fee_per_gas, tip)
        if reservation > self._budget_left():
            # throttled: in-flight reservations (or spend) leave no room
            # for another worst-case transaction right now. Truly broke —
            # the attack is over — once spend alone rules one out.
            self._skipped_broke.inc()
            if (self.exhausted_at is None
                    and self.spend() + reservation > self.spec.budget):
                self.exhausted_at = self.network.engine.now
            return
        sender = self._senders[self._cursor % len(self._senders)]
        self._cursor += 1
        recipient = self._senders[(self._cursor + 1) % len(self._senders)]
        sequence = self._sequences[sender]
        self._sequences[sender] = sequence + 1
        tx = transfer(sender, recipient, amount=1, sequence=sequence,
                      fee_per_gas=fee_per_gas, tip=tip,
                      gas_limit=self.spec.gas_limit)
        if self.network.params.tx_expiry is not None:
            tx.recent_block_hash = self.network.ledger.head.block_hash
        self._reserved += reservation
        self._reservations[tx.uid] = reservation
        self._submitted.inc()
        result = self.network.submit(tx)
        if result.accepted:
            self._accepted.inc()
        elif not result.will_retry:
            # rejected outright with no retry coming: this transaction can
            # never be charged, so its reservation returns to the budget
            self._rejected.inc()
            self._release(tx)

    def _release(self, tx: Transaction) -> None:
        reservation = self._reservations.pop(tx.uid, 0)
        self._reserved -= reservation

    def _on_commit(self, tx: Transaction) -> None:
        if tx.sender in self._sender_set:
            self._committed.inc()
            # the final charge is in the market's spend ledger now; the
            # worst-case reservation returns to the budget
            self._release(tx)

    def _on_drop(self, tx: Transaction) -> None:
        # a dropped attack transaction (shed, expired, evicted with
        # retries exhausted, failed execution) is never charged — its
        # reservation returns to the budget
        if tx.sender in self._sender_set:
            self._dropped.inc()
            self._release(tx)

    # -- reporting -------------------------------------------------------------------

    def spend(self) -> int:
        """Fee units actually charged to the attacker so far."""
        return self.network.fee_market.spend("attacker")

    def stats(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "budget": self.spec.budget,
            "rate": self.spec.rate,
            "bid_multiplier": self.spec.bid_multiplier,
            "submitted": int(self._submitted.value),
            "accepted": int(self._accepted.value),
            "rejected": int(self._rejected.value),
            "committed": int(self._committed.value),
            "dropped": int(self._dropped.value),
            "skipped_budget": int(self._skipped_broke.value),
            "spend": self.spend(),
            "reserved": self._reserved,
        }
        if self.exhausted_at is not None:
            out["exhausted_at"] = round(self.exhausted_at, 3)
        return out
